"""Shrink a failing campaign seed to a minimal reproducer.

Generated programs are parameterized, not token streams, so shrinking is
greedy descent over the generator parameters: repeatedly try reducing
``max_functions``, ``max_stmts`` and ``max_depth`` by one and keep any
reduction for which the *same oracle* still fires on the same seed.  The
result is the smallest parameter vector (and its generated C source)
that reproduces the original verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.testing.faults import validate_plant
from repro.testing.oracles import SeedVerdict, check_seed
from repro.testing.progen import generate_program

#: Parameters the shrinker descends over, with their floor values.
SHRINK_AXES = (("max_functions", 1), ("max_stmts", 1), ("max_depth", 0))

DEFAULTS = {"max_functions": 4, "max_stmts": 6, "max_depth": 3}


@dataclass
class ShrinkResult:
    """Outcome of shrinking one failing seed."""

    verdict: SeedVerdict          #: verdict at the minimized parameters
    gen_kwargs: dict              #: minimized generator parameters
    source: str                   #: minimized C source
    attempts: int                 #: candidate re-checks performed
    reduced: bool                 #: whether any axis actually shrank


def shrink_failure(verdict: SeedVerdict,
                   metric_name: str = "compiler",
                   plant: Optional[str] = None,
                   deep: bool = False,
                   max_attempts: int = 32) -> ShrinkResult:
    """Minimize the generator parameters behind a failing verdict.

    A candidate is accepted when re-checking the same seed at the smaller
    parameters violates the *same oracle* (the ablation may differ — the
    bug, not its first observation point, is what must survive).
    """
    if verdict.ok:
        raise ValueError("shrink_failure needs a failing verdict")
    validate_plant(plant)  # fail fast, not on the first candidate re-check
    kwargs = {**DEFAULTS, **verdict.gen_kwargs}
    best = verdict
    attempts = 0
    reduced = False
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for axis, floor in SHRINK_AXES:
            if kwargs[axis] <= floor:
                continue
            candidate = dict(kwargs)
            candidate[axis] = kwargs[axis] - 1
            attempts += 1
            trial = check_seed(verdict.seed, gen_kwargs=candidate,
                               metric_name=metric_name, plant=plant,
                               deep=deep)
            if not trial.ok and trial.oracle == verdict.oracle:
                kwargs = candidate
                best = trial
                progress = True
                reduced = True
            if attempts >= max_attempts:
                break
    source = best.source or generate_program(verdict.seed, **kwargs)
    return ShrinkResult(verdict=best, gen_kwargs=kwargs, source=source,
                        attempts=attempts, reduced=reduced)
