"""Throughput of the differential-testing campaign engine.

Measures the three regimes that matter for campaign sizing: the cost of
one seed through the full oracle hierarchy, the warm-cache fast path
(generation + hash + cache hit), and the pool speedup of a multi-worker
campaign over a serial one.

    pytest benchmarks/bench_campaign.py --benchmark-only
    python benchmarks/bench_campaign.py          # prints the scaling table

Pool scaling tracks the machine: on a single-CPU container the 4-worker
row shows only fork/IPC overhead, while the warm-cache row is CPU-count
independent (two orders of magnitude over a cold run).
"""

import shutil
import tempfile
import time

import pytest

from repro.testing import CampaignConfig, check_seed, run_campaign


def test_single_seed_oracle_hierarchy(benchmark):
    """One seed, all five ablations, probes included (the unit of work a
    campaign worker performs)."""
    counter = iter(range(10_000))

    def one_seed():
        return check_seed(next(counter))

    verdict = benchmark(one_seed)
    assert verdict.ok


def test_warm_cache_seed(benchmark):
    """The corpus-cache fast path: generation plus one hash lookup."""
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-corpus")
    try:
        config = CampaignConfig(seeds=8, jobs=1, cache_dir=cache_dir)
        run_campaign(config)  # populate

        def warm():
            return run_campaign(config)

        report = benchmark(warm)
        assert report.cache_hits == 8 and not report.failures
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


@pytest.mark.parametrize("jobs", [1, 4])
def test_pool_scaling(benchmark, jobs):
    """Cold 12-seed campaign at 1 vs 4 workers (compare the two rows)."""
    config = CampaignConfig(seeds=12, jobs=jobs, cache_dir=None,
                            shrink=False)
    report = benchmark.pedantic(lambda: run_campaign(config),
                                rounds=1, iterations=1)
    assert not report.failures
    benchmark.extra_info["seeds_per_s"] = round(report.throughput, 2)


def scaling_table(seeds: int = 24) -> None:
    print(f"{'jobs':>6} {'elapsed':>10} {'seeds/s':>9} {'speedup':>9}")
    serial = None
    for jobs in (1, 2, 4):
        config = CampaignConfig(seeds=seeds, jobs=jobs, cache_dir=None,
                                shrink=False)
        started = time.perf_counter()
        report = run_campaign(config)
        elapsed = time.perf_counter() - started
        assert not report.failures
        serial = serial or elapsed
        print(f"{jobs:6d} {elapsed:9.2f}s {report.throughput:9.2f} "
              f"{serial / elapsed:8.2f}x")


if __name__ == "__main__":
    scaling_table()
