"""Benchmark for the heap-resource extension (paper §8 outlook).

The paper closes by noting the framework generalizes "to other resources
such as heap-memory".  This bench demonstrates the generalization on the
trace level: ``malloc`` emits size events, a heap metric prices them, and
the *source-level* trace weight equals the arena consumption of the
*compiled* program — the heap analogue of the stack pipeline, minus the
static analyzer (future work there as here).

    python benchmarks/bench_heap.py
    pytest benchmarks/bench_heap.py --benchmark-only
"""

import pytest

from repro.clight.semantics import run_program as run_clight
from repro.driver import compile_c
from repro.events.heap import allocation_sizes, heap_usage
from repro.programs.loader import load_source

DEPTHS = [2, 4, 6, 8, 10]


def binarytrees_row(depth):
    source = load_source("compcert/binarytrees.c")
    compilation = compile_c(source, macros={"DEPTH": str(depth)})
    clight_behavior = run_clight(compilation.clight, fuel=100_000_000)
    _behavior, machine = compilation.run(fuel=200_000_000)
    predicted = heap_usage(clight_behavior.trace)
    nodes = len(allocation_sizes(clight_behavior.trace))
    return {
        "depth": depth,
        "nodes": nodes,
        "predicted": predicted,
        "measured": machine.measured_heap_usage,
        "stack": machine.measured_stack_usage,
    }


def sweep():
    return [binarytrees_row(depth) for depth in DEPTHS]


def print_rows(rows):
    print()
    print(f"{'depth':>6s} {'nodes':>7s} {'heap (trace)':>13s} "
          f"{'heap (arena)':>13s} {'stack':>7s}")
    for row in rows:
        print(f"{row['depth']:6d} {row['nodes']:7d} {row['predicted']:13d} "
              f"{row['measured']:13d} {row['stack']:7d}")


@pytest.mark.table
def test_heap_weight_matches_arena(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_rows(rows)
    for row in rows:
        # The heap story's analogue of "what you verify is what you run":
        # the source-level trace weight IS the machine's consumption.
        assert row["predicted"] == row["measured"]
        assert row["nodes"] == 2 ** (row["depth"] + 1) - 1
    # Heap grows geometrically; stack only linearly in the depth — the
    # two resources genuinely need separate metrics.
    assert rows[-1]["measured"] > 100 * rows[0]["measured"]
    assert rows[-1]["stack"] < 4 * rows[0]["stack"]


def test_dijkstra_heap(benchmark):
    source = load_source("mibench/dijkstra.c")

    def measure():
        compilation = compile_c(source, filename="dijkstra.c")
        clight_behavior = run_clight(compilation.clight, fuel=150_000_000)
        _behavior, machine = compilation.run(fuel=200_000_000)
        return heap_usage(clight_behavior.trace), machine.measured_heap_usage

    predicted, measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert predicted == measured > 0


if __name__ == "__main__":
    print_rows(sweep())
