"""Interactive proofs over real function bodies (paper §4.3 + Fig. 6).

The automatic analyzer only composes ground bounds; recursive functions
need the auxiliary-state machinery: at each call site the callee's
*parametric* spec is instantiated with expressions over the caller's own
parameters (the paper instantiates ``Z -> Z - 1`` at ``bsearch``'s
recursive call).  ``prove_function`` automates everything except that
choice: the user supplies, per call site, the instantiation *hint*, and
the machinery builds the full derivation over the actual Clight body —
Q:CALL at the hinted sites, Q:FRAME/Q:SEQ plumbing everywhere else, and a
final Q:CONSEQ discharging the declared spec.

The resulting derivation is checked by the ordinary derivation checker;
parametric side conditions are discharged over the declared verification
domain (reported as ``sampled`` in the check report), the executable
surrogate for the Coq consequence-rule proofs.

**Scope.**  Body-level proofs work whenever the recursion bottoms out
through argument arithmetic — the paper's ``log2(Δ<0) = ∞`` /
``Z - 1`` trick, which our ``BParamDiff`` clamping reproduces (``recid``,
``sum``-style linear recursions).  Divide-and-conquer recursions whose
base case is a *guard* (``bsearch``'s ``hi - lo <= 1``) need assertions
over the current state σ (the ``Z > 0 ∧ ...`` implications of the
paper's Fig. 6), which the parameter-level assertion language cannot
express: at the body level the recursive call site would have to be seen
as unreachable for small sizes.  Those functions are verified at the
recurrence level instead (:mod:`repro.logic.recursion`), where the
reachability condition is explicit in the obligation function — see
DESIGN.md for the substitution note.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional

from repro.clight import ast as cl
from repro.errors import AnalysisError
from repro.logic import derivation as dv
from repro.logic.assertions import FunContext, FunSpec, Post
from repro.logic.bexpr import (BExpr, BFrameDiff, ZERO, badd, bmax, bmetric,
                               bparam)
from repro.logic.checker import CheckerContext, CheckReport, \
    check_function_spec

# A hint maps a call statement to the spec-parameter instantiation used
# at that site.
Hint = Callable[[cl.SCall], Mapping[str, BExpr]]


class InteractiveProver:
    """Builds a derivation for one function body with call-site hints."""

    def __init__(self, gamma: FunContext, externals: Iterable[str],
                 hints: Mapping[str, Hint]) -> None:
        self.gamma = gamma
        self.externals = set(externals)
        self.hints = dict(hints)

    def bound(self, stmt: cl.Stmt) -> tuple[BExpr, dv.Derivation]:
        if isinstance(stmt, cl.SSkip):
            return ZERO, dv.DSkip(_uniform(ZERO, stmt))
        if isinstance(stmt, cl.SSet):
            return ZERO, dv.DSet(_uniform(ZERO, stmt))
        if isinstance(stmt, cl.SStore):
            return ZERO, dv.DStore(_uniform(ZERO, stmt))
        if isinstance(stmt, cl.SBreak):
            return ZERO, dv.DBreak(_uniform(ZERO, stmt))
        if isinstance(stmt, cl.SContinue):
            return ZERO, dv.DContinue(_uniform(ZERO, stmt))
        if isinstance(stmt, cl.SReturn):
            return ZERO, dv.DReturn(_uniform(ZERO, stmt))
        if isinstance(stmt, cl.SCall):
            return self._bound_call(stmt)
        if isinstance(stmt, cl.SSeq):
            b1, d1 = self.bound(stmt.first)
            b2, d2 = self.bound(stmt.second)
            total = bmax(b1, b2)
            return total, dv.DSeq(_uniform(total, stmt),
                                  _lift(d1, total), _lift(d2, total))
        if isinstance(stmt, cl.SIf):
            b1, d1 = self.bound(stmt.then)
            b2, d2 = self.bound(stmt.otherwise)
            total = bmax(b1, b2)
            return total, dv.DIf(_uniform(total, stmt),
                                 _lift(d1, total), _lift(d2, total))
        if isinstance(stmt, cl.SLoop):
            b1, d1 = self.bound(stmt.body)
            b2, d2 = self.bound(stmt.post)
            total = bmax(b1, b2)
            return total, dv.DLoop(_uniform(total, stmt),
                                   _lift(d1, total), _lift(d2, total))
        if isinstance(stmt, cl.SBlock):
            b, d = self.bound(stmt.body)
            return b, dv.DBlock(_uniform(b, stmt), d)
        raise AnalysisError(f"unsupported statement {type(stmt).__name__}")

    def _bound_call(self, stmt: cl.SCall) -> tuple[BExpr, dv.Derivation]:
        if stmt.callee in self.gamma:
            spec = self.gamma[stmt.callee]
            if spec.params:
                hint = self.hints.get(stmt.callee)
                if hint is None:
                    raise AnalysisError(
                        f"call to {stmt.callee!r} has a parametric spec; "
                        "provide an instantiation hint")
                spec_args = dict(hint(stmt))
            else:
                spec_args = {}
            pre, post = spec.instantiate(spec_args)
            cost = bmetric(stmt.callee)
            total = badd(pre, cost)
            triple = dv.Triple(total, stmt,
                               Post.uniform(badd(post, cost)))
            return total, dv.DCall(triple, stmt.callee, spec_args)
        if stmt.callee in self.externals:
            return ZERO, dv.DExternal(_uniform(ZERO, stmt), stmt.callee)
        raise AnalysisError(f"no spec for {stmt.callee!r}")


def _uniform(bound: BExpr, stmt: cl.Stmt) -> dv.Triple:
    return dv.Triple(bound, stmt, Post.uniform(bound))


def _lift(deriv: dv.Derivation, target: BExpr) -> dv.Derivation:
    current = deriv.conclusion.pre
    if repr(current) == repr(target):
        return deriv
    diff = BFrameDiff(target, current)
    lifted = dv.Triple(badd(current, diff), deriv.conclusion.stmt,
                       deriv.conclusion.post.map(lambda q: badd(q, diff)))
    return dv.DFrame(lifted, diff, deriv)


def prove_function(program: cl.Program, spec: FunSpec,
                   gamma: FunContext,
                   hints: Mapping[str, Hint],
                   param_domains: Mapping[str, Iterable[int]],
                   check: bool = True
                   ) -> tuple[dv.Derivation, Optional[CheckReport]]:
    """Prove ``spec`` for its function's actual body.

    ``gamma`` must already contain ``spec`` itself (the recursion rule:
    the body is verified under the assumption of its own spec) plus the
    specs of every other callee.  Returns the derivation and, when
    ``check`` is set, the checker's report.
    """
    function = program.function(spec.name)
    prover = InteractiveProver(gamma, program.externals, hints)
    body_bound, body_deriv = prover.bound(function.body)

    identity = {name: bparam(name) for name in spec.params}
    pre, post = spec.instantiate(identity)
    conclusion = dv.Triple(pre, function.body, Post(post, ZERO, post, ZERO))
    derivation = dv.DConseq(conclusion, body_deriv)

    report = None
    if check:
        ctx = CheckerContext(gamma, externals=program.externals,
                             param_domains=param_domains)
        report = check_function_spec(function, derivation, ctx)
    return derivation, report
