/* Higher-order callback: a fold whose step function is a parameter.
 * The candidate set of `step` inside `fold` is the union of everything
 * callers pass — {sum_step, max_step} — computed by the interprocedural
 * flow of the value analysis (arguments at direct call sites flow into
 * the callee's parameter cell).  `(*step)(...)` and `step(...)` are the
 * same call, and `&max_step` the same pointer as `max_step`. */

int sum_step(int acc, int x) { return acc + x; }

int max_step(int acc, int x) {
    if (x > acc) return x;
    return acc;
}

int fold(int n, int (*step)(int, int), int init) {
    int acc = init;
    int i;
    for (i = 1; i <= n; i++) acc = (*step)(acc, i);
    return acc;
}

int main() {
    int s = fold(10, sum_step, 0);
    int m = fold(10, &max_step, -5);
    print_int(s);
    print_int(m);
    return s == 55 && m == 10;
}
