"""Register allocation: virtual registers to machine locations.

The target has two register classes (integer and float).  Registers are
all caller-saved (the paper's pipeline also spills across calls at Mach
level), so any virtual register live across a call is assigned a stack
slot outright; the rest are colored greedily on the interference graph,
spilling on color exhaustion.  Spill slots become part of the Mach frame
and therefore of the cost metric — register pressure is literally visible
in the verified stack bounds, which is why the ablation benchmark toggles
this pass.
"""

from repro.regalloc.allocator import Allocation, allocate_function
from repro.regalloc.locations import (FLOAT_REGS, FLOAT_SCRATCH, INT_REGS,
                                      INT_SCRATCH, LFReg, LReg, LSlot, Loc)

__all__ = ["Loc", "LReg", "LFReg", "LSlot", "INT_REGS", "FLOAT_REGS",
           "INT_SCRATCH", "FLOAT_SCRATCH", "Allocation", "allocate_function"]
