"""C front end: lexer, parser and type checker for the supported subset.

The subset mirrors what the paper's tool chain exercises: scalar types
(``char``/``short``/``int`` in both signednesses, ``double``, with
``float`` treated at double precision), pointers, fixed-size arrays,
``struct``, ``typedef``, all the structured control flow of C
(``if``/``while``/``do``/``for``/``switch``/``break``/``continue``/
``return``), function definitions and calls, and global/local
initializers.  Excluded, exactly as in the paper: function pointers,
``goto``, variable-length arrays and ``alloca`` (constant stack frames are
load-bearing for the cost metric).
"""

from repro.c.parser import parse
from repro.c.typecheck import typecheck

__all__ = ["parse", "typecheck"]
