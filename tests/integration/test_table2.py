"""Integration: the manually verified bounds of Table 2.

Three layers of validation per recursive function, mirroring how the
paper establishes and then measures the hand-written proofs:

1. the spec's induction step checks over its whole verification domain
   (exact in the metric for every instance);
2. the bound dominates the observed trace weight of real executions of
   the *compiled program's Clight form*, across a sweep of inputs, under
   the compiler-produced metric;
3. the end-to-end ASMsz measurement stays below the instantiated bound,
   with the paper's exactly-4-byte gap on the tight linear specs.
"""

import pytest

from repro.driver import compile_c
from repro.logic.recursion import check_spec
from repro.logic.soundness import validate_call_bound
from repro.measure import measure_compilation
from repro.programs.loader import load_source
from repro.programs.table2 import TABLE2_PROGRAMS, build_spec_table

FUEL = 120_000_000

# function -> (macro name/value for compilation, list of (args, params))
SWEEPS = {
    "recid": ("N", 12, [([n], {"n": n}) for n in (0, 1, 5, 12)]),
    "bsearch": ("N", 256, [([7, 0, n], {"n": n})
                           for n in (1, 2, 3, 100, 256)]),
    "fib": ("N", 12, [([n], {"n": n}) for n in (0, 1, 2, 8, 12)]),
    "qsort": ("N", 64, [([0, n], {"n": n}) for n in (0, 2, 16, 64)]),
    "sum": ("N", 100, [([0, n], {"n": n}) for n in (0, 1, 50, 100)]),
    "filter_pos": ("N", 80, [([80, 0, n], {"n": n})
                             for n in (0, 1, 40, 80)]),
    "fact_sq": ("N", 7, [([n], {"n": n}) for n in (0, 1, 3, 7)]),
    "filter_find": ("N", 40, [([40, 0, n], {"n": n, "bl": 256})
                              for n in (0, 1, 20, 40)]),
}


@pytest.fixture(scope="module")
def table():
    return build_spec_table()


@pytest.fixture(scope="module")
def compilations():
    cache = {}
    for name, path in TABLE2_PROGRAMS.items():
        macro, value, _sweep = SWEEPS[name]
        cache[name] = compile_c(load_source(path), filename=path,
                                macros={macro: str(value)})
    return cache


@pytest.mark.parametrize("function", sorted(TABLE2_PROGRAMS))
def test_induction_step(table, function):
    report = check_spec(table.recursive[function], table)
    assert report.instances > 0


@pytest.mark.parametrize("function", sorted(TABLE2_PROGRAMS))
def test_runtime_soundness_sweep(table, compilations, function):
    spec = table.recursive[function]
    compilation = compilations[function]
    _macro, _value, sweep = SWEEPS[function]
    for args, params in sweep:
        validate_call_bound(compilation.clight, function, args,
                            spec.total_bound(), compilation.metric,
                            params=params, fuel=FUEL)


@pytest.mark.parametrize("function", sorted(TABLE2_PROGRAMS))
def test_end_to_end_measurement_below_bound(table, compilations, function):
    spec = table.recursive[function]
    compilation = compilations[function]
    _macro, value, _sweep = SWEEPS[function]
    run = measure_compilation(compilation, fuel=FUEL)
    assert run.converged
    params = {"n": value}
    if function == "filter_find":
        params["bl"] = 256
    metric = compilation.metric
    callee_bound = spec.total_bytes(metric, params)
    main_bound = metric.cost("main") + callee_bound
    assert run.measured_bytes <= main_bound - 4


@pytest.mark.parametrize("function", ["recid", "sum", "filter_pos"])
def test_tight_linear_specs_gap_is_exactly_four(table, compilations,
                                                function):
    """The linear recursions are driven to their worst case by main, so
    the paper's exactly-4-bytes observation holds on the nose."""
    spec = table.recursive[function]
    compilation = compilations[function]
    _macro, value, _sweep = SWEEPS[function]
    run = measure_compilation(compilation, fuel=FUEL)
    metric = compilation.metric
    main_bound = metric.cost("main") + spec.total_bytes(metric, {"n": value})
    assert main_bound - run.measured_bytes == 4


def test_fib_two_calls_never_coexist(compilations):
    """fib's stack is linear even though its time is exponential."""
    compilation = compilations["fib"]
    _behavior, machine = compilation.run(fuel=FUEL)
    frame = compilation.metric.cost("fib")
    # measured = main frame + at most N nested fib frames
    assert machine.measured_stack_usage <= \
        compilation.metric.cost("main") + frame * 13


def test_modularity_fact_sq(table):
    """fact_sq's spec is closed using fact's spec — the logic's
    modularity claim (paper §6)."""
    spec = table.recursive["fact_sq"]
    obligations = spec.obligations({"n": 5})
    assert [o.callee for o in obligations] == ["fact"]
    assert obligations[0].args == {"n": 25}


def test_filter_find_reuses_bsearch(table):
    spec = table.recursive["filter_find"]
    callees = {o.callee for o in spec.obligations({"n": 3, "bl": 16})}
    assert callees == {"bsearch", "filter_find"}
