/* MiBench auto/bitcount (adapted).  Seven ways of counting bits, cross-
 * checked against each other over a stream of pseudo-random words.
 * Table 1 reports bitcount and bitstring; the other counters are kept to
 * give the analyzer a realistic call graph. */

#define ITERATIONS 64

typedef unsigned int u32;
u32 seed = 1234567;
int bits_table[16] = {0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4};
int bitstr[40];

u32 rnd() {
    seed = seed * 1664525 + 1013904223;
    return seed;
}

/* Kernighan's loop: one iteration per set bit. */
int bit_count(u32 x) {
    int n = 0;
    while (x != 0) {
        n = n + 1;
        x = x & (x - 1);
    }
    return n;
}

/* MIT HAKMEM 169 bit counter. */
int bitcount(u32 i) {
    u32 tmp;
    tmp = i - ((i >> 1) & 033333333333) - ((i >> 2) & 011111111111);
    return (int)(((tmp + (tmp >> 3)) & 030707070707) % 63);
}

/* Nibble-table lookup. */
int ntbl_bitcount(u32 x) {
    return bits_table[x & 0x0F]
        + bits_table[(x >> 4) & 0x0F]
        + bits_table[(x >> 8) & 0x0F]
        + bits_table[(x >> 12) & 0x0F]
        + bits_table[(x >> 16) & 0x0F]
        + bits_table[(x >> 20) & 0x0F]
        + bits_table[(x >> 24) & 0x0F]
        + bits_table[(x >> 28) & 0x0F];
}

/* Shift-and-test, one bit per loop iteration. */
int bit_shifter(u32 x) {
    int i, n = 0;
    for (i = 0; x != 0 && i < 32; i++) {
        n = n + (int)(x & 1);
        x = x >> 1;
    }
    return n;
}

/* Render the binary representation of x into bitstr (the adaptation of
 * the original's bitstring(char*, ...) without string buffers); returns
 * the number of significant digits. */
int bitstring(u32 x, int bits) {
    int i;
    for (i = 0; i < bits; i++) {
        bitstr[i] = (int)((x >> (bits - 1 - i)) & 1);
    }
    return bits;
}

int main() {
    int i, j, n0, n1, n2, n3, digits, fromstr, total = 0;
    u32 x;
    for (i = 0; i < ITERATIONS; i++) {
        x = rnd();
        n0 = bit_count(x);
        n1 = bitcount(x);
        n2 = ntbl_bitcount(x);
        n3 = bit_shifter(x);
        if (n0 != n1 || n1 != n2 || n2 != n3) {
            return 0;
        }
        digits = bitstring(x, 32);
        fromstr = 0;
        for (j = 0; j < digits; j++) fromstr = fromstr + bitstr[j];
        if (fromstr != n0) {
            return 0;
        }
        total = total + n0;
    }
    print_int(total);
    return total > 0;
}
