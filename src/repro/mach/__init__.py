"""Mach: Linear with a concrete stack-frame layout.

This is the level where the paper's cost metric is produced: the frame of
a function is fully laid out — outgoing argument area, spill slots, and
the merged addressable-locals block — so its size ``SF(f)`` is a compile-
time constant, and the metric is ``M(f) = SF(f) + 4`` (the +4 being the
return address the call instruction pushes).  Everything after Mach only
*merges* these frames into the single preallocated ASMsz stack block; no
further stack memory is invented.
"""

from repro.mach.ast import FrameInfo, MachFunction, MachProgram
from repro.mach.lower import mach_of_linear

__all__ = ["MachProgram", "MachFunction", "FrameInfo", "mach_of_linear"]
