"""The differential-testing oracle hierarchy (campaign engine core).

Every oracle is one clause of the paper's metatheory, checked on a real
execution of one generated program:

``compile``
    The program compiles at the requested ablation point (generated
    programs are well-typed by construction, so any front-end or pass
    failure is a bug).
``generator-safety``
    The Clight interpreter converges (programs are safe by construction)
    and its trace is well bracketed.
``trace-equality``
    CompCert's classic refinement between ASMsz and Clight: identical
    pruned (I/O) traces, outputs and return codes.  In ``deep`` mode the
    RTL and Mach interpreters run too, and their *memory-event* traces
    must equal Clight's exactly (the passes up to Mach preserve events);
    with the tail-call pass enabled that strengthens check is replaced by
    the structural all-metrics domination of ``repro.events.refinement``.
``weight-monotonicity``
    The quantitative refinement made concrete on the machine: the ASMsz
    ESP high-water mark never exceeds ``W_M(clight) - 4`` under the
    compiler's metric (the -4 is main's return address, already pushed at
    the baseline).  In ``deep`` mode the per-level trace weights are also
    checked to be non-increasing under the selected metric.
``bound-soundness``
    Theorem 2/3: the analyzer's bound for ``main`` dominates the observed
    Clight trace weight under the oracle metric, and its byte value
    dominates the ASMsz high-water mark by the paper's 4 bytes.
``bound-tightness``
    Theorem 1 exercised on the finite-stack machine: a stack block of
    ``bound + 4`` bytes never overflows, while an underprovisioned block
    (4 bytes below the measured requirement) must overflow — so the
    overflow detector itself cannot silently pass.
``derivation-check``
    The emitted quantitative-logic derivations re-check exactly.

``check_seed`` runs the hierarchy for one seed across a set of compiler
ablation points and reports the first violation (plus stage timings).
The Clight execution, the automatic analysis and the derivation re-check
are ablation-independent, so they run once per seed; each ablation point
adds one ASMsz execution plus the differential comparisons.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.analyzer import StackAnalyzer
from repro.clight.semantics import run_streamed as stream_clight
from repro.driver import (Compilation, CompilerOptions, compile_clight,
                          compile_frontend)
from repro.errors import ReproError
from repro.events.metrics import StackMetric
from repro.events.refinement import (RefinementFailure, check_refinement,
                                     dominates_for_all_metrics)
from repro.events.trace import Converges, is_well_bracketed, weight_of_trace
from repro.testing.progen import generate_program

#: Bump when oracle semantics change: invalidates the on-disk corpus cache.
ORACLE_VERSION = "3"  # 3: recursion/function-pointer seeds run the full
                      #    analyzer oracles (ranking-function inference +
                      #    value analysis), not just the compiler ones

#: Structural all-metrics domination is O(n^2) in the trace length, so it
#: only runs on traces up to this many events (the metric-specific check
#: runs unconditionally and is linear).
ALL_METRICS_TRACE_CAP = 600

CLIGHT_FUEL = 3_000_000
INTERP_FUEL = 30_000_000

#: Deep mode picks the interpreter engine per seed: the pre-decoded
#: RTL/Mach engines pay a per-program decode cost (a few ms) that only
#: amortizes on runs past roughly this many steps.  The Clight step
#: count — known before the deep runs, and empirically the same order
#: of magnitude as the RTL/Mach step counts — selects the engine.
#: Either engine yields identical verdicts by construction
#: (tests/unit/test_sem_decode.py), so this is purely a speed knob.
DEEP_DECODE_MIN_STEPS = 10_000
ASM_FUEL = 100_000_000

#: The ablation points of the campaign, by name (order = check order).
ABLATIONS: dict[str, CompilerOptions] = {
    "default": CompilerOptions(),
    "O0": CompilerOptions(constprop=False, deadcode=False),
    "cse": CompilerOptions(cse=True),
    "tailcall": CompilerOptions(tailcall=True),
    "spill": CompilerOptions(spill_everything=True),
}


class OracleViolation(ReproError):
    """A differential oracle failed for one (seed, ablation) point."""

    def __init__(self, oracle: str, ablation: str, detail: str) -> None:
        self.oracle = oracle
        self.ablation = ablation
        self.detail = detail
        super().__init__(f"[{oracle}@{ablation}] {detail}")


@dataclass
class SeedVerdict:
    """The outcome of checking one seed (picklable, JSON-friendly)."""

    seed: int
    ok: bool
    oracle: Optional[str] = None
    ablation: Optional[str] = None
    detail: Optional[str] = None
    gen_kwargs: dict = field(default_factory=dict)
    timings: dict = field(default_factory=dict)
    events: int = 0
    configs_checked: int = 0
    cached: bool = False
    source: Optional[str] = None
    #: Worker-side observability payloads (repro.obs): the per-seed
    #: metrics delta and finished span records.  The campaign parent
    #: merges and clears them on arrival; they never enter the JSONL
    #: report (the merged campaign-wide snapshot does, via --metrics-out).
    obs_metrics: Optional[dict] = None
    obs_spans: Optional[list] = None

    def as_json(self) -> dict:
        record = {
            "seed": self.seed, "ok": self.ok, "cached": self.cached,
            "events": self.events, "configs_checked": self.configs_checked,
            "gen_kwargs": self.gen_kwargs,
            "timings": {k: round(v, 6) for k, v in self.timings.items()},
        }
        if not self.ok:
            record.update(oracle=self.oracle, ablation=self.ablation,
                          detail=self.detail)
        return record


def metric_for(compilation: Compilation, metric_name: str,
               plant: Optional[str] = None) -> StackMetric:
    """The stack metric used by the weight/bound oracles.

    ``plant`` names a metric-layer operator from the fault registry
    (:mod:`repro.testing.faults`) and injects its corrupted metric for
    the campaign's self-test — e.g. ``"drop-ra"`` reproduces a compiler
    that forgets the 4 return-address bytes (``M(f) = SF(f)`` instead of
    ``SF(f) + 4``), the four-byte gap of
    ``tests/integration/test_four_byte_gap.py`` made into a fault.
    Campaign entry points validate the plant name up front
    (:func:`repro.testing.faults.validate_plant`), so an unknown name
    fails before any seed runs rather than here, mid-seed.
    """
    if plant is not None:
        from repro.testing.faults import apply_metric_fault

        return apply_metric_fault(plant, compilation)
    if metric_name == "compiler":
        return compilation.metric
    if metric_name == "uniform":
        return StackMetric.uniform(compilation.frame_sizes, 8)
    if metric_name == "zero":
        return StackMetric.zero()
    raise ValueError(f"unknown metric {metric_name!r}")


def _tick(timings: dict, key: str, start: float) -> float:
    now = time.perf_counter()
    timings[key] = timings.get(key, 0.0) + (now - start)
    return now


def check_seed(seed: int,
               gen_kwargs: Optional[dict] = None,
               ablations: Optional[list[str]] = None,
               metric_name: str = "compiler",
               plant: Optional[str] = None,
               probes: bool = True,
               deep: bool = False,
               source: Optional[str] = None) -> SeedVerdict:
    """Run the oracle hierarchy for one seed; never raises on violations.

    ``source`` overrides generation (used when re-checking a shrunk
    repro); otherwise the program is generated from ``seed`` and
    ``gen_kwargs``.  The first violated oracle aborts the seed.
    """
    gen_kwargs = dict(gen_kwargs or {})
    names = list(ablations or ABLATIONS)
    verdict = SeedVerdict(seed=seed, ok=True, gen_kwargs=gen_kwargs)
    try:
        _check_seed(verdict, names, metric_name, plant, probes, deep, source)
    except OracleViolation as violation:
        verdict.ok = False
        verdict.oracle = violation.oracle
        verdict.ablation = violation.ablation
        verdict.detail = violation.detail
    except ReproError as error:
        # Any other library error surfacing on a well-formed generated
        # program is itself a finding.
        verdict.ok = False
        verdict.oracle = "internal-error"
        verdict.ablation = "-"
        verdict.detail = f"{type(error).__name__}: {error}"
    return verdict


def _check_seed(verdict: SeedVerdict, names: list[str], metric_name: str,
                plant: Optional[str], probes: bool, deep: bool,
                source: Optional[str]) -> None:
    seed = verdict.seed
    timings = verdict.timings

    start = time.perf_counter()
    if source is None:
        source = generate_program(seed, **verdict.gen_kwargs)
    verdict.source = source
    start = _tick(timings, "generate", start)

    # The frontend depends only on the source, so parse/typecheck/Clight
    # run once and every ablation shares the result through the backend.
    try:
        clight = compile_frontend(source, filename=f"seed{seed}.c")
    except ReproError as error:
        raise OracleViolation("compile", names[0],
                              f"{type(error).__name__}: {error}")
    compilations: dict[str, Compilation] = {}
    for name in names:
        try:
            compilations[name] = compile_clight(clight,
                                                options=ABLATIONS[name])
        except ReproError as error:
            raise OracleViolation("compile", name,
                                  f"{type(error).__name__}: {error}")
    start = _tick(timings, "compile", start)

    # One Clight execution serves every ablation point: the front end does
    # not depend on the backend pass configuration.  Running through the
    # streaming entry point also yields the step count, which sizes the
    # deep mode's engine choice below.
    first = compilations[names[0]]
    clight_output: list = []
    clight_trace: list = []
    clight_outcome = stream_clight(first.clight, clight_trace.append,
                                   fuel=CLIGHT_FUEL, output=clight_output)
    b_clight = clight_outcome.to_behavior(clight_trace)
    if not isinstance(b_clight, Converges):
        raise OracleViolation("generator-safety", names[0],
                              f"Clight behavior: {type(b_clight).__name__} "
                              f"({getattr(b_clight, 'reason', '')})")
    # A converged execution must close every frame it opens, so the
    # stricter require_empty form applies (a dropped trailing ret(f)
    # passes plain nesting — every prefix of a bracketed trace is
    # bracketed — but not this).
    if not is_well_bracketed(b_clight.trace, require_empty=True):
        raise OracleViolation("generator-safety", names[0],
                              "Clight trace is not well bracketed")
    verdict.events = len(b_clight.trace)
    start = _tick(timings, "clight", start)

    # Since the ranking-function inference landed, recursion-enabled
    # seeds analyze too (with parametric specs); main's bound is always
    # ground because the call plans instantiate every spec parameter.
    analysis = StackAnalyzer(first.clight).analyze()
    start = _tick(timings, "analyze", start)

    deep_decoded = clight_outcome.steps >= DEEP_DECODE_MIN_STEPS
    for index, name in enumerate(names):
        with obs.span("campaign.ablation", ablation=name):
            _check_ablation(verdict, name, compilations[name], b_clight,
                            clight_output, analysis, metric_name, plant,
                            probes=probes and index == 0, deep=deep,
                            deep_decoded=deep_decoded)
        verdict.configs_checked += 1

    start = time.perf_counter()
    report = analysis.check()
    # Sampled side conditions are legitimate exactly when the analysis
    # carries verification domains (inferred recursive specs check their
    # induction step per domain instance); otherwise exactness required.
    if not report.fully_exact and not analysis.param_domains:
        raise OracleViolation("derivation-check", names[0],
                              f"re-check not exact: {report!r}")
    _tick(timings, "derivation", start)


def _check_ablation(verdict: SeedVerdict, name: str, compilation: Compilation,
                    b_clight, clight_output: list, analysis,
                    metric_name: str, plant: Optional[str],
                    probes: bool, deep: bool,
                    deep_decoded: bool = True) -> None:
    timings = verdict.timings

    start = time.perf_counter()
    asm_output: list = []
    b_asm, machine = compilation.run(output=asm_output, fuel=ASM_FUEL)
    start = _tick(timings, "asm", start)

    # -- trace/output equality (classic refinement) --------------------------
    try:
        check_refinement(b_asm, b_clight)
    except RefinementFailure as failure:
        raise OracleViolation("trace-equality", name, str(failure))
    if asm_output != clight_output:
        raise OracleViolation("trace-equality", name,
                              f"outputs differ: asm {asm_output[:8]!r} "
                              f"vs clight {clight_output[:8]!r}")

    # -- weight monotonicity on the machine ----------------------------------
    # ASMsz has no memory events; its stack consumption is the observable.
    # For the compiler metric, each open call contributes SF(f) + 4 to the
    # Clight trace weight while the machine charges SF(f) plus a 4-byte
    # return address — except main's, which is pushed above the baseline.
    compiler_weight = weight_of_trace(compilation.metric, b_clight.trace)
    if machine.measured_stack_usage > compiler_weight - 4:
        raise OracleViolation(
            "weight-monotonicity", name,
            f"ESP high-water mark {machine.measured_stack_usage} exceeds "
            f"W_M(clight) - 4 = {compiler_weight - 4}")
    start = _tick(timings, "refinement", start)

    # -- deep mode: interpret the intermediate levels ------------------------
    # The RTL and Mach runs stream their events into incremental
    # comparators (one pass, no materialized trace): the pruned-trace
    # refinement, the exact memory-event equality and the trace weight
    # are all folded as the interpreter emits.  Only a violation — the
    # rare path — re-runs the level with a collected trace so the
    # verdict detail stays byte-identical to the materialized checks.
    if deep:
        from repro.events.stream import ExactMatcher, PrunedMatcher, Tee
        from repro.events.trace import WeightFold, prune
        from repro.mach.semantics import run_streamed as stream_mach
        from repro.rtl.semantics import run_streamed as stream_rtl

        # Deep mode always folds with the *clean* metric: a planted
        # metric bug corrupts source and target weights identically, so
        # it cancels in the cross-level monotonicity comparison — the
        # plant is only observable where a weight meets the machine or
        # the analyzer's bound (the bound-soundness oracle below).
        metric = metric_for(compilation, metric_name, plant=None)
        source_trace = b_clight.trace
        source_pruned = prune(source_trace)
        source_weight = weight_of_trace(metric, source_trace)
        exact_wanted = not compilation.options.tailcall
        need_collect = (compilation.options.tailcall
                        and len(source_trace) <= ALL_METRICS_TRACE_CAP)
        for level, stream, program in (("rtl", stream_rtl, compilation.rtl),
                                       ("mach", stream_mach,
                                        compilation.mach)):
            pruned = PrunedMatcher(source_pruned)
            fold = WeightFold(metric)
            consumers = [pruned, fold]
            exact = None
            if exact_wanted:
                exact = ExactMatcher(source_trace)
                consumers.append(exact)
            collected: list = []
            if need_collect:
                consumers.append(collected.append)
            outcome = stream(program, Tee(*consumers), fuel=INTERP_FUEL,
                             engine=None if deep_decoded else "legacy")
            refinement_ok = (outcome.converged and pruned.matched()
                             and outcome.return_code == b_clight.return_code)
            if not refinement_ok:
                trace: list = []
                behavior = stream(program, trace.append, fuel=INTERP_FUEL,
                                  engine=None if deep_decoded
                                  else "legacy").to_behavior(trace)
                try:
                    check_refinement(behavior, b_clight)
                except RefinementFailure as failure:
                    raise OracleViolation("trace-equality", f"{name}/{level}",
                                          str(failure))
            if fold.peak > source_weight:
                raise OracleViolation(
                    "weight-monotonicity", f"{name}/{level}",
                    "trace weight increased under the oracle metric")
            if exact is not None:
                if not exact.matched():
                    raise OracleViolation(
                        "trace-equality", f"{name}/{level}",
                        "memory-event traces differ without the tail-call "
                        "pass enabled")
            elif need_collect and \
                    not dominates_for_all_metrics(collected, source_trace):
                raise OracleViolation(
                    "weight-monotonicity", f"{name}/{level}",
                    "trace not pointwise dominated (all-metrics "
                    "refinement fails)")
        start = _tick(timings, "deep", start)

    if analysis is None:
        return

    # -- bound soundness ------------------------------------------------------
    # Here the plant *is* applied: the corrupted metric prices the bound
    # the analyzer reports, and the byte comparison against the machine's
    # high-water mark below is what must expose it.
    oracle_metric = metric_for(compilation, metric_name, plant)
    bound = analysis.bound_bytes("main", oracle_metric)
    observed = weight_of_trace(oracle_metric, b_clight.trace)
    if observed > bound:
        raise OracleViolation(
            "bound-soundness", name,
            f"observed trace weight {observed} exceeds the verified "
            f"bound {bound}")
    if plant is None:
        # Byte comparisons against the machine are only meaningful under
        # the compiler's own metric (not uniform/zero study metrics).
        byte_bound = analysis.bound_bytes("main", compilation.metric)
    else:
        # A planted metric bug must reach the byte comparison to be caught.
        byte_bound = bound
    if machine.measured_stack_usage > byte_bound - 4:
        raise OracleViolation(
            "bound-soundness", name,
            f"measured high-water mark {machine.measured_stack_usage} "
            f"exceeds bound - 4 = {byte_bound - 4}")
    start = _tick(timings, "bound", start)

    # -- bound tightness probes (Theorem 1 on the finite-stack machine) ------
    if probes:
        from repro.measure.monitor import probe_bound_tightness

        probe = probe_bound_tightness(compilation, byte_bound, fuel=ASM_FUEL)
        if not probe.sound:
            raise OracleViolation(
                "bound-tightness", name,
                f"bound-sized stack ({byte_bound} + 4 bytes): "
                f"{probe.at_bound!r}")
        if not probe.overflow_detected:
            raise OracleViolation(
                "bound-tightness", name,
                "underprovisioned stack (4 bytes under the measured "
                f"requirement of {probe.at_bound.measured_bytes + 4}) "
                "did not overflow")
        _tick(timings, "probes", start)
