"""Resource metrics over events (paper §3.1).

A *stack metric* ``M : E -> Z`` satisfies, for every internal function
``f`` and every external function ``g``::

    0 <= M(call f) = -M(ret f)      and      M(g(v |-> v)) = 0

so the valuation of a trace prefix is exactly the summed frame sizes of the
functions currently on the call stack.  The compiler produces the concrete
metric ``M(f) = SF(f) + 4`` from the Mach stack-frame map ``SF`` (the +4
accounts for the return address pushed by the call instruction).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.events.trace import CallEvent, Event, IOEvent, ReturnEvent


class StackMetric:
    """A stack metric given by a per-function frame cost in bytes."""

    def __init__(self, costs: Mapping[str, int], default: int | None = None) -> None:
        """``costs`` maps internal function names to non-negative byte costs.

        If ``default`` is given, unknown functions cost ``default`` bytes;
        otherwise pricing an unknown function raises ``KeyError`` (which is
        the right behavior for a compiler-produced metric: every internal
        function of the program has a frame).
        """
        for name, cost in costs.items():
            if cost < 0:
                raise ValueError(f"negative stack cost {cost} for {name!r}")
        if default is not None and default < 0:
            raise ValueError(f"negative default stack cost {default}")
        self._costs = dict(costs)
        self._default = default

    def cost(self, function: str) -> int:
        """The byte cost of entering ``function``."""
        if function in self._costs:
            return self._costs[function]
        if self._default is not None:
            return self._default
        raise KeyError(f"no stack cost for function {function!r}")

    def __call__(self, event: Event) -> int:
        if isinstance(event, CallEvent):
            return self.cost(event.function)
        if isinstance(event, ReturnEvent):
            return -self.cost(event.function)
        if isinstance(event, IOEvent):
            return 0
        raise TypeError(f"not an event: {event!r}")

    def __getitem__(self, function: str) -> int:
        return self.cost(function)

    def __contains__(self, function: str) -> bool:
        return function in self._costs

    def functions(self) -> Iterable[str]:
        return self._costs.keys()

    def as_dict(self) -> dict[str, int]:
        return dict(self._costs)

    def __repr__(self) -> str:
        items = ", ".join(f"{k}={v}" for k, v in sorted(self._costs.items()))
        return f"StackMetric({items})"

    # -- constructors --------------------------------------------------------

    @classmethod
    def uniform(cls, functions: Iterable[str], cost: int) -> "StackMetric":
        """Every listed function costs ``cost`` bytes (handy in tests)."""
        return cls({name: cost for name in functions})

    @classmethod
    def zero(cls) -> "StackMetric":
        """The zero metric: weights collapse to 0 for every trace."""
        return cls({}, default=0)
