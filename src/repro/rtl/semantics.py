"""An RTL interpreter emitting the same event traces as Clight.

Used by the differential test-suite to check quantitative refinement of
the Cminor → RTL pass and of the RTL-level optimizations: same pruned
traces, identical call/ret memory events.
"""

from __future__ import annotations

from typing import Optional

from repro import engines, obs, ops
from repro.errors import DynamicError, MemoryError_, UndefinedBehaviorError
from repro.events.stream import Consumer, CountingSink, StreamOutcome
from repro.events.trace import (Behavior, CallEvent, Converges, Diverges,
                                Event, GoesWrong, ReturnEvent)
from repro.memory import Memory
from repro.memory.values import VFloat, VInt, VPtr, VUndef, Value
from repro.rtl import ast as rtl
from repro.runtime import call_external

DEFAULT_FUEL = 5_000_000

#: Engine selector: the pre-decoded threaded-code interpreter in
#: :mod:`repro.rtl.decode` by default; ``decoded=False`` re-runs on the
#: legacy step loop below (kept as the differential oracle).
DEFAULT_DECODED = True

#: Tier used when decoding is enabled at all: ``"codegen"`` (the
#: per-program specialized driver) or ``"decoded"``.  Per-call
#: ``engine=`` arguments override; ``DEFAULT_DECODED = False`` still
#: forces the legacy loop everywhere (the old kill switch).
DEFAULT_ENGINE = "codegen"


class _Activation:
    __slots__ = ("function", "pc", "regs", "frame", "dest")

    def __init__(self, function: rtl.RTLFunction, pc: int,
                 regs: dict[int, Value], frame: Optional[VPtr],
                 dest: Optional[int]) -> None:
        self.function = function
        self.pc = pc
        self.regs = regs
        self.frame = frame
        self.dest = dest  # where the *caller* wants the result


class RTLMachine:
    def __init__(self, program: rtl.RTLProgram,
                 output: Optional[list] = None) -> None:
        self.program = program
        self.memory = Memory()
        self.globals: dict[str, VPtr] = {}
        for var in program.globals:
            ptr = self.memory.alloc(var.size, tag=f"global {var.name}")
            self.memory.store_bytes(ptr, var.image)
            self.globals[var.name] = ptr
        self.stack: list[_Activation] = []
        self.output = output
        self.done = False
        self.return_code: Optional[int] = None

    # -- helpers ---------------------------------------------------------------

    def _enter(self, function: rtl.RTLFunction, args: list[Value],
               dest: Optional[int]) -> Event:
        if len(args) != len(function.params):
            raise UndefinedBehaviorError(
                f"{function.name}: arity mismatch")
        regs: dict[int, Value] = {}
        for reg, value in zip(function.params, args):
            regs[reg] = value
        frame = None
        if function.stacksize > 0:
            frame = self.memory.alloc(function.stacksize,
                                      tag=f"frame {function.name}")
        self.stack.append(_Activation(function, function.entry, regs, frame,
                                      dest))
        return CallEvent(function.name)

    def _reg(self, regs: dict[int, Value], reg: int) -> Value:
        return regs.get(reg, VUndef())

    def _eval_op(self, act: _Activation, op: tuple, args: list[Value]) -> Value:
        kind = op[0]
        if kind == "const":
            return VInt(op[1])
        if kind == "constf":
            return VFloat(op[1])
        if kind == "move":
            return args[0]
        if kind == "addrglobal":
            try:
                return self.globals[op[1]]
            except KeyError:
                raise UndefinedBehaviorError(f"unknown global {op[1]!r}") from None
        if kind == "addrstack":
            if act.frame is None:
                raise UndefinedBehaviorError(
                    f"{act.function.name}: addrstack without a frame")
            return act.frame.add(op[1])
        if kind == "unop":
            return ops.eval_unop(op[1], args[0])
        if kind == "binop":
            return ops.eval_binop(op[1], args[0], args[1])
        raise DynamicError(f"unknown RTL operation {op!r}")

    # -- one step ----------------------------------------------------------------

    def step(self) -> Optional[Event]:
        act = self.stack[-1]
        instr = act.function.graph.get(act.pc)
        if instr is None:
            raise DynamicError(f"{act.function.name}: no instruction at "
                               f"node {act.pc}")
        if isinstance(instr, rtl.Inop):
            act.pc = instr.succ
            return None
        if isinstance(instr, rtl.Iop):
            args = [self._reg(act.regs, r) for r in instr.args]
            act.regs[instr.dest] = self._eval_op(act, instr.op, args)
            act.pc = instr.succ
            return None
        if isinstance(instr, rtl.Iload):
            addr = self._reg(act.regs, instr.addr)
            if not isinstance(addr, VPtr):
                raise MemoryError_(f"load through non-pointer {addr!r}")
            act.regs[instr.dest] = self.memory.load(instr.chunk, addr)
            act.pc = instr.succ
            return None
        if isinstance(instr, rtl.Istore):
            addr = self._reg(act.regs, instr.addr)
            if not isinstance(addr, VPtr):
                raise MemoryError_(f"store through non-pointer {addr!r}")
            value = self._reg(act.regs, instr.src)
            self.memory.store(instr.chunk, addr, instr.chunk.normalize(value))
            act.pc = instr.succ
            return None
        if isinstance(instr, rtl.Icond):
            value = self._reg(act.regs, instr.arg)
            act.pc = instr.ifso if value.is_true() else instr.ifnot
            return None
        if isinstance(instr, rtl.Icall):
            args = [self._reg(act.regs, r) for r in instr.args]
            act.pc = instr.succ
            if self.program.is_internal(instr.callee):
                callee = self.program.functions[instr.callee]
                return self._enter(callee, args, instr.dest)
            result, event = call_external(
                instr.callee, args,
                alloc=lambda size: self.memory.alloc(size, tag="malloc"),
                output=self.output)
            if instr.dest is not None:
                act.regs[instr.dest] = result
            return event
        if isinstance(instr, rtl.Ireturn):
            value = self._reg(act.regs, instr.arg) if instr.arg is not None \
                else None
            return self._return(value)
        raise DynamicError(f"unknown instruction {instr!r}")

    def _return(self, value: Optional[Value]) -> Event:
        act = self.stack.pop()
        if act.frame is not None:
            self.memory.free(act.frame)
        event = ReturnEvent(act.function.name)
        if not self.stack:
            self.done = True
            if value is None:
                value = VInt(0)
            self.return_code = value.signed if isinstance(value, VInt) else 0
            return event
        caller = self.stack[-1]
        if act.dest is not None:
            caller.regs[act.dest] = value if value is not None else VUndef()
        return event


def run_streamed(program: rtl.RTLProgram, sink: Consumer,
                 fuel: int = DEFAULT_FUEL, output: Optional[list] = None,
                 decoded: Optional[bool] = None,
                 engine: Optional[str] = None) -> StreamOutcome:
    """Run ``program``, pushing every event into ``sink`` as emitted.

    ``decoded`` selects the engine (None = :data:`DEFAULT_DECODED`);
    both engines produce the same events, outcome classification and
    step counts by construction.  Note the legacy RTL loop treats
    ``FuelExhaustedError`` like any other ``DynamicError`` (it has no
    Clight-style special case); both engines preserve that.
    """
    engine = engines.resolve(DEFAULT_DECODED, DEFAULT_ENGINE,
                             decoded, engine)
    if obs.enabled:
        # Wrapped at the entry point only — the step loops stay untouched.
        with obs.span("exec.rtl", engine=engine) as sp:
            outcome = _run_streamed(program, sink, fuel, output, engine)
        sp.set(kind=outcome.kind, steps=outcome.steps,
               events=outcome.events)
        obs.add("interp.rtl.steps", outcome.steps)
        obs.add("interp.rtl.seconds", sp.dur)
        obs.add("interp.rtl.runs")
        if engine == "codegen":
            obs.add("interp.codegen.steps", outcome.steps)
            obs.add("interp.codegen.seconds", sp.dur)
            obs.add("interp.codegen.runs")
        return outcome
    return _run_streamed(program, sink, fuel, output, engine)


def _run_streamed(program: rtl.RTLProgram, sink: Consumer, fuel: int,
                  output: Optional[list], engine: str) -> StreamOutcome:
    if engine == "codegen":
        from repro.rtl import codegen
        return codegen.run_streamed(program, sink, fuel, output=output)
    if engine == "decoded":
        from repro.rtl import decode
        return decode.run_streamed(program, sink, fuel, output=output)
    counting = CountingSink(sink)
    machine = RTLMachine(program, output=output)
    main = program.functions.get(program.main)
    if main is None:
        return StreamOutcome(StreamOutcome.GOES_WRONG,
                             reason="no main function")
    i = 0
    try:
        counting(machine._enter(main, [], None))
        for i in range(fuel):
            if machine.done:
                break
            event = machine.step()
            if event is not None:
                counting(event)
        else:
            return StreamOutcome(StreamOutcome.DIVERGES,
                                 events=counting.count, steps=fuel)
    except DynamicError as exc:
        return StreamOutcome(StreamOutcome.GOES_WRONG, reason=str(exc),
                             events=counting.count, steps=i)
    if not machine.done:
        return StreamOutcome(StreamOutcome.DIVERGES,
                             events=counting.count, steps=i)
    assert machine.return_code is not None
    return StreamOutcome(StreamOutcome.CONVERGES,
                         return_code=machine.return_code,
                         events=counting.count, steps=i)


def run_program(program: rtl.RTLProgram, fuel: int = DEFAULT_FUEL,
                output: Optional[list] = None,
                decoded: Optional[bool] = None,
                engine: Optional[str] = None) -> Behavior:
    trace: list[Event] = []
    outcome = run_streamed(program, trace.append, fuel, output=output,
                           decoded=decoded, engine=engine)
    return outcome.to_behavior(trace)
