"""Access to the packaged benchmark C sources."""

from __future__ import annotations

from pathlib import Path

_ROOT = Path(__file__).parent


def program_path(relative: str) -> Path:
    """Absolute path of a packaged program, e.g. ``mibench/dijkstra.c``."""
    path = _ROOT / relative
    if not path.exists():
        raise FileNotFoundError(f"no packaged program {relative!r}")
    return path


def load_source(relative: str) -> str:
    """The text of a packaged program."""
    return program_path(relative).read_text()


def all_programs() -> list[str]:
    """Relative paths of every packaged ``.c`` source."""
    return sorted(str(p.relative_to(_ROOT))
                  for p in _ROOT.rglob("*.c"))
