"""Parallel differential-testing campaign engine.

``run_campaign`` fans generated seeds over a ``multiprocessing`` pool;
each worker runs the full oracle hierarchy of ``repro.testing.oracles``
for its seed.  Failing seeds are shrunk to minimal generator parameters
and written out as standalone ``.c`` reproducers; every seed contributes
one JSONL record (verdict, timings, throughput inputs) to the campaign
report.  A content-hash corpus cache skips seeds whose exact source was
already verified under the same oracle configuration, so warm re-runs
cost one generation plus one hash per seed.

The CLI front end is ``python -m repro fuzz``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from multiprocessing import Pool
from typing import Optional

from repro import obs
from repro.obs.metrics import empty_snapshot, merge_snapshots
from repro.testing.faults import validate_plant
from repro.testing.oracles import (ABLATIONS, ORACLE_VERSION, SeedVerdict,
                                   check_seed)
from repro.testing.progen import generate_program
from repro.testing.shrink import ShrinkResult, shrink_failure

DEFAULT_CACHE_DIR = os.path.join(".repro-cache", "corpus")


@dataclass
class CampaignConfig:
    """Everything one campaign run needs (picklable: workers receive it)."""

    seeds: int = 50                 #: number of seeds to check
    start: int = 0                  #: first seed (campaign = [start, start+seeds))
    jobs: int = 1                   #: worker processes (1 = in-process, no pool)
    metric: str = "compiler"        #: oracle metric (compiler | uniform | zero)
    plant: Optional[str] = None     #: metric-layer fault name (faults registry)
    gen_kwargs: dict = field(default_factory=dict)
    ablations: Optional[list[str]] = None   #: None = all of oracles.ABLATIONS
    probes: bool = True             #: bound-tightness stack probes
    deep: bool = False              #: interpret RTL/Mach levels too
    shrink: bool = True             #: minimize failing seeds
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR   #: None disables the cache
    report_path: Optional[str] = None              #: JSONL campaign report
    repro_dir: Optional[str] = None                #: minimized .c reproducers
    time_budget: Optional[float] = None            #: wall-clock cap, seconds
    obs: bool = False               #: per-seed spans + worker metric deltas
    status_interval: Optional[float] = None        #: progress-line period, s
    bounds_backend: Optional[str] = None           #: fm | z3 | cross

    def cache_key(self, source: str) -> str:
        """Content hash identifying (source, oracle configuration)."""
        tag = json.dumps({
            "v": ORACLE_VERSION, "metric": self.metric, "plant": self.plant,
            "ablations": sorted(self.ablations or ABLATIONS),
            "probes": self.probes, "deep": self.deep,
            "backend": self.bounds_backend or "fm",
        }, sort_keys=True)
        return hashlib.sha256((tag + "\0" + source).encode()).hexdigest()


@dataclass
class CampaignReport:
    """Aggregate result of a campaign run."""

    config: CampaignConfig
    verdicts: list[SeedVerdict]
    shrunk: dict[int, ShrinkResult]
    elapsed: float
    repro_files: dict[int, str]
    #: Campaign-wide metrics snapshot (parent + merged worker deltas);
    #: only populated when the campaign ran with ``config.obs``.
    metrics: Optional[dict] = None

    @property
    def failures(self) -> list[SeedVerdict]:
        return [v for v in self.verdicts if not v.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for v in self.verdicts if v.cached)

    @property
    def throughput(self) -> float:
        """Seeds checked per second of wall clock."""
        return len(self.verdicts) / self.elapsed if self.elapsed else 0.0

    def stage_seconds(self) -> dict[str, float]:
        """Cumulative per-stage worker time across all seeds."""
        total: dict[str, float] = {}
        for verdict in self.verdicts:
            for key, value in verdict.timings.items():
                total[key] = total.get(key, 0.0) + value
        return total

    def summary(self) -> dict:
        record = {
            "seeds": len(self.verdicts),
            "failures": len(self.failures),
            "cache_hits": self.cache_hits,
            "elapsed_s": round(self.elapsed, 3),
            "seeds_per_s": round(self.throughput, 2),
            "stage_seconds": {k: round(v, 3)
                              for k, v in sorted(self.stage_seconds().items())},
        }
        if self.failures:
            record["failing_seeds"] = [
                {"seed": v.seed, "oracle": v.oracle, "ablation": v.ablation,
                 "repro": self.repro_files.get(v.seed)}
                for v in self.failures]
        return record


def pool_warmup() -> None:
    """Pool initializer: pay the import/compile cold start once per worker.

    Importing the whole toolchain and compiling a trivial program in the
    initializer keeps the first real seed of every worker from absorbing
    module import time and the ``compile_frontend`` cache's cold miss.
    Shared with the serving pool (``repro.serve.pool``): a daemon worker
    has exactly the same cold start as a campaign worker.
    """
    try:
        import repro.analyzer  # noqa: F401
        import repro.asm.decode  # noqa: F401
        from repro.driver import compile_c

        compile_c("int main(void) { return 0; }", filename="<warmup>")
    except Exception:
        pass  # never let warm-up kill a worker; the seeds still run


_pool_warmup = pool_warmup  # the historical private name, kept callable


def chunksize_for(n_work: int, jobs: int) -> int:
    """Seeds per IPC round-trip for an ``imap_unordered`` campaign.

    Aim for ~4 chunks per worker over the whole campaign: big enough to
    amortize dispatch overhead on large workloads, small enough that the
    tail stays balanced (seed costs vary widely) and a time-budget
    ``terminate()`` does not strand a long chunk.  Floor of 1 for
    workloads smaller than the worker count.
    """
    return max(1, n_work // (4 * max(1, jobs)))


def _status_line(done: int, total: int, cached: int, failed: int,
                 elapsed: float) -> str:
    """One-line campaign progress summary with throughput and ETA."""
    rate = done / elapsed if elapsed > 0 else 0.0
    if rate > 0 and done < total:
        eta = (total - done) / rate
        eta_text = f"eta {eta:.0f}s"
    else:
        eta_text = "eta --"
    return (f"[fuzz] {done}/{total} seeds  ok {done - failed}  "
            f"fail {failed}  cached {cached}  "
            f"{rate:.1f} seeds/s  {eta_text}")


def _check_one(payload: tuple[int, CampaignConfig]) -> SeedVerdict:
    """Pool worker: cache lookup, then the full oracle hierarchy.

    With ``config.obs`` the seed runs instrumented: one ``campaign.seed``
    span (children: compile passes, interpreter runs, checker calls), a
    per-seed metrics *delta* and a worker heartbeat gauge.  Delta and
    spans ride back to the parent on the verdict
    (``obs_metrics``/``obs_spans``), which merges them — the
    multiprocessing pool aggregates without shared memory.
    """
    seed, config = payload
    if not config.obs:
        return _check_one_plain(seed, config)
    obs.enable()
    # Discard anything inherited through fork() or left by pool warm-up
    # so the attached snapshot is exactly this seed's delta.
    obs.drain_metrics()
    obs.drain_spans()
    with obs.span("campaign.seed", seed=seed) as span:
        verdict = _check_one_plain(seed, config)
        span.set(ok=verdict.ok, cached=verdict.cached,
                 events=verdict.events)
        if not verdict.ok:
            span.set(oracle=verdict.oracle, ablation=verdict.ablation)
    obs.observe("campaign.seed_seconds", span.dur)
    pid = os.getpid()
    obs.set_gauge(f"campaign.worker.{pid}.heartbeat", time.time())
    obs.add(f"campaign.worker.{pid}.seeds")
    verdict.obs_metrics = obs.drain_metrics()
    verdict.obs_spans = obs.drain_spans()
    return verdict


def _check_one_plain(seed: int, config: CampaignConfig) -> SeedVerdict:
    if config.bounds_backend is not None:
        # Applied per seed rather than in the pool initializer: the config
        # travels with the work item, so fork/spawn workers both honor it.
        from repro.logic.bexpr import set_default_backend
        set_default_backend(config.bounds_backend)
    source = generate_program(seed, **config.gen_kwargs)
    cache_file = None
    if config.cache_dir is not None:
        cache_file = os.path.join(config.cache_dir,
                                  config.cache_key(source) + ".ok")
        if os.path.exists(cache_file):
            return SeedVerdict(seed=seed, ok=True, cached=True,
                               gen_kwargs=dict(config.gen_kwargs))
    verdict = check_seed(seed, gen_kwargs=config.gen_kwargs,
                         ablations=config.ablations,
                         metric_name=config.metric, plant=config.plant,
                         probes=config.probes, deep=config.deep,
                         source=source)
    if verdict.ok:
        # Only verified seeds enter the corpus: failures must re-run so a
        # fixed oracle (bumping ORACLE_VERSION) re-judges them.
        if cache_file is not None:
            os.makedirs(config.cache_dir, exist_ok=True)
            tmp = cache_file + f".tmp{os.getpid()}"
            with open(tmp, "w") as handle:
                json.dump({"seed": seed, "events": verdict.events}, handle)
            os.replace(tmp, cache_file)
        verdict.source = None    # keep pool pickles small
    return verdict


def run_campaign(config: CampaignConfig,
                 progress=None, status=None) -> CampaignReport:
    """Run one campaign; returns the aggregate report.

    ``progress`` is an optional callable invoked with each
    ``SeedVerdict`` as it arrives (out of order under a pool).
    ``status`` is an optional callable receiving periodic one-line
    progress summaries (done/total, verdict counts, throughput, ETA)
    every ``config.status_interval`` seconds.
    """
    # A typo'd plant must fail here, before any worker runs a seed.
    validate_plant(config.plant)
    if config.obs:
        obs.enable()
    started = time.perf_counter()
    work = [(seed, config)
            for seed in range(config.start, config.start + config.seeds)]
    verdicts: list[SeedVerdict] = []
    # Worker observability payloads accumulate off-registry: the
    # in-process (jobs=1) worker path drains the shared registry per
    # seed, so parent-side state must not live there until the end.
    merged_metrics = empty_snapshot()
    adopted_spans: list[dict] = []
    failed = cached = 0
    last_status = started

    def deadline_hit() -> bool:
        return (config.time_budget is not None
                and time.perf_counter() - started > config.time_budget)

    def harvest(verdict: SeedVerdict) -> None:
        """Fold one verdict's telemetry into the parent-side aggregates."""
        nonlocal failed, cached, last_status
        if verdict.obs_metrics is not None:
            merge_snapshots(merged_metrics, verdict.obs_metrics)
            verdict.obs_metrics = None
        if verdict.obs_spans:
            adopted_spans.extend(verdict.obs_spans)
            verdict.obs_spans = None
        failed += 0 if verdict.ok else 1
        cached += 1 if verdict.cached else 0
        now = time.perf_counter()
        if (status is not None and config.status_interval is not None
                and now - last_status >= config.status_interval):
            last_status = now
            status(_status_line(len(verdicts), len(work), cached, failed,
                                now - started))

    if config.jobs <= 1:
        for payload in work:
            verdicts.append(_check_one(payload))
            harvest(verdicts[-1])
            if progress:
                progress(verdicts[-1])
            if deadline_hit():
                break
    else:
        chunksize = chunksize_for(len(work), config.jobs)
        with Pool(processes=config.jobs, initializer=_pool_warmup) as pool:
            for verdict in pool.imap_unordered(_check_one, work,
                                               chunksize=chunksize):
                verdicts.append(verdict)
                harvest(verdict)
                if progress:
                    progress(verdict)
                if deadline_hit():
                    pool.terminate()
                    break
    verdicts.sort(key=lambda v: v.seed)

    if config.obs:
        # Merge the pool-wide worker deltas back into the live registry
        # and count the parent-side campaign telemetry.
        obs.merge(merged_metrics)
        obs.adopt_spans(adopted_spans)
        obs.add("campaign.seeds", len(verdicts))
        obs.add("campaign.cache.hits", cached)
        obs.add("campaign.cache.misses", len(verdicts) - cached)
        for verdict in verdicts:
            if verdict.ok:
                obs.add("campaign.verdict.ok")
            else:
                obs.add("campaign.verdict.fail")
                obs.add(f"campaign.verdict.fail.{verdict.oracle}")

    shrunk: dict[int, ShrinkResult] = {}
    repro_files: dict[int, str] = {}
    for verdict in verdicts:
        if verdict.ok:
            continue
        if config.shrink and verdict.oracle != "internal-error":
            result = shrink_failure(verdict, metric_name=config.metric,
                                    plant=config.plant, deep=config.deep)
            shrunk[verdict.seed] = result
            obs.add("campaign.shrink.attempts", result.attempts)
            obs.add("campaign.shrink.minimized")
            source = result.source
            kwargs = result.gen_kwargs
        else:
            source = verdict.source or generate_program(
                verdict.seed, **verdict.gen_kwargs)
            kwargs = verdict.gen_kwargs
        if config.repro_dir is not None:
            os.makedirs(config.repro_dir, exist_ok=True)
            path = os.path.join(config.repro_dir,
                                f"seed{verdict.seed}_{verdict.oracle}.c")
            header = (f"/* seed {verdict.seed}; oracle {verdict.oracle}"
                      f"@{verdict.ablation}; gen_kwargs {kwargs!r}\n"
                      f"   {verdict.detail}\n"
                      f"   re-check: python -m repro bounds <this file> */\n")
            with open(path, "w") as handle:
                handle.write(header + source)
            repro_files[verdict.seed] = path
            # A differential failure implicating the codegen tier is
            # debugged from the exact Python it executed, so dump the
            # generated engine source next to the .c (CI uploads both).
            try:
                from repro.asm.codegen import codegen_source
                from repro.driver import compile_c

                compilation = compile_c(
                    source, filename=path,
                    options=ABLATIONS.get(verdict.ablation))
                generated = (f"# codegen-tier source for {path} "
                             f"(ablation {verdict.ablation!r})\n"
                             + codegen_source(compilation.asm))
                with open(path[:-2] + ".codegen.py", "w") as handle:
                    handle.write(generated)
            except Exception:
                pass   # reproducer may not compile; the .c is the artifact

    elapsed = time.perf_counter() - started
    if status is not None and config.status_interval is not None:
        status(_status_line(len(verdicts), len(work), cached, failed,
                            elapsed))
    report = CampaignReport(config=config, verdicts=verdicts, shrunk=shrunk,
                            elapsed=elapsed, repro_files=repro_files)
    if config.obs:
        report.metrics = obs.snapshot()
    if config.report_path is not None:
        report_dir = os.path.dirname(config.report_path)
        if report_dir:
            os.makedirs(report_dir, exist_ok=True)
        with open(config.report_path, "w") as handle:
            for verdict in verdicts:
                record = verdict.as_json()
                if verdict.seed in repro_files:
                    record["repro"] = repro_files[verdict.seed]
                handle.write(json.dumps(record) + "\n")
            handle.write(json.dumps({"summary": report.summary()}) + "\n")
    return report


def run_smoke_campaign(seeds: int = 12, jobs: int = 2,
                       time_budget: float = 60.0,
                       cache_dir: Optional[str] = None) -> CampaignReport:
    """The CI smoke entry: a small, time-boxed campaign (also used by the
    pytest self-test).  Uses a cold cache by default so CI always
    exercises the oracles."""
    config = CampaignConfig(seeds=seeds, jobs=jobs, cache_dir=cache_dir,
                            time_budget=time_budget)
    return run_campaign(config)
