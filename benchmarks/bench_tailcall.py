"""Benchmark for the tail-call extension (the paper's §3.3 deferred pass).

Quantitative CompCert in the paper disables CompCert's tail-call
recognition because it deletes call events; the companion TR sketches how
quantitative refinement licenses it (weights may only decrease).  This
bench exercises our implementation of the self-recursive case:

* the optimized executions are pointwise dominated by the baseline
  (checked with the all-metrics refinement condition);
* tail-recursive functions run in constant stack regardless of depth,
  while the source-level verified bound (computed before the pass)
  remains a sound — now conservative — upper bound.

    python benchmarks/bench_tailcall.py
    pytest benchmarks/bench_tailcall.py --benchmark-only
"""

import pytest

from repro.clight.semantics import run_program as run_clight
from repro.driver import CompilerOptions, compile_c
from repro.events.refinement import dominates_for_all_metrics
from repro.measure import measure_compilation
from repro.programs.loader import load_source
from repro.rtl.semantics import run_program as run_rtl

DEPTHS = [16, 64, 256, 1024]

TAIL_RECURSIVE = r"""
int count(int n, int acc) {
    if (n == 0) return acc;
    return count(n - 1, acc + 1);
}
int main() { return count(N, 0) == N; }
"""


def sweep(tailcall):
    options = CompilerOptions(tailcall=tailcall)
    rows = []
    for depth in DEPTHS:
        compilation = compile_c(TAIL_RECURSIVE, macros={"N": str(depth)},
                                options=options)
        run = measure_compilation(compilation, fuel=200_000_000)
        assert run.converged and run.return_code == 1
        rows.append((depth, run.measured_bytes))
    return rows


def refinement_check():
    compilation = compile_c(TAIL_RECURSIVE, macros={"N": "64"},
                            options=CompilerOptions(tailcall=True))
    baseline = run_clight(compilation.clight)
    optimized = run_rtl(compilation.rtl)
    assert dominates_for_all_metrics(optimized.trace, baseline.trace)
    return len(baseline.trace), len(optimized.trace)


def print_comparison(plain, optimized):
    print()
    print(f"{'depth':>7s}  {'plain stack':>12s}  {'tail-call stack':>16s}")
    for (depth, p), (_d, t) in zip(plain, optimized):
        print(f"{depth:7d}  {p:12d}  {t:16d}")


@pytest.mark.table
def test_tailcall_constant_stack(benchmark):
    optimized = benchmark.pedantic(sweep, args=(True,), rounds=1,
                                   iterations=1)
    plain = sweep(False)
    print_comparison(plain, optimized)
    # plain grows linearly, optimized is flat
    assert plain[-1][1] > plain[0][1]
    assert len({m for _d, m in optimized}) == 1


@pytest.mark.table
def test_tailcall_event_deletion_is_a_refinement(benchmark):
    before, after = benchmark.pedantic(refinement_check, rounds=1,
                                       iterations=1)
    assert after < before


if __name__ == "__main__":
    print_comparison(sweep(False), sweep(True))
    before, after = refinement_check()
    print(f"\ntrace events: {before} before, {after} after — pointwise "
          "dominated (quantitative refinement with event deletion).")
