"""Abstract syntax of the C subset, as produced by the parser.

Expression nodes carry a ``ty`` slot that the type checker fills in (and
uses to record implicit conversions via explicit :class:`Cast` nodes), so a
*typed* C AST is the same object graph with every ``ty`` populated.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.c.types import CType
from repro.errors import SourceLocation


class Node:
    __slots__ = ("loc",)

    def __init__(self, loc: Optional[SourceLocation]) -> None:
        self.loc = loc


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    __slots__ = ("ty",)

    def __init__(self, loc: Optional[SourceLocation]) -> None:
        super().__init__(loc)
        self.ty: Optional[CType] = None


class IntLit(Expr):
    __slots__ = ("value", "unsigned_suffix")

    def __init__(self, value: int, unsigned_suffix: bool = False,
                 loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.value = value
        self.unsigned_suffix = unsigned_suffix


class FloatLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: float, loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.value = value


class CharLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.value = value


class Name(Expr):
    """A variable reference; resolution happens during type checking."""

    __slots__ = ("ident", "binding")

    def __init__(self, ident: str, loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.ident = ident
        # "local" | "global" | "param" | "function" (a function used as a
        # value, i.e. a function-pointer constant)
        self.binding: Optional[str] = None


class Unary(Expr):
    """Operators: ``- + ~ ! & *`` (deref) and pre/post ``++``/``--``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.op = op
        self.operand = operand


class IncDec(Expr):
    """``++x``, ``--x``, ``x++``, ``x--`` (op in {"++", "--"})."""

    __slots__ = ("op", "operand", "is_prefix")

    def __init__(self, op: str, operand: Expr, is_prefix: bool,
                 loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.op = op
        self.operand = operand
        self.is_prefix = is_prefix


class Binary(Expr):
    """All binary operators except assignment and short-circuit logic."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr,
                 loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.op = op
        self.left = left
        self.right = right


class Logical(Expr):
    """Short-circuit ``&&`` / ``||``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr,
                 loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.op = op
        self.left = left
        self.right = right


class Conditional(Expr):
    """The ternary ``cond ? then : else``."""

    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond: Expr, then: Expr, otherwise: Expr,
                 loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class Assign(Expr):
    """``lhs op rhs`` where op is ``=`` or a compound assignment."""

    __slots__ = ("op", "target", "value")

    def __init__(self, op: str, target: Expr, value: Expr,
                 loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.op = op
        self.target = target
        self.value = value


class Call(Expr):
    """A call ``f(args)``.

    ``callee`` is a declared function name, or — after type checking, when
    ``indirect`` is set — the (unique) name of a function-pointer variable.
    For indirect calls the checker stores the resolved pointer read in
    ``callee_expr`` and its ``TFunction`` signature in ``signature``; the
    value analysis (:mod:`repro.analyzer.values`) later fills in
    ``fp_candidates`` with the possible target functions.
    """

    __slots__ = ("callee", "args", "indirect", "callee_expr", "signature",
                 "fp_candidates")

    def __init__(self, callee: str, args: Sequence[Expr],
                 loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.callee = callee
        self.args = list(args)
        self.indirect = False
        self.callee_expr: Optional[Expr] = None
        self.signature = None
        self.fp_candidates: Optional[list[str]] = None


class Index(Expr):
    """``base[index]``."""

    __slots__ = ("base", "index")

    def __init__(self, base: Expr, index: Expr,
                 loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.base = base
        self.index = index


class Member(Expr):
    """``base.field`` (``through_pointer=False``) or ``base->field``."""

    __slots__ = ("base", "field", "through_pointer")

    def __init__(self, base: Expr, field: str, through_pointer: bool,
                 loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.base = base
        self.field = field
        self.through_pointer = through_pointer


class Cast(Expr):
    __slots__ = ("target_type", "operand")

    def __init__(self, target_type: CType, operand: Expr,
                 loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.target_type = target_type
        self.operand = operand


class SizeOf(Expr):
    """``sizeof(type)`` or ``sizeof expr`` (folded by the type checker)."""

    __slots__ = ("arg_type", "arg_expr")

    def __init__(self, arg_type: Optional[CType], arg_expr: Optional[Expr],
                 loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.arg_type = arg_type
        self.arg_expr = arg_expr


class Comma(Expr):
    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr,
                 loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.left = left
        self.right = right


# ---------------------------------------------------------------------------
# Initializers
# ---------------------------------------------------------------------------


class Initializer(Node):
    __slots__ = ()


class InitScalar(Initializer):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr, loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.expr = expr


class InitList(Initializer):
    __slots__ = ("items",)

    def __init__(self, items: Sequence[Initializer],
                 loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.items = list(items)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    __slots__ = ()


class SExpr(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr, loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.expr = expr


class SDecl(Stmt):
    """A local declaration ``T name [= init];`` (one per statement)."""

    __slots__ = ("name", "ctype", "init")

    def __init__(self, name: str, ctype: CType, init: Optional[Initializer],
                 loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.name = name
        self.ctype = ctype
        self.init = init


class SBlock(Stmt):
    __slots__ = ("body",)

    def __init__(self, body: Sequence[Stmt], loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.body = list(body)


class SDeclGroup(Stmt):
    """Several declarations from one line (``int a, b = 1;``).

    Unlike :class:`SBlock` this does *not* open a scope: the declared
    names stay visible in the enclosing block.
    """

    __slots__ = ("decls",)

    def __init__(self, decls: Sequence["SDecl"],
                 loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.decls = list(decls)


class SIf(Stmt):
    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond: Expr, then: Stmt, otherwise: Optional[Stmt],
                 loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class SWhile(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: Stmt, loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.cond = cond
        self.body = body


class SDoWhile(Stmt):
    __slots__ = ("body", "cond")

    def __init__(self, body: Stmt, cond: Expr, loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.body = body
        self.cond = cond


class SFor(Stmt):
    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init: Optional[Stmt], cond: Optional[Expr],
                 step: Optional[Expr], body: Stmt,
                 loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class SSwitch(Stmt):
    """``switch``; each case is ``(value | None for default, stmts)``.

    The front end lowers switches into if-chains before Clight, matching
    the paper's logic-level subset.
    """

    __slots__ = ("scrutinee", "cases")

    def __init__(self, scrutinee: Expr,
                 cases: Sequence[tuple[Optional[int], Sequence[Stmt]]],
                 loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.scrutinee = scrutinee
        self.cases = [(value, list(stmts)) for value, stmts in cases]


class SBreak(Stmt):
    __slots__ = ()


class SContinue(Stmt):
    __slots__ = ()


class SReturn(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr], loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.value = value


class SSkip(Stmt):
    __slots__ = ()


# ---------------------------------------------------------------------------
# Declarations and programs
# ---------------------------------------------------------------------------


class ParamDecl:
    __slots__ = ("name", "ctype")

    def __init__(self, name: str, ctype: CType) -> None:
        self.name = name
        self.ctype = ctype


class FunctionDef(Node):
    # The trailing three slots are filled in by the type checker.
    __slots__ = ("name", "result", "params", "body",
                 "locals_types", "addressable", "param_copies")

    def __init__(self, name: str, result: CType, params: Sequence[ParamDecl],
                 body: SBlock, loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.name = name
        self.result = result
        self.params = list(params)
        self.body = body


class GlobalDecl(Node):
    __slots__ = ("name", "ctype", "init")

    def __init__(self, name: str, ctype: CType, init: Optional[Initializer],
                 loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.name = name
        self.ctype = ctype
        self.init = init


class ExternDecl(Node):
    """A declared-but-not-defined function (treated as external)."""

    __slots__ = ("name", "ftype")

    def __init__(self, name: str, ftype: CType, loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.name = name
        self.ftype = ftype


class Program(Node):
    __slots__ = ("globals", "functions", "externs", "structs")

    def __init__(self, globals_: Sequence[GlobalDecl],
                 functions: Sequence[FunctionDef],
                 externs: Sequence[ExternDecl],
                 structs: dict,
                 loc: Optional[SourceLocation] = None) -> None:
        super().__init__(loc)
        self.globals = list(globals_)
        self.functions = list(functions)
        self.externs = list(externs)
        self.structs = dict(structs)

    def function(self, name: str) -> FunctionDef:
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(name)
