"""Linear → Mach: frame construction and calling-convention expansion.

* The outgoing-argument area is sized by the largest internal call in the
  function (externals pass arguments in registers and use no stack).
* Calls expand into argument stores + ``MCall`` + a move of the result
  register into the destination location.
* Returns expand into a move into the result register + ``MReturn``.
* A parameter-loading prologue replaces the implicit binding of Linear.
"""

from __future__ import annotations

from repro.errors import LoweringError
from repro.linear import ast as lin
from repro.mach import ast as mach
from repro.regalloc.locations import (LFReg, LReg, RESULT_FLOAT, RESULT_INT,
                                      Loc)


def arg_offsets(arg_is_float: list[bool]) -> tuple[list[int], int]:
    """Byte offsets of each argument in the outgoing area, and the total."""
    offsets: list[int] = []
    offset = 0
    for is_float in arg_is_float:
        offsets.append(offset)
        offset += 8 if is_float else 4
    return offsets, offset


def mach_of_linear(program: lin.LinearProgram) -> mach.MachProgram:
    functions = {}
    for function in program.functions.values():
        functions[function.name] = _lower_function(function, program)
    return mach.MachProgram(program.globals, functions, program.externals,
                            program.main)


def _lower_function(function: lin.LinearFunction,
                    program: lin.LinearProgram) -> mach.MachFunction:
    out_size = 0
    for instr in function.body:
        if isinstance(instr, lin.Lcall) and program.is_internal(instr.callee):
            _offsets, total = arg_offsets(list(instr.arg_is_float))
            out_size = max(out_size, total)

    frame = mach.FrameInfo(out_size, function.int_slots, function.float_slots,
                           function.stacksize)
    body: list[mach.MInstr] = []

    # Prologue: load incoming parameters into their assigned locations.
    param_offsets, _total = arg_offsets(list(function.param_is_float))
    for loc, offset, is_float in zip(function.params, param_offsets,
                                     function.param_is_float):
        body.append(mach.MGetParam(offset, loc, is_float))

    for instr in function.body:
        body.extend(_lower_instr(instr, function, frame, program))

    return mach.MachFunction(function.name, body, frame,
                             function.returns_float)


def _result_reg(is_float: bool) -> Loc:
    return LFReg(RESULT_FLOAT) if is_float else LReg(RESULT_INT)


def _lower_instr(instr: lin.LInstr, function: lin.LinearFunction,
                 frame: mach.FrameInfo,
                 program: lin.LinearProgram) -> list[mach.MInstr]:
    if isinstance(instr, lin.Lop):
        op = instr.op
        if op[0] == "addrstack":
            # Locals now live above the outgoing area and the spills.
            op = ("addrstack", frame.locals_base + op[1])
        return [mach.MOp(op, instr.args, instr.dest)]
    if isinstance(instr, lin.Lload):
        return [mach.MLoad(instr.chunk, instr.addr, instr.dest)]
    if isinstance(instr, lin.Lstore):
        return [mach.MStore(instr.chunk, instr.addr, instr.src)]
    if isinstance(instr, lin.Lcall):
        return _lower_call(instr, program)
    if isinstance(instr, lin.Llabel):
        return [mach.MLabel(instr.label)]
    if isinstance(instr, lin.Lgoto):
        return [mach.MGoto(instr.label)]
    if isinstance(instr, lin.Lcond):
        return [mach.MCond(instr.arg, instr.label)]
    if isinstance(instr, lin.Lreturn):
        out: list[mach.MInstr] = []
        if instr.arg is not None:
            result = _result_reg(instr.is_float)
            if instr.arg != result:
                out.append(mach.MOp(("move",), [instr.arg], result))
        out.append(mach.MReturn())
        return out
    raise LoweringError(f"unknown Linear instruction {instr!r}")


def _lower_call(instr: lin.Lcall,
                program: lin.LinearProgram) -> list[mach.MInstr]:
    out: list[mach.MInstr] = []
    if program.is_internal(instr.callee):
        offsets, _total = arg_offsets(list(instr.arg_is_float))
        for src, offset, is_float in zip(instr.args, offsets,
                                         instr.arg_is_float):
            out.append(mach.MStoreArg(src, offset, is_float))
        out.append(mach.MCall(instr.callee))
        if instr.dest is not None:
            result = _result_reg(instr.dest_is_float)
            if instr.dest != result:
                out.append(mach.MOp(("move",), [result], instr.dest))
    else:
        out.append(mach.MExtCall(instr.callee, instr.args,
                                 instr.arg_is_float, instr.dest,
                                 instr.dest_is_float))
    return out
