"""Unit tests for the quantitative-logic derivation checker.

Each test hand-builds a derivation (the way a proof script would) and
checks that the checker accepts correct rule applications and rejects
broken ones — the executable analogue of Coq rejecting a bad proof term.
"""

import pytest

from repro.clight import ast as cl
from repro.errors import DerivationError
from repro.logic import derivation as dv
from repro.logic.assertions import FunContext, FunSpec, Post
from repro.logic.bexpr import (BFrameDiff, TOP, ZERO, badd, bconst, bmax,
                               bmetric)
from repro.logic.checker import CheckerContext, check_derivation
from repro.memory.chunks import Chunk


def ctx(gamma=None, externals=("print_int",)):
    return CheckerContext(gamma or FunContext(), externals=externals)


def uniform(bound, stmt):
    return dv.Triple(bound, stmt, Post.uniform(bound))


SKIP = cl.SSkip()


class TestAxioms:
    def test_skip_accepts(self):
        report = check_derivation(dv.DSkip(uniform(ZERO, SKIP)), ctx())
        assert report.nodes == 1

    def test_skip_with_budget(self):
        bound = badd(bmetric("f"), bconst(4))
        check_derivation(dv.DSkip(uniform(bound, SKIP)), ctx())

    def test_skip_wrong_post_rejected(self):
        triple = dv.Triple(bconst(4), SKIP, Post.uniform(bconst(8)))
        with pytest.raises(DerivationError):
            check_derivation(dv.DSkip(triple), ctx())

    def test_skip_on_wrong_statement_rejected(self):
        with pytest.raises(DerivationError):
            check_derivation(dv.DSkip(uniform(ZERO, cl.SBreak())), ctx())

    def test_break_checks_break_slot(self):
        stmt = cl.SBreak()
        good = dv.Triple(bconst(4), stmt,
                         Post(TOP, bconst(4), TOP, TOP))
        check_derivation(dv.DBreak(good), ctx())
        bad = dv.Triple(bconst(4), stmt, Post(bconst(4), TOP, TOP, TOP))
        with pytest.raises(DerivationError):
            check_derivation(dv.DBreak(bad), ctx())

    def test_return_checks_return_slot(self):
        stmt = cl.SReturn(None)
        good = dv.Triple(bconst(4), stmt, Post(TOP, TOP, bconst(4), TOP))
        check_derivation(dv.DReturn(good), ctx())

    def test_set_and_store_cost_nothing(self):
        set_stmt = cl.SSet("x", cl.EConstInt(1))
        check_derivation(dv.DSet(uniform(ZERO, set_stmt)), ctx())
        store = cl.SStore(Chunk.INT32, cl.EAddrGlobal("g"), cl.EConstInt(1))
        check_derivation(dv.DStore(uniform(ZERO, store)), ctx())


class TestCall:
    def make_gamma(self):
        gamma = FunContext()
        gamma.add(FunSpec.constant("f", ZERO))
        gamma.add(FunSpec.constant("g", bmetric("f")))  # g calls f
        return gamma

    def test_leaf_call(self):
        stmt = cl.SCall(None, "f", [])
        bound = bmetric("f")
        node = dv.DCall(uniform(bound, stmt), "f", {})
        check_derivation(node, ctx(self.make_gamma()))

    def test_nested_call_bound(self):
        stmt = cl.SCall("r", "g", [])
        bound = badd(bmetric("f"), bmetric("g"))
        node = dv.DCall(uniform(bound, stmt), "g", {})
        check_derivation(node, ctx(self.make_gamma()))

    def test_underestimating_call_rejected(self):
        stmt = cl.SCall(None, "g", [])
        node = dv.DCall(uniform(bmetric("g"), stmt), "g", {})
        with pytest.raises(DerivationError):
            check_derivation(node, ctx(self.make_gamma()))

    def test_call_without_spec_rejected(self):
        stmt = cl.SCall(None, "mystery", [])
        node = dv.DCall(uniform(bmetric("mystery"), stmt), "mystery", {})
        with pytest.raises(DerivationError):
            check_derivation(node, ctx(self.make_gamma()))

    def test_external_call_costs_zero(self):
        stmt = cl.SCall(None, "print_int", [cl.EConstInt(1)])
        node = dv.DExternal(uniform(ZERO, stmt), "print_int")
        check_derivation(node, ctx(self.make_gamma()))

    def test_external_rule_on_internal_rejected(self):
        stmt = cl.SCall(None, "f", [])
        node = dv.DExternal(uniform(ZERO, stmt), "f")
        with pytest.raises(DerivationError):
            check_derivation(node, ctx(self.make_gamma()))

    def test_undeclared_external_rejected(self):
        stmt = cl.SCall(None, "launch_missiles", [])
        node = dv.DExternal(uniform(ZERO, stmt), "launch_missiles")
        with pytest.raises(DerivationError):
            check_derivation(node, ctx(self.make_gamma()))


class TestSeqAndFrame:
    def make_figure5(self):
        """The paper's Fig. 5 derivation: {max(mf,mg)} f(); g() {...}."""
        gamma = FunContext()
        gamma.add(FunSpec.constant("f", ZERO))
        gamma.add(FunSpec.constant("g", ZERO))
        call_f = cl.SCall(None, "f", [])
        call_g = cl.SCall(None, "g", [])
        seq = cl.SSeq(call_f, call_g)
        mf, mg = bmetric("f"), bmetric("g")
        total = bmax(mf, mg)

        def framed_call(stmt, name, own):
            base = dv.DCall(uniform(own, stmt), name, {})
            diff = BFrameDiff(total, own)
            lifted = dv.Triple(badd(own, diff), stmt,
                               Post.uniform(badd(own, diff)))
            return dv.DFrame(lifted, diff, base)

        node = dv.DSeq(uniform(total, seq),
                       framed_call(call_f, "f", mf),
                       framed_call(call_g, "g", mg))
        return node, gamma

    def test_figure5_accepted_exactly(self):
        node, gamma = self.make_figure5()
        report = check_derivation(node, ctx(gamma))
        assert report.fully_exact
        assert report.nodes == 5

    def test_seq_mismatched_interface_rejected(self):
        gamma = FunContext()
        gamma.add(FunSpec.constant("f", ZERO))
        call_f = cl.SCall(None, "f", [])
        skip = cl.SSkip()
        seq = cl.SSeq(call_f, skip)
        # First consumes M(f) but claims the whole seq needs 0.
        node = dv.DSeq(uniform(ZERO, seq),
                       dv.DCall(uniform(bmetric("f"), call_f), "f", {}),
                       dv.DSkip(uniform(ZERO, skip)))
        with pytest.raises(DerivationError):
            check_derivation(node, ctx(gamma))

    def test_seq_wrong_subtree_statement_rejected(self):
        skip1, skip2 = cl.SSkip(), cl.SSkip()
        seq = cl.SSeq(skip1, skip2)
        other = cl.SSkip()
        node = dv.DSeq(uniform(ZERO, seq),
                       dv.DSkip(uniform(ZERO, other)),  # wrong object
                       dv.DSkip(uniform(ZERO, skip2)))
        with pytest.raises(DerivationError):
            check_derivation(node, ctx())

    def test_frame_negative_constant_impossible(self):
        # BFrameDiff clamps at 0 (the domination is checked separately
        # below); a raw negative constant cannot even be constructed.
        with pytest.raises(ValueError):
            bconst(-4)

    def test_frame_absorbing_larger_body_rejected(self):
        # ``part + (total - part)`` rewrites to ``total`` in the
        # comparators, so without the explicit ``part <= total`` side
        # condition a Q:FRAME application could "lower" a body needing
        # M(f) to any smaller claim — here a ground 8 bytes.
        gamma = FunContext()
        gamma.add(FunSpec.constant("f", ZERO))
        call_f = cl.SCall(None, "f", [])
        own = bmetric("f")
        diff = BFrameDiff(bconst(8), own)
        lifted = dv.Triple(badd(own, diff), call_f,
                           Post.uniform(badd(own, diff)))
        node = dv.DFrame(lifted, diff,
                         dv.DCall(uniform(own, call_f), "f", {}))
        with pytest.raises(DerivationError, match="dominate its subtrahend"):
            check_derivation(node, ctx(gamma))


class TestConseq:
    def test_weakening_precondition(self):
        stmt = cl.SSkip()
        inner = dv.DSkip(uniform(bconst(4), stmt))
        conclusion = dv.Triple(bconst(10), stmt, Post.uniform(bconst(4)))
        check_derivation(dv.DConseq(conclusion, inner), ctx())

    def test_lowering_postcondition(self):
        stmt = cl.SSkip()
        inner = dv.DSkip(uniform(bconst(4), stmt))
        conclusion = dv.Triple(bconst(4), stmt, Post.uniform(bconst(0)))
        check_derivation(dv.DConseq(conclusion, inner), ctx())

    def test_strengthening_precondition_rejected(self):
        stmt = cl.SSkip()
        inner = dv.DSkip(uniform(bconst(4), stmt))
        conclusion = dv.Triple(bconst(2), stmt, Post.uniform(bconst(0)))
        with pytest.raises(DerivationError):
            check_derivation(dv.DConseq(conclusion, inner), ctx())

    def test_raising_postcondition_rejected(self):
        stmt = cl.SSkip()
        inner = dv.DSkip(uniform(bconst(4), stmt))
        conclusion = dv.Triple(bconst(4), stmt, Post.uniform(bconst(9)))
        with pytest.raises(DerivationError):
            check_derivation(dv.DConseq(conclusion, inner), ctx())


class TestLoopAndBlock:
    def test_loop_invariant(self):
        body = cl.SSkip()
        post = cl.SSkip()
        loop = cl.SLoop(body, post)
        invariant = bconst(8)
        node = dv.DLoop(
            dv.Triple(invariant, loop, Post.uniform(invariant)),
            dv.DSkip(uniform(invariant, body)),
            dv.DSkip(uniform(invariant, post)))
        check_derivation(node, ctx())

    def test_loop_broken_invariant_rejected(self):
        body = cl.SSkip()
        post = cl.SSkip()
        loop = cl.SLoop(body, post)
        node = dv.DLoop(
            dv.Triple(bconst(8), loop, Post.uniform(bconst(8))),
            dv.DSkip(uniform(bconst(8), body)),
            dv.DSkip(uniform(bconst(4), post)))  # post does not restore
        with pytest.raises(DerivationError):
            check_derivation(node, ctx())

    def test_block(self):
        inner = cl.SBreak()
        block = cl.SBlock(inner)
        bound = bconst(4)
        node = dv.DBlock(
            dv.Triple(bound, block, Post.uniform(bound)),
            dv.DBreak(dv.Triple(bound, inner,
                                Post(bound, bound, bound, bound))))
        check_derivation(node, ctx())


class TestIf:
    def test_branches_must_match_interface(self):
        then, otherwise = cl.SSkip(), cl.SSkip()
        stmt = cl.SIf(cl.EConstInt(1), then, otherwise)
        node = dv.DIf(uniform(bconst(4), stmt),
                      dv.DSkip(uniform(bconst(4), then)),
                      dv.DSkip(uniform(bconst(4), otherwise)))
        report = check_derivation(node, ctx())
        assert report.nodes == 3

    def test_unequal_branch_rejected(self):
        then, otherwise = cl.SSkip(), cl.SSkip()
        stmt = cl.SIf(cl.EConstInt(1), then, otherwise)
        node = dv.DIf(uniform(bconst(4), stmt),
                      dv.DSkip(uniform(bconst(4), then)),
                      dv.DSkip(uniform(bconst(2), otherwise)))
        with pytest.raises(DerivationError):
            check_derivation(node, ctx())


class TestDerivationUtilities:
    def test_size(self):
        skip1, skip2 = cl.SSkip(), cl.SSkip()
        seq = cl.SSeq(skip1, skip2)
        node = dv.DSeq(uniform(ZERO, seq),
                       dv.DSkip(uniform(ZERO, skip1)),
                       dv.DSkip(uniform(ZERO, skip2)))
        assert node.size() == 3

    def test_pretty_renders_tree(self):
        node = dv.DSkip(uniform(ZERO, cl.SSkip()))
        assert "Q:SKIP" in dv.pretty(node)
