"""The paper's §2 walkthrough, reproduced step by step.

The Figure 1 program (array fill + recursive binary search) goes through
the three steps of the paper's §2:

1. the automatic analyzer bounds the non-recursive functions, emitting
   checkable derivations:  {M(init) + M(random)} init() {...};
2. the recursive ``search`` gets a hand-written logarithmic spec
   L(Δ) = M(search)·(2 + log2 Δ), whose induction step is checked over
   the whole verification domain;
3. Quantitative CompCert compiles the program and produces the concrete
   metric; instantiating the bounds yields final byte numbers, validated
   against the stack monitor.

    python examples/paper_example.py
"""

from repro.analyzer import auto_bound
from repro.clight.semantics import run_program
from repro.driver import compile_c
from repro.events.trace import CallEvent, ReturnEvent, weight_of_trace
from repro.logic.assertions import FunContext, FunSpec
from repro.logic.bexpr import (BLog2, BMul, ZERO, badd, bconst, bmax,
                               bmetric, bparam, evaluate)
from repro.logic.checker import CheckerContext, check_function_spec
from repro.logic.recursion import CallObligation, RecursiveSpec, SpecTable, \
    check_spec
from repro.measure import measure_compilation
from repro.programs.loader import load_source

ALEN = 1000


def main():
    source = load_source("paper_example.c")
    compilation = compile_c(source, macros={"ALEN": str(ALEN), "SEED": "17"})
    clight = compilation.clight

    # ---- Step 1: event traces ------------------------------------------------
    behavior = run_program(clight)
    head = ", ".join(repr(e) for e in behavior.trace[:5])
    print(f"Execution trace ({len(behavior.trace)} events): {head}, ...")
    searches = sum(1 for e in behavior.trace if e == CallEvent("search"))
    print(f"search recursion depth on this input: {searches}\n")

    # ---- Step 2a: automatic bounds with certified derivations ----------------
    gamma = FunContext()
    gamma.add(FunSpec.constant("random", ZERO))
    init = clight.function("init")
    bound, derivation = auto_bound(init.body, gamma, set(clight.externals))
    gamma.add(FunSpec.constant("init", bound))
    report = check_function_spec(
        init, derivation,
        CheckerContext(gamma, externals=clight.externals))
    print(f"auto_bound(init) = M(init) + {bound!r}")
    print(f"  derivation re-checked: {report!r}\n")

    # ---- Step 2b: the interactive logarithmic bound for search ---------------
    spec = RecursiveSpec(
        "search", ["n"],
        BMul(badd(bconst(1), BLog2(bparam("n"))), bmetric("search")),
        lambda p: ([CallObligation("search", {"n": p["n"] - p["n"] // 2})]
                   if p["n"] > 1 else []),
        domain={"n": range(0, 2 * ALEN)})
    table = SpecTable()
    table.add_recursive(spec)
    induction = check_spec(spec, table)
    print(f"search spec: L(Δ) = M(search)·(2 + log2 Δ); "
          f"induction checked on {induction.instances} instances\n")

    # ---- Step 3: compile, instantiate with the produced metric ---------------
    metric = compilation.metric
    print("Compiler-produced metric (M(f) = SF(f) + 4):")
    for name in sorted(compilation.frame_sizes):
        print(f"  M({name}) = {metric.cost(name)}")

    init_bytes = metric.cost("init") + metric.cost("random")
    search_total = badd(bmetric("search"), spec.bound)
    main_bound_expr = badd(
        bmetric("main"),
        bmax(badd(bmetric("init"), bmetric("random")), search_total))
    main_bytes = int(evaluate(main_bound_expr, metric.as_dict(),
                              {"n": ALEN}))
    print(f"\nFinal bounds: init() needs {init_bytes} bytes; "
          f"main() needs {main_bytes} bytes "
          f"(= M(main) + max(M(init)+M(random), M(search)·(2+log2 ALEN)))")

    # ---- Validation against the machine --------------------------------------
    observed = weight_of_trace(metric, behavior.trace)
    run = measure_compilation(compilation)
    print(f"\nObserved Clight trace weight: {observed} <= {main_bytes}")
    print(f"ASMsz monitor measured {run.measured_bytes} bytes "
          f"<= bound - 4 = {main_bytes - 4}")
    assert observed <= main_bytes
    assert run.measured_bytes <= main_bytes - 4


if __name__ == "__main__":
    main()
