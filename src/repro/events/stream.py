"""Streaming event consumers (one-pass trace processing).

The interpreters can push every event they emit into an incremental
*consumer* instead of materializing a full ``Trace`` list that is then
re-walked once per check.  A consumer is any callable taking one
:class:`~repro.events.trace.Event`; this module provides the consumers
the campaign and the measurement code need:

* :class:`WeightFold` (re-exported from :mod:`repro.events.trace`) — the
  single shared implementation of the paper's valuation/weight fold
  ``V_M`` / ``W_M``;
* :class:`PrunedMatcher` / :class:`ExactMatcher` — incremental trace
  comparison against a reference trace (classic refinement's pruned
  I/O-trace equality, and the exact memory-event equality the deep
  campaign mode checks below Mach);
* :class:`BracketChecker` — streaming well-bracketedness of call/ret;
* :class:`Tee` — fan one event stream out to several consumers.

``StreamOutcome`` is the trace-free counterpart of a ``Behavior``: what a
streamed run produced (kind, return code, failure reason, event and step
counts) without holding onto the events themselves.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.events.trace import (Behavior, CallEvent, Converges, Diverges,
                                Event, GoesWrong, ReturnEvent, WeightFold,
                                weight_fold)

__all__ = [
    "BracketChecker", "Consumer", "CountingSink", "ExactMatcher",
    "PrunedMatcher", "StreamOutcome", "Tee", "WeightFold", "null_sink",
    "weight_fold",
]

#: A consumer is any callable fed one event at a time.
Consumer = Callable[[Event], None]


def null_sink(event: Event) -> None:
    """A consumer that drops every event (count-only runs)."""


class StreamOutcome:
    """The result of one streamed execution, without the trace.

    ``kind`` is ``"converges"``, ``"diverges"`` or ``"goes-wrong"`` —
    mirroring the three behaviors — and ``events``/``steps`` count what
    the run emitted and executed.
    """

    __slots__ = ("kind", "return_code", "reason", "events", "steps")

    CONVERGES = "converges"
    DIVERGES = "diverges"
    GOES_WRONG = "goes-wrong"

    def __init__(self, kind: str, return_code: Optional[int] = None,
                 reason: str = "", events: int = 0, steps: int = 0) -> None:
        self.kind = kind
        self.return_code = return_code
        self.reason = reason
        self.events = events
        self.steps = steps

    @property
    def converged(self) -> bool:
        return self.kind == self.CONVERGES

    @property
    def goes_wrong(self) -> bool:
        return self.kind == self.GOES_WRONG

    def to_behavior(self, trace: Iterable[Event]) -> Behavior:
        """Attach a trace, recovering the equivalent ``Behavior``."""
        if self.kind == self.CONVERGES:
            assert self.return_code is not None
            return Converges(trace, self.return_code)
        if self.kind == self.GOES_WRONG:
            return GoesWrong(trace, reason=self.reason)
        return Diverges(trace)

    def __repr__(self) -> str:
        extra = (f", rc={self.return_code}" if self.return_code is not None
                 else "") + (f", reason={self.reason!r}" if self.reason else "")
        return (f"StreamOutcome({self.kind}, {self.events} events, "
                f"{self.steps} steps{extra})")


class CountingSink:
    """Wrap a consumer, counting the events that pass through."""

    __slots__ = ("sink", "count")

    def __init__(self, sink: Consumer) -> None:
        self.sink = sink
        self.count = 0

    def __call__(self, event: Event) -> None:
        self.count += 1
        self.sink(event)

    feed = __call__


# ---------------------------------------------------------------------------
# Incremental trace comparison
# ---------------------------------------------------------------------------


class ExactMatcher:
    """Incrementally compare a stream against a reference trace.

    ``ok`` goes (and stays) False on the first position mismatch;
    :meth:`matched` additionally requires the stream to have the
    reference's exact length, i.e. full trace equality.
    """

    __slots__ = ("reference", "pos", "ok")

    def __init__(self, reference: Sequence[Event]) -> None:
        self.reference = reference
        self.pos = 0
        self.ok = True

    def __call__(self, event: Event) -> None:
        pos = self.pos
        self.pos = pos + 1
        if self.ok and (pos >= len(self.reference)
                        or self.reference[pos] != event):
            self.ok = False

    feed = __call__

    def matched(self) -> bool:
        return self.ok and self.pos == len(self.reference)


class PrunedMatcher(ExactMatcher):
    """An :class:`ExactMatcher` that sees only non-memory (I/O) events.

    The reference must already be pruned (``prune(trace)``); memory
    events in the stream are skipped, realizing the paper's overline
    comparison without building the pruned target trace.
    """

    __slots__ = ()

    def __call__(self, event: Event) -> None:
        if not event.is_memory_event:
            ExactMatcher.__call__(self, event)

    feed = __call__


class BracketChecker:
    """Streaming check that call/ret events nest like a call stack."""

    __slots__ = ("stack", "ok")

    def __init__(self) -> None:
        self.stack: list[str] = []
        self.ok = True

    def __call__(self, event: Event) -> None:
        if isinstance(event, CallEvent):
            self.stack.append(event.function)
        elif isinstance(event, ReturnEvent):
            if not self.stack or self.stack[-1] != event.function:
                self.ok = False
            else:
                self.stack.pop()

    feed = __call__

    def balanced(self) -> bool:
        """Nested *and* every opened frame closed (for converged runs)."""
        return self.ok and not self.stack


class Tee:
    """Feed each event to every wrapped consumer, in order."""

    __slots__ = ("consumers",)

    def __init__(self, *consumers: Consumer) -> None:
        self.consumers = consumers

    def __call__(self, event: Event) -> None:
        for consumer in self.consumers:
            consumer(event)

    feed = __call__
