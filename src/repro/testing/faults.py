"""Fault injection for the certificate checker and the campaign oracles.

A self-certifying analyzer is only as trustworthy as the faults its
checker has been *demonstrated* to reject.  This module generalizes the
campaign's one-off ``--plant drop-ra`` self-test into a registry of
mutation operators, one per way an artifact in the trust chain can lie,
organized by the layer it attacks:

``metric``
    The compiler-produced cost metric ``M(f) = SF(f) + 4`` is corrupted
    (return-address bytes dropped, a frame shrunk or mis-aligned).  The
    mutant metric flows through ``check_seed``'s ``plant`` hook exactly
    like the historical ``drop-ra`` plant and must be flagged by the
    bound oracles.
``derivation``
    The quantitative-logic derivation inside a certificate is corrupted
    (a constant potential decremented, postcondition slots swapped
    between rule applications, a Q:FRAME premise dropped, a Q:CALL
    retargeted).  ``load_certificate`` must reject the mutant.
``certificate``
    The wire format itself is corrupted (``total_bound``/``frame``/
    ``spec`` fields, truncated rule tree, version skew, malformed JSON,
    certificate replayed against the wrong program).  ``load_certificate``
    must reject the mutant with a diagnostic — never a crash.
``refinement``
    The event trace the refinement oracles consume is corrupted
    (``call(f)``/``ret(f)`` dropped or duplicated, an I/O event
    dropped).  The bracketing / pruned-trace / all-metrics-domination
    oracles must reject the mutant.
``analysis``
    The analyzer front half lies (``repro.analyzer``): the value
    analysis widens a function pointer's candidate set beyond what the
    program can express.  The widened analysis is still *sound* — more
    candidates only raise the max — so no checker can reject it; only a
    differential against an independent analysis of the same source
    (golden snapshots, the Table 2 manual specs) observes the inflated
    bound.  Self-contained scenario, like the serving layer.
``serving``
    The serving path lies (``repro.serve``): a content-addressed store
    entry is substituted with another key's bytes, a response JSON is
    truncated on the wire, a worker dies mid-request.  The store's
    integrity check, the response schema validator, and the pool's
    per-request timeout respectively must turn each into a diagnosed
    failure — a stale entry is never served, a truncated response is
    never consumed, a dead worker never hangs or drops a request.
    These operators are self-contained scenarios: ``apply()`` takes no
    arguments and returns ``(detected, caught_by, diagnostic)``.
``codegen``
    The generated-Python execution tier miscompiles (``repro.asm.codegen``):
    a fused cmp+branch jumps to the wrong arm, a fused push+call drops
    the ESP adjustment, a superinstruction folds a stale constant.  Each
    operator flips the tier's ``_MISCOMPILE`` knob on a hand-built
    program that is guaranteed to contain the fusion site and the
    decoded differential oracle must observe the divergence (return
    code, trace, watermark or failure reason).  Self-contained
    scenarios, like the serving layer.

``run_mutation_matrix`` applies every registered operator to artifacts
produced from catalog programs and generated seeds and reports, per
operator, whether a checker caught it, which one did, and after how many
attempts.  An operator that survives undetected is a soundness gap in
the checker — the matrix exists to keep that set empty.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.events.metrics import StackMetric
from repro.events.trace import (CallEvent, Event, IOEvent, ReturnEvent,
                                is_well_bracketed, prune)
from repro.logic.bexpr import BConst, BMetric, BScale, badd, bmax

LAYERS = ("metric", "derivation", "certificate", "refinement", "analysis",
          "serving", "codegen", "comparator")


class UnknownFaultError(ValueError):
    """An operator (or ``--plant``) name that is not in the registry."""


@dataclass(frozen=True)
class FaultOperator:
    """One registered mutation operator.

    ``apply``'s signature depends on the layer: metric operators map a
    ``Compilation`` to a corrupted :class:`StackMetric`; derivation and
    certificate operators map certificate JSON text to mutated text (or
    ``None`` when the certificate has no applicable site); refinement
    operators map an event trace to a mutated trace (or ``None``).
    """

    name: str
    layer: str
    description: str
    apply: Callable
    #: Certificate operators only: the (unmutated) certificate must be
    #: rejected when checked against a *different* program.
    cross_program: bool = False


_REGISTRY: dict[str, FaultOperator] = {}


def _register(name: str, layer: str, description: str,
              cross_program: bool = False):
    if layer not in LAYERS:
        raise ValueError(f"unknown fault layer {layer!r}")

    def decorator(function: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"duplicate fault operator {name!r}")
        _REGISTRY[name] = FaultOperator(name, layer, description, function,
                                        cross_program=cross_program)
        return function

    return decorator


def operators(layer: Optional[str] = None) -> list[FaultOperator]:
    """All registered operators, optionally restricted to one layer."""
    ops = list(_REGISTRY.values())
    if layer is not None:
        ops = [op for op in ops if op.layer == layer]
    return ops


def get_operator(name: str) -> FaultOperator:
    op = _REGISTRY.get(name)
    if op is None:
        raise UnknownFaultError(
            f"unknown fault operator {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY))}")
    return op


def metric_fault_names() -> list[str]:
    """The operator names valid as campaign ``plant`` values."""
    return [op.name for op in operators("metric")]


def validate_plant(plant: Optional[str]) -> None:
    """Fail fast on a bad ``--plant`` name (before any seed runs).

    The campaign and the shrinker call this up front so a typo surfaces
    as an immediate :class:`UnknownFaultError` instead of blowing up a
    worker mid-seed.
    """
    if plant is None:
        return
    op = _REGISTRY.get(plant)
    if op is None or op.layer != "metric":
        raise UnknownFaultError(
            f"unknown planted bug {plant!r}; known plants: "
            f"{', '.join(metric_fault_names())}")


def apply_metric_fault(plant: str, compilation) -> StackMetric:
    """The corrupted metric for one plant name (validates the name)."""
    validate_plant(plant)
    return _REGISTRY[plant].apply(compilation)


# ---------------------------------------------------------------------------
# Metric operators: M(f) = SF(f) + 4 corrupted at the compiler boundary
# ---------------------------------------------------------------------------


@_register("drop-ra", "metric",
           "forget the 4 return-address bytes: M(f) = SF(f)")
def _drop_ra(compilation) -> StackMetric:
    return StackMetric(dict(compilation.frame_sizes))


@_register("shrink-frame", "metric",
           "under-report main's frame by 8 bytes in the metric")
def _shrink_frame(compilation) -> StackMetric:
    costs = compilation.metric.as_dict()
    main = compilation.asm.main
    costs[main] = max(0, costs[main] - 8)
    return StackMetric(costs)


@_register("misalign-frame", "metric",
           "mis-align main's frame: its metric cost loses 2 bytes")
def _misalign_frame(compilation) -> StackMetric:
    costs = compilation.metric.as_dict()
    main = compilation.asm.main
    costs[main] = max(0, costs[main] - 2)
    return StackMetric(costs)


# ---------------------------------------------------------------------------
# Certificate JSON helpers
# ---------------------------------------------------------------------------


def _walk_nodes(node: dict):
    """All derivation nodes of one tree, preorder."""
    yield node
    for child in node.get("children", ()):
        yield from _walk_nodes(child)


def _walk_with_parent(node: dict, parent: Optional[dict] = None,
                      index: int = 0):
    yield node, parent, index
    for i, child in enumerate(node.get("children", ())):
        yield from _walk_with_parent(child, node, i)


def _all_nodes(data: dict):
    for entry in data["functions"].values():
        yield from _walk_nodes(entry["derivation"])


def _mutate_json(text: str, mutate: Callable[[dict], bool]) -> Optional[str]:
    """Parse, apply ``mutate`` (returns applicability), re-serialize."""
    data = json.loads(text)
    if not mutate(data):
        return None
    return json.dumps(data, indent=1)


# ---------------------------------------------------------------------------
# Derivation operators: the proof tree lies
# ---------------------------------------------------------------------------


@_register("const-decrement", "derivation",
           "decrement a constant potential in a function spec")
def _const_decrement(text: str) -> Optional[str]:
    def mutate(data: dict) -> bool:
        for entry in data["functions"].values():
            pre = entry["spec"]["pre"]
            if pre.get("k") == "const" and pre["v"] != "inf":
                pre["v"] -= 1
                return True
        return False

    return _mutate_json(text, mutate)


@_register("post-slot-swap", "derivation",
           "swap the return postcondition slot between two rule "
           "applications")
def _post_slot_swap(text: str) -> Optional[str]:
    def mutate(data: dict) -> bool:
        roots = [entry["derivation"] for entry in data["functions"].values()]
        for i, a in enumerate(roots):
            for b in roots[i + 1:]:
                if json.dumps(a["post"][2]) != json.dumps(b["post"][2]):
                    a["post"][2], b["post"][2] = b["post"][2], a["post"][2]
                    return True
        return False

    return _mutate_json(text, mutate)


@_register("frame-premise-drop", "derivation",
           "delete a Q:FRAME application, splicing in its premise")
def _frame_premise_drop(text: str) -> Optional[str]:
    def mutate(data: dict) -> bool:
        for entry in data["functions"].values():
            for node, parent, index in _walk_with_parent(entry["derivation"]):
                if node.get("rule") == "Q:FRAME" and node.get("children"):
                    child = node["children"][0]
                    if parent is None:
                        entry["derivation"] = child
                    else:
                        parent["children"][index] = child
                    return True
        return False

    return _mutate_json(text, mutate)


@_register("call-retarget", "derivation",
           "retarget a Q:CALL node at a different callee spec")
def _call_retarget(text: str) -> Optional[str]:
    def mutate(data: dict) -> bool:
        names = sorted(data["functions"])
        for node in _all_nodes(data):
            if node.get("rule") == "Q:CALL":
                others = [n for n in names if n != node["callee"]]
                node["callee"] = (others[0] if others
                                  else node["callee"] + "__ghost")
                return True
        return False

    return _mutate_json(text, mutate)


@_register("rec-depth-off-by-one", "derivation",
           "bump a recursive call's measure argument by one, so the "
           "callee is entered one level deeper than accounted")
def _rec_depth_off_by_one(text: str) -> Optional[str]:
    def mutate(data: dict) -> bool:
        for node in _all_nodes(data):
            if node.get("rule") == "Q:CALL" and node.get("spec_args"):
                name = sorted(node["spec_args"])[0]
                node["spec_args"][name] = {
                    "k": "add",
                    "items": [node["spec_args"][name],
                              {"k": "const", "v": 1}]}
                return True
        return False

    return _mutate_json(text, mutate)


# ---------------------------------------------------------------------------
# Certificate operators: the wire format lies
# ---------------------------------------------------------------------------


@_register("total-bound-corrupt", "certificate",
           "replace a total_bound field with the zero bound")
def _total_bound_corrupt(text: str) -> Optional[str]:
    def mutate(data: dict) -> bool:
        for entry in data["functions"].values():
            total = entry["total_bound"]
            if not (total.get("k") == "const" and total.get("v") == 0):
                entry["total_bound"] = {"k": "const", "v": 0}
                return True
        return False

    return _mutate_json(text, mutate)


@_register("frame-negative", "certificate",
           "replace a Q:FRAME frame constant with a negative constant")
def _frame_negative(text: str) -> Optional[str]:
    def mutate(data: dict) -> bool:
        for node in _all_nodes(data):
            if node.get("rule") == "Q:FRAME":
                node["frame"] = {"k": "const", "v": -4}
                return True
        return False

    return _mutate_json(text, mutate)


@_register("spec-corrupt", "certificate",
           "rewrite a function spec to claim zero stack need")
def _spec_corrupt(text: str) -> Optional[str]:
    def mutate(data: dict) -> bool:
        for entry in data["functions"].values():
            spec = entry["spec"]
            if spec["pre"].get("k") != "const" or spec["pre"].get("v") != 0:
                spec["pre"] = {"k": "const", "v": 0}
                spec["post"] = {"k": "const", "v": 0}
                return True
        return False

    return _mutate_json(text, mutate)


@_register("rule-tree-truncate", "certificate",
           "delete the last premise of a rule application")
def _rule_tree_truncate(text: str) -> Optional[str]:
    def mutate(data: dict) -> bool:
        for node in _all_nodes(data):
            if node.get("children"):
                node["children"] = node["children"][:-1]
                if not node["children"]:
                    del node["children"]
                return True
        return False

    return _mutate_json(text, mutate)


@_register("version-skew", "certificate",
           "bump the certificate format version past the checker's")
def _version_skew(text: str) -> Optional[str]:
    def mutate(data: dict) -> bool:
        data["version"] = data.get("version", 0) + 1
        return True

    return _mutate_json(text, mutate)


@_register("json-malform", "certificate",
           "truncate the certificate text mid-JSON")
def _json_malform(text: str) -> Optional[str]:
    return text[:len(text) // 2]


@_register("wrong-program", "certificate",
           "replay an intact certificate against a different program",
           cross_program=True)
def _wrong_program(text: str) -> Optional[str]:
    return text  # the harness swaps the program, not the certificate


@_register("rec-base-guard-drop", "certificate",
           "widen a verification domain below the recursion's "
           "base-case guard")
def _rec_base_guard_drop(text: str) -> Optional[str]:
    # Only domains whose minimum is >= 2 encode a base-case guard worth
    # dropping (log-shaped recursions stop at n <= 1); below that point
    # the claimed potential no longer covers the recursive branch, so
    # the checker's Q:FRAME domination re-check must fail at the
    # inserted instance.
    def mutate(data: dict) -> bool:
        domains = data.get("param_domains")
        if not domains:
            return False
        for name in sorted(domains):
            values = domains[name]
            if values and min(values) >= 2:
                domains[name] = [min(values) - 1] + values
                return True
        return False

    return _mutate_json(text, mutate)


# ---------------------------------------------------------------------------
# Refinement operators: the event trace lies
# ---------------------------------------------------------------------------


def _drop_at(trace: Sequence[Event], index: int) -> tuple:
    return tuple(trace[:index]) + tuple(trace[index + 1:])


def _dup_at(trace: Sequence[Event], index: int) -> tuple:
    return tuple(trace[:index + 1]) + tuple(trace[index:])


def _first_index(trace: Sequence[Event], kind: type) -> Optional[int]:
    for index, event in enumerate(trace):
        if isinstance(event, kind):
            return index
    return None


def _last_index(trace: Sequence[Event], kind: type) -> Optional[int]:
    for index in range(len(trace) - 1, -1, -1):
        if isinstance(trace[index], kind):
            return index
    return None


@_register("call-drop", "refinement",
           "delete a call(f) event, orphaning its ret(f)")
def _call_drop(trace: Sequence[Event]) -> Optional[tuple]:
    index = _first_index(trace, CallEvent)
    return None if index is None else _drop_at(trace, index)


@_register("ret-drop", "refinement",
           "delete the final ret(f) event, leaving a frame open at exit")
def _ret_drop(trace: Sequence[Event]) -> Optional[tuple]:
    index = _last_index(trace, ReturnEvent)
    return None if index is None else _drop_at(trace, index)


@_register("call-duplicate", "refinement",
           "duplicate a call(f) event, opening a phantom frame")
def _call_duplicate(trace: Sequence[Event]) -> Optional[tuple]:
    index = _first_index(trace, CallEvent)
    return None if index is None else _dup_at(trace, index)


@_register("ret-duplicate", "refinement",
           "duplicate a ret(f) event, popping a frame twice")
def _ret_duplicate(trace: Sequence[Event]) -> Optional[tuple]:
    index = _last_index(trace, ReturnEvent)
    return None if index is None else _dup_at(trace, index)


@_register("io-drop", "refinement",
           "delete an observable I/O event from the trace")
def _io_drop(trace: Sequence[Event]) -> Optional[tuple]:
    index = _first_index(trace, IOEvent)
    return None if index is None else _drop_at(trace, index)


def refinement_oracles_reject(mutant: Sequence[Event],
                              reference: Sequence[Event]
                              ) -> tuple[bool, str, str]:
    """Run a mutated trace through the oracles a converged execution must
    satisfy against its reference; returns ``(rejected, oracle, detail)``.

    The checks mirror the campaign's trace oracles: full well-bracketing
    (a converged behavior closes every frame), the pruned I/O-trace
    equality of classic refinement, and the all-metrics structural
    domination of the quantitative refinement.
    """
    from repro.events.refinement import dominates_for_all_metrics

    mutant = tuple(mutant)
    reference = tuple(reference)
    if not is_well_bracketed(mutant, require_empty=True):
        return True, "well-bracketing", "call/ret events do not nest"
    if prune(mutant) != prune(reference):
        return True, "pruned-trace", "pruned I/O traces differ"
    if not dominates_for_all_metrics(mutant, reference):
        return (True, "all-metrics-domination",
                "trace not pointwise dominated for all metrics")
    return False, "", ""


# ---------------------------------------------------------------------------
# Analysis operators: the analyzer front half lies (see repro.analyzer)
# ---------------------------------------------------------------------------

#: Dispatch program where value analysis precision is load-bearing: only
#: ``light`` flows into ``pick``'s function pointer, so a widened
#: candidate set (adding ``heavy``, address-taken elsewhere) inflates
#: ``pick``'s bound by ``heavy``'s much larger frame.
_VALUES_SOURCE = (
    "int light(int x) { return x + 1; }\n"
    "int heavy(int x) { int a[32]; a[x & 31] = x; return a[0]; }\n"
    "int pick(int x) { int (*f)(int) = light; return f(x); }\n"
    "int main(void) { int (*g)(int) = heavy; return g(pick(3)); }\n")


@_register("values-candidate-widen", "analysis",
           "widen a function pointer's candidate set to every "
           "address-taken function")
def _values_candidate_widen() -> tuple[bool, str, str]:
    from repro.analyzer import values
    from repro.driver import verify_stack_bounds

    baseline = verify_stack_bounds(_VALUES_SOURCE,
                                   filename="values-fault-base.c")
    base = baseline.bytes("pick")
    previous = values._FAULT
    values._FAULT = "widen"
    try:
        # A distinct filename keeps the widened run out of the frontend
        # cache slot of the baseline source.
        widened = verify_stack_bounds(_VALUES_SOURCE,
                                      filename="values-fault-widened.c")
    finally:
        values._FAULT = previous
    inflated = widened.bytes("pick")
    if inflated <= base:
        return False, "", (f"widened candidate set left pick's bound at "
                           f"{inflated} (baseline {base})")
    # The widened analysis still carries a checkable derivation (it is
    # sound, just imprecise), so detection is necessarily differential.
    clean = verify_stack_bounds(_VALUES_SOURCE,
                                filename="values-fault-base.c")
    if clean.bytes("pick") != base:
        return False, "", "widening leaked into a clean re-analysis"
    return (True, "values-differential",
            f"pick bound inflated {base} -> {inflated} bytes against the "
            "reference analysis")


# ---------------------------------------------------------------------------
# Comparator operators: the bound-order decision procedure lies
# (see repro.logic.bexpr and the cross-check in repro.logic.smt)
# ---------------------------------------------------------------------------


def _comparator_fault(knob: str, small, large) -> tuple[bool, str, str]:
    """Self-contained comparator scenario shared by both operators.

    The fault knob corrupts the failure-region construction in
    ``_term_covered`` so Fourier-Motzkin wrongly *refuses* a valid
    inequality — the quiet direction: nothing downstream crashes, the
    analyzer just reports looser bounds and derivation re-checks start
    failing.  Only the cross-check backend notices: with z3 installed the
    differential disagrees outright, and without it the witness audit
    flags an exact refusal that ``find_violation_metric`` (whose own
    constraint construction is intact) cannot certify.
    """
    from repro.logic import bexpr, smt

    clean = bexpr.fm_bound_le(small, large)
    if not (clean.holds and clean.exact):
        return False, "", ("scenario query must hold exactly on a clean "
                           f"comparator, got holds={clean.holds}")
    previous = bexpr._FAULT
    bexpr._FAULT = knob
    try:
        lied = bexpr.fm_bound_le(small, large)
        if lied.holds:
            return False, "", ("knobbed comparator still affirms the "
                               "query; the fault has no effect here")
        try:
            smt.crosscheck_bound_le(small, large)
        except smt.ComparatorDisagreement as disagreement:
            caught_by, diagnostic = disagreement.caught_by, str(disagreement)
        else:
            return False, "", ("cross-check accepted the lying refusal "
                               "(comparator gap)")
    finally:
        bexpr._FAULT = previous
    if not smt.crosscheck_bound_le(small, large).holds:
        return False, "", "fault leaked: clean comparator still refuses"
    return True, caught_by, diagnostic


@_register("fm-strict-gap-drop", "comparator",
           "build the FM failure region with const_l - const_s instead "
           "of the integer gap + 1")
def _fm_strict_gap_drop() -> tuple[bool, str, str]:
    # M(f) + 1 <= max(2*M(f), 1) holds (1 covers M(f) = 0, 2*M(f) covers
    # the rest) but needs the case split: without the integer gap the
    # failure region keeps the boundary points M(f) in [0, 1] and FM
    # refuses.
    f = BMetric("f")
    return _comparator_fault("fm-strict-gap-drop",
                             badd(f, BConst(1)),
                             bmax(BScale(2, f), BConst(1)))


@_register("fm-nonneg-drop", "comparator",
           "omit the var >= 0 rows from the FM failure region")
def _fm_nonneg_drop() -> tuple[bool, str, str]:
    # M(f) + M(g) <= max(2*M(f), 3*M(g)) holds on nonnegative metrics
    # but fails at (f, g) = (-3, -2): dropping the nonnegativity rows
    # makes the failure region feasible and FM refuses.
    f, g = BMetric("f"), BMetric("g")
    return _comparator_fault("fm-nonneg-drop",
                             badd(f, g),
                             bmax(BScale(2, f), BScale(3, g)))


# ---------------------------------------------------------------------------
# Serving operators: the serving path lies (see repro.serve)
# ---------------------------------------------------------------------------

#: Tiny program the serving scenarios verify (cheap, auto-analyzable).
_SERVE_SOURCE = ("int leaf(int x) { int a[4]; a[x & 3] = x; return a[0]; }\n"
                 "int main(void) { return leaf(3); }\n")


@_register("stale-cache-entry", "serving",
           "substitute one store entry's bytes into another key's slot")
def _stale_cache_entry() -> tuple[bool, str, str]:
    from repro.serve.pipeline import ServeRequest, run_pipeline
    from repro.serve.store import ResultStore

    store = ResultStore(root=None)
    request = ServeRequest(_SERVE_SOURCE, filename="serve-fault.c")
    other = ServeRequest("int main(void) { return 7; }",
                         filename="serve-other.c")
    run_pipeline(request, store)
    run_pipeline(other, store)
    key = request.keys()["analyze"]
    stale = store.raw_read(other.keys()["analyze"])
    store.raw_write(key, stale)
    if store.get(key) is not None:
        return False, "", "stale substituted entry was served"
    # The poisoned entry must also be *recomputed*, not just refused.
    response = run_pipeline(request, store)
    if response["stages"]["analyze"] != "miss":
        return False, "", "poisoned entry not recomputed"
    return (True, "store-integrity",
            "cross-key substitution rejected and recomputed")


@_register("response-truncate", "serving",
           "truncate the serving response JSON mid-document")
def _response_truncate() -> tuple[bool, str, str]:
    from repro.serve.pipeline import (ServeRequest, run_pipeline,
                                      validate_response_text)
    from repro.serve.store import ResultStore

    response = run_pipeline(ServeRequest(_SERVE_SOURCE,
                                         filename="serve-fault.c"),
                            ResultStore(root=None))
    text = json.dumps(response)
    try:
        validate_response_text(text[:len(text) // 2])
    except ValueError as error:
        return True, "response-schema", str(error)
    return False, "", "truncated response accepted by the validator"


def _poisoned_codegen_artifact(mutate) -> tuple[bool, str, str]:
    """Shared scaffold for the stored-codegen-artifact operators.

    Serve a probe request (persisting the generated source), let
    ``mutate`` corrupt the stored artifact payload (re-hashed at the
    store's wire level, so only the *payload-level* checks stand between
    the poison and ``exec``), simulate a daemon restart, and re-serve:
    the poisoned artifact must be dropped and regenerated — probed
    execution still converging at the served bound — never executed.
    """
    from repro.asm.codegen import CODEGEN_VERSION
    from repro.serve.pipeline import ServeRequest, reset_warm, run_pipeline
    from repro.serve.store import ResultStore

    store = ResultStore(root=None)
    request = ServeRequest(_SERVE_SOURCE, filename="serve-fault.c",
                           probe=True)
    baseline = run_pipeline(request, store)
    key = request.keys()["codegen"]
    artifact = store.get(key)
    if not isinstance(artifact, dict):
        return False, "", "no codegen artifact was persisted"
    store.put(key, mutate(dict(artifact)))
    reset_warm()   # a restarted daemon has no warm programs
    response = run_pipeline(request, store)
    probe = response["probe"]
    if probe.get("codegen") != "generated":
        return False, "", (f"poisoned artifact was served "
                           f"(codegen={probe.get('codegen')!r})")
    if not probe.get("converged") \
            or probe.get("measured_bytes") \
            != baseline["probe"]["measured_bytes"]:
        return False, "", "regenerated probe diverged from the baseline"
    replacement = store.get(key)
    if not isinstance(replacement, dict) \
            or replacement.get("codegen_version") != CODEGEN_VERSION:
        return False, "", "poisoned artifact was not replaced in the store"
    return (True, "codegen-artifact-check",
            "poisoned artifact dropped, regenerated and re-persisted")


@_register("codegen-version-skew", "serving",
           "rewrite a stored codegen artifact with a stale "
           "CODEGEN_VERSION tag")
def _codegen_version_skew() -> tuple[bool, str, str]:
    def mutate(artifact: dict) -> dict:
        artifact["codegen_version"] = artifact["codegen_version"] + 1
        return artifact

    return _poisoned_codegen_artifact(mutate)


@_register("codegen-source-truncate", "serving",
           "truncate a stored codegen artifact's source mid-text")
def _codegen_source_truncate() -> tuple[bool, str, str]:
    def mutate(artifact: dict) -> dict:
        # Keep the recorded hash: the wire re-hash is consistent, so
        # only the payload's own source digest can catch the cut.
        artifact["source"] = artifact["source"][:len(artifact["source"])
                                                // 2]
        return artifact

    return _poisoned_codegen_artifact(mutate)


@_register("worker-death", "serving",
           "kill the worker process mid-request")
def _worker_death() -> tuple[bool, str, str]:
    from repro.serve.pool import ServePool

    pool = ServePool(jobs=1, queue_depth=2, timeout_s=3.0, store_root=None)
    try:
        status, body = pool.submit(_SERVE_SOURCE, filename="serve-fault.c",
                                   chaos="die")
    finally:
        pool.close()
    if status >= 500 and body.get("verdict") == "error":
        return True, "request-timeout", body["error"]
    return False, "", (f"lost worker produced status {status}: "
                       f"{body.get('verdict')!r}")


# ---------------------------------------------------------------------------
# Codegen operators: the generated-Python tier miscompiles
# ---------------------------------------------------------------------------

#: Behavior fingerprint the codegen differential oracle compares.
def _codegen_fingerprint(program, engine):
    from repro.asm.machine import run_program

    output: list = []
    behavior, machine = run_program(program, stack_bytes=1 << 16,
                                    output=output, fuel=100_000,
                                    engine=engine)
    return (type(behavior).__name__,
            getattr(behavior, "return_code", None),
            getattr(behavior, "reason", None), tuple(behavior.trace),
            tuple(output), machine.measured_stack_usage, machine.steps)


def _codegen_miscompile(knob: str, program) -> tuple[bool, str, str]:
    """Run ``program`` with the miscompile knob on; diff against decoded."""
    from repro.asm import codegen

    decoded = _codegen_fingerprint(program, "decoded")
    previous = codegen._MISCOMPILE
    codegen._MISCOMPILE = knob
    try:
        mutant = _codegen_fingerprint(program, "codegen")
    finally:
        codegen._MISCOMPILE = previous
    # The knob must not leak into the per-program cache: a clean rerun
    # has to match the oracle again.
    clean = _codegen_fingerprint(program, "codegen")
    if clean != decoded:
        return False, "", "miscompile leaked into the codegen cache"
    if mutant == decoded:
        return False, "", ("miscompiled execution matched the decoded "
                           "oracle (fusion site not exercised)")
    return (True, "codegen-differential",
            f"decoded={decoded[:3]} codegen={mutant[:3]}")


def _asm_program(functions: dict, globals_=()) -> "asm_ast.AsmProgram":
    from repro.asm import ast as asm_ast

    return asm_ast.AsmProgram(
        list(globals_),
        {name: asm_ast.AsmFunction(name, body, frame_size=0)
         for name, body in functions.items()},
        externals=set(), main="main")


@_register("fused-branch-swap", "codegen",
           "swap the taken/untaken arms of a fused cmp+branch")
def _fused_branch_swap() -> tuple[bool, str, str]:
    from repro.asm import ast as a

    # The cmp feeds the jcc directly, so the block terminator is the
    # fused superinstruction; 5 > 3 must reach the taken arm (222).
    program = _asm_program({"main": [
        a.Pmovimm("eax", 5),
        a.Pmovimm("ecx", 3),
        a.Pbinop("cmp_gtu", "eax", "ecx"),
        a.Pjcc("eax", 1),
        a.Pmovimm("eax", 111),
        a.Pret(),
        a.Plabel(1),
        a.Pmovimm("eax", 222),
        a.Pret(),
    ]})
    return _codegen_miscompile("swap-branch", program)


@_register("fused-call-esp-drop", "codegen",
           "drop the ESP adjustment folded into a fused push+call")
def _fused_call_esp_drop() -> tuple[bool, str, str]:
    from repro.asm import ast as a

    # Pespadd(-16) immediately before an internal call is fused into
    # one combined stack check; dropping the adjustment shifts the
    # watermark (and the post-call Pespadd unbalances ESP).
    program = _asm_program({
        "main": [
            a.Pespadd(-16),
            a.Pcall("leaf"),
            a.Pespadd(16),
            a.Pret(),
        ],
        "leaf": [
            a.Pmovimm("eax", 7),
            a.Pret(),
        ],
    })
    return _codegen_miscompile("drop-espadjust", program)


@_register("fused-load-stale-const", "codegen",
           "fold a stale constant into a fused load+op superinstruction")
def _fused_load_stale_const() -> tuple[bool, str, str]:
    from repro.asm import ast as a
    from repro.clight.ast import GlobalVar
    from repro.memory.chunks import Chunk

    # The int32 load feeds the add, so the pair fuses; a stale folded
    # constant turns 1 + 42 into 1 + 0.
    program = _asm_program(
        {"main": [
            a.Pmovimm("eax", 1),
            a.Pload(Chunk.INT32, "ecx", a.AGlobal("g")),
            a.Pbinop("add", "eax", "ecx"),
            a.Pret(),
        ]},
        globals_=[GlobalVar("g", 4, 4, (42).to_bytes(4, "little"))])
    return _codegen_miscompile("stale-const", program)


# ---------------------------------------------------------------------------
# The mutation matrix
# ---------------------------------------------------------------------------

#: Catalog programs the matrix derives certificates and traces from (kept
#: small, fast and auto-analyzable; generated seeds extend the corpus).
#: The recursive pair gives the recursion operators their parametric
#: sites (linear and logarithmic shapes), and the dispatch program keeps
#: a devirtualized call graph in the corpus.
DEFAULT_CATALOG = ("mibench/bitcount.c", "mibench/crc32.c",
                   "mibench/dijkstra.c", "recursive/recid.c",
                   "recursive/bsearch.c", "funcptr/dispatch.c")

#: Generated seeds added to the corpus.
DEFAULT_SEEDS = range(0, 6)

#: Per-operator cap on corpus items tried before declaring the operator
#: undetected (each detection normally lands on the first applicable item).
DEFAULT_MAX_ATTEMPTS = 8


@dataclass
class OperatorOutcome:
    """Detection record for one operator across the corpus."""

    operator: str
    layer: str
    description: str
    detected: bool = False
    caught_by: str = ""            #: which checker/oracle rejected the mutant
    attempts: int = 0              #: corpus items tried (seeds-to-detection)
    inapplicable: int = 0          #: corpus items with no applicable site
    detected_on: str = ""          #: corpus label of the first detection
    diagnostic: str = ""           #: sample rejection diagnostic (or gap note)

    def as_json(self) -> dict:
        return {
            "operator": self.operator, "layer": self.layer,
            "description": self.description, "detected": self.detected,
            "caught_by": self.caught_by, "attempts": self.attempts,
            "inapplicable": self.inapplicable, "detected_on": self.detected_on,
            "diagnostic": self.diagnostic,
        }


@dataclass
class MatrixReport:
    """Aggregate result of one mutation-matrix run."""

    outcomes: list[OperatorOutcome] = field(default_factory=list)
    elapsed: float = 0.0
    corpus: list[str] = field(default_factory=list)

    @property
    def undetected(self) -> list[OperatorOutcome]:
        return [o for o in self.outcomes if not o.detected]

    @property
    def ok(self) -> bool:
        return not self.undetected

    def as_json(self) -> dict:
        return {
            "operators": len(self.outcomes),
            "undetected": [o.operator for o in self.undetected],
            "elapsed_s": round(self.elapsed, 3),
            "corpus": self.corpus,
            "outcomes": [o.as_json() for o in self.outcomes],
        }


def _certificate_corpus(catalog: Iterable[str], seeds: Iterable[int]):
    """Lazily yield ``(label, clight_program, certificate_text)``."""
    from repro.analyzer import StackAnalyzer
    from repro.driver import compile_frontend
    from repro.logic.certificate import export_certificate
    from repro.programs.loader import load_source
    from repro.testing.progen import generate_program

    for path in catalog:
        program = compile_frontend(load_source(path), filename=path)
        yield path, program, export_certificate(
            StackAnalyzer(program).analyze())
    for seed in seeds:
        program = compile_frontend(generate_program(seed),
                                   filename=f"seed{seed}.c")
        yield f"seed{seed}", program, export_certificate(
            StackAnalyzer(program).analyze())


def _trace_corpus(catalog: Iterable[str], seeds: Iterable[int]):
    """Lazily yield ``(label, converged_clight_trace)``."""
    from repro.clight.semantics import run_program
    from repro.driver import compile_frontend
    from repro.events.trace import Converges
    from repro.programs.loader import load_source
    from repro.testing.progen import generate_program

    sources = [(path, load_source(path)) for path in catalog]
    sources += [(f"seed{seed}", generate_program(seed)) for seed in seeds]
    for label, source in sources:
        program = compile_frontend(source, filename=label)
        behavior = run_program(program, fuel=3_000_000)
        if isinstance(behavior, Converges):
            yield label, behavior.trace


def _check_certificate_mutant(outcome: OperatorOutcome, label: str,
                              program, mutated: str) -> bool:
    """Feed one mutant to ``load_certificate``; True once detected."""
    from repro.errors import DerivationError
    from repro.logic.certificate import load_certificate

    outcome.attempts += 1
    try:
        load_certificate(mutated, program)
    except DerivationError as error:
        outcome.detected = True
        outcome.caught_by = "check-cert"
        outcome.detected_on = label
        outcome.diagnostic = str(error)
        return True
    except Exception as error:  # a crash is not a diagnostic
        outcome.detected = False
        outcome.diagnostic = (f"checker crashed on {label}: "
                              f"{type(error).__name__}: {error}")
        return True  # stop trying: crashing is itself the finding
    outcome.diagnostic = f"mutant accepted on {label} (soundness gap)"
    return False


def run_mutation_matrix(catalog: Iterable[str] = DEFAULT_CATALOG,
                        seeds: Iterable[int] = DEFAULT_SEEDS,
                        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                        progress: Optional[Callable] = None) -> MatrixReport:
    """Apply every registered operator and record who catches it.

    Each operator is applied to successive corpus items (catalog programs
    first, then generated seeds) until a checker rejects the mutant or
    ``max_attempts`` items have been tried.  Metric operators run through
    ``check_seed``'s ``plant`` hook on generated seeds only (they corrupt
    a compilation artifact, not a serialized one).
    """
    from repro.testing.oracles import check_seed

    started = time.perf_counter()
    catalog = list(catalog)
    seeds = list(seeds)
    report = MatrixReport(corpus=catalog + [f"seed{s}" for s in seeds])

    cert_corpus: list = []          # materialized lazily, shared by layers
    trace_corpus: list = []

    def certs():
        if not cert_corpus:
            cert_corpus.extend(_certificate_corpus(catalog, seeds))
        return cert_corpus

    def traces():
        if not trace_corpus:
            trace_corpus.extend(_trace_corpus(catalog, seeds))
        return trace_corpus

    for op in operators():
        outcome = OperatorOutcome(op.name, op.layer, op.description)
        report.outcomes.append(outcome)

        if op.layer == "metric":
            for seed in seeds[:max_attempts]:
                outcome.attempts += 1
                verdict = check_seed(seed, plant=op.name,
                                     ablations=["default"], probes=False)
                if not verdict.ok:
                    outcome.detected = True
                    outcome.caught_by = verdict.oracle or ""
                    outcome.detected_on = f"seed{seed}"
                    outcome.diagnostic = verdict.detail or ""
                    break
            if not outcome.detected and not outcome.diagnostic:
                outcome.diagnostic = (
                    f"planted metric survived {outcome.attempts} seed(s)")

        elif op.cross_program:
            corpus = certs()
            if len(corpus) >= 2:
                label_a, _program_a, text_a = corpus[0]
                label_b, program_b, _text_b = corpus[1]
                if _check_certificate_mutant(
                        outcome, f"{label_a} vs {label_b}", program_b, text_a):
                    pass
            else:
                outcome.diagnostic = "corpus too small for a program swap"

        elif op.layer in ("derivation", "certificate"):
            for label, program, text in certs()[:max_attempts]:
                mutated = op.apply(text)
                if mutated is None or mutated == text:
                    outcome.inapplicable += 1
                    continue
                if _check_certificate_mutant(outcome, label, program,
                                             mutated):
                    break
            if not outcome.detected and not outcome.diagnostic:
                outcome.diagnostic = "no applicable site in the corpus"

        elif op.layer in ("analysis", "serving", "codegen", "comparator"):
            # Self-contained scenario: the operator injects its fault
            # into a private store/pool (or a private analyzer/comparator
            # knob or miscompiled engine) and reports who caught it.
            outcome.attempts += 1
            outcome.detected_on = {"serving": "serve-harness",
                                   "codegen": "codegen-harness",
                                   "analysis": "analysis-harness",
                                   "comparator": "comparator-harness"}[
                                       op.layer]
            try:
                detected, caught_by, diagnostic = op.apply()
            except Exception as error:  # a crash is not a diagnostic
                detected, caught_by = False, ""
                diagnostic = (f"{op.layer} harness crashed: "
                              f"{type(error).__name__}: {error}")
            outcome.detected = detected
            outcome.caught_by = caught_by
            outcome.diagnostic = diagnostic

        elif op.layer == "refinement":
            for label, trace in traces()[:max_attempts]:
                mutated = op.apply(trace)
                if mutated is None or tuple(mutated) == tuple(trace):
                    outcome.inapplicable += 1
                    continue
                outcome.attempts += 1
                rejected, oracle, detail = refinement_oracles_reject(
                    mutated, trace)
                if rejected:
                    outcome.detected = True
                    outcome.caught_by = oracle
                    outcome.detected_on = label
                    outcome.diagnostic = detail
                    break
                outcome.diagnostic = (
                    f"mutated trace accepted on {label} (oracle gap)")
            if not outcome.detected and not outcome.diagnostic:
                outcome.diagnostic = "no applicable site in the corpus"

        if progress:
            progress(outcome)

    report.elapsed = time.perf_counter() - started
    return report
