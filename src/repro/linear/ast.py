"""Linear abstract syntax: label/branch code over machine locations."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.clight.ast import GlobalVar
from repro.memory.chunks import Chunk
from repro.regalloc.locations import Loc


class LInstr:
    __slots__ = ()


class Lop(LInstr):
    """``dest = op(args)`` — same operation encoding as RTL's ``Iop``."""

    __slots__ = ("op", "args", "dest")

    def __init__(self, op: tuple, args: Sequence[Loc], dest: Loc) -> None:
        self.op = op
        self.args = tuple(args)
        self.dest = dest

    def __repr__(self) -> str:
        args = ", ".join(map(repr, self.args))
        return f"{self.dest!r} = {self.op}({args})"


class Lload(LInstr):
    __slots__ = ("chunk", "addr", "dest")

    def __init__(self, chunk: Chunk, addr: Loc, dest: Loc) -> None:
        self.chunk = chunk
        self.addr = addr
        self.dest = dest

    def __repr__(self) -> str:
        return f"{self.dest!r} = load {self.chunk.value} [{self.addr!r}]"


class Lstore(LInstr):
    __slots__ = ("chunk", "addr", "src")

    def __init__(self, chunk: Chunk, addr: Loc, src: Loc) -> None:
        self.chunk = chunk
        self.addr = addr
        self.src = src

    def __repr__(self) -> str:
        return f"store {self.chunk.value} [{self.addr!r}] = {self.src!r}"


class Lcall(LInstr):
    """Call with located arguments; ``dest`` receives the result."""

    __slots__ = ("callee", "args", "arg_is_float", "dest", "dest_is_float")

    def __init__(self, callee: str, args: Sequence[Loc],
                 arg_is_float: Sequence[bool], dest: Optional[Loc],
                 dest_is_float: bool) -> None:
        self.callee = callee
        self.args = tuple(args)
        self.arg_is_float = tuple(arg_is_float)
        self.dest = dest
        self.dest_is_float = dest_is_float

    def __repr__(self) -> str:
        dest = f"{self.dest!r} = " if self.dest is not None else ""
        args = ", ".join(map(repr, self.args))
        return f"{dest}call {self.callee}({args})"


class Llabel(LInstr):
    __slots__ = ("label",)

    def __init__(self, label: int) -> None:
        self.label = label

    def __repr__(self) -> str:
        return f"L{self.label}:"


class Lgoto(LInstr):
    __slots__ = ("label",)

    def __init__(self, label: int) -> None:
        self.label = label

    def __repr__(self) -> str:
        return f"goto L{self.label}"


class Lcond(LInstr):
    """Branch to ``label`` if the (integer-class) location is truthy."""

    __slots__ = ("arg", "label")

    def __init__(self, arg: Loc, label: int) -> None:
        self.arg = arg
        self.label = label

    def __repr__(self) -> str:
        return f"if {self.arg!r} goto L{self.label}"


class Lreturn(LInstr):
    __slots__ = ("arg", "is_float")

    def __init__(self, arg: Optional[Loc], is_float: bool) -> None:
        self.arg = arg
        self.is_float = is_float

    def __repr__(self) -> str:
        return f"return {self.arg!r}" if self.arg is not None else "return"


class LinearFunction:
    def __init__(self, name: str, params: Sequence[Loc],
                 param_is_float: Sequence[bool], stacksize: int,
                 int_slots: int, float_slots: int, body: list[LInstr],
                 returns_float: bool) -> None:
        self.name = name
        self.params = list(params)
        self.param_is_float = list(param_is_float)
        self.stacksize = stacksize  # the Cminor locals block, in bytes
        self.int_slots = int_slots
        self.float_slots = float_slots
        self.body = body
        self.returns_float = returns_float

    def pretty(self) -> str:
        lines = [f"{self.name}(params={self.params}, locals={self.stacksize}b, "
                 f"slots={self.int_slots}i+{self.float_slots}f)"]
        for instr in self.body:
            pad = "" if isinstance(instr, Llabel) else "    "
            lines.append(f"{pad}{instr!r}")
        return "\n".join(lines)


class LinearProgram:
    def __init__(self, globals_: Sequence[GlobalVar],
                 functions: dict[str, LinearFunction],
                 externals: set[str], main: str = "main") -> None:
        self.globals = list(globals_)
        self.functions = dict(functions)
        self.externals = set(externals)
        self.main = main

    def is_internal(self, name: str) -> bool:
        return name in self.functions
