"""CompCert-style block memory model shared by the front- and middle-end.

The source, Clight, Cminor, RTL and Mach interpreters all manipulate the
same :class:`~repro.memory.model.Memory`: a collection of disjoint blocks
addressed by ``(block, offset)`` pointers.  Only the final ASMsz machine
(:mod:`repro.asm.machine`) switches to a single flat address space with a
preallocated finite stack — that switch is the heart of the paper's
assembly-generation argument.
"""

from repro.memory.chunks import Chunk
from repro.memory.model import Memory, Pointer
from repro.memory.values import VFloat, VInt, VPtr, VUndef, Value

__all__ = [
    "Chunk",
    "Memory",
    "Pointer",
    "Value",
    "VInt",
    "VFloat",
    "VPtr",
    "VUndef",
]
