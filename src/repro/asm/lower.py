"""Mach → ASMsz code generation.

The expansion follows a deliberately uniform -O0-style discipline built on
the two reserved scratch registers per class (ESI/EDI and XMM6/XMM7):
operands are brought into scratch registers, the two-address ALU op runs
on them, and the result is flushed to the destination location.  The
register allocator never hands out scratch registers, so the expansion
can never clobber a live value.

The prologue is a single ``sub esp, SF(f)`` and the epilogue ``add esp,
SF(f); ret`` — all stack handling is explicit pointer arithmetic, as in
the paper's ASMsz.
"""

from __future__ import annotations

from repro.errors import LoweringError
from repro.asm import ast as asm
from repro.mach import ast as mach
from repro.memory.chunks import Chunk
from repro.regalloc.locations import LFReg, LReg, LSlot, Loc

_INT_ACC = "esi"
_INT_TMP = "edi"
_FLT_ACC = "xmm6"
_FLT_TMP = "xmm7"

_CONVERSIONS_F2I = ("intoffloat", "uintoffloat")
_CONVERSIONS_I2F = ("floatofint", "floatofuint")


def asm_of_mach(program: mach.MachProgram) -> asm.AsmProgram:
    functions = {}
    for function in program.functions.values():
        functions[function.name] = _lower_function(function)
    return asm.AsmProgram(program.globals, functions, program.externals,
                          program.main)


def _lower_function(function: mach.MachFunction) -> asm.AsmFunction:
    emitter = _Emitter(function)
    body: list[asm.PInstr] = []
    if function.frame.size > 0:
        body.append(asm.Pespadd(-function.frame.size))
    for instr in function.body:
        body.extend(emitter.lower(instr))
    return asm.AsmFunction(function.name, body, function.frame.size)


class _Emitter:
    def __init__(self, function: mach.MachFunction) -> None:
        self.function = function
        self.frame = function.frame

    # -- location plumbing -------------------------------------------------------

    def _slot_addr(self, slot: LSlot) -> asm.AStack:
        return asm.AStack(self.frame.slot_offset(slot))

    def read_int(self, loc: Loc, scratch: str,
                 out: list[asm.PInstr]) -> str:
        """Materialize an integer-class location into a register."""
        if isinstance(loc, LReg):
            return loc.name
        if isinstance(loc, LSlot) and not loc.is_float_class:
            out.append(asm.Pload(Chunk.INT32, scratch, self._slot_addr(loc)))
            return scratch
        raise LoweringError(f"integer operand expected, got {loc!r}")

    def read_float(self, loc: Loc, scratch: str,
                   out: list[asm.PInstr]) -> str:
        if isinstance(loc, LFReg):
            return loc.name
        if isinstance(loc, LSlot) and loc.is_float_class:
            out.append(asm.Pload(Chunk.FLOAT64, scratch, self._slot_addr(loc)))
            return scratch
        raise LoweringError(f"float operand expected, got {loc!r}")

    def write_int(self, loc: Loc, reg: str, out: list[asm.PInstr]) -> None:
        if isinstance(loc, LReg):
            if loc.name != reg:
                out.append(asm.Pmov(loc.name, reg))
            return
        if isinstance(loc, LSlot) and not loc.is_float_class:
            out.append(asm.Pstore(Chunk.INT32, reg, self._slot_addr(loc)))
            return
        raise LoweringError(f"integer destination expected, got {loc!r}")

    def write_float(self, loc: Loc, reg: str, out: list[asm.PInstr]) -> None:
        if isinstance(loc, LFReg):
            if loc.name != reg:
                out.append(asm.Pmovf(loc.name, reg))
            return
        if isinstance(loc, LSlot) and loc.is_float_class:
            out.append(asm.Pstore(Chunk.FLOAT64, reg, self._slot_addr(loc)))
            return
        raise LoweringError(f"float destination expected, got {loc!r}")

    def _int_dest_reg(self, loc: Loc) -> str:
        return loc.name if isinstance(loc, LReg) else _INT_ACC

    def _float_dest_reg(self, loc: Loc) -> str:
        return loc.name if isinstance(loc, LFReg) else _FLT_ACC

    # -- instruction dispatch ------------------------------------------------------

    def lower(self, instr: mach.MInstr) -> list[asm.PInstr]:
        out: list[asm.PInstr] = []
        if isinstance(instr, mach.MLabel):
            out.append(asm.Plabel(instr.label))
        elif isinstance(instr, mach.MGoto):
            out.append(asm.Pjmp(instr.label))
        elif isinstance(instr, mach.MCond):
            reg = self.read_int(instr.arg, _INT_ACC, out)
            out.append(asm.Pjcc(reg, instr.label))
        elif isinstance(instr, mach.MReturn):
            if self.frame.size > 0:
                out.append(asm.Pespadd(self.frame.size))
            out.append(asm.Pret())
        elif isinstance(instr, mach.MCall):
            out.append(asm.Pcall(instr.callee))
        elif isinstance(instr, mach.MOp):
            self._lower_op(instr, out)
        elif isinstance(instr, mach.MLoad):
            addr = self.read_int(instr.addr, _INT_ACC, out)
            if instr.chunk.is_float:
                dest = self._float_dest_reg(instr.dest)
                out.append(asm.Pload(instr.chunk, dest, asm.ABase(addr, 0)))
                self.write_float(instr.dest, dest, out)
            else:
                dest = instr.dest.name if isinstance(instr.dest, LReg) \
                    else _INT_TMP
                out.append(asm.Pload(instr.chunk, dest, asm.ABase(addr, 0)))
                self.write_int(instr.dest, dest, out)
        elif isinstance(instr, mach.MStore):
            addr = self.read_int(instr.addr, _INT_ACC, out)
            if instr.chunk.is_float:
                value = self.read_float(instr.src, _FLT_ACC, out)
            else:
                value = self.read_int(instr.src, _INT_TMP, out)
            out.append(asm.Pstore(instr.chunk, value, asm.ABase(addr, 0)))
        elif isinstance(instr, mach.MStoreArg):
            if instr.is_float:
                value = self.read_float(instr.src, _FLT_ACC, out)
                out.append(asm.Pstore(Chunk.FLOAT64, value,
                                      asm.AStack(instr.offset)))
            else:
                value = self.read_int(instr.src, _INT_ACC, out)
                out.append(asm.Pstore(Chunk.INT32, value,
                                      asm.AStack(instr.offset)))
        elif isinstance(instr, mach.MGetParam):
            # Caller's outgoing area: just above our frame + return address.
            offset = self.frame.size + mach.RA_BYTES + instr.offset
            if instr.is_float:
                dest = self._float_dest_reg(instr.dest)
                out.append(asm.Pload(Chunk.FLOAT64, dest, asm.AStack(offset)))
                self.write_float(instr.dest, dest, out)
            else:
                dest = self._int_dest_reg(instr.dest)
                out.append(asm.Pload(Chunk.INT32, dest, asm.AStack(offset)))
                self.write_int(instr.dest, dest, out)
        elif isinstance(instr, mach.MExtCall):
            self._lower_extcall(instr, out)
        else:
            raise LoweringError(f"unknown Mach instruction {instr!r}")
        return out

    def _lower_op(self, instr: mach.MOp, out: list[asm.PInstr]) -> None:
        op = instr.op
        kind = op[0]
        if kind == "const":
            dest = self._int_dest_reg(instr.dest)
            out.append(asm.Pmovimm(dest, op[1]))
            self.write_int(instr.dest, dest, out)
            return
        if kind == "constf":
            dest = self._float_dest_reg(instr.dest)
            out.append(asm.Pmovfimm(dest, op[1]))
            self.write_float(instr.dest, dest, out)
            return
        if kind == "move":
            src_loc = instr.args[0]
            if src_loc.is_float_class:
                value = self.read_float(src_loc, _FLT_ACC, out)
                self.write_float(instr.dest, value, out)
            else:
                value = self.read_int(src_loc, _INT_ACC, out)
                self.write_int(instr.dest, value, out)
            return
        if kind == "addrglobal":
            dest = self._int_dest_reg(instr.dest)
            out.append(asm.Plea(dest, asm.AGlobal(op[1], 0)))
            self.write_int(instr.dest, dest, out)
            return
        if kind == "addrstack":
            dest = self._int_dest_reg(instr.dest)
            out.append(asm.Plea(dest, asm.AStack(op[1])))
            self.write_int(instr.dest, dest, out)
            return
        if kind == "unop":
            self._lower_unop(op[1], instr, out)
            return
        if kind == "binop":
            self._lower_binop(op[1], instr, out)
            return
        raise LoweringError(f"unknown Mach operation {op!r}")

    def _lower_unop(self, op: str, instr: mach.MOp,
                    out: list[asm.PInstr]) -> None:
        arg = instr.args[0]
        if op in _CONVERSIONS_F2I:
            src = self.read_float(arg, _FLT_ACC, out)
            out.append(asm.Pcvt(op, _INT_ACC, src))
            self.write_int(instr.dest, _INT_ACC, out)
            return
        if op in _CONVERSIONS_I2F:
            src = self.read_int(arg, _INT_ACC, out)
            out.append(asm.Pcvt(op, _FLT_ACC, src))
            self.write_float(instr.dest, _FLT_ACC, out)
            return
        if op == "negf":
            src = self.read_float(arg, _FLT_ACC, out)
            if src != _FLT_ACC:
                out.append(asm.Pmovf(_FLT_ACC, src))
            out.append(asm.Pfneg(_FLT_ACC))
            self.write_float(instr.dest, _FLT_ACC, out)
            return
        # integer in-place unop
        src = self.read_int(arg, _INT_ACC, out)
        if src != _INT_ACC:
            out.append(asm.Pmov(_INT_ACC, src))
        out.append(asm.Punop(op, _INT_ACC))
        self.write_int(instr.dest, _INT_ACC, out)

    def _lower_binop(self, op: str, instr: mach.MOp,
                     out: list[asm.PInstr]) -> None:
        a, b = instr.args
        if op.startswith("cmpf_"):
            left = self.read_float(a, _FLT_ACC, out)
            right = self.read_float(b, _FLT_TMP, out)
            out.append(asm.Pcmpf(op, _INT_ACC, left, right))
            self.write_int(instr.dest, _INT_ACC, out)
            return
        if op in ("addf", "subf", "mulf", "divf"):
            left = self.read_float(a, _FLT_ACC, out)
            if left != _FLT_ACC:
                out.append(asm.Pmovf(_FLT_ACC, left))
            right = self.read_float(b, _FLT_TMP, out)
            out.append(asm.Pbinopf(op, _FLT_ACC, right))
            self.write_float(instr.dest, _FLT_ACC, out)
            return
        left = self.read_int(a, _INT_ACC, out)
        if left != _INT_ACC:
            out.append(asm.Pmov(_INT_ACC, left))
        right = self.read_int(b, _INT_TMP, out)
        out.append(asm.Pbinop(op, _INT_ACC, right))
        self.write_int(instr.dest, _INT_ACC, out)

    def _lower_extcall(self, instr: mach.MExtCall,
                       out: list[asm.PInstr]) -> None:
        int_scratch = [_INT_ACC, _INT_TMP]
        float_scratch = [_FLT_ACC, _FLT_TMP]
        arg_regs: list[str] = []
        for loc, is_float in zip(instr.args, instr.arg_is_float):
            if is_float:
                if not float_scratch:
                    raise LoweringError(
                        f"{instr.callee}: too many float arguments")
                scratch = float_scratch.pop(0)
                reg = self.read_float(loc, scratch, out)
                if reg != scratch:
                    out.append(asm.Pmovf(scratch, reg))
                arg_regs.append(scratch)
            else:
                if not int_scratch:
                    raise LoweringError(
                        f"{instr.callee}: too many integer arguments")
                scratch = int_scratch.pop(0)
                reg = self.read_int(loc, scratch, out)
                if reg != scratch:
                    out.append(asm.Pmov(scratch, reg))
                arg_regs.append(scratch)
        dest_reg = None
        if instr.dest is not None:
            dest_reg = (self._float_dest_reg(instr.dest)
                        if instr.dest_is_float
                        else self._int_dest_reg(instr.dest))
        out.append(asm.Pbuiltin(instr.callee, arg_regs, instr.arg_is_float,
                                dest_reg, instr.dest_is_float))
        if instr.dest is not None:
            assert dest_reg is not None
            if instr.dest_is_float:
                self.write_float(instr.dest, dest_reg, out)
            else:
                self.write_int(instr.dest, dest_reg, out)
