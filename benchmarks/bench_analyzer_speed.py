"""Benchmark for the paper's §6 performance claim.

"The automatic stack-bound analysis runs very efficiently and needs less
than a second for every example file."  Here we time just the analyzer
(call-graph + auto_bound + derivation construction) on the pre-lowered
Clight programs, and also the full derivation re-check.

    pytest benchmarks/bench_analyzer_speed.py --benchmark-only
"""

import pytest

from repro.analyzer import StackAnalyzer
from repro.c.parser import parse
from repro.c.typecheck import typecheck
from repro.clight.from_c import clight_of_program
from repro.programs.catalog import AUTO_ANALYZABLE
from repro.programs.loader import load_source


def lowered(path):
    program = parse(load_source(path), path)
    env = typecheck(program)
    return clight_of_program(program, env)


@pytest.mark.parametrize("path", AUTO_ANALYZABLE)
def test_analyzer_under_one_second(benchmark, path):
    clight = lowered(path)
    result = benchmark(lambda: StackAnalyzer(clight).analyze())
    assert result.elapsed_seconds < 1.0  # the paper's claim
    benchmark.extra_info["functions"] = len(result.functions)


@pytest.mark.parametrize("path", ["certikos/proc.c", "mibench/md5.c"])
def test_derivation_check_speed(benchmark, path):
    clight = lowered(path)
    analysis = StackAnalyzer(clight).analyze()

    def recheck():
        return analysis.check()

    report = benchmark(recheck)
    assert report.fully_exact


def test_frontend_speed(benchmark):
    source = load_source("certikos/vmm.c")

    def frontend():
        program = parse(source, "vmm.c")
        env = typecheck(program)
        return clight_of_program(program, env)

    clight = benchmark(frontend)
    assert clight.functions
