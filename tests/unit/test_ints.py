"""Unit tests for 32-bit machine arithmetic (repro.ints)."""

import pytest

from repro import ints
from repro.errors import UndefinedBehaviorError


class TestWrapAndViews:
    def test_wrap_identity_in_range(self):
        assert ints.wrap(0) == 0
        assert ints.wrap(ints.MAX_UNSIGNED) == ints.MAX_UNSIGNED

    def test_wrap_overflow(self):
        assert ints.wrap(1 << 32) == 0
        assert ints.wrap((1 << 32) + 5) == 5

    def test_wrap_negative(self):
        assert ints.wrap(-1) == ints.MAX_UNSIGNED
        assert ints.wrap(-2) == ints.MAX_UNSIGNED - 1

    def test_signed_view(self):
        assert ints.to_signed(0) == 0
        assert ints.to_signed(ints.MAX_UNSIGNED) == -1
        assert ints.to_signed(0x80000000) == ints.MIN_SIGNED
        assert ints.to_signed(0x7FFFFFFF) == ints.MAX_SIGNED

    def test_roundtrip_signed(self):
        for value in (-1, 0, 1, ints.MIN_SIGNED, ints.MAX_SIGNED, -12345):
            assert ints.to_signed(ints.to_unsigned(value)) == value

    def test_sign_extensions(self):
        assert ints.sign_extend8(0x7F) == 0x7F
        assert ints.sign_extend8(0x80) == ints.wrap(-128)
        assert ints.sign_extend8(0xFF) == ints.wrap(-1)
        assert ints.sign_extend16(0x8000) == ints.wrap(-32768)
        assert ints.sign_extend16(0x7FFF) == 0x7FFF

    def test_narrow_wraps(self):
        assert ints.wrap8(0x1FF) == 0xFF
        assert ints.wrap16(0x12345) == 0x2345


class TestArithmetic:
    def test_add_wraps(self):
        assert ints.add(ints.MAX_UNSIGNED, 1) == 0

    def test_sub_wraps(self):
        assert ints.sub(0, 1) == ints.MAX_UNSIGNED

    def test_mul_wraps(self):
        assert ints.mul(1 << 16, 1 << 16) == 0

    def test_neg(self):
        assert ints.to_signed(ints.neg(ints.to_unsigned(5))) == -5
        assert ints.neg(0) == 0

    def test_signed_division_truncates_toward_zero(self):
        assert ints.to_signed(ints.div_s(ints.to_unsigned(-7), 2)) == -3
        assert ints.to_signed(ints.div_s(7, ints.to_unsigned(-2))) == -3
        assert ints.to_signed(ints.div_s(7, 2)) == 3

    def test_signed_modulo_sign_of_dividend(self):
        assert ints.to_signed(ints.mod_s(ints.to_unsigned(-7), 2)) == -1
        assert ints.to_signed(ints.mod_s(7, ints.to_unsigned(-2))) == 1

    def test_division_by_zero_is_ub(self):
        with pytest.raises(UndefinedBehaviorError):
            ints.div_s(1, 0)
        with pytest.raises(UndefinedBehaviorError):
            ints.div_u(1, 0)
        with pytest.raises(UndefinedBehaviorError):
            ints.mod_s(1, 0)
        with pytest.raises(UndefinedBehaviorError):
            ints.mod_u(1, 0)

    def test_int_min_overflow_is_ub(self):
        int_min = ints.to_unsigned(ints.MIN_SIGNED)
        minus_one = ints.to_unsigned(-1)
        with pytest.raises(UndefinedBehaviorError):
            ints.div_s(int_min, minus_one)
        with pytest.raises(UndefinedBehaviorError):
            ints.mod_s(int_min, minus_one)

    def test_unsigned_division(self):
        assert ints.div_u(ints.MAX_UNSIGNED, 2) == ints.MAX_UNSIGNED // 2
        assert ints.mod_u(10, 3) == 1


class TestBitwise:
    def test_basic_ops(self):
        assert ints.and_(0b1100, 0b1010) == 0b1000
        assert ints.or_(0b1100, 0b1010) == 0b1110
        assert ints.xor(0b1100, 0b1010) == 0b0110
        assert ints.not_(0) == ints.MAX_UNSIGNED

    def test_shift_counts_mod_32(self):
        assert ints.shl(1, 32) == 1
        assert ints.shl(1, 33) == 2
        assert ints.shr_u(4, 34) == 1

    def test_arithmetic_vs_logical_shift(self):
        minus_two = ints.to_unsigned(-2)
        assert ints.to_signed(ints.shr_s(minus_two, 1)) == -1
        assert ints.shr_u(minus_two, 1) == 0x7FFFFFFF


class TestComparisons:
    def test_signed_vs_unsigned_ordering(self):
        minus_one = ints.to_unsigned(-1)
        assert ints.lt_s(minus_one, 0) == 1
        assert ints.lt_u(minus_one, 0) == 0
        assert ints.gt_u(minus_one, 0) == 1

    def test_equality(self):
        assert ints.eq(5, 5) == 1
        assert ints.ne(5, 6) == 1
        assert ints.eq(ints.to_unsigned(-1), ints.MAX_UNSIGNED) == 1

    def test_boundary_ordering(self):
        assert ints.le_s(ints.to_unsigned(ints.MIN_SIGNED),
                         ints.to_unsigned(ints.MAX_SIGNED)) == 1
        assert ints.ge_u(0x80000000, 0x7FFFFFFF) == 1


class TestFloatConversions:
    def test_truncation_toward_zero(self):
        assert ints.to_signed(ints.of_float_signed(2.9)) == 2
        assert ints.to_signed(ints.of_float_signed(-2.9)) == -2

    def test_nan_is_ub(self):
        with pytest.raises(UndefinedBehaviorError):
            ints.of_float_signed(float("nan"))

    def test_out_of_range_is_ub(self):
        with pytest.raises(UndefinedBehaviorError):
            ints.of_float_signed(2.0 ** 40)
        with pytest.raises(UndefinedBehaviorError):
            ints.of_float_signed(-(2.0 ** 40))

    def test_int_to_float_exact(self):
        assert ints.to_float_signed(ints.to_unsigned(-5)) == -5.0
        assert ints.to_float_unsigned(ints.MAX_UNSIGNED) == float(2 ** 32 - 1)
