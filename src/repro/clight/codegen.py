"""Per-program specialized driver for the Clight codegen tier.

The decoded engine (:mod:`repro.clight.decode`) already compiles every
statement into threaded closures; what is left on the hot path is the
generic driver — the per-step ``for i in range(fuel)`` bookkeeping and
the interpretive ``_enter_main`` entry.  This tier generates Python
source *per program*: the entry sequence is constant-folded (the arity
guard is resolved at generation time, temp counts and stack-block specs
become literals) and the dispatch loop is unrolled so the fuel check
runs once per batch.  Step accounting survives unrolling via
:func:`repro.engines.recover_steps`, which reads the batch counter and
the raising statement's ordinal out of the traceback — the raising op
is *not* counted, exactly like the decoded/legacy loops.

Specializations are cached per program in a ``WeakKeyDictionary`` (the
Clight decoder itself caches, so program objects are stable keys).
"""

from __future__ import annotations

import time
from typing import Optional
from weakref import WeakKeyDictionary

from repro import engines, obs
from repro.clight import ast as cl
from repro.clight import decode
from repro.clight.decode import KCALL, K_STOP, UNDEF
from repro.errors import DynamicError, FuelExhaustedError
from repro.events.stream import Consumer, StreamOutcome

_FILENAME = "<codegen:clight>"

_NAMESPACE = {
    "UNDEF": UNDEF,
    "KCALL": KCALL,
    "K_STOP": K_STOP,
    "DynamicError": DynamicError,
}


class _Spec:
    __slots__ = ("run", "slots", "source")

    def __init__(self, run, slots, source) -> None:
        self.run = run
        self.slots = slots
        self.source = source


_spec_cache: "WeakKeyDictionary[cl.Program, _Spec]" = WeakKeyDictionary()


def _entry_lines(program: cl.Program, dprog) -> list[str]:
    """The constant-folded equivalent of ``decode._enter_main``."""
    main = program.function(program.main)
    if main.params:
        return ["raise DynamicError("
                "'main with parameters is not supported')"]
    rec = dprog.functions[program.main]
    lines = [
        "m.kont = (KCALL, None, None, m.temps, m.blocks, K_STOP)",
        f"m.temps = [UNDEF] * {rec.n_temps}",
    ]
    if rec.block_spec:
        lines.append("alloc = m.memory.alloc")
        blocks = ", ".join(f"alloc({size}, tag={tag!r})"
                           for size, tag in rec.block_spec)
        lines.append(f"m.blocks = [{blocks}]")
    else:
        lines.append("m.blocks = []")
    lines.append("m.frec = rec")
    lines.append("m.sink(rec.call_event)")
    lines.append("code = rec.entry")
    return lines


def specialize(program: cl.Program, dprog=None) -> _Spec:
    """Generate (or fetch) the specialized driver for ``program``."""
    spec = _spec_cache.get(program)
    if spec is not None:
        if obs.enabled:
            obs.add("codegen.clight.cache.hits")
        return spec
    if obs.enabled:
        obs.add("codegen.clight.cache.misses")
    if dprog is None:
        dprog = decode.decode_program(program)
    t0 = time.perf_counter()
    run, slots, source = engines.build_driver(
        _FILENAME, _entry_lines(program, dprog), _NAMESPACE)
    spec = _Spec(run, slots, source)
    if obs.enabled:
        obs.observe("codegen.compile_seconds", time.perf_counter() - t0)
    _spec_cache[program] = spec
    return spec


def codegen_source(program: cl.Program) -> str:
    """The generated driver source (CI artifact on differential failure)."""
    return specialize(program).source


def run_streamed(program: cl.Program, sink: Consumer, fuel: int,
                 output: Optional[list] = None) -> StreamOutcome:
    """Run the codegen driver, feeding every event into ``sink``.

    Classification is statement-for-statement the decoded tail: the
    fuel edge (completing on the very last unit reports divergence),
    the ``FuelExhaustedError`` special case, and ``GoesWrong`` step
    counts that exclude the raising op all match.
    """
    dprog = decode.decode_program(program)
    counting = decode._Counting(sink)
    m = decode.DecodedClightMachine(program, counting, output=output)
    spec = specialize(program, dprog)
    rec = dprog.functions[program.main]
    try:
        try:
            spec.run(m, rec, fuel)
            return StreamOutcome(StreamOutcome.DIVERGES,
                                 events=counting.count, steps=fuel)
        except TypeError as exc:
            i, code = engines.recover_steps(exc, _FILENAME, spec.slots)
            if i is None or code is not None:
                raise  # a genuine TypeError inside an op
    except FuelExhaustedError as exc:
        i, _ = engines.recover_steps(exc, _FILENAME, spec.slots)
        return StreamOutcome(StreamOutcome.DIVERGES,
                             events=counting.count, steps=i or 0)
    except DynamicError as exc:
        i, _ = engines.recover_steps(exc, _FILENAME, spec.slots)
        return StreamOutcome(StreamOutcome.GOES_WRONG, reason=str(exc),
                             events=counting.count, steps=i or 0)
    if not m.done:
        return StreamOutcome(StreamOutcome.DIVERGES,
                             events=counting.count, steps=i)
    return StreamOutcome(StreamOutcome.CONVERGES,
                         return_code=m.return_code,
                         events=counting.count, steps=i)
