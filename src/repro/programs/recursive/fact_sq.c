/* Table 2: fact_sq — computes fact(n * n) with a linearly recursive
 * factorial, demonstrating the modularity of the logic: the bound of
 * fact is verified first, then reused for the call fact(n^2).
 * Verified bound: M(fact_sq) + n^2 * M(fact) bytes (paper: 40 + 24 n^2). */

#ifndef N
#define N 10
#endif

unsigned int fact(unsigned int n) {
    if (n <= 1) return 1;
    return n * fact(n - 1);
}

unsigned int fact_sq(unsigned int n) {
    return fact(n * n);
}

int main() {
    unsigned int r = fact_sq(N);
    print_int((int)r);
    /* fact(N*N) mod 2^32 is 0 for N >= 6 (34 factors of two in 36!),
     * so self-check on a small instance instead — but only when that
     * does not deepen the stack beyond the N-instance the Figure 7
     * sweep is measuring. */
    if (N >= 2) {
        return fact_sq(2) == 24;
    }
    return r == 1;
}
