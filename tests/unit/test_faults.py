"""Unit tests for the fault-operator registry (repro.testing.faults)."""

import json

import pytest

from repro.analyzer import StackAnalyzer
from repro.driver import compile_c, compile_frontend
from repro.events.trace import CallEvent, IOEvent, ReturnEvent
from repro.logic.certificate import export_certificate
from repro.programs.loader import load_source
from repro.testing.faults import (LAYERS, UnknownFaultError,
                                  apply_metric_fault, get_operator,
                                  metric_fault_names, operators,
                                  refinement_oracles_reject, validate_plant)

SOURCE = """
int leaf(int x) { int a[4]; a[x & 3] = x; return a[0] + 1; }
int main(void) { print_int(leaf(3)); return 0; }
"""


@pytest.fixture(scope="module")
def compilation():
    return compile_c(SOURCE, filename="faults_unit.c")


@pytest.fixture(scope="module")
def cert_text(compilation):
    return export_certificate(StackAnalyzer(compilation.clight).analyze())


class TestRegistry:
    def test_issue_floor_of_twelve_operators(self):
        assert len(operators()) >= 12

    def test_every_layer_is_populated(self):
        for layer in LAYERS:
            assert operators(layer), f"no operators in layer {layer!r}"

    def test_names_are_unique_and_resolvable(self):
        names = [op.name for op in operators()]
        assert len(names) == len(set(names))
        for name in names:
            assert get_operator(name).name == name

    def test_unknown_operator_raises(self):
        with pytest.raises(UnknownFaultError, match="registered"):
            get_operator("drop-everything")

    def test_plants_are_exactly_the_metric_layer(self):
        assert metric_fault_names() == [op.name
                                        for op in operators("metric")]

    def test_validate_plant(self):
        validate_plant(None)
        for name in metric_fault_names():
            validate_plant(name)
        with pytest.raises(UnknownFaultError, match="known plants"):
            validate_plant("drop-sp")
        with pytest.raises(UnknownFaultError):
            validate_plant("json-malform")  # right registry, wrong layer


class TestMetricOperators:
    def test_drop_ra_removes_four_bytes_everywhere(self, compilation):
        clean = compilation.metric
        mutant = apply_metric_fault("drop-ra", compilation)
        for name in compilation.frame_sizes:
            assert mutant.cost(name) == clean.cost(name) - 4

    def test_shrink_and_misalign_hit_main(self, compilation):
        main = compilation.asm.main
        clean = compilation.metric.cost(main)
        assert apply_metric_fault("shrink-frame",
                                  compilation).cost(main) == clean - 8
        assert apply_metric_fault("misalign-frame",
                                  compilation).cost(main) == clean - 2

    def test_unknown_plant_fails_before_any_work(self, compilation):
        with pytest.raises(UnknownFaultError):
            apply_metric_fault("nope", compilation)


class TestCertificateOperators:
    """Each operator mutates certificate text into *different* text."""

    CERT_OPS = ["const-decrement", "post-slot-swap", "frame-premise-drop",
                "call-retarget", "total-bound-corrupt", "frame-negative",
                "spec-corrupt", "rule-tree-truncate", "version-skew",
                "json-malform"]

    @pytest.mark.parametrize("name", CERT_OPS)
    def test_operator_produces_a_distinct_mutant(self, name, cert_text):
        mutated = get_operator(name).apply(cert_text)
        if mutated is None:
            pytest.skip(f"{name} has no site in this program's certificate")
        assert mutated != cert_text

    def test_version_skew_bumps_version(self, cert_text):
        mutated = get_operator("version-skew").apply(cert_text)
        assert (json.loads(mutated)["version"]
                == json.loads(cert_text)["version"] + 1)

    def test_json_malform_is_not_json(self, cert_text):
        mutated = get_operator("json-malform").apply(cert_text)
        with pytest.raises(ValueError):
            json.loads(mutated)


class TestRefinementOperators:
    TRACE = (CallEvent("main"), CallEvent("f"),
             IOEvent("print_int", (1,), 0),
             ReturnEvent("f"), ReturnEvent("main"))

    def test_call_drop_orphans_the_return(self):
        mutated = get_operator("call-drop").apply(self.TRACE)
        rejected, oracle, _ = refinement_oracles_reject(mutated, self.TRACE)
        assert rejected and oracle == "well-bracketing"

    def test_ret_drop_needs_the_empty_stack_check(self):
        # Dropping the final ret(main) leaves a *prefix* of a bracketed
        # trace — only the converged-trace emptiness requirement sees it.
        mutated = get_operator("ret-drop").apply(self.TRACE)
        rejected, oracle, _ = refinement_oracles_reject(mutated, self.TRACE)
        assert rejected and oracle == "well-bracketing"

    def test_duplicates_are_rejected(self):
        for name in ("call-duplicate", "ret-duplicate"):
            mutated = get_operator(name).apply(self.TRACE)
            rejected, _oracle, _ = refinement_oracles_reject(mutated,
                                                             self.TRACE)
            assert rejected, name

    def test_io_drop_breaks_the_pruned_match(self):
        mutated = get_operator("io-drop").apply(self.TRACE)
        rejected, oracle, _ = refinement_oracles_reject(mutated, self.TRACE)
        assert rejected and oracle == "pruned-trace"

    def test_operators_are_inapplicable_on_empty_traces(self):
        for op in operators("refinement"):
            assert op.apply(()) is None

    def test_clean_trace_is_accepted(self):
        rejected, _oracle, _ = refinement_oracles_reject(self.TRACE,
                                                         self.TRACE)
        assert not rejected


class TestServingOperators:
    """Each serving scenario injects its fault and names who caught it."""

    def test_registry_has_the_three_scenarios(self):
        names = {op.name for op in operators("serving")}
        assert {"stale-cache-entry", "response-truncate",
                "worker-death"} <= names

    def test_stale_cache_entry_is_caught_by_store_integrity(self):
        detected, caught_by, diagnostic = \
            get_operator("stale-cache-entry").apply()
        assert detected, diagnostic
        assert caught_by == "store-integrity"

    def test_response_truncate_is_caught_by_the_schema_validator(self):
        detected, caught_by, diagnostic = \
            get_operator("response-truncate").apply()
        assert detected, diagnostic
        assert caught_by == "response-schema"

    def test_worker_death_is_caught_by_the_request_timeout(self):
        detected, caught_by, diagnostic = \
            get_operator("worker-death").apply()
        assert detected, diagnostic
        assert caught_by == "request-timeout"

    def test_serving_operators_are_not_plants(self):
        # --plant is a compiler-layer concept; the serving scenarios
        # must never leak into the campaign's plant namespace.
        for op in operators("serving"):
            assert op.name not in metric_fault_names()


class TestComparatorOperators:
    """Each comparator fault must be caught by the cross-check backend."""

    def test_registry_has_both_scenarios(self):
        names = {op.name for op in operators("comparator")}
        assert {"fm-strict-gap-drop", "fm-nonneg-drop"} <= names

    @pytest.mark.parametrize("name", ["fm-strict-gap-drop",
                                      "fm-nonneg-drop"])
    def test_fault_is_caught_by_the_cross_check(self, name):
        detected, caught_by, diagnostic = get_operator(name).apply()
        assert detected, diagnostic
        # With z3 installed the differential itself disagrees; without it
        # the witness audit flags the uncertifiable refusal.  Either way
        # the lie does not survive.
        assert caught_by in ("smt-differential", "witness-audit")

    @pytest.mark.parametrize("name", ["fm-strict-gap-drop",
                                      "fm-nonneg-drop"])
    def test_fault_does_not_leak(self, name):
        from repro.logic import bexpr

        get_operator(name).apply()
        assert bexpr._FAULT is None
        assert bexpr.get_default_backend() == "fm"

    def test_comparator_operators_are_not_plants(self):
        for op in operators("comparator"):
            assert op.name not in metric_fault_names()


class TestCatalogCorpusIsAnalyzable:
    def test_default_catalog_members_analyze(self):
        from repro.testing.faults import DEFAULT_CATALOG

        for path in DEFAULT_CATALOG:
            program = compile_frontend(load_source(path), filename=path)
            StackAnalyzer(program).analyze()
