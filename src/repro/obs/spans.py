"""Span-based tracing: nested wall/CPU-time regions with attributes.

A *span* is one timed region of the pipeline (``compile.rtl.constprop``,
``exec.asm``, ``campaign.seed``).  Spans nest: the recorder keeps a stack
of open spans, so a span started while another is open becomes its child
and the export formats can reconstruct the whole tree.  Each span records

* ``ts`` — wall-clock start (``time.time()`` epoch seconds, so spans from
  different processes land on one timeline),
* ``dur`` — wall duration (``perf_counter`` delta, monotonic),
* ``cpu`` — CPU duration (``process_time`` delta),
* ``attrs`` — free-form JSON-scalar attributes (step counts, verdicts).

Span identity is the pair ``(pid, id)``: ids are sequential per process,
and campaign workers ship their finished spans back to the parent
recorder (:meth:`SpanRecorder.adopt`), where the pid keeps them distinct.

Everything here is allocation-light but not free; the no-op path for
disabled instrumentation lives in :mod:`repro.obs` (``NULL_SPAN``), never
here.
"""

from __future__ import annotations

import os
import time
from typing import Optional

#: Span-record schema identifier (bump on any incompatible field change).
SPAN_SCHEMA = "repro.obs.spans/1"


class Span:
    """One timed region; also its own context manager.

    Use through :func:`repro.obs.span`; entering starts the clocks,
    exiting stops them and files the record with the recorder.  ``set``
    attaches attributes from inside the region::

        with obs.span("exec.asm", engine="decoded") as sp:
            behavior = run(...)
            sp.set(steps=machine.steps)
    """

    __slots__ = ("recorder", "name", "attrs", "ts", "dur", "cpu", "pid",
                 "sid", "parent", "_t0", "_c0")

    def __init__(self, recorder: "SpanRecorder", name: str,
                 attrs: Optional[dict] = None) -> None:
        self.recorder = recorder
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.ts = 0.0
        self.dur = 0.0
        self.cpu = 0.0
        self.pid = recorder.pid
        self.sid = 0
        self.parent: Optional[int] = None
        self._t0 = 0.0
        self._c0 = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes (JSON scalars) to the span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.recorder._open(self)
        self.ts = time.time()
        self._c0 = time.process_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.dur = time.perf_counter() - self._t0
        self.cpu = time.process_time() - self._c0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.recorder._close(self)

    def as_record(self) -> dict:
        """The JSONL-ready record for this span."""
        return {"name": self.name, "ts": round(self.ts, 6),
                "dur": round(self.dur, 9), "cpu": round(self.cpu, 9),
                "pid": self.pid, "id": self.sid, "parent": self.parent,
                "attrs": self.attrs}

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.dur * 1000:.2f} ms, "
                f"attrs={self.attrs!r})")


class SpanRecorder:
    """Collects finished spans (as plain record dicts) in finish order.

    ``records`` holds dicts, not :class:`Span` objects, so adopted
    cross-process spans and locally recorded ones are uniform and the
    export step is a straight dump.
    """

    def __init__(self) -> None:
        self.pid = os.getpid()
        self.records: list[dict] = []
        self._stack: list[Span] = []
        self._next_id = 1

    def span(self, name: str, attrs: Optional[dict] = None) -> Span:
        return Span(self, name, attrs)

    def _open(self, span: Span) -> None:
        # fork() inheritance: a worker that inherited a pre-fork recorder
        # must not reuse the parent's pid or continue its id sequence.
        pid = os.getpid()
        if pid != self.pid:
            self.pid = pid
            self.records = []
            self._stack = []
            self._next_id = 1
        span.pid = pid
        span.sid = self._next_id
        self._next_id += 1
        span.parent = self._stack[-1].sid if self._stack else None
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # out-of-order exit (generator suspension): drop from stack
            self._stack = [s for s in self._stack if s is not span]
        self.records.append(span.as_record())

    def adopt(self, records: list[dict]) -> None:
        """File span records produced by another process (campaign workers)."""
        self.records.extend(records)

    def drain(self) -> list[dict]:
        """Return and clear the finished records (open spans stay open)."""
        records, self.records = self.records, []
        return records

    def clear(self) -> None:
        self.records.clear()
        self._stack.clear()
        self._next_id = 1


class NullSpan:
    """The shared no-op span handed out while instrumentation is off.

    Supports the full :class:`Span` surface so instrumented code never
    branches: ``with obs.span(...) as sp: ... sp.set(...)`` costs three
    trivial method calls when disabled.
    """

    __slots__ = ()

    dur = 0.0
    cpu = 0.0
    attrs: dict = {}

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def set(self, **attrs) -> "NullSpan":
        return self


NULL_SPAN = NullSpan()
