"""Evaluation of the machine-level operators shared by all IRs.

Clight, Cminor and RTL all use the same explicit operator vocabulary (the
front end compiles C's overloaded operators into it), so one evaluation
module serves every interpreter.  Operators are polymorphic over pointers
the same way CompCert's are: ``add``/``sub`` perform pointer arithmetic,
``sub`` of two pointers into the same block yields their offset distance,
and comparisons are defined on pointers within one block (plus ``==``/
``!=`` against NULL).
"""

from __future__ import annotations

from typing import Callable

from repro import ints
from repro.errors import UndefinedBehaviorError
from repro.memory.values import VFloat, VInt, VPtr, VUndef, Value

UNOPS = (
    "neg", "notint", "notbool", "negf",
    "intoffloat", "uintoffloat", "floatofint", "floatofuint",
    "cast8signed", "cast8unsigned", "cast16signed", "cast16unsigned",
)

_INT_BINOPS: dict[str, Callable[[int, int], int]] = {
    "add": ints.add,
    "sub": ints.sub,
    "mul": ints.mul,
    "divs": ints.div_s,
    "divu": ints.div_u,
    "mods": ints.mod_s,
    "modu": ints.mod_u,
    "and": ints.and_,
    "or": ints.or_,
    "xor": ints.xor,
    "shl": ints.shl,
    "shrs": ints.shr_s,
    "shru": ints.shr_u,
}

_INT_COMPARES: dict[str, Callable[[int, int], int]] = {
    "cmp_eq": ints.eq,
    "cmp_ne": ints.ne,
    "cmp_lts": ints.lt_s,
    "cmp_les": ints.le_s,
    "cmp_gts": ints.gt_s,
    "cmp_ges": ints.ge_s,
    "cmp_ltu": ints.lt_u,
    "cmp_leu": ints.le_u,
    "cmp_gtu": ints.gt_u,
    "cmp_geu": ints.ge_u,
}

_FLOAT_BINOPS: dict[str, Callable[[float, float], float]] = {
    "addf": lambda a, b: a + b,
    "subf": lambda a, b: a - b,
    "mulf": lambda a, b: a * b,
}

_FLOAT_COMPARES: dict[str, Callable[[float, float], bool]] = {
    "cmpf_eq": lambda a, b: a == b,
    "cmpf_ne": lambda a, b: a != b,
    "cmpf_lt": lambda a, b: a < b,
    "cmpf_le": lambda a, b: a <= b,
    "cmpf_gt": lambda a, b: a > b,
    "cmpf_ge": lambda a, b: a >= b,
}

BINOPS = tuple(
    list(_INT_BINOPS) + list(_INT_COMPARES) + list(_FLOAT_BINOPS)
    + list(_FLOAT_COMPARES) + ["divf"]
)

# Comparison conditions reused by RTL branch instructions and assembly.
INT_CONDITIONS = ("eq", "ne", "lts", "les", "gts", "ges", "ltu", "leu",
                  "gtu", "geu")
FLOAT_CONDITIONS = ("eq", "ne", "lt", "le", "gt", "ge")


def eval_unop(op: str, value: Value) -> Value:
    if isinstance(value, VUndef):
        raise UndefinedBehaviorError(f"unop {op} on undefined value")
    if op == "neg":
        return VInt(ints.neg(_int(value, op)))
    if op == "notint":
        return VInt(ints.not_(_int(value, op)))
    if op == "notbool":
        if isinstance(value, VInt):
            return VInt(0 if value.value != 0 else 1)
        if isinstance(value, VFloat):
            return VInt(0 if value.value != 0.0 else 1)
        if isinstance(value, VPtr):
            return VInt(0)
        raise UndefinedBehaviorError(f"notbool on {value!r}")
    if op == "negf":
        return VFloat(-_float(value, op))
    if op == "intoffloat":
        return VInt(ints.of_float_signed(_float(value, op)))
    if op == "uintoffloat":
        f = _float(value, op)
        if f != f:
            raise UndefinedBehaviorError("float-to-uint conversion of NaN")
        truncated = int(f)
        if truncated < 0 or truncated > ints.MAX_UNSIGNED:
            raise UndefinedBehaviorError(
                f"float-to-uint conversion out of range: {f!r}")
        return VInt(truncated)
    if op == "floatofint":
        return VFloat(ints.to_float_signed(_int(value, op)))
    if op == "floatofuint":
        return VFloat(ints.to_float_unsigned(_int(value, op)))
    if op == "cast8signed":
        return VInt(ints.sign_extend8(_int(value, op)))
    if op == "cast8unsigned":
        return VInt(ints.wrap8(_int(value, op)))
    if op == "cast16signed":
        return VInt(ints.sign_extend16(_int(value, op)))
    if op == "cast16unsigned":
        return VInt(ints.wrap16(_int(value, op)))
    raise UndefinedBehaviorError(f"unknown unary operator {op!r}")


def eval_binop(op: str, left: Value, right: Value) -> Value:
    if isinstance(left, VUndef) or isinstance(right, VUndef):
        raise UndefinedBehaviorError(f"binop {op} on undefined value")
    if op == "add":
        if isinstance(left, VPtr) and isinstance(right, VInt):
            return left.add(right.value)
        if isinstance(left, VInt) and isinstance(right, VPtr):
            return right.add(left.value)
        return VInt(ints.add(_int(left, op), _int(right, op)))
    if op == "sub":
        if isinstance(left, VPtr) and isinstance(right, VInt):
            return left.add(ints.neg(right.value))
        if isinstance(left, VPtr) and isinstance(right, VPtr):
            if left.block != right.block:
                raise UndefinedBehaviorError(
                    "subtraction of pointers into different blocks")
            return VInt(ints.sub(left.offset, right.offset))
        return VInt(ints.sub(_int(left, op), _int(right, op)))
    if op in _INT_BINOPS:
        return VInt(_INT_BINOPS[op](_int(left, op), _int(right, op)))
    if op in _INT_COMPARES:
        return _compare(op, left, right)
    if op in _FLOAT_BINOPS:
        return VFloat(_FLOAT_BINOPS[op](_float(left, op), _float(right, op)))
    if op == "divf":
        a, b = _float(left, op), _float(right, op)
        if b == 0.0:
            # IEEE semantics: produce inf/nan rather than going wrong,
            # matching CompCert's float division.
            if a == 0.0 or a != a:
                return VFloat(float("nan"))
            return VFloat(float("inf") if (a > 0) == (b >= 0) else float("-inf"))
        return VFloat(a / b)
    if op in _FLOAT_COMPARES:
        return VInt(1 if _FLOAT_COMPARES[op](_float(left, op), _float(right, op)) else 0)
    raise UndefinedBehaviorError(f"unknown binary operator {op!r}")


def _compare(op: str, left: Value, right: Value) -> VInt:
    if isinstance(left, VInt) and isinstance(right, VInt):
        return VInt(_INT_COMPARES[op](left.value, right.value))
    if isinstance(left, VPtr) and isinstance(right, VPtr):
        if left.block == right.block:
            return VInt(_INT_COMPARES[op](left.offset, right.offset))
        if op == "cmp_eq":
            return VInt(0)
        if op == "cmp_ne":
            return VInt(1)
        raise UndefinedBehaviorError(
            "ordered comparison of pointers into different blocks")
    # Pointer against NULL (integer zero).
    if isinstance(left, VPtr) and isinstance(right, VInt) and right.value == 0:
        if op == "cmp_eq":
            return VInt(0)
        if op == "cmp_ne":
            return VInt(1)
    if isinstance(right, VPtr) and isinstance(left, VInt) and left.value == 0:
        if op == "cmp_eq":
            return VInt(0)
        if op == "cmp_ne":
            return VInt(1)
    raise UndefinedBehaviorError(f"comparison {op} on {left!r} and {right!r}")


def _int(value: Value, op: str) -> int:
    if not isinstance(value, VInt):
        raise UndefinedBehaviorError(f"{op} expects an integer, got {value!r}")
    return value.value


def _float(value: Value, op: str) -> float:
    if not isinstance(value, VFloat):
        raise UndefinedBehaviorError(f"{op} expects a float, got {value!r}")
    return value.value
