"""``repro.logic.smt``: an independent SMT cross-check for the bounds algebra.

The Fourier–Motzkin procedure in :mod:`repro.logic.bexpr` is the single
point every trust claim of the pipeline flows through: the analyzer, the
derivation checker and the certificate loader all discharge their side
conditions with :func:`~repro.logic.bexpr.bound_le`.  PR 9 demonstrated
that this procedure can silently lie (the ``Q:FRAME`` domination condition
went undischarged for months and only a fault operator caught it), so this
module adds a *second, independent* decision procedure and runs the two
agree-or-fail, following the untrusted-solver / differentially-checked
split of Blazy et al.'s verified value analysis.

Three backends are selectable (``--bounds-backend`` on the CLI, the
``bounds_backend`` knob on :class:`~repro.logic.checker.CheckerContext`,
or :func:`repro.logic.bexpr.set_default_backend`):

``fm``
    The existing Fourier–Motzkin / exhaustive-evaluation procedure.
    The default; nothing changes.
``z3``
    Decide with z3 alone: ``BExpr`` terms translate into integer-sorted
    z3 formulas — metric atoms are universally quantified non-negative
    integers, parameters range over their declared verification domains,
    and ``log2``/``half`` are axiomatized with finite defining tables
    derived from those domains, so parametric recursion specs are in
    scope.  Falls back to FM (with an ``obs`` counter) on queries outside
    the translatable fragment or when z3 answers *unknown*.
``cross``
    The differential mode: run **both** procedures on every query and
    raise a structured :class:`ComparatorDisagreement` — carrying the
    query, both verdicts and a concrete witness valuation — on any
    mismatch.  The FM verdict is always the one returned, so ``cross``
    never *changes* an answer, it only refuses to let a lying one pass
    silently.  When z3 is not installed the mode degrades gracefully to
    FM plus two z3-free audits (logged via the
    ``logic.crosscheck.fm_only`` counter):

    * **witness audit** — an exact (ground) FM refusal must be certified
      by :func:`~repro.logic.bexpr.find_violation_metric`; a refusal
      with no evaluable witness means the comparator's failure region
      was mis-built (this is what catches ``fm-strict-gap-drop`` and
      ``fm-nonneg-drop`` without z3);
    * **sample audit** — an exact FM affirmation is re-evaluated on the
      default metric sample grid; any violating point means the
      comparator affirmed an inequality evaluation refutes.

Infinity (``∞ ∈ N ∪ {∞}``) is handled by translating every subterm to a
``(value, is_infinite)`` pair with the propagation rules of
:func:`repro.logic.bexpr.evaluate`; values are only ever compared under
``¬is_infinite`` guards, so unconstrained auxiliary variables in dead
(infinite) branches cannot fabricate violations.

FM blowup refusals (the elimination passed its constraint ``limit`` and
conservatively refused) are recognized via
:func:`repro.logic.bexpr.fm_blowup_count` and never reported as
disagreements — a conservative refusal is sound, just incomplete.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro import obs
from repro.errors import ReproError
from repro.logic import bexpr as bx
from repro.logic.bexpr import (BAdd, BConst, BExpr, BFrameDiff, BHalf, BLog2,
                               BMax, BMetric, BMul, BParam, BParamDiff,
                               BScale, CompareResult, INFINITY)

__all__ = [
    "BACKENDS", "Z3_AVAILABLE", "ComparatorDisagreement", "SmtUnavailable",
    "SmtUnsupported", "crosscheck_bound_le", "dispatch_bound_le",
    "smt_bound_le",
]

BACKENDS = ("fm", "z3", "cross")

try:
    import z3 as _z3  # optional: declared as the [smt] extra
    Z3_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised on z3-less installs
    _z3 = None
    Z3_AVAILABLE = False

#: Per-query solver budget; *unknown* after this long is treated as an
#: unsupported query (FM keeps the authoritative answer).
Z3_TIMEOUT_MS = 10_000


class SmtUnavailable(ReproError):
    """The z3 backend was requested but the ``z3`` module is missing."""


class SmtUnsupported(ReproError):
    """The query is outside the fragment the translation can express
    (e.g. ``log2`` of an expression with no finite upper bound), or z3
    answered *unknown* within the budget."""


class ComparatorDisagreement(ReproError):
    """The two decision procedures disagreed on one query.

    Structured for programmatic consumption: ``query`` holds the
    operation and both expressions (with the parameter domains), ``fm``
    and ``smt`` the two verdicts (``smt`` is ``None`` when an audit —
    not the z3 differential — caught the lie), ``caught_by`` names the
    detecting check (``smt-differential`` / ``witness-audit`` /
    ``sample-audit``) and ``witness`` carries a concrete valuation
    refuting the losing verdict when one is known.
    """

    def __init__(self, query: dict, fm: Optional[bool], smt: Optional[bool],
                 caught_by: str, witness: Optional[dict] = None,
                 detail: str = "") -> None:
        self.query = query
        self.fm = fm
        self.smt = smt
        self.caught_by = caught_by
        self.witness = witness
        self.detail = detail
        message = (f"bounds-backend disagreement [{caught_by}] on "
                   f"{query['op']}({query['small']!r}, {query['large']!r}): "
                   f"fm={fm} smt={smt}")
        if witness:
            message += f" witness={witness}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


# ---------------------------------------------------------------------------
# Backend dispatch (called from bexpr.bound_le)
# ---------------------------------------------------------------------------


def dispatch_bound_le(small: BExpr, large: BExpr,
                      param_domains: Optional[Mapping[str, Iterable[int]]],
                      metric_samples, backend: str) -> CompareResult:
    """Decide ``small <= large`` under a non-default backend."""
    if backend == "z3":
        obs.add("logic.backend.z3.queries")
        if not Z3_AVAILABLE:
            raise SmtUnavailable(
                "bounds backend 'z3' requested but the z3 module is not "
                "importable; install the [smt] extra or use "
                "--bounds-backend=fm/cross")
        try:
            result, _witness = _smt_decide(small, large, param_domains)
            return result
        except SmtUnsupported:
            obs.add("logic.smt.unsupported")
            return bx.fm_bound_le(small, large, param_domains, metric_samples)
    if backend == "cross":
        return crosscheck_bound_le(small, large, param_domains,
                                   metric_samples)
    raise ValueError(f"unknown bounds backend {backend!r}; "
                     f"known: {', '.join(BACKENDS)}")


def crosscheck_bound_le(small: BExpr, large: BExpr,
                        param_domains: Optional[Mapping[str,
                                                        Iterable[int]]] = None,
                        metric_samples=None) -> CompareResult:
    """Run FM and the SMT backend agree-or-fail; return the FM verdict.

    Raises :class:`ComparatorDisagreement` on any unexplained mismatch.
    The z3-free audits run regardless of z3 availability, so ``cross``
    always buys *some* independence over plain ``fm``.
    """
    obs.add("logic.backend.cross.queries")
    blow0 = bx.fm_blowup_count()
    fm = bx.fm_bound_le(small, large, param_domains, metric_samples)
    blown = bx.fm_blowup_count() != blow0

    smt_result = witness = None
    if Z3_AVAILABLE:
        try:
            smt_result, witness = _smt_decide(small, large, param_domains)
        except SmtUnsupported:
            obs.add("logic.smt.unsupported")
        except ValueError:
            # Parameters without verification domains: FM can still have
            # answered via its 0 <= large fast path, so for the cross
            # mode this is an out-of-scope query, not an error.
            obs.add("logic.smt.unsupported")
    else:
        obs.add("logic.crosscheck.fm_only")

    query = {"op": "bound_le", "small": small, "large": large,
             "param_domains": dict(param_domains or {})}

    if smt_result is not None and smt_result.holds != fm.holds:
        if blown and not fm.holds:
            # FM refused because elimination blew past its limit: a
            # conservative refusal, not a lie.  z3's affirmation is the
            # sharper answer but cross mode never changes verdicts.
            obs.add("logic.crosscheck.blowup_refusals")
        else:
            detail = ""
            if witness is None and not fm.holds:
                witness = bx.find_violation_metric(small, large)
            elif witness is not None:
                # Self-explaining disagreements: say whether z3's model
                # really violates the inequality under the reference
                # evaluator.  Validated + fm affirmed sampled = the
                # sample grid missed a genuine violation; unvalidated =
                # the z3 translation itself is the liar.
                if _witness_refutes(small, large, witness):
                    detail = ("witness validated by evaluation"
                              + ("; sampled affirmation has a gap"
                                 if not fm.exact else ""))
                else:
                    detail = "witness does NOT validate under evaluation"
            _disagree(query, fm.holds, smt_result.holds,
                      caught_by="smt-differential", witness=witness,
                      detail=detail)

    if fm.exact and not blown:
        if fm.holds:
            refutation = _sample_refute(small, large)
            if refutation is not None:
                _disagree(query, fm.holds, None, caught_by="sample-audit",
                          witness=refutation,
                          detail="evaluation refutes an exact affirmation")
        else:
            audit_witness = bx.find_violation_metric(small, large)
            if audit_witness is None and bx.fm_blowup_count() == blow0:
                _disagree(query, fm.holds, None, caught_by="witness-audit",
                          detail="exact refusal with no evaluable witness")
    return fm


def _disagree(query: dict, fm: Optional[bool], smt: Optional[bool],
              caught_by: str, witness: Optional[dict] = None,
              detail: str = "") -> None:
    obs.add("logic.crosscheck.disagreements")
    raise ComparatorDisagreement(query, fm, smt, caught_by,
                                 witness=witness, detail=detail)


def _witness_refutes(small: BExpr, large: BExpr, witness: dict) -> bool:
    atoms = bx.metric_atoms(small) | bx.metric_atoms(large)
    metric = {name: 0 for name in atoms}
    metric.update(witness.get("metric", {}))
    params = dict(witness.get("params", {}))
    try:
        return bx.evaluate(small, metric, params) > \
            bx.evaluate(large, metric, params)
    except Exception:
        return False


def _sample_refute(small: BExpr, large: BExpr) -> Optional[dict]:
    """A default-grid metric refuting an exact (ground) affirmation.

    Exact affirmations hold for *all* metrics if FM is honest, so any
    violating sample is proof of a comparator bug — never a false
    positive.  Parametric expressions are skipped: the one exact verdict
    they can receive is the ``0 <= large`` fast path, which needs no
    audit (evaluation clamps into N ∪ {∞}).
    """
    if bx.param_names(small) or bx.param_names(large):
        return None
    atoms = bx.metric_atoms(small) | bx.metric_atoms(large)
    for metric in bx._default_metric_samples(atoms):
        if bx.evaluate(small, metric) > bx.evaluate(large, metric):
            return {"metric": dict(metric)}
    return None


# ---------------------------------------------------------------------------
# The z3 decision procedure
# ---------------------------------------------------------------------------

#: Query-level memo: interning makes (small, large, domains) hashable and
#: the checker re-asks about the same subtrees constantly.
_CACHE: dict = {}


def reset_smt_cache() -> None:
    _CACHE.clear()


def smt_bound_le(small: BExpr, large: BExpr,
                 param_domains: Optional[Mapping[str, Iterable[int]]] = None,
                 metric_samples=None) -> CompareResult:
    """Decide ``small <= large`` with z3 alone.

    Metric atoms are universally quantified non-negative integers;
    parameters range over their declared (finite) verification domains —
    the same question FM's two fragments answer, decided by an
    independent engine.  ``metric_samples`` is accepted for signature
    compatibility and ignored: z3 covers all metrics at once.
    """
    result, _witness = _smt_decide(small, large, param_domains)
    return result


def _smt_decide(small: BExpr, large: BExpr,
                param_domains: Optional[Mapping[str, Iterable[int]]]
                ) -> tuple[CompareResult, Optional[dict]]:
    if not Z3_AVAILABLE:
        raise SmtUnavailable("the z3 module is not importable")
    domains = {name: tuple(values)
               for name, values in (param_domains or {}).items()}
    key = (small, large, tuple(sorted(domains.items())))
    cached = _CACHE.get(key)
    if cached is not None:
        holds, exact, witness = cached
        return CompareResult(holds, exact), witness
    obs.add("logic.smt.queries")

    params = bx.param_names(small) | bx.param_names(large)
    missing = params - set(domains)
    if missing:
        # Mirror the FM sampled path: an unconstrained parameter has no
        # verification domain to decide over.
        raise ValueError(
            f"no verification domain for parameters {sorted(missing)}")

    env = _Env(domains)
    small_val, small_inf = _translate(small, env)
    large_val, large_inf = _translate(large, env)

    z3 = _z3
    solver = z3.Solver()
    solver.set("timeout", Z3_TIMEOUT_MS)
    for constraint in env.constraints:
        solver.add(constraint)

    def clamp(value):
        return z3.If(value < 0, z3.IntVal(0), value)

    # ``small <= large`` fails iff small is infinite while large is not,
    # or both are finite and the clamped values compare the wrong way.
    solver.add(z3.Or(
        z3.And(small_inf, z3.Not(large_inf)),
        z3.And(z3.Not(small_inf), z3.Not(large_inf),
               clamp(small_val) > clamp(large_val))))

    verdict = solver.check()
    exact = not params
    if verdict == z3.unsat:
        _CACHE[key] = (True, exact, None)
        return CompareResult(True, exact), None
    if verdict == z3.sat:
        witness = _extract_witness(solver.model(), env)
        _CACHE[key] = (False, exact, witness)
        return CompareResult(False, exact), witness
    raise SmtUnsupported(f"z3 answered {verdict!r} within "
                         f"{Z3_TIMEOUT_MS} ms")


def _extract_witness(model, env: "_Env") -> dict:
    """Concrete (metric, params) valuation from a violation model."""
    witness: dict = {"metric": {}, "params": {}}
    for name, var in env.metric_vars.items():
        witness["metric"][name] = model.eval(
            var, model_completion=True).as_long()
    for name, var in env.param_vars.items():
        witness["params"][name] = model.eval(
            var, model_completion=True).as_long()
    return witness


class _Env:
    """Translation state: variable pools plus the defining constraints."""

    def __init__(self, domains: Mapping[str, tuple]) -> None:
        self.domains = domains
        self.constraints: list = []
        self.metric_vars: dict = {}
        self.param_vars: dict = {}
        self._fresh = 0

    def metric(self, name: str):
        var = self.metric_vars.get(name)
        if var is None:
            var = _z3.Int(f"M!{name}")
            self.metric_vars[name] = var
            self.constraints.append(var >= 0)
        return var

    def param(self, name: str):
        var = self.param_vars.get(name)
        if var is None:
            var = _z3.Int(f"P!{name}")
            self.param_vars[name] = var
            values = self.domains.get(name, ())
            self.constraints.append(
                _z3.Or(*[var == int(v) for v in values])
                if values else _z3.BoolVal(False))
        return var

    def fresh(self, prefix: str):
        self._fresh += 1
        return _z3.Int(f"{prefix}!{self._fresh}")


def _translate(expr: BExpr, env: _Env):
    """``expr`` as a ``(value, is_infinite)`` pair of z3 terms.

    The pair encodes ``N ∪ {∞}`` exactly as :func:`bexpr.evaluate` does:
    ``value`` is only meaningful under ``¬is_infinite`` of every
    enclosing consumer, and the top-level comparison guards accordingly.
    """
    z3 = _z3
    false = z3.BoolVal(False)
    if isinstance(expr, BConst):
        if expr.value == INFINITY:
            return z3.IntVal(0), z3.BoolVal(True)
        return z3.IntVal(int(expr.value)), false
    if isinstance(expr, BMetric):
        return env.metric(expr.function), false
    if isinstance(expr, BParam):
        return env.param(expr.name), false
    if isinstance(expr, BAdd):
        pairs = [_translate(item, env) for item in expr.items]
        value = pairs[0][0]
        for val, _inf in pairs[1:]:
            value = value + val
        return value, _or_infs(pairs)
    if isinstance(expr, BMax):
        pairs = [_translate(item, env) for item in expr.items]
        value = pairs[0][0]
        for val, _inf in pairs[1:]:
            value = z3.If(val > value, val, value)
        return value, _or_infs(pairs)
    if isinstance(expr, BScale):
        if expr.factor == 0:
            # Max-plus normal form semantics: scaling by 0 is the zero
            # bound (matches _mpnf, the authority on the ground order).
            return z3.IntVal(0), false
        val, inf = _translate(expr.body, env)
        return z3.IntVal(expr.factor) * val, inf
    if isinstance(expr, BFrameDiff):
        total_val, total_inf = _translate(expr.total, env)
        part_val, part_inf = _translate(expr.part, env)
        diff = total_val - part_val
        value = z3.If(part_inf, z3.IntVal(0),
                      z3.If(diff < 0, z3.IntVal(0), diff))
        return value, total_inf
    if isinstance(expr, BMul):
        left_val, left_inf = _translate(expr.left, env)
        right_val, right_inf = _translate(expr.right, env)
        return left_val * right_val, z3.Or(left_inf, right_inf)
    if isinstance(expr, BParamDiff):
        left_val, left_inf = _translate(expr.left, env)
        right_val, right_inf = _translate(expr.right, env)
        return left_val - right_val, z3.Or(left_inf, right_inf)
    if isinstance(expr, BHalf):
        val, inf = _translate(expr.arg, env)
        half = env.fresh("half")
        if expr.ceil:   # half = ceil(val / 2)
            env.constraints.append(val <= 2 * half)
            env.constraints.append(2 * half <= val + 1)
        else:           # half = floor(val / 2)
            env.constraints.append(2 * half <= val)
            env.constraints.append(val <= 2 * half + 1)
        return half, inf
    if isinstance(expr, BLog2):
        return _translate_log2(expr, env)
    raise SmtUnsupported(f"no z3 translation for {type(expr).__name__}")


def _or_infs(pairs):
    infs = [inf for _val, inf in pairs]
    return infs[0] if len(infs) == 1 else _z3.Or(*infs)


def _translate_log2(expr: BLog2, env: _Env):
    """Axiomatize the paper-convention ``log2`` with a finite table.

    ``log2(a) = ∞`` for ``a < 0``, ``0`` for ``a ∈ {0, 1}``, else
    ``ceil(log2 a)``.  The defining disjunction needs a finite exponent
    range, so the argument must have a finite upper bound derivable from
    the verification domains — exactly the shape parametric recursion
    specs have.  Metric atoms inside ``log2`` (which no analyzer or spec
    produces) have no bound and raise :class:`SmtUnsupported`.
    """
    z3 = _z3
    val, arg_inf = _translate(expr.arg, env)
    hi = _upper_bound(expr.arg, env)
    if hi is None:
        raise SmtUnsupported(f"log2 argument has no finite upper bound: "
                             f"{expr.arg!r}")
    result = env.fresh("log2")
    guard = z3.Not(arg_inf)
    env.constraints.append(
        z3.Implies(z3.And(guard, val >= 0, val <= 1), result == 0))
    exponent = 1
    while (1 << (exponent - 1)) < max(hi, 2):
        low, high = (1 << (exponent - 1)) + 1, 1 << exponent
        env.constraints.append(
            z3.Implies(z3.And(guard, val >= low, val <= high),
                       result == exponent))
        exponent += 1
    return result, z3.Or(arg_inf, val < 0)


def _upper_bound(expr: BExpr, env: _Env) -> Optional[int]:
    """A finite upper bound of ``expr``'s finite value, or ``None``.

    Interval arithmetic over the declared parameter domains; metric
    atoms are unbounded above.  Only soundness *upward* matters — the
    bound sizes the ``log2`` defining table.
    """
    lo, hi = _interval(expr, env)
    del lo
    return hi


def _interval(expr: BExpr, env: _Env) -> tuple[Optional[int], Optional[int]]:
    """Conservative ``(lower, upper)`` integer interval (None = unbounded)."""
    if isinstance(expr, BConst):
        if expr.value == INFINITY:
            return 0, None
        return int(expr.value), int(expr.value)
    if isinstance(expr, BMetric):
        return 0, None
    if isinstance(expr, BParam):
        values = env.domains.get(expr.name)
        if not values:
            return None, None
        return min(values), max(values)
    if isinstance(expr, BAdd):
        lo, hi = 0, 0
        for item in expr.items:
            ilo, ihi = _interval(item, env)
            lo = None if lo is None or ilo is None else lo + ilo
            hi = None if hi is None or ihi is None else hi + ihi
        return lo, hi
    if isinstance(expr, BMax):
        los, his = zip(*(_interval(item, env) for item in expr.items))
        lo = None if any(l is None for l in los) else max(los)
        hi = None if any(h is None for h in his) else max(his)
        return lo, hi
    if isinstance(expr, BScale):
        if expr.factor == 0:
            return 0, 0
        lo, hi = _interval(expr.body, env)
        return (None if lo is None else expr.factor * lo,
                None if hi is None else expr.factor * hi)
    if isinstance(expr, BFrameDiff):
        _tlo, thi = _interval(expr.total, env)
        return 0, thi
    if isinstance(expr, (BMul, BParamDiff)):
        llo, lhi = _interval(expr.left, env)
        rlo, rhi = _interval(expr.right, env)
        if isinstance(expr, BParamDiff):
            lo = None if llo is None or rhi is None else llo - rhi
            hi = None if lhi is None or rlo is None else lhi - rlo
            return lo, hi
        corners = [a * b for a in (llo, lhi) for b in (rlo, rhi)
                   if a is not None and b is not None]
        if None in (llo, lhi, rlo, rhi) or not corners:
            return None, None
        return min(corners), max(corners)
    if isinstance(expr, BLog2):
        _alo, ahi = _interval(expr.arg, env)
        if ahi is None:
            return 0, None
        return 0, max(ahi, 2).bit_length()
    if isinstance(expr, BHalf):
        lo, hi = _interval(expr.arg, env)
        shift = 1 if expr.ceil else 0
        return (None if lo is None else (lo + shift) // 2,
                None if hi is None else (hi + shift) // 2)
    return None, None
