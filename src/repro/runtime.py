"""External (builtin) functions shared by all interpreters.

Externals follow the paper's conventions: they consume **no stack space**
(the stack-metric convention ``M(g(v |-> v)) = 0``) and, for the observable
ones, they emit an I/O event recording their arguments and result.  The
events carry plain Python numbers so that traces compare equal across
abstraction levels (block pointers at the Clight level and flat addresses
at the assembly level would otherwise differ spuriously — CompCert
sidesteps the same issue by making ``malloc`` non-observable).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro import ints
from repro.errors import DynamicError, UndefinedBehaviorError
from repro.events.trace import IOEvent
from repro.memory.values import VFloat, VInt, VPtr, Value

# name -> (is_observable, arity, returns_float)
EXTERNAL_INFO: dict[str, tuple[bool, int, bool]] = {
    "print_int": (True, 1, False),
    "print_float": (True, 1, True),
    "print_char": (True, 1, False),
    "sin": (True, 1, True),
    "cos": (True, 1, True),
    "sqrt": (True, 1, True),
    "fabs": (True, 1, True),
    "floor": (True, 1, True),
    "pow": (True, 2, True),
    "atan": (True, 1, True),
    "exp": (True, 1, True),
    "log": (True, 1, True),
    # malloc is observable through its *size* only: the returned pointer
    # differs between the block memory and the flat arena, so it stays
    # out of the event and trace preservation across levels is untouched.
    # The size event is what the heap-resource metric prices
    # (repro.events.heap, the paper's §8 outlook).
    "malloc": (True, 1, False),
    "abort": (False, 0, False),
}


def is_known_external(name: str) -> bool:
    return name in EXTERNAL_INFO


def _float_arg(name: str, value: Value) -> float:
    if not isinstance(value, VFloat):
        raise UndefinedBehaviorError(f"{name} expects a float argument")
    return value.value


def _int_arg(name: str, value: Value) -> int:
    if not isinstance(value, VInt):
        raise UndefinedBehaviorError(f"{name} expects an integer argument")
    return value.value


_MATH: dict[str, Callable[..., float]] = {
    "sin": math.sin,
    "cos": math.cos,
    "sqrt": math.sqrt,
    "fabs": abs,
    "floor": math.floor,
    "pow": pow,
    "atan": math.atan,
    "exp": math.exp,
    "log": math.log,
}


def call_external(name: str, args: list[Value],
                  alloc: Callable[[int], Value],
                  output: Optional[list] = None
                  ) -> tuple[Value, Optional[IOEvent]]:
    """Execute builtin ``name``.

    ``alloc`` is the level-specific allocator backing ``malloc`` (a block
    allocation at the Clight..Mach levels, an arena bump at the assembly
    level).  Returns the result value and the I/O event to emit (or None
    for non-observable externals).  ``output`` collects printed values for
    examples that want to show program output.
    """
    if name not in EXTERNAL_INFO:
        raise DynamicError(f"call to unknown external function {name!r}")
    observable, arity, _returns_float = EXTERNAL_INFO[name]
    if len(args) != arity:
        raise UndefinedBehaviorError(
            f"{name} expects {arity} arguments, got {len(args)}")

    if name == "print_int":
        value = ints.to_signed(_int_arg(name, args[0]))
        if output is not None:
            output.append(value)
        return VInt(0), IOEvent(name, [value], 0)
    if name == "print_char":
        value = _int_arg(name, args[0]) & 0xFF
        if output is not None:
            output.append(chr(value))
        return VInt(0), IOEvent(name, [value], 0)
    if name == "print_float":
        value = _float_arg(name, args[0])
        if output is not None:
            output.append(value)
        return VInt(0), IOEvent(name, [value], 0)
    if name in _MATH:
        float_args = [_float_arg(name, a) for a in args]
        try:
            result = _MATH[name](*float_args)
        except ValueError:
            result = float("nan")
        except OverflowError:
            result = float("inf")
        return VFloat(result), IOEvent(name, float_args, result)
    if name == "malloc":
        size = _int_arg(name, args[0])
        return alloc(size), IOEvent(name, [size], 0)
    if name == "abort":
        raise DynamicError("abort() called")
    raise DynamicError(f"unimplemented external {name!r}")


def external_result_is_float(name: str) -> bool:
    return EXTERNAL_INFO[name][2]
