"""Cminor: Clight with all addressable locals merged into one stack block.

In CompCert, the Clight-to-Cminor passes (`Cshmgen`/`Cminorgen`) collapse
a function's addressable locals into a single per-function stack block
addressed by explicit offsets from a stack pointer.  Our Cminor reuses the
Clight statement and expression forms — after this pass, the *only*
stack-address expression that appears is ``EAddrStack("$frame")`` (plus a
constant offset), and each function carries its frame layout.  Hence the
Clight small-step machine executes Cminor programs unchanged, which is
exactly what makes the pass's quantitative refinement easy to test
differentially.
"""

from repro.cminor.lower import FRAME_VAR, CminorProgram, cminor_of_clight

__all__ = ["cminor_of_clight", "CminorProgram", "FRAME_VAR"]
