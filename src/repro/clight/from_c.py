"""Lowering from the typed C AST to Clight (paper §4.1).

This pass plays the role of CompCert's ``SimplExpr``/``SimplLocals``:

* C expressions, which may contain side effects (assignments, calls,
  ``++``/``--``, short-circuit operators), are compiled into *pure* Clight
  expressions plus a prefix of effectful statements;
* scalar locals whose address is never taken become pure temporaries;
  everything else (arrays, structs, address-taken scalars, and the copies
  of address-taken parameters) becomes a ``StackVar`` allocated in memory
  at function entry;
* all C-level operator overloading is resolved into the explicit machine
  operators of :mod:`repro.ops` (signedness, float variants, pointer
  scaling);
* ``while``/``do``/``for`` become CompCert-style ``SLoop``; ``switch``
  becomes a ``SBlock`` over an if-chain with duplicated fall-through
  suffixes.
"""

from __future__ import annotations

import struct as _struct
from typing import Optional

from repro.analyzer.values import FPResolution, resolve_function_pointers
from repro.c import ast as c
from repro.c import types as ct
from repro.c.typecheck import ProgramEnv
from repro.clight import ast as cl
from repro.errors import LoweringError, UnsupportedFeatureError
from repro.memory.chunks import Chunk

_Effects = list  # list[cl.Stmt]


def clight_of_program(program: c.Program, env: ProgramEnv) -> cl.Program:
    """Lower a type-checked C program to Clight."""
    # Resolve indirect calls to finite candidate sets first: the lowering
    # compiles each one into a fid-comparison dispatch over its candidates
    # so that the Clight call graph is entirely direct.
    fp = resolve_function_pointers(program, env)
    globals_ = [_lower_global(decl) for decl in program.globals]
    functions = [_FnLowerer(function, env, fp).lower()
                 for function in program.functions]
    return cl.Program(globals_, functions, env.externals.keys())


# ---------------------------------------------------------------------------
# Globals: constant evaluation into byte images
# ---------------------------------------------------------------------------


def _lower_global(decl: c.GlobalDecl) -> cl.GlobalVar:
    size = decl.ctype.size
    image = bytearray(size)
    if decl.init is not None:
        _fill_image(image, 0, decl.ctype, decl.init)
    return cl.GlobalVar(decl.name, size, max(decl.ctype.alignment, 1),
                        bytes(image))


def _fill_image(image: bytearray, offset: int, ctype: ct.CType,
                init: c.Initializer) -> None:
    if isinstance(init, c.InitScalar):
        value = _const_value(init.expr)
        chunk = ctype.chunk()
        if chunk.is_float:
            image[offset:offset + 8] = _struct.pack("<d", float(value))
        else:
            image[offset:offset + chunk.size] = chunk.encode_int(int(value))
        return
    assert isinstance(init, c.InitList)
    if isinstance(ctype, ct.TArray):
        for index, item in enumerate(init.items):
            _fill_image(image, offset + index * ctype.element.size,
                        ctype.element, item)
        return
    if isinstance(ctype, ct.TStruct):
        for item, field in zip(init.items, ctype.fields):
            _fill_image(image, offset + field.offset, field.ctype, item)
        return
    if len(init.items) == 1:
        _fill_image(image, offset, ctype, init.items[0])
        return
    raise LoweringError(f"bad initializer shape for {ctype}")


def _const_value(expr: c.Expr):
    """Evaluate a constant expression (for global initializers)."""
    if isinstance(expr, c.IntLit):
        return expr.value
    if isinstance(expr, c.CharLit):
        return expr.value
    if isinstance(expr, c.FloatLit):
        return expr.value
    if isinstance(expr, c.SizeOf):
        target = expr.arg_type if expr.arg_type is not None else expr.arg_expr.ty
        return target.size
    if isinstance(expr, c.Cast):
        inner = _const_value(expr.operand)
        target = expr.target_type
        if target.is_pointer:
            if int(inner) == 0:
                return 0  # the NULL pointer constant
            raise UnsupportedFeatureError(
                "global pointer initializers other than NULL are not "
                "supported", expr.loc)
        if target.is_float:
            return float(inner)
        if target.is_integer:
            assert isinstance(target, ct.TInt)
            value = int(inner)
            mask = (1 << (8 * target.width)) - 1
            value &= mask
            if target.signed and value > mask >> 1:
                value -= mask + 1
            return value
        raise UnsupportedFeatureError(
            "non-arithmetic constant cast in global initializer", expr.loc)
    if isinstance(expr, c.Unary):
        inner = _const_value(expr.operand)
        if expr.op == "-":
            return -inner
        if expr.op == "+":
            return inner
        if expr.op == "~":
            return ~int(inner)
        if expr.op == "!":
            return 0 if inner else 1
    if isinstance(expr, c.Binary):
        left = _const_value(expr.left)
        right = _const_value(expr.right)
        table = {
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
            "/": lambda: left / right if isinstance(left, float)
            or isinstance(right, float) else int(left) // int(right),
            "%": lambda: int(left) % int(right),
            "<<": lambda: int(left) << int(right),
            ">>": lambda: int(left) >> int(right),
            "&": lambda: int(left) & int(right),
            "|": lambda: int(left) | int(right),
            "^": lambda: int(left) ^ int(right),
        }
        if expr.op in table:
            return table[expr.op]()
    raise UnsupportedFeatureError(
        "global initializers must be constant expressions", expr.loc)


# ---------------------------------------------------------------------------
# Function lowering
# ---------------------------------------------------------------------------


class _FnLowerer:
    def __init__(self, function: c.FunctionDef, env: ProgramEnv,
                 fp: Optional[FPResolution] = None) -> None:
        self.function = function
        self.env = env
        self.fp = fp if fp is not None else FPResolution({}, 0)
        self.locals_types: dict[str, ct.CType] = function.locals_types  # type: ignore[attr-defined]
        self.addressable: set[str] = function.addressable  # type: ignore[attr-defined]
        self.param_copies: set[str] = function.param_copies  # type: ignore[attr-defined]
        self.temps: list[str] = []
        self.float_temps: set[str] = set()
        self._fresh_counter = 0

    # -- entry point ----------------------------------------------------------

    def lower(self) -> cl.Function:
        function = self.function
        params: list[str] = []
        param_is_float: list[bool] = []
        prologue: _Effects = []
        stackvars: list[cl.StackVar] = []

        for name, ctype in self.locals_types.items():
            if name in self.addressable:
                stackvars.append(cl.StackVar(name, ctype.size,
                                             max(ctype.alignment, 1)))
            else:
                self._register_temp(name, ctype.is_float)

        for param in function.params:
            if param.name in self.param_copies:
                incoming = f"{param.name}$in"
                self._register_temp(incoming, param.ctype.is_float)
                params.append(incoming)
                prologue.append(cl.SStore(
                    param.ctype.chunk(), cl.EAddrStack(param.name),
                    cl.ETemp(incoming)))
            else:
                params.append(param.name)
            param_is_float.append(param.ctype.is_float)

        body = self.lower_stmt(function.body)
        if function.name == "main" and not isinstance(function.result, ct.TVoid):
            body = cl.seq(body, cl.SReturn(cl.EConstInt(0)))
        full_body = cl.seq(*prologue, body)
        return cl.Function(
            function.name, params, self.temps, stackvars, full_body,
            returns_float=function.result.is_float,
            param_is_float=param_is_float,
            float_temps=self.float_temps)

    def _register_temp(self, name: str, is_float: bool) -> None:
        if name not in self.temps:
            self.temps.append(name)
        if is_float:
            self.float_temps.add(name)

    def _fresh(self, is_float: bool) -> str:
        self._fresh_counter += 1
        name = f"$t{self._fresh_counter}"
        self._register_temp(name, is_float)
        return name

    # -- statements -------------------------------------------------------------

    def lower_stmt(self, stmt: c.Stmt) -> cl.Stmt:
        if isinstance(stmt, c.SSkip):
            return cl.SSkip()
        if isinstance(stmt, c.SBlock):
            return cl.seq(*[self.lower_stmt(child) for child in stmt.body])
        if isinstance(stmt, c.SDecl):
            return self._lower_decl(stmt)
        if isinstance(stmt, c.SDeclGroup):
            return cl.seq(*[self._lower_decl(decl) for decl in stmt.decls])
        if isinstance(stmt, c.SExpr):
            effects, _expr, _ty = self.rvalue(stmt.expr)
            return cl.seq(*effects)
        if isinstance(stmt, c.SIf):
            effects, cond, _ = self.rvalue(stmt.cond)
            then = self.lower_stmt(stmt.then)
            otherwise = (self.lower_stmt(stmt.otherwise)
                         if stmt.otherwise is not None else cl.SSkip())
            return cl.seq(*effects, cl.SIf(cond, then, otherwise))
        if isinstance(stmt, c.SWhile):
            return self._lower_while(stmt)
        if isinstance(stmt, c.SDoWhile):
            return self._lower_do_while(stmt)
        if isinstance(stmt, c.SFor):
            return self._lower_for(stmt)
        if isinstance(stmt, c.SSwitch):
            return self._lower_switch(stmt)
        if isinstance(stmt, c.SBreak):
            return cl.SBreak()
        if isinstance(stmt, c.SContinue):
            return cl.SContinue()
        if isinstance(stmt, c.SReturn):
            if stmt.value is None:
                return cl.SReturn(None)
            effects, value, _ = self.rvalue(stmt.value)
            return cl.seq(*effects, cl.SReturn(value))
        raise LoweringError(f"unknown statement {type(stmt).__name__}")

    def _lower_decl(self, stmt: c.SDecl) -> cl.Stmt:
        if stmt.init is None:
            return cl.SSkip()
        if stmt.name in self.addressable:
            return cl.seq(*self._init_stores(
                cl.EAddrStack(stmt.name), 0, stmt.ctype, stmt.init,
                zero_fill=isinstance(stmt.init, c.InitList)))
        assert isinstance(stmt.init, c.InitScalar)
        effects, value, _ = self.rvalue(stmt.init.expr)
        return cl.seq(*effects, cl.SSet(stmt.name, value))

    def _init_stores(self, base: cl.Expr, offset: int, ctype: ct.CType,
                     init: Optional[c.Initializer], zero_fill: bool) -> _Effects:
        """Stores initializing an addressable local, zero-filling gaps of
        brace-initialized aggregates (C99 6.7.8p21)."""
        out: _Effects = []
        if init is None:
            if not zero_fill:
                return out
            if isinstance(ctype, ct.TArray):
                for index in range(ctype.length):
                    out.extend(self._init_stores(
                        base, offset + index * ctype.element.size,
                        ctype.element, None, True))
                return out
            if isinstance(ctype, ct.TStruct):
                for field in ctype.fields:
                    out.extend(self._init_stores(
                        base, offset + field.offset, field.ctype, None, True))
                return out
            zero: cl.Expr = (cl.EConstFloat(0.0) if ctype.is_float
                             else cl.EConstInt(0))
            out.append(cl.SStore(ctype.chunk(), _addr_plus(base, offset), zero))
            return out
        if isinstance(init, c.InitScalar):
            effects, value, _ = self.rvalue(init.expr)
            out.extend(effects)
            out.append(cl.SStore(ctype.chunk(), _addr_plus(base, offset), value))
            return out
        assert isinstance(init, c.InitList)
        if isinstance(ctype, ct.TArray):
            for index in range(ctype.length):
                item = init.items[index] if index < len(init.items) else None
                out.extend(self._init_stores(
                    base, offset + index * ctype.element.size,
                    ctype.element, item, True))
            return out
        if isinstance(ctype, ct.TStruct):
            for index, field in enumerate(ctype.fields):
                item = init.items[index] if index < len(init.items) else None
                out.extend(self._init_stores(
                    base, offset + field.offset, field.ctype, item, True))
            return out
        if len(init.items) == 1:
            return self._init_stores(base, offset, ctype, init.items[0], zero_fill)
        raise LoweringError("bad initializer shape")

    def _lower_while(self, stmt: c.SWhile) -> cl.Stmt:
        effects, cond, _ = self.rvalue(stmt.cond)
        guard = cl.seq(*effects,
                       cl.SIf(cond, cl.SSkip(), cl.SBreak()))
        body = self.lower_stmt(stmt.body)
        return cl.SLoop(cl.seq(guard, body), cl.SSkip())

    def _lower_do_while(self, stmt: c.SDoWhile) -> cl.Stmt:
        body = self.lower_stmt(stmt.body)
        effects, cond, _ = self.rvalue(stmt.cond)
        post = cl.seq(*effects, cl.SIf(cond, cl.SSkip(), cl.SBreak()))
        return cl.SLoop(body, post)

    def _lower_for(self, stmt: c.SFor) -> cl.Stmt:
        init = self.lower_stmt(stmt.init) if stmt.init is not None else cl.SSkip()
        if stmt.cond is not None:
            effects, cond, _ = self.rvalue(stmt.cond)
            guard = cl.seq(*effects, cl.SIf(cond, cl.SSkip(), cl.SBreak()))
        else:
            guard = cl.SSkip()
        body = self.lower_stmt(stmt.body)
        if stmt.step is not None:
            step_effects, _value, _ = self.rvalue(stmt.step)
            post = cl.seq(*step_effects)
        else:
            post = cl.SSkip()
        return cl.seq(init, cl.SLoop(cl.seq(guard, body), post))

    def _lower_switch(self, stmt: c.SSwitch) -> cl.Stmt:
        effects, scrutinee, scrutinee_ty = self.rvalue(stmt.scrutinee)
        temp = self._fresh(False)
        effects = list(effects) + [cl.SSet(temp, scrutinee)]
        # Build the fall-through suffixes from the last case backwards.
        lowered = [cl.seq(*[self.lower_stmt(s) for s in stmts])
                   for _value, stmts in stmt.cases]
        suffixes: list[cl.Stmt] = [cl.SSkip()] * len(lowered)
        for index in range(len(lowered) - 1, -1, -1):
            following = suffixes[index + 1] if index + 1 < len(lowered) else cl.SSkip()
            suffixes[index] = cl.seq(lowered[index], following)
        # Dispatch: compare in order; `default` is the final else branch.
        default_branch: cl.Stmt = cl.SSkip()
        for index, (value, _stmts) in enumerate(stmt.cases):
            if value is None:
                default_branch = suffixes[index]
        chain: cl.Stmt = default_branch
        for index in range(len(stmt.cases) - 1, -1, -1):
            value, _stmts = stmt.cases[index]
            if value is None:
                continue
            test = cl.EBinop("cmp_eq", cl.ETemp(temp), cl.EConstInt(value))
            chain = cl.SIf(test, suffixes[index], chain)
        return cl.seq(*effects, cl.SBlock(chain))

    # -- lvalues ------------------------------------------------------------------

    def lvalue(self, expr: c.Expr) -> tuple[_Effects, cl.Expr, ct.CType]:
        """Lower an lvalue to (effects, address expression, inherent type)."""
        if isinstance(expr, c.Name):
            return self._lvalue_name(expr)
        if isinstance(expr, c.Index):
            return self._lvalue_index(expr)
        if isinstance(expr, c.Member):
            return self._lvalue_member(expr)
        if isinstance(expr, c.Unary) and expr.op == "*":
            effects, addr, ptr_ty = self.rvalue(expr.operand)
            assert isinstance(ptr_ty, ct.TPointer)
            return effects, addr, ptr_ty.target
        raise LoweringError(f"not an lvalue: {type(expr).__name__}")

    def _lvalue_name(self, expr: c.Name) -> tuple[_Effects, cl.Expr, ct.CType]:
        if expr.binding == "global":
            return [], cl.EAddrGlobal(expr.ident), self.env.globals[expr.ident]
        ctype = self.locals_types[expr.ident]
        if expr.ident in self.addressable:
            return [], cl.EAddrStack(expr.ident), ctype
        raise LoweringError(
            f"address of non-addressable temp {expr.ident!r}")

    def _lvalue_index(self, expr: c.Index) -> tuple[_Effects, cl.Expr, ct.CType]:
        base_effects, base, base_ty = self.rvalue(expr.base)
        index_effects, index, _ = self.rvalue(expr.index)
        (base_effects, base), (index_effects, index) = self._protect2(
            (base_effects, base, False), (index_effects, index, False))
        assert isinstance(base_ty, ct.TPointer)
        element = base_ty.target
        scaled = _scale_index(index, element.size)
        return (base_effects + index_effects,
                cl.EBinop("add", base, scaled), element)

    def _lvalue_member(self, expr: c.Member) -> tuple[_Effects, cl.Expr, ct.CType]:
        if expr.through_pointer:
            effects, base, ptr_ty = self.rvalue(expr.base)
            assert isinstance(ptr_ty, ct.TPointer)
            struct = ptr_ty.target
        else:
            effects, base, struct = self.lvalue(expr.base)
        assert isinstance(struct, ct.TStruct)
        field = struct.field(expr.field)
        return effects, _addr_plus(base, field.offset), field.ctype

    # -- rvalues ------------------------------------------------------------------

    def rvalue(self, expr: c.Expr) -> tuple[_Effects, cl.Expr, ct.CType]:
        """Lower an expression used for its value.

        Returns (effects, pure expression, C type after decay).
        """
        if isinstance(expr, c.IntLit):
            ty = ct.UINT if expr.unsigned_suffix or expr.value > ct.MAX_INT_LIT_SIGNED else ct.INT
            return [], cl.EConstInt(expr.value), ty
        if isinstance(expr, c.CharLit):
            return [], cl.EConstInt(expr.value), ct.INT
        if isinstance(expr, c.FloatLit):
            return [], cl.EConstFloat(expr.value), ct.DOUBLE
        if isinstance(expr, c.SizeOf):
            target = expr.arg_type if expr.arg_type is not None else expr.arg_expr.ty
            return [], cl.EConstInt(target.size), ct.UINT
        if isinstance(expr, c.Name) and expr.binding == "function":
            # A function designator used as a value: its fid constant.
            return ([], cl.EConstInt(self.fp.fid(expr.ident)),
                    ct.TPointer(self.env.functions[expr.ident]))
        if isinstance(expr, c.Name) and expr.binding == "local" \
                and expr.ident not in self.addressable:
            return [], cl.ETemp(expr.ident), self.locals_types[expr.ident]
        if isinstance(expr, (c.Name, c.Index, c.Member)) or (
                isinstance(expr, c.Unary) and expr.op == "*"):
            effects, addr, ctype = self.lvalue(expr)
            if isinstance(ctype, ct.TArray):
                return effects, addr, ct.TPointer(ctype.element)
            if isinstance(ctype, ct.TStruct):
                raise UnsupportedFeatureError(
                    "struct value used outside member access", expr.loc)
            return effects, cl.ELoad(ctype.chunk(), addr), ctype
        if isinstance(expr, c.Unary):
            return self._rvalue_unary(expr)
        if isinstance(expr, c.IncDec):
            return self._rvalue_incdec(expr)
        if isinstance(expr, c.Binary):
            return self._rvalue_binary(expr)
        if isinstance(expr, c.Logical):
            return self._rvalue_logical(expr)
        if isinstance(expr, c.Conditional):
            return self._rvalue_conditional(expr)
        if isinstance(expr, c.Assign):
            return self._rvalue_assign(expr)
        if isinstance(expr, c.Call):
            return self._rvalue_call(expr)
        if isinstance(expr, c.Cast):
            return self._rvalue_cast(expr)
        if isinstance(expr, c.Comma):
            left_effects, _value, _ = self.rvalue(expr.left)
            right_effects, value, ty = self.rvalue(expr.right)
            return left_effects + right_effects, value, ty
        raise LoweringError(f"unknown expression {type(expr).__name__}")

    def _rvalue_unary(self, expr: c.Unary) -> tuple[_Effects, cl.Expr, ct.CType]:
        if expr.op == "&":
            if isinstance(expr.operand, c.Name) \
                    and expr.operand.binding == "function":
                return self.rvalue(expr.operand)  # &f is the same as f
            effects, addr, ctype = self.lvalue(expr.operand)
            return effects, addr, ct.TPointer(ctype)
        effects, value, ty = self.rvalue(expr.operand)
        if expr.op == "+":
            return effects, value, ty
        if expr.op == "-":
            op = "negf" if ty.is_float else "neg"
            return effects, cl.EUnop(op, value), ty
        if expr.op == "~":
            return effects, cl.EUnop("notint", value), ty
        if expr.op == "!":
            if ty.is_float:
                test = cl.EBinop("cmpf_eq", value, cl.EConstFloat(0.0))
                return effects, test, ct.INT
            return effects, cl.EUnop("notbool", value), ct.INT
        raise LoweringError(f"unary {expr.op}")

    def _rvalue_incdec(self, expr: c.IncDec) -> tuple[_Effects, cl.Expr, ct.CType]:
        target = expr.operand
        delta = 1 if expr.op == "++" else -1
        ty = expr.ty
        assert ty is not None
        # Plain temporary: operate directly on the temp.
        if isinstance(target, c.Name) and target.binding == "local" \
                and target.ident not in self.addressable:
            temp = target.ident
            old = cl.ETemp(temp)
            new = self._apply_delta(old, ty, delta)
            if expr.is_prefix:
                return [cl.SSet(temp, new)], cl.ETemp(temp), ty
            saved = self._fresh(ty.is_float)
            return ([cl.SSet(saved, old), cl.SSet(temp, new)],
                    cl.ETemp(saved), ty)
        effects, addr, ctype = self.lvalue(target)
        addr_temp = self._fresh(False)
        effects = effects + [cl.SSet(addr_temp, addr)]
        loaded = cl.ELoad(ctype.chunk(), cl.ETemp(addr_temp))
        old_temp = self._fresh(ctype.is_float)
        effects.append(cl.SSet(old_temp, loaded))
        new = self._apply_delta(cl.ETemp(old_temp), ctype, delta)
        new_temp = self._fresh(ctype.is_float)
        effects.append(cl.SSet(new_temp, new))
        effects.append(cl.SStore(ctype.chunk(), cl.ETemp(addr_temp),
                                 cl.ETemp(new_temp)))
        result = new_temp if expr.is_prefix else old_temp
        return effects, cl.ETemp(result), ctype

    def _apply_delta(self, value: cl.Expr, ctype: ct.CType, delta: int) -> cl.Expr:
        if isinstance(ctype, ct.TPointer):
            return cl.EBinop("add", value,
                             cl.EConstInt(delta * ctype.target.size))
        if ctype.is_float:
            op = "addf" if delta > 0 else "subf"
            return cl.EBinop(op, value, cl.EConstFloat(1.0))
        raw = cl.EBinop("add", value, cl.EConstInt(delta))
        return _narrow(raw, ctype)

    def _rvalue_binary(self, expr: c.Binary) -> tuple[_Effects, cl.Expr, ct.CType]:
        left_effects, left, left_ty = self.rvalue(expr.left)
        right_effects, right, right_ty = self.rvalue(expr.right)
        (left_effects, left), (right_effects, right) = self._protect2(
            (left_effects, left, left_ty.is_float),
            (right_effects, right, right_ty.is_float))
        effects = left_effects + right_effects
        op = expr.op
        result_ty = expr.ty
        assert result_ty is not None

        # Pointer arithmetic.
        if isinstance(left_ty, ct.TPointer) and op in ("+", "-") \
                and right_ty.is_integer:
            scaled = _scale_index(right, left_ty.target.size)
            clight_op = "add" if op == "+" else "sub"
            return effects, cl.EBinop(clight_op, left, scaled), left_ty
        if isinstance(right_ty, ct.TPointer) and op == "+" and left_ty.is_integer:
            scaled = _scale_index(left, right_ty.target.size)
            return effects, cl.EBinop("add", right, scaled), right_ty
        if isinstance(left_ty, ct.TPointer) and isinstance(right_ty, ct.TPointer):
            if op == "-":
                diff = cl.EBinop("sub", left, right)
                size = left_ty.target.size
                if size != 1:
                    diff = cl.EBinop("divs", diff, cl.EConstInt(size))
                return effects, diff, ct.INT
            return (effects,
                    cl.EBinop(_pointer_compare_op(op), left, right), ct.INT)
        if isinstance(left_ty, ct.TPointer) or isinstance(right_ty, ct.TPointer):
            # pointer vs NULL comparison (checker guaranteed legality)
            return (effects,
                    cl.EBinop(_pointer_compare_op(op), left, right), ct.INT)

        operand_ty = left_ty  # checker converted both sides to a common type
        clight_op = _select_binop(op, operand_ty)
        return effects, cl.EBinop(clight_op, left, right), result_ty

    def _rvalue_logical(self, expr: c.Logical) -> tuple[_Effects, cl.Expr, ct.CType]:
        result = self._fresh(False)
        left_effects, left, _ = self.rvalue(expr.left)
        right_effects, right, right_ty = self.rvalue(expr.right)
        if right_ty.is_float:
            truthy: cl.Expr = cl.EBinop("cmpf_ne", right, cl.EConstFloat(0.0))
        else:
            truthy = cl.EUnop("notbool", cl.EUnop("notbool", right))
        set_from_right = cl.seq(
            *right_effects, cl.SSet(result, truthy))
        if expr.op == "&&":
            stmt = cl.SIf(left, set_from_right,
                          cl.SSet(result, cl.EConstInt(0)))
        else:
            stmt = cl.SIf(left, cl.SSet(result, cl.EConstInt(1)),
                          set_from_right)
        return left_effects + [stmt], cl.ETemp(result), ct.INT

    def _rvalue_conditional(self, expr: c.Conditional) -> tuple[_Effects, cl.Expr, ct.CType]:
        ty = expr.ty
        assert ty is not None
        result = self._fresh(ty.is_float)
        cond_effects, cond, _ = self.rvalue(expr.cond)
        then_effects, then_value, _ = self.rvalue(expr.then)
        else_effects, else_value, _ = self.rvalue(expr.otherwise)
        stmt = cl.SIf(cond,
                      cl.seq(*then_effects, cl.SSet(result, then_value)),
                      cl.seq(*else_effects, cl.SSet(result, else_value)))
        return cond_effects + [stmt], cl.ETemp(result), ty

    def _rvalue_assign(self, expr: c.Assign) -> tuple[_Effects, cl.Expr, ct.CType]:
        target = expr.target
        target_ty = expr.ty
        assert target_ty is not None

        if expr.op == "=":
            value_effects, value, _ = self.rvalue(expr.value)
            return self._store_to(target, target_ty, value_effects, value)

        # Compound assignment: target = (T)((C)target op (C)value).
        binary_op = expr.op[:-1]
        value_effects, value, value_ty = self.rvalue(expr.value)

        if isinstance(target_ty, ct.TPointer):
            scaled = _scale_index(value, target_ty.target.size)
            make_new = lambda old: cl.EBinop(
                "add" if binary_op == "+" else "sub", old, scaled)
            return self._update_target(target, target_ty, value_effects, make_new)

        if binary_op in ("<<", ">>"):
            common = ct.integer_promotion(target_ty)
        else:
            common = ct.usual_arithmetic_conversion(target_ty, value_ty)
        clight_op = _select_binop(binary_op, common)
        converted_value = _convert(value, value_ty, common)

        def make_new(old: cl.Expr) -> cl.Expr:
            widened = _convert(old, target_ty, common)
            raw = cl.EBinop(clight_op, widened, converted_value)
            return _convert(raw, common, target_ty)

        return self._update_target(target, target_ty, value_effects, make_new)

    def _store_to(self, target: c.Expr, target_ty: ct.CType,
                  value_effects: _Effects, value: cl.Expr
                  ) -> tuple[_Effects, cl.Expr, ct.CType]:
        if isinstance(target, c.Name) and target.binding == "local" \
                and target.ident not in self.addressable:
            narrowed = _narrow(value, target_ty)
            effects = value_effects + [cl.SSet(target.ident, narrowed)]
            return effects, cl.ETemp(target.ident), target_ty
        addr_effects, addr, ctype = self.lvalue(target)
        (addr_effects, addr), (value_effects, value) = self._protect2(
            (addr_effects, addr, False),
            (value_effects, value, target_ty.is_float))
        saved = self._fresh(target_ty.is_float)
        effects = addr_effects + value_effects + [
            cl.SSet(saved, value),
            cl.SStore(ctype.chunk(), addr, cl.ETemp(saved)),
        ]
        return effects, cl.ETemp(saved), target_ty

    def _update_target(self, target: c.Expr, target_ty: ct.CType,
                       value_effects: _Effects, make_new
                       ) -> tuple[_Effects, cl.Expr, ct.CType]:
        """Read-modify-write for compound assignment and similar forms."""
        if isinstance(target, c.Name) and target.binding == "local" \
                and target.ident not in self.addressable:
            temp = target.ident
            new = make_new(cl.ETemp(temp))
            effects = value_effects + [cl.SSet(temp, new)]
            return effects, cl.ETemp(temp), target_ty
        addr_effects, addr, ctype = self.lvalue(target)
        addr_temp = self._fresh(False)
        effects = addr_effects + [cl.SSet(addr_temp, addr)] + value_effects
        loaded = cl.ELoad(ctype.chunk(), cl.ETemp(addr_temp))
        new_temp = self._fresh(target_ty.is_float)
        effects.append(cl.SSet(new_temp, make_new(loaded)))
        effects.append(cl.SStore(ctype.chunk(), cl.ETemp(addr_temp),
                                 cl.ETemp(new_temp)))
        return effects, cl.ETemp(new_temp), target_ty

    def _rvalue_call(self, expr: c.Call) -> tuple[_Effects, cl.Expr, ct.CType]:
        if expr.indirect:
            return self._rvalue_indirect_call(expr)
        signature = self.env.function_type(expr.callee)
        effects: _Effects = []
        arg_parts: list[tuple[_Effects, cl.Expr, bool]] = []
        for arg in expr.args:
            arg_effects, value, arg_ty = self.rvalue(arg)
            arg_parts.append((arg_effects, value, arg_ty.is_float))
        protected = self._protect(arg_parts)
        arg_exprs: list[cl.Expr] = []
        for arg_effects, value in protected:
            effects.extend(arg_effects)
            arg_exprs.append(value)
        result_ty = signature.result
        if isinstance(result_ty, ct.TVoid):
            effects.append(cl.SCall(None, expr.callee, arg_exprs))
            return effects, cl.EConstInt(0), ct.INT
        dest = self._fresh(result_ty.is_float)
        effects.append(cl.SCall(dest, expr.callee, arg_exprs))
        return effects, cl.ETemp(dest), result_ty

    def _rvalue_indirect_call(self, expr: c.Call
                              ) -> tuple[_Effects, cl.Expr, ct.CType]:
        """Devirtualize ``fp(args)`` into a fid-comparison dispatch.

        The value analysis annotated the call with its finite candidate
        set, so the lowering emits

            if (fp == fid(f1)) d = f1(args);
            else if (fp == fid(f2)) d = f2(args);
            else loop {} // unreachable: fp holds one of the candidates

        leaving a fully *direct* call graph: the automatic analyzer
        prices the dispatch as the max over the candidates through the
        ordinary ``DIf``/``DCall`` rules, and the derivation stays
        checkable with no new logic.  The dead else-arm costs no stack.
        """
        signature = expr.signature
        candidates = expr.fp_candidates
        assert signature is not None and candidates, \
            "indirect call not annotated by the value analysis"
        parts: list[tuple[_Effects, cl.Expr, bool]] = []
        fp_effects, fp_value, _ = self.rvalue(expr.callee_expr)
        parts.append((fp_effects, fp_value, False))
        for arg in expr.args:
            arg_effects, value, arg_ty = self.rvalue(arg)
            parts.append((arg_effects, value, arg_ty.is_float))
        protected = self._protect(parts)
        effects: _Effects = []
        values: list[cl.Expr] = []
        for part_effects, value in protected:
            effects.extend(part_effects)
            values.append(value)
        fp_value, arg_exprs = values[0], values[1:]
        result_ty = signature.result
        dest: Optional[str] = None
        if not isinstance(result_ty, ct.TVoid):
            dest = self._fresh(result_ty.is_float)
        # The else-arm of the last comparison is unreachable (the value
        # analysis over-approximates the pointer's targets); an empty
        # loop keeps it both event-free and stack-free.
        dispatch: cl.Stmt = cl.SLoop(cl.SSkip(), cl.SSkip())
        for name in reversed(candidates):
            test = cl.EBinop("cmp_eq", fp_value,
                             cl.EConstInt(self.fp.fid(name)))
            dispatch = cl.SIf(test, cl.SCall(dest, name, list(arg_exprs)),
                              dispatch)
        effects.append(dispatch)
        if dest is None:
            return effects, cl.EConstInt(0), ct.INT
        return effects, cl.ETemp(dest), result_ty

    def _rvalue_cast(self, expr: c.Cast) -> tuple[_Effects, cl.Expr, ct.CType]:
        effects, value, from_ty = self.rvalue(expr.operand)
        target = expr.target_type
        if isinstance(target, ct.TVoid):
            return effects, cl.EConstInt(0), ct.INT
        return effects, _convert(value, from_ty, target), target

    # -- evaluation-order protection ----------------------------------------------

    def _protect(self, parts: list[tuple[_Effects, cl.Expr, bool]]
                 ) -> list[tuple[_Effects, cl.Expr]]:
        """Stash each value into a temp if a *later* part has effects.

        Keeps left-to-right evaluation observable: a pure expression must
        not be re-evaluated after a later side effect may have changed the
        temps or memory it reads.
        """
        out: list[tuple[_Effects, cl.Expr]] = []
        for index, (effects, value, is_float) in enumerate(parts):
            later_effects = any(parts[j][0] for j in range(index + 1, len(parts)))
            if later_effects and not _is_trivially_stable(value):
                temp = self._fresh(is_float)
                out.append((effects + [cl.SSet(temp, value)], cl.ETemp(temp)))
            else:
                out.append((effects, value))
        return out

    def _protect2(self, first: tuple[_Effects, cl.Expr, bool],
                  second: tuple[_Effects, cl.Expr, bool]):
        protected = self._protect([first, second])
        return protected[0], protected[1]


# ---------------------------------------------------------------------------
# Pure helpers
# ---------------------------------------------------------------------------


def _addr_plus(base: cl.Expr, offset: int) -> cl.Expr:
    if offset == 0:
        return base
    return cl.EBinop("add", base, cl.EConstInt(offset))


def _scale_index(index: cl.Expr, size: int) -> cl.Expr:
    if size == 1:
        return index
    if isinstance(index, cl.EConstInt):
        return cl.EConstInt(index.value * size)
    return cl.EBinop("mul", index, cl.EConstInt(size))


def _is_trivially_stable(expr: cl.Expr) -> bool:
    return isinstance(expr, (cl.EConstInt, cl.EConstFloat, cl.EAddrGlobal,
                             cl.EAddrStack))


def _narrow(value: cl.Expr, ctype: ct.CType) -> cl.Expr:
    """Re-normalize a 32-bit value into a narrow integer type's range."""
    if isinstance(ctype, ct.TInt) and ctype.width < 4:
        op = {
            (1, True): "cast8signed",
            (1, False): "cast8unsigned",
            (2, True): "cast16signed",
            (2, False): "cast16unsigned",
        }[(ctype.width, ctype.signed)]
        return cl.EUnop(op, value)
    return value


def _convert(value: cl.Expr, from_ty: ct.CType, to_ty: ct.CType) -> cl.Expr:
    """Compile a C conversion into explicit Clight operators."""
    if from_ty == to_ty:
        return value
    if isinstance(to_ty, ct.TPointer):
        return value  # pointer-to-pointer or literal 0
    if to_ty.is_float:
        if from_ty.is_float:
            return value
        assert isinstance(from_ty, ct.TInt)
        op = "floatofint" if from_ty.signed or from_ty.width < 4 \
            else "floatofuint"
        return cl.EUnop(op, value)
    assert isinstance(to_ty, ct.TInt)
    if from_ty.is_float:
        op = "intoffloat" if to_ty.signed else "uintoffloat"
        truncated = cl.EUnop(op, value)
        return _narrow(truncated, to_ty)
    # int -> int: only narrowing needs work (values are 32-bit normalized)
    return _narrow(value, to_ty)


def _select_binop(op: str, operand_ty: ct.CType) -> str:
    if operand_ty.is_float:
        table = {"+": "addf", "-": "subf", "*": "mulf", "/": "divf",
                 "==": "cmpf_eq", "!=": "cmpf_ne", "<": "cmpf_lt",
                 "<=": "cmpf_le", ">": "cmpf_gt", ">=": "cmpf_ge"}
        return table[op]
    assert isinstance(operand_ty, ct.TInt)
    signed = operand_ty.signed
    table = {
        "+": "add", "-": "sub", "*": "mul",
        "/": "divs" if signed else "divu",
        "%": "mods" if signed else "modu",
        "&": "and", "|": "or", "^": "xor",
        "<<": "shl", ">>": "shrs" if signed else "shru",
        "==": "cmp_eq", "!=": "cmp_ne",
        "<": "cmp_lts" if signed else "cmp_ltu",
        "<=": "cmp_les" if signed else "cmp_leu",
        ">": "cmp_gts" if signed else "cmp_gtu",
        ">=": "cmp_ges" if signed else "cmp_geu",
    }
    return table[op]


def _pointer_compare_op(op: str) -> str:
    table = {"==": "cmp_eq", "!=": "cmp_ne", "<": "cmp_ltu",
             "<=": "cmp_leu", ">": "cmp_gtu", ">=": "cmp_geu"}
    return table[op]
