"""Benchmark + regeneration of the paper's Figure 7.

Accuracy of hand-derived bounds: the derived bound plotted against the
measured stack usage of the compiled program across inputs —

* top plot: ``bsearch`` over array lengths up to 4000 against
  ``M·(2 + log2 x)`` (paper: ``40(1 + log2 x)``);
* bottom plot: ``fact_sq`` over arguments up to 40 against
  ``M_fs + M_f·(1 + x²)`` (paper: ``40 + 24x²``).

The measured series is obtained exactly as in the paper: run the
compiled program under the stack monitor (our ptrace analog) for each
input.  Measurement isolates the function's own usage by subtracting the
driver ``main``'s frame.

    python benchmarks/bench_fig7.py
    pytest benchmarks/bench_fig7.py --benchmark-only
"""

import pytest

from repro.driver import compile_c
from repro.measure import measure_compilation
from repro.programs.loader import load_source
from repro.programs.table2 import bsearch_spec, fact_sq_spec

BSEARCH_SIZES = [2, 4, 8, 16, 32, 64, 125, 250, 500, 1000, 2000, 4000]
FACT_SQ_ARGS = [1, 2, 4, 8, 12, 16, 24, 32, 40]


def sweep_bsearch(sizes=BSEARCH_SIZES):
    source = load_source("recursive/bsearch.c")
    spec = bsearch_spec()
    rows = []
    for n in sizes:
        compilation = compile_c(source, macros={"N": str(n)})
        run = measure_compilation(compilation, fuel=200_000_000)
        assert run.converged, run.behavior
        metric = compilation.metric
        measured = run.measured_bytes - metric.cost("main")
        bound = spec.total_bytes(metric, {"n": n})
        rows.append((n, measured, bound))
    return rows


def sweep_fact_sq(args=FACT_SQ_ARGS):
    source = load_source("recursive/fact_sq.c")
    spec = fact_sq_spec()
    rows = []
    for n in args:
        compilation = compile_c(source, macros={"N": str(n)})
        run = measure_compilation(compilation, fuel=200_000_000)
        assert run.converged, run.behavior
        metric = compilation.metric
        measured = run.measured_bytes - metric.cost("main")
        bound = spec.total_bytes(metric, {"n": n})
        rows.append((n, measured, bound))
    return rows


def print_series(title, xlabel, rows):
    print()
    print(title)
    print(f"{xlabel:>8s}  {'measured':>10s}  {'bound':>10s}  {'slack':>6s}")
    for x, measured, bound in rows:
        print(f"{x:8d}  {measured:10d}  {bound:10d}  {bound - measured:6d}")


def check_series(rows, logarithmic):
    for _x, measured, bound in rows:
        assert measured <= bound - 4
    xs = [r[0] for r in rows]
    measured = [r[1] for r in rows]
    # Shape check: monotone growth, and for the logarithmic series the
    # growth per doubling is one frame.
    assert measured == sorted(measured)
    if logarithmic:
        doubling_steps = [measured[i + 1] - measured[i]
                          for i in range(len(xs) - 1)
                          if xs[i + 1] == 2 * xs[i]]
        frame = doubling_steps[0]
        assert all(step == frame for step in doubling_steps[1:])


@pytest.mark.table
def test_fig7_bsearch(benchmark):
    rows = benchmark.pedantic(sweep_bsearch, rounds=1, iterations=1)
    print_series("Figure 7 (top): bsearch, measured vs M*(2+log2 x)",
                 "length", rows)
    check_series(rows, logarithmic=True)


@pytest.mark.table
def test_fig7_fact_sq(benchmark):
    rows = benchmark.pedantic(sweep_fact_sq, rounds=1, iterations=1)
    print_series("Figure 7 (bottom): fact_sq, measured vs M_fs + M_f*(1+x^2)",
                 "x", rows)
    check_series(rows, logarithmic=False)
    # Quadratic shape: measured(2x) - overhead is about 4x measured(x).
    by_x = {x: m for x, m, _b in rows}
    assert by_x[32] > 3.5 * by_x[16]


if __name__ == "__main__":
    print_series("Figure 7 (top): bsearch", "length", sweep_bsearch())
    print_series("Figure 7 (bottom): fact_sq", "x", sweep_fact_sq())
