"""The automatic stack analyzer (paper §5).

``auto_bound`` walks a Clight AST and computes, for every statement, a
ground bound expression over metric atoms ``M(f)`` — *and a derivation in
the quantitative Hoare logic* establishing that bound, so every run of the
analyzer is self-certifying and composes with interactively proved specs.

The analyzer handles exactly what the paper's does: programs without
recursion and without function pointers (the front end already excludes
the latter).  Functions are processed in topological call-graph order.
"""

from repro.analyzer.auto import AnalysisResult, StackAnalyzer, auto_bound
from repro.analyzer.callgraph import CallGraph, build_call_graph

__all__ = ["StackAnalyzer", "AnalysisResult", "auto_bound", "CallGraph",
           "build_call_graph"]
