"""Interactive (manual) bounds for recursive functions — Table 2 + Fig 7.

The automatic analyzer refuses recursion; the quantitative Hoare logic
does not.  This example walks the ``bsearch`` proof (the paper's Fig. 6),
checks its induction step, sweeps inputs on the ASMsz machine, and draws
the Figure 7 comparison as a text plot.

    python examples/recursive_bounds.py
"""

from repro.analyzer import StackAnalyzer
from repro.driver import compile_c
from repro.errors import AnalysisError
from repro.logic.recursion import check_spec
from repro.measure import measure_compilation
from repro.programs.loader import load_source
from repro.programs.table2 import bsearch_spec, build_spec_table

SIZES = [4, 16, 64, 256, 1024, 4096]


def main():
    source = load_source("recursive/bsearch.c")

    # The automatic analyzer rejects recursion, as in the paper (§5).
    compilation = compile_c(source, macros={"N": "64"})
    try:
        StackAnalyzer(compilation.clight).analyze()
    except AnalysisError as exc:
        print(f"automatic analyzer: {exc}\n")

    # The manual spec with auxiliary state: P(Δ) = M(bsearch)·(1+log2 Δ).
    table = build_spec_table()
    spec = table.recursive["bsearch"]
    report = check_spec(spec, table)
    print(f"manual spec for bsearch: {spec.description}")
    print(f"induction step verified on {report.instances} instances "
          f"({report.obligation_checks} call obligations, exact in the "
          "metric)\n")

    # Sweep array sizes, measure on ASMsz, compare with the bound.
    print(f"{'N':>6s} {'measured':>9s} {'bound':>7s}  (bytes, bsearch only)")
    rows = []
    for n in SIZES:
        compilation = compile_c(source, macros={"N": str(n)})
        run = measure_compilation(compilation, fuel=200_000_000)
        metric = compilation.metric
        measured = run.measured_bytes - metric.cost("main")
        bound = spec.total_bytes(metric, {"n": n})
        rows.append((n, measured, bound))
        print(f"{n:6d} {measured:9d} {bound:7d}")

    # A Figure 7-style text plot: '#' measured, '|' the bound.
    print("\nFigure 7 (top), as ASCII:")
    scale = max(bound for _n, _m, bound in rows) / 60
    for n, measured, bound in rows:
        bar = "#" * int(measured / scale)
        pad = " " * max(0, int(bound / scale) - len(bar))
        print(f"{n:6d} {bar}{pad}|")
    print("\nthe staircase grows by one fixed frame per doubling — the "
          "logarithmic shape of the verified bound.")

    # The modular proof: filter_find composes bsearch's bound.
    ff = table.recursive["filter_find"]
    print(f"\nfilter_find reuses it: {ff.description}")
    check_spec(ff, table)
    print("filter_find induction step verified (composing specs, like the "
          "paper composes the bsearch proof into filter_find).")


if __name__ == "__main__":
    main()
