"""Unit tests for the shared operator semantics (repro.ops)."""

import pytest

from repro import ops
from repro.errors import UndefinedBehaviorError
from repro.memory.values import VFloat, VInt, VPtr, VUndef


class TestUnops:
    def test_neg(self):
        assert ops.eval_unop("neg", VInt(5)) == VInt(-5)

    def test_notint(self):
        assert ops.eval_unop("notint", VInt(0)) == VInt(-1)

    def test_notbool_on_int(self):
        assert ops.eval_unop("notbool", VInt(0)) == VInt(1)
        assert ops.eval_unop("notbool", VInt(7)) == VInt(0)

    def test_notbool_on_pointer(self):
        assert ops.eval_unop("notbool", VPtr(1, 0)) == VInt(0)

    def test_negf(self):
        assert ops.eval_unop("negf", VFloat(2.5)) == VFloat(-2.5)

    def test_conversions(self):
        assert ops.eval_unop("intoffloat", VFloat(-3.7)) == VInt(-3)
        assert ops.eval_unop("floatofint", VInt(-3)) == VFloat(-3.0)
        assert ops.eval_unop("floatofuint", VInt(-1)) == \
            VFloat(float(2 ** 32 - 1))
        assert ops.eval_unop("uintoffloat", VFloat(4e9)) == VInt(4_000_000_000)

    def test_uintoffloat_range_checks(self):
        with pytest.raises(UndefinedBehaviorError):
            ops.eval_unop("uintoffloat", VFloat(-1.0))
        with pytest.raises(UndefinedBehaviorError):
            ops.eval_unop("uintoffloat", VFloat(2.0 ** 33))

    def test_narrowing_casts(self):
        assert ops.eval_unop("cast8signed", VInt(0xFF)) == VInt(-1)
        assert ops.eval_unop("cast8unsigned", VInt(0x1FF)) == VInt(0xFF)
        assert ops.eval_unop("cast16signed", VInt(0x8000)) == VInt(-32768)
        assert ops.eval_unop("cast16unsigned", VInt(0x18000)) == VInt(0x8000)

    def test_undef_operand_goes_wrong(self):
        with pytest.raises(UndefinedBehaviorError):
            ops.eval_unop("neg", VUndef())

    def test_wrong_class_goes_wrong(self):
        with pytest.raises(UndefinedBehaviorError):
            ops.eval_unop("neg", VFloat(1.0))


class TestIntBinops:
    def test_arithmetic(self):
        assert ops.eval_binop("add", VInt(2), VInt(3)) == VInt(5)
        assert ops.eval_binop("sub", VInt(2), VInt(3)) == VInt(-1)
        assert ops.eval_binop("mul", VInt(-2), VInt(3)) == VInt(-6)

    def test_division_signedness(self):
        assert ops.eval_binop("divs", VInt(-7), VInt(2)) == VInt(-3)
        assert ops.eval_binop("divu", VInt(-7), VInt(2)) == \
            VInt((2 ** 32 - 7) // 2)

    def test_division_by_zero(self):
        with pytest.raises(UndefinedBehaviorError):
            ops.eval_binop("divs", VInt(1), VInt(0))

    def test_shifts(self):
        assert ops.eval_binop("shl", VInt(1), VInt(4)) == VInt(16)
        assert ops.eval_binop("shrs", VInt(-8), VInt(1)) == VInt(-4)
        assert ops.eval_binop("shru", VInt(-8), VInt(1)) == VInt(0x7FFFFFFC)

    def test_comparisons(self):
        assert ops.eval_binop("cmp_lts", VInt(-1), VInt(0)) == VInt(1)
        assert ops.eval_binop("cmp_ltu", VInt(-1), VInt(0)) == VInt(0)
        assert ops.eval_binop("cmp_eq", VInt(4), VInt(4)) == VInt(1)


class TestFloatBinops:
    def test_arithmetic(self):
        assert ops.eval_binop("addf", VFloat(1.5), VFloat(2.5)) == VFloat(4.0)
        assert ops.eval_binop("mulf", VFloat(3.0), VFloat(2.0)) == VFloat(6.0)

    def test_division_by_zero_is_ieee(self):
        inf = ops.eval_binop("divf", VFloat(1.0), VFloat(0.0))
        assert inf.value == float("inf")
        neg_inf = ops.eval_binop("divf", VFloat(-1.0), VFloat(0.0))
        assert neg_inf.value == float("-inf")
        nan = ops.eval_binop("divf", VFloat(0.0), VFloat(0.0))
        assert nan.value != nan.value

    def test_comparisons(self):
        assert ops.eval_binop("cmpf_lt", VFloat(1.0), VFloat(2.0)) == VInt(1)
        assert ops.eval_binop("cmpf_ge", VFloat(1.0), VFloat(2.0)) == VInt(0)

    def test_nan_compares_false(self):
        nan = VFloat(float("nan"))
        assert ops.eval_binop("cmpf_eq", nan, nan) == VInt(0)
        assert ops.eval_binop("cmpf_ne", nan, nan) == VInt(1)


class TestPointerOps:
    def test_pointer_plus_int(self):
        ptr = VPtr(3, 8)
        assert ops.eval_binop("add", ptr, VInt(4)) == VPtr(3, 12)
        assert ops.eval_binop("add", VInt(4), ptr) == VPtr(3, 12)

    def test_pointer_minus_int(self):
        assert ops.eval_binop("sub", VPtr(3, 8), VInt(4)) == VPtr(3, 4)

    def test_pointer_difference_same_block(self):
        assert ops.eval_binop("sub", VPtr(3, 12), VPtr(3, 4)) == VInt(8)

    def test_pointer_difference_cross_block_is_ub(self):
        with pytest.raises(UndefinedBehaviorError):
            ops.eval_binop("sub", VPtr(3, 0), VPtr(4, 0))

    def test_same_block_ordering(self):
        assert ops.eval_binop("cmp_ltu", VPtr(1, 0), VPtr(1, 4)) == VInt(1)

    def test_cross_block_equality_is_false(self):
        assert ops.eval_binop("cmp_eq", VPtr(1, 0), VPtr(2, 0)) == VInt(0)
        assert ops.eval_binop("cmp_ne", VPtr(1, 0), VPtr(2, 0)) == VInt(1)

    def test_cross_block_ordering_is_ub(self):
        with pytest.raises(UndefinedBehaviorError):
            ops.eval_binop("cmp_ltu", VPtr(1, 0), VPtr(2, 0))

    def test_null_comparison(self):
        assert ops.eval_binop("cmp_eq", VPtr(1, 0), VInt(0)) == VInt(0)
        assert ops.eval_binop("cmp_ne", VInt(0), VPtr(1, 0)) == VInt(1)
