"""The quantitative Hoare logic for Clight (paper §4).

Assertions map program states to ``N ∪ {∞}``; triples ``{P} S {Q}`` bound
the stack-space weight of every execution of ``S``.  The package provides:

* :mod:`repro.logic.bexpr` — the symbolic bound-expression language in
  which assertions are written (constants, metric atoms ``M(f)``, sums,
  maxima, and the parametric forms needed for recursive specs);
* :mod:`repro.logic.assertions` — assertions, 4-part postconditions and
  function contexts Γ;
* :mod:`repro.logic.derivation` — explicit derivation trees, one node per
  inference rule (the executable counterpart of a Coq proof term);
* :mod:`repro.logic.checker` — the derivation checker that re-validates
  every rule application and its side conditions;
* :mod:`repro.logic.recursion` — recurrence-style specifications for
  recursive functions with an executable induction-step check;
* :mod:`repro.logic.soundness` — runtime validation of triples against
  the Clight semantics (weights of observed traces vs. preconditions).
"""

from repro.logic.assertions import FunContext, FunSpec, Post
from repro.logic.bexpr import (BExpr, badd, bconst, bmax, bmetric, bparam,
                               evaluate, INFINITY)
from repro.logic.checker import CheckerContext, check_derivation
from repro.logic.derivation import Triple

__all__ = [
    "BExpr", "bconst", "bmetric", "bparam", "badd", "bmax", "evaluate",
    "INFINITY", "Post", "FunSpec", "FunContext", "Triple",
    "check_derivation", "CheckerContext",
]
