"""Cross-backend replay of the golden bounds (the differential suite).

Re-derives the catalog and golden-snapshot bounds with
``--bounds-backend=cross`` semantics: every ``bound_le`` the analyzer and
checker discharge runs through the agree-or-fail comparator in
``repro.logic.smt``.  Any :class:`ComparatorDisagreement` fails the test
outright, and the resulting bounds must still match the golden JSON —
the cross-check is a check, never an answer-changer.

Without z3 installed this exercises the FM-plus-audits degradation; the
``bounds-crosscheck`` CI job runs the same tests with z3 for the full
differential.
"""

import json
import os

import pytest

from repro.driver import verify_stack_bounds
from repro.logic import bexpr
from repro.logic.bexpr import param_names
from repro.programs.catalog import FUNCPTR, RECURSIVE, TABLE1
from repro.programs.loader import load_source

GOLDEN = os.path.join(os.path.dirname(__file__), os.pardir, "golden",
                      "inferred_bounds.json")

#: Mirrors test_golden_bounds.INFERRED_AT (kept local: the integration
#: test directory is not a package, so there is nothing to import from).
INFERRED_AT = 100


@pytest.fixture(autouse=True)
def cross_backend():
    bexpr.set_default_backend("cross")
    try:
        yield
    finally:
        bexpr.set_default_backend("fm")


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN) as handle:
        return json.load(handle)


class TestGoldenReplayUnderCross:
    """The inferred-bounds snapshot reproduces under the cross backend."""

    @pytest.mark.parametrize("path", RECURSIVE + FUNCPTR)
    def test_inferred_bounds_reproduce(self, path, golden):
        assert path in golden, f"{path} missing from {GOLDEN}"
        bounds = verify_stack_bounds(load_source(path), filename=path)
        expected = golden[path]
        for name in sorted(bounds.analysis.functions):
            expr = bounds.symbolic(name)
            assert repr(expr) == expected["symbolic"][name], name
            params = {p: INFERRED_AT for p in param_names(expr)}
            assert int(bounds.bytes(name, params or None)) == \
                expected[f"bytes_at_{INFERRED_AT}"][name], name
        assert int(bounds.stack_requirement()) == \
            expected["stack_requirement"]


class TestCatalogReplayUnderCross:
    """Every catalog derivation re-checks with the cross comparator."""

    @pytest.mark.parametrize("entry", TABLE1, ids=lambda e: e.path)
    def test_catalog_program_checks(self, entry):
        bounds = verify_stack_bounds(load_source(entry.path),
                                     filename=entry.path,
                                     macros=entry.macros)
        report = bounds.analysis.check(bounds_backend="cross")
        assert report.nodes > 0
        assert int(bounds.stack_requirement()) >= 0
