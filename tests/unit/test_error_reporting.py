"""Tests for error quality: locations, messages, exception taxonomy.

A tool a developer would adopt must fail precisely; these tests pin the
front end's source locations and the distinction between static errors,
unsupported-feature errors, and dynamic (goes-wrong) behaviors.
"""

import pytest

from repro.c.parser import parse
from repro.c.typecheck import typecheck
from repro.errors import (AnalysisError, LexError, ParseError,
                          StaticError, TypeError_, UnsupportedFeatureError)


def check(source, filename="test.c"):
    program = parse(source, filename)
    typecheck(program)


class TestLocations:
    def test_lex_error_location(self):
        with pytest.raises(LexError) as excinfo:
            parse("int x;\nint @;", "f.c")
        assert "f.c:2" in str(excinfo.value)

    def test_parse_error_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse("int main() {\n  return 1 +;\n}", "g.c")
        assert "g.c:2" in str(excinfo.value)

    def test_type_error_location(self):
        with pytest.raises(TypeError_) as excinfo:
            check("int main() {\n\n  return nope;\n}", "h.c")
        assert "h.c:3" in str(excinfo.value)

    def test_location_column(self):
        with pytest.raises(TypeError_) as excinfo:
            check("int main() { return missing_var; }", "k.c")
        message = str(excinfo.value)
        assert "k.c:1:" in message and "missing_var" in message


class TestMessages:
    def test_arity_message_names_function(self):
        with pytest.raises(TypeError_) as excinfo:
            check("int f(int a) { return a; } int main() { return f(1, 2); }")
        assert "'f'" in str(excinfo.value)
        assert "1 arguments" in str(excinfo.value)

    def test_recursion_error_names_cycle(self):
        from repro.analyzer import StackAnalyzer
        from repro.clight.from_c import clight_of_program

        program = parse(
            "int b(int n); int a(int n) { return b(n); } "
            "int b(int n) { return a(n); } int main() { return 0; }")
        env = typecheck(program)
        clight = clight_of_program(program, env)
        with pytest.raises(AnalysisError) as excinfo:
            StackAnalyzer(clight).analyze()
        message = str(excinfo.value)
        assert "a" in message and "b" in message

    def test_unsupported_feature_is_static_error(self):
        with pytest.raises(UnsupportedFeatureError) as excinfo:
            check("int main() { goto out; out: return 0; }")
        assert isinstance(excinfo.value, StaticError)

    def test_struct_field_error_names_struct(self):
        with pytest.raises(TypeError_) as excinfo:
            check("struct P { int x; }; struct P p; "
                  "int main() { return p.y; }")
        assert "P" in str(excinfo.value) and "'y'" in str(excinfo.value)


class TestGoesWrongReasons:
    def run_reason(self, source):
        from repro.clight.from_c import clight_of_program
        from repro.clight.semantics import run_program
        from repro.events.trace import GoesWrong

        program = parse(source)
        env = typecheck(program)
        behavior = run_program(clight_of_program(program, env))
        assert isinstance(behavior, GoesWrong)
        return behavior.reason

    def test_division_by_zero_reason(self):
        assert "zero" in self.run_reason(
            "int z; int main() { return 4 / z; }")

    def test_overflow_division_reason(self):
        reason = self.run_reason(
            "int main() { int a = -2147483647 - 1; int b = -1; "
            "return a / b; }")
        assert "overflow" in reason

    def test_out_of_bounds_reason(self):
        reason = self.run_reason("int a[2]; int main() { return a[9]; }")
        assert "overflows block" in reason

    def test_freed_block_reason(self):
        reason = self.run_reason(
            "int *f() { int x = 1; return &x; } "
            "int main() { return *f(); }")
        assert "freed" in reason

    def test_stack_overflow_reports_need(self):
        from repro.driver import compile_c
        from repro.events.trace import GoesWrong

        compilation = compile_c(
            "int f(int n) { if (n == 0) return 0; return 1 + f(n - 1); } "
            "int main() { return f(1000); }")
        behavior, _machine = compilation.run(stack_bytes=64)
        assert isinstance(behavior, GoesWrong)
        assert "overflow" in behavior.reason
