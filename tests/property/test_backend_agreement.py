"""Property-based agreement of the bound_le backends (fm / z3 / cross).

The cross-check backend must return exactly the FM verdict on every
query and never raise a :class:`ComparatorDisagreement` on the honest
comparator; with z3 installed, the SMT translation must agree with FM
outright on the ground fragment and on parametric queries over finite
verification domains.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import smt
from repro.logic.bexpr import (BConst, BFrameDiff, BParam, BScale, badd,
                               bmax, bmetric, bound_le, fm_bound_le)

ATOMS = ("f", "g", "h")
PARAMS = ("n", "k")
DOMAINS = {"n": range(1, 9), "k": range(0, 5)}


@st.composite
def ground_bounds(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return BConst(draw(st.integers(0, 100)))
        return bmetric(draw(st.sampled_from(ATOMS)))
    kind = draw(st.integers(0, 3))
    left = draw(ground_bounds(depth=depth - 1))
    right = draw(ground_bounds(depth=depth - 1))
    if kind == 0:
        return badd(left, right)
    if kind == 1:
        return bmax(left, right)
    if kind == 2:
        return BScale(draw(st.integers(0, 4)), left)
    # The only frame-diff shape in the fragment: part + (total - part),
    # with total an upper bound of part (the Q:FRAME invariant).
    total = bmax(left, right)
    return badd(left, BFrameDiff(total, left))


@st.composite
def parametric_bounds(draw, depth=2):
    """progen-style: the ground grammar plus parameter leaves."""
    if depth == 0 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return BConst(draw(st.integers(0, 50)))
        if choice == 1:
            return bmetric(draw(st.sampled_from(ATOMS)))
        return BParam(draw(st.sampled_from(PARAMS)))
    kind = draw(st.integers(0, 2))
    left = draw(parametric_bounds(depth=depth - 1))
    right = draw(parametric_bounds(depth=depth - 1))
    if kind == 0:
        return badd(left, right)
    if kind == 1:
        return bmax(left, right)
    return BScale(draw(st.integers(0, 3)), left)


class TestCrossAgreesWithFm:
    @settings(max_examples=200)
    @given(ground_bounds(), ground_bounds())
    def test_ground_queries(self, a, b):
        via_fm = fm_bound_le(a, b)
        via_cross = bound_le(a, b, backend="cross")
        assert via_cross.holds == via_fm.holds
        assert via_cross.exact == via_fm.exact

    @settings(max_examples=100)
    @given(parametric_bounds(), parametric_bounds())
    def test_parametric_queries(self, a, b):
        via_fm = fm_bound_le(a, b, param_domains=DOMAINS)
        try:
            via_cross = bound_le(a, b, param_domains=DOMAINS,
                                 backend="cross")
        except smt.ComparatorDisagreement as disagreement:
            # With z3 installed the differential quantifies over *all*
            # metrics while the FM parametric path samples a grid, so a
            # randomized query can expose a genuine sample gap.  That
            # disagreement is only acceptable when it explains itself: a
            # validated witness against a non-exact FM affirmation.
            assert not via_fm.exact and via_fm.holds, disagreement
            assert disagreement.witness is not None, disagreement
            assert "validated" in disagreement.detail, disagreement
            return
        assert via_cross.holds == via_fm.holds


@pytest.mark.skipif(not smt.Z3_AVAILABLE, reason="z3 not installed")
class TestZ3AgreesWithFm:
    """Runs in the bounds-crosscheck CI job (z3 installed).

    The z3 verdict quantifies over *all* metrics where the FM parametric
    path samples a grid, so z3 affirmations are at least as strong; on
    the ground fragment both are exact and must match bidirectionally.
    """

    @settings(max_examples=150, deadline=None)
    @given(ground_bounds(), ground_bounds())
    def test_ground_queries(self, a, b):
        via_fm = fm_bound_le(a, b)
        try:
            via_z3 = smt.smt_bound_le(a, b)
        except smt.SmtUnsupported:
            return
        assert via_z3.holds == via_fm.holds, (a, b)

    @settings(max_examples=60, deadline=None)
    @given(parametric_bounds(), parametric_bounds())
    def test_parametric_affirmations_transfer(self, a, b):
        # FM's sampled affirmation covers 4 metric grids; z3 covers all
        # metrics.  A z3 affirmation therefore implies the sampled one,
        # and a z3 refusal of a sampled affirmation would be a genuine
        # FM unsoundness — assert it never happens.
        via_fm = fm_bound_le(a, b, param_domains=DOMAINS)
        try:
            via_z3 = smt.smt_bound_le(a, b, param_domains=DOMAINS)
        except smt.SmtUnsupported:
            return
        if via_z3.holds:
            assert via_fm.holds, (a, b)
