/* MiBench security/pgp/md5 (adapted).  The real MD5 algorithm (RFC 1321)
 * with the 64-entry sine table computed at startup from the sin builtin
 * instead of spelled out in hex, and the four unrolled round macros
 * rewritten as data-driven loops.  Functions match Table 1: MD5Init,
 * MD5Update, MD5Final, MD5Transform, plus table setup and main. */

#define MSG_BYTES 200

typedef unsigned int u32;
typedef unsigned char u8;

struct MD5_CTX {
    u32 state[4];
    u32 count[2];
    u8 buffer[64];
};

u32 T[64];          /* T[i] = floor(2^32 * |sin(i + 1)|) */
int shifts[16] = {7, 12, 17, 22, 5, 9, 14, 20, 4, 11, 16, 23, 6, 10, 15, 21};
u8 message[MSG_BYTES];
u8 digest[16];
u32 seed = 0x5151;

u32 rnd() {
    seed = seed * 1664525 + 1013904223;
    return seed;
}

void md5_init_tables() {
    int i;
    for (i = 0; i < 64; i++) {
        T[i] = (u32)(floor(fabs(sin((double)(i + 1))) * 4294967296.0));
    }
}

u32 rotate_left(u32 x, u32 n) {
    return (x << n) | (x >> (32 - n));
}

/* Core block transform: 64 steps in 4 rounds, driven by tables. */
void MD5Transform(u32 *state, u8 *block) {
    u32 a = state[0], b = state[1], c = state[2], d = state[3];
    u32 x[16];
    u32 f, temp;
    int i, round, g;

    for (i = 0; i < 16; i++) {
        x[i] = (u32)block[4 * i]
            | ((u32)block[4 * i + 1] << 8)
            | ((u32)block[4 * i + 2] << 16)
            | ((u32)block[4 * i + 3] << 24);
    }
    for (i = 0; i < 64; i++) {
        round = i / 16;
        if (round == 0) {
            f = (b & c) | (~b & d);
            g = i;
        } else if (round == 1) {
            f = (d & b) | (~d & c);
            g = (5 * i + 1) % 16;
        } else if (round == 2) {
            f = b ^ c ^ d;
            g = (3 * i + 5) % 16;
        } else {
            f = c ^ (b | ~d);
            g = (7 * i) % 16;
        }
        temp = d;
        d = c;
        c = b;
        b = b + rotate_left(a + f + x[g] + T[i],
                            (u32)shifts[4 * round + i % 4]);
        a = temp;
    }
    state[0] = state[0] + a;
    state[1] = state[1] + b;
    state[2] = state[2] + c;
    state[3] = state[3] + d;
}

void MD5Init(struct MD5_CTX *ctx) {
    ctx->count[0] = 0;
    ctx->count[1] = 0;
    ctx->state[0] = 0x67452301;
    ctx->state[1] = 0xefcdab89;
    ctx->state[2] = 0x98badcfe;
    ctx->state[3] = 0x10325476;
}

void MD5Update(struct MD5_CTX *ctx, u8 *input, u32 inputLen) {
    u32 i, index, partLen;

    index = (ctx->count[0] >> 3) & 0x3F;
    ctx->count[0] = ctx->count[0] + (inputLen << 3);
    if (ctx->count[0] < (inputLen << 3)) {
        ctx->count[1] = ctx->count[1] + 1;
    }
    ctx->count[1] = ctx->count[1] + (inputLen >> 29);
    partLen = 64 - index;

    if (inputLen >= partLen) {
        for (i = 0; i < partLen; i++) ctx->buffer[index + i] = input[i];
        MD5Transform(ctx->state, ctx->buffer);
        for (i = partLen; i + 63 < inputLen; i = i + 64) {
            MD5Transform(ctx->state, &input[i]);
        }
        index = 0;
    } else {
        i = 0;
    }
    while (i < inputLen) {
        ctx->buffer[index] = input[i];
        index = index + 1;
        i = i + 1;
    }
}

void MD5Final(u8 *out, struct MD5_CTX *ctx) {
    u8 bits[8];
    u8 padding[64];
    u32 index, padLen, i;

    for (i = 0; i < 64; i++) padding[i] = 0;
    padding[0] = 0x80;
    for (i = 0; i < 8; i++) {
        bits[i] = (u8)((ctx->count[i >> 2] >> ((i & 3) * 8)) & 0xFF);
    }
    index = (ctx->count[0] >> 3) & 0x3f;
    if (index < 56) padLen = 56 - index; else padLen = 120 - index;
    MD5Update(ctx, padding, padLen);
    MD5Update(ctx, bits, 8);
    for (i = 0; i < 4; i++) {
        out[4 * i] = (u8)(ctx->state[i] & 0xFF);
        out[4 * i + 1] = (u8)((ctx->state[i] >> 8) & 0xFF);
        out[4 * i + 2] = (u8)((ctx->state[i] >> 16) & 0xFF);
        out[4 * i + 3] = (u8)((ctx->state[i] >> 24) & 0xFF);
    }
}

int main() {
    struct MD5_CTX ctx;
    int i;
    u32 check = 0;

    md5_init_tables();
    for (i = 0; i < MSG_BYTES; i++) message[i] = (u8)(rnd() & 0xFF);
    MD5Init(&ctx);
    MD5Update(&ctx, message, MSG_BYTES);
    MD5Final(digest, &ctx);
    for (i = 0; i < 16; i++) check = check + digest[i];
    print_int((int)check);
    return check != 0;
}
