"""The ``--stack`` hint contract, catalog-wide.

``python -m repro bounds prog.c`` ends with "run with --stack N".  That
hint must be *exactly sufficient*: a stack block of N bytes runs the
program to completion, and N - 4 bytes (one return-address slot short)
overflows.  This pins the paper's 4-byte gap between the verified bound
and the measured high-water mark at the user-facing boundary, so it can
never silently regress there.
"""

import re

import pytest

from repro.__main__ import main
from repro.analyzer import StackAnalyzer
from repro.driver import compile_c
from repro.events.trace import Converges, GoesWrong
from repro.programs.catalog import AUTO_ANALYZABLE
from repro.programs.loader import load_source

FUEL = 150_000_000


@pytest.mark.parametrize("path", AUTO_ANALYZABLE)
def test_printed_bound_is_exactly_sufficient(path):
    compilation = compile_c(load_source(path), filename=path)
    analysis = StackAnalyzer(compilation.clight).analyze()
    bound = analysis.bound_bytes(compilation.asm.main, compilation.metric)

    at_bound, machine = compilation.run(stack_bytes=bound, fuel=FUEL)
    assert isinstance(at_bound, Converges), (
        f"{path}: --stack {bound} (the printed hint) must suffice, got "
        f"{at_bound!r}")
    assert machine.measured_stack_usage <= bound

    under, _machine = compilation.run(stack_bytes=bound - 4, fuel=FUEL)
    assert isinstance(under, GoesWrong), (
        f"{path}: --stack {bound - 4} must overflow (bound not tight "
        "to the 4-byte return-address gap)")
    assert "overflow" in under.reason


def test_cli_roundtrip_bounds_to_run(tmp_path, capsys):
    """Parse the printed hint and feed it straight back to `repro run`."""
    path = tmp_path / "hint.c"
    path.write_text(
        "int dig(int n) { int pad[6]; pad[n & 5] = n; return pad[n & 3]; }\n"
        "int main() { print_int(dig(9)); return 0; }\n")
    assert main(["bounds", str(path)]) == 0
    match = re.search(r"run with --stack (\d+)", capsys.readouterr().out)
    assert match, "bounds output lost the --stack hint"
    hint = int(match.group(1))

    assert main(["run", str(path), "--stack", str(hint)]) == 0
    capsys.readouterr()
    assert main(["run", str(path), "--stack", str(hint - 4)]) == 125
    assert "overflow" in capsys.readouterr().out
