"""Unit tests for proof certificates (export + independent re-check)."""

import json

import pytest

from repro.analyzer import StackAnalyzer
from repro.c.parser import parse
from repro.c.typecheck import typecheck
from repro.clight.from_c import clight_of_program
from repro.errors import DerivationError
from repro.logic import bexpr as bx
from repro.logic.bexpr import evaluate
from repro.logic.certificate import (bexpr_from_json, bexpr_to_json,
                                     export_certificate, load_certificate)


def lower(source):
    program = parse(source)
    env = typecheck(program)
    return clight_of_program(program, env)


SOURCE = ("int leaf() { return 1; } "
          "int mid(int n) { int s = 0; "
          "for (int i = 0; i < n; i++) s += leaf(); return s; } "
          "int main() { print_int(mid(3)); return 0; }")


class TestBexprJson:
    CASES = [
        bx.BConst(0),
        bx.BConst(bx.INFINITY),
        bx.bmetric("f"),
        bx.bparam("n"),
        bx.badd(bx.bmetric("f"), bx.BConst(4)),
        bx.bmax(bx.bmetric("f"), bx.bmetric("g")),
        bx.BScale(3, bx.bmetric("f")),
        bx.BFrameDiff(bx.bmax(bx.bmetric("f"), bx.bmetric("g")),
                      bx.bmetric("f")),
        bx.BMul(bx.bparam("n"), bx.bmetric("f")),
        bx.BLog2(bx.BParamDiff(bx.bparam("hi"), bx.bparam("lo"))),
        bx.BHalf(bx.bparam("n"), ceil=True),
    ]

    @pytest.mark.parametrize("expr", CASES, ids=lambda e: repr(e))
    def test_roundtrip(self, expr):
        restored = bexpr_from_json(bexpr_to_json(expr))
        assert repr(restored) == repr(expr)

    def test_roundtrip_evaluates_identically(self):
        expr = bx.badd(bx.BMul(bx.bparam("n"), bx.bmetric("f")),
                       bx.bmax(bx.bmetric("g"), bx.BConst(8)))
        restored = bexpr_from_json(bexpr_to_json(expr))
        metric = {"f": 4, "g": 16}
        for n in (0, 3, 9):
            assert evaluate(expr, metric, {"n": n}) == \
                evaluate(restored, metric, {"n": n})


class TestCertificates:
    def test_export_is_json(self):
        program = lower(SOURCE)
        analysis = StackAnalyzer(program).analyze()
        text = export_certificate(analysis)
        data = json.loads(text)
        assert data["format"] == "repro-stack-certificate"
        assert set(data["functions"]) == {"leaf", "mid", "main"}

    def test_load_and_recheck(self):
        program = lower(SOURCE)
        analysis = StackAnalyzer(program).analyze()
        text = export_certificate(analysis)
        gamma, bounds, report = load_certificate(text, program)
        assert report.fully_exact
        assert "mid" in gamma
        metric = {"leaf": 4, "mid": 8, "main": 8}
        assert evaluate(bounds["main"], metric) == 8 + 8 + 4

    def test_certificate_against_fresh_parse(self):
        # The consumer has its own copy of the program (a fresh parse of
        # the same source) — exactly the interoperability scenario.
        producer_program = lower(SOURCE)
        analysis = StackAnalyzer(producer_program).analyze()
        text = export_certificate(analysis)
        consumer_program = lower(SOURCE)
        _gamma, _bounds, report = load_certificate(text, consumer_program)
        assert report.fully_exact

    def test_tampered_bound_rejected(self):
        program = lower(SOURCE)
        analysis = StackAnalyzer(program).analyze()
        data = json.loads(export_certificate(analysis))
        # Claim main's body needs nothing.
        data["functions"]["main"]["spec"]["pre"] = {"k": "const", "v": 0}
        data["functions"]["main"]["spec"]["post"] = {"k": "const", "v": 0}
        with pytest.raises(DerivationError):
            load_certificate(json.dumps(data), program)

    def test_certificate_for_different_program_rejected(self):
        program = lower(SOURCE)
        analysis = StackAnalyzer(program).analyze()
        text = export_certificate(analysis)
        other = lower("int leaf() { return 2; } "
                      "int mid(int n) { return leaf() + n; } "
                      "int main() { return mid(1); }")
        with pytest.raises(DerivationError):
            load_certificate(text, other)

    def test_unknown_function_rejected(self):
        program = lower(SOURCE)
        analysis = StackAnalyzer(program).analyze()
        data = json.loads(export_certificate(analysis))
        data["functions"]["ghost"] = data["functions"]["leaf"]
        with pytest.raises(DerivationError):
            load_certificate(json.dumps(data), program)

    def test_bad_format_rejected(self):
        program = lower(SOURCE)
        with pytest.raises(DerivationError):
            load_certificate(json.dumps({"format": "nope"}), program)

    def test_malformed_json_rejected_with_diagnostic(self):
        # A truncated file must yield a DerivationError, not leak the
        # raw json.JSONDecodeError to the caller.
        program = lower(SOURCE)
        text = export_certificate(StackAnalyzer(program).analyze())
        with pytest.raises(DerivationError, match="not valid JSON"):
            load_certificate(text[:len(text) // 2], program)

    def test_non_object_json_rejected(self):
        program = lower(SOURCE)
        with pytest.raises(DerivationError, match="JSON object"):
            load_certificate("[1, 2, 3]", program)

    def test_version_skew_rejected(self):
        program = lower(SOURCE)
        data = json.loads(export_certificate(StackAnalyzer(program)
                                             .analyze()))
        data["version"] += 1
        with pytest.raises(DerivationError,
                           match="unsupported certificate version"):
            load_certificate(json.dumps(data), program)

    def test_truncated_rule_tree_names_the_rule(self):
        # Deleting a premise must produce a diagnostic naming the rule
        # application, not an IndexError from blind child indexing.
        program = lower(SOURCE)
        data = json.loads(export_certificate(StackAnalyzer(program)
                                             .analyze()))

        def truncate(node):
            if node.get("children"):
                node["children"] = node["children"][:-1]
                return True
            return False

        assert any(truncate(entry["derivation"])
                   for entry in data["functions"].values())
        with pytest.raises(DerivationError, match=r"Q:\w+ application"):
            load_certificate(json.dumps(data), program)

    def test_corrupt_total_bound_rejected(self):
        # total_bound is advertised, not derived: the loader re-derives
        # M(f) + P_f and a lying field must carry no authority.
        program = lower(SOURCE)
        data = json.loads(export_certificate(StackAnalyzer(program)
                                             .analyze()))
        data["functions"]["main"]["total_bound"] = {"k": "const", "v": 0}
        with pytest.raises(DerivationError, match="total_bound"):
            load_certificate(json.dumps(data), program)

    def test_negative_constant_rejected(self):
        program = lower(SOURCE)
        data = json.loads(export_certificate(StackAnalyzer(program)
                                             .analyze()))
        data["functions"]["leaf"]["spec"]["pre"] = {"k": "const", "v": -1}
        with pytest.raises(DerivationError, match="natural"):
            load_certificate(json.dumps(data), program)

    def test_missing_field_rejected(self):
        program = lower(SOURCE)
        data = json.loads(export_certificate(StackAnalyzer(program)
                                             .analyze()))
        del data["functions"]["leaf"]["spec"]
        with pytest.raises(DerivationError, match="malformed certificate"):
            load_certificate(json.dumps(data), program)

    def test_certificates_for_benchmarks(self):
        from repro.programs.loader import load_source

        program = lower(load_source("certikos/proc.c"))
        analysis = StackAnalyzer(program).analyze()
        text = export_certificate(analysis)
        _gamma, bounds, report = load_certificate(text, program)
        assert report.fully_exact
        assert set(bounds) == set(program.functions)
