"""Compiler explorer: watch one function travel down the pipeline.

Prints every intermediate representation of Quantitative CompCert for a
small function — Clight, RTL (before/after optimization), Linear, Mach
with its frame layout, and the final ASMsz code with its explicit ESP
arithmetic — then runs each level's interpreter and shows the traces
coincide (the per-execution face of quantitative refinement).

    python examples/compiler_explorer.py
"""

from repro.c.parser import parse
from repro.c.typecheck import typecheck
from repro.clight.from_c import clight_of_program
from repro.clight.semantics import run_program as run_clight
from repro.cminor import cminor_of_clight
from repro.driver import compile_c
from repro.events.trace import weight_of_trace
from repro.mach.semantics import run_program as run_mach
from repro.rtl.constprop import constprop_program
from repro.rtl.deadcode import deadcode_program
from repro.rtl.lower import rtl_of_cminor
from repro.rtl.semantics import run_program as run_rtl

SOURCE = r"""
int dot(int *a, int *b, int n) {
    int total = 0;
    for (int i = 0; i < n; i++) {
        total += a[i] * b[i];
    }
    return total;
}

int x[4] = {1, 2, 3, 4};
int y[4] = {4, 3, 2, 1};

int main() {
    print_int(dot(x, y, 4));
    return 0;
}
"""


def banner(title):
    print("\n" + "=" * 70)
    print(title)
    print("=" * 70)


def main():
    program = parse(SOURCE, "dot.c")
    env = typecheck(program)
    clight = clight_of_program(program, env)

    banner("Clight (pure expressions, explicit loads/stores)")
    dot = clight.function("dot")
    print(f"params={dot.params} temps={len(dot.temps)} "
          f"stackvars={dot.stackvars}")
    print(repr(dot.body)[:600])

    cminor = cminor_of_clight(clight)
    banner("Cminor (addressable locals merged into one $frame block)")
    print(f"dot frame layout: {cminor.layouts['dot']!r}")

    rtl = rtl_of_cminor(cminor)
    banner("RTL before optimization (CFG over virtual registers)")
    print(rtl.functions["dot"].pretty())

    folded = constprop_program(rtl)
    removed = deadcode_program(rtl)
    banner(f"RTL after constprop ({folded} folds) + DCE ({removed} removed)")
    print(rtl.functions["dot"].pretty())

    compilation = compile_c(SOURCE, filename="dot.c")
    banner("Linear (allocated locations, linearized control)")
    print(compilation.linear.functions["dot"].pretty())

    banner("Mach (concrete frames — where the cost metric is born)")
    print(compilation.mach.functions["dot"].pretty())
    print(f"\nSF map: {compilation.frame_sizes}")
    print(f"metric: {compilation.metric!r}")

    banner("ASMsz (finite stack, ESP arithmetic only)")
    print(compilation.asm.functions["dot"].pretty())

    banner("Differential execution")
    b_clight = run_clight(compilation.clight)
    b_rtl = run_rtl(compilation.rtl)
    b_mach = run_mach(compilation.mach)
    b_asm, machine = compilation.run()
    print(f"clight: ret={b_clight.return_code} trace={len(b_clight.trace)} "
          f"events, weight={weight_of_trace(compilation.metric, b_clight.trace)}")
    print(f"rtl:    ret={b_rtl.return_code} (trace equal: "
          f"{b_rtl.trace == b_clight.trace})")
    print(f"mach:   ret={b_mach.return_code} (trace equal: "
          f"{b_mach.trace == b_clight.trace})")
    print(f"asm:    ret={b_asm.return_code} (pruned I/O equal: "
          f"{b_asm.pruned().trace == b_clight.pruned().trace}); "
          f"measured stack {machine.measured_stack_usage} bytes")


if __name__ == "__main__":
    main()
