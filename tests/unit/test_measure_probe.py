"""Unit tests for the bound-tightness probe of the stack monitor."""

from repro.driver import compile_c, verify_stack_bounds
from repro.measure.monitor import probe_bound_tightness

SOURCE = ("int helper(int x) { return x + 1; } "
          "int main() { print_int(helper(41)); return 0; }")


class TestTightnessProbe:
    def test_verified_bound_probes_clean(self):
        bounds = verify_stack_bounds(SOURCE)
        probe = probe_bound_tightness(bounds.compilation,
                                      bounds.stack_requirement())
        assert probe.sound
        assert probe.overflow_detected
        # The paper's 4-byte gap, as seen by the probe.
        assert probe.at_bound.measured_bytes == probe.bound - 4

    def test_inflated_bound_is_still_sound(self):
        """Looseness is not unsoundness: a bigger-than-needed bound still
        converges within itself, and the underprovision run still guards
        against a dead overflow detector."""
        bounds = verify_stack_bounds(SOURCE)
        probe = probe_bound_tightness(bounds.compilation,
                                      bounds.stack_requirement() + 64)
        assert probe.sound and probe.overflow_detected

    def test_understated_bound_is_flagged(self):
        compilation = compile_c(SOURCE)
        probe = probe_bound_tightness(compilation, 8)
        assert not probe.sound
        assert probe.underprovisioned is None
