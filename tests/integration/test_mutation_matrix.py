"""The fault-injection matrix end to end: every operator must be caught.

This is the PR's central claim made executable: for each registered
mutation operator — across the metric, derivation, certificate,
refinement, analysis, serving and codegen trust layers — some checker
or oracle demonstrably rejects the mutant.  A surviving operator is a
soundness gap in a checker, so this test failing is never noise.
"""

import pytest

from repro.testing.campaign import CampaignConfig, run_campaign
from repro.testing.faults import (UnknownFaultError, operators,
                                  run_mutation_matrix)
from repro.testing.oracles import SeedVerdict
from repro.testing.shrink import shrink_failure

#: A small corpus with every kind of site the operators need — plain
#: loops, a linear and a logarithmic recursion (parametric certificates
#: for the recursion operators), and a devirtualized dispatch program —
#: while keeping the test inside CI budgets.
CATALOG = ("mibench/bitcount.c", "mibench/crc32.c", "recursive/recid.c",
           "recursive/bsearch.c", "funcptr/dispatch.c")
SEEDS = range(0, 3)


@pytest.fixture(scope="module")
def report():
    return run_mutation_matrix(catalog=CATALOG, seeds=SEEDS)


class TestMatrix:
    def test_every_operator_is_detected(self, report):
        gaps = [f"{o.operator} ({o.layer}): {o.diagnostic}"
                for o in report.undetected]
        assert not gaps, "undetected mutation operators:\n" + "\n".join(gaps)

    def test_matrix_covers_the_whole_registry(self, report):
        assert {o.operator for o in report.outcomes} == \
            {op.name for op in operators()}
        assert len(report.outcomes) >= 12  # the issue's floor

    def test_report_names_the_catching_checker(self, report):
        for outcome in report.outcomes:
            assert outcome.caught_by, outcome.operator
            assert outcome.detected_on, outcome.operator
            assert outcome.diagnostic, outcome.operator

    def test_layer_detection_routes(self, report):
        by_name = {o.operator: o for o in report.outcomes}
        # Metric corruption is observable only where weights meet the
        # machine: the bound oracles.
        for o in report.outcomes:
            if o.layer == "metric":
                assert o.caught_by in ("bound-soundness", "bound-tightness",
                                       "weight-monotonicity"), o.operator
            elif o.layer in ("derivation", "certificate"):
                assert o.caught_by == "check-cert", o.operator
        # The dropped trailing ret is the operator that *forced* the
        # converged-trace emptiness check; pin its route.
        assert by_name["ret-drop"].caught_by == "well-bracketing"
        assert by_name["io-drop"].caught_by == "pruned-trace"
        # The recursion operators must land on the parametric corpus
        # entries, and the widened candidate set is only observable
        # differentially (the widened analysis still checks).
        assert by_name["rec-depth-off-by-one"].detected_on.startswith(
            "recursive/")
        assert by_name["rec-base-guard-drop"].detected_on == \
            "recursive/bsearch.c"
        assert by_name["values-candidate-widen"].caught_by == \
            "values-differential"

    def test_report_serializes(self, report):
        import json

        data = json.loads(json.dumps(report.as_json()))
        assert data["operators"] == len(report.outcomes)
        assert data["undetected"] == []


class TestPlantFailFast:
    """An unknown plant name must fail before any seed runs (satellite)."""

    def test_campaign_rejects_unknown_plant_up_front(self):
        config = CampaignConfig(seeds=5, plant="drop-sp", cache_dir=None)
        with pytest.raises(UnknownFaultError, match="drop-sp"):
            run_campaign(config)

    def test_shrink_rejects_unknown_plant_up_front(self):
        failing = SeedVerdict(seed=0, ok=False, oracle="bound-soundness",
                              ablation="default", detail="synthetic")
        with pytest.raises(UnknownFaultError, match="known plants"):
            shrink_failure(failing, plant="drop-sp")
