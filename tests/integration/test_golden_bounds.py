"""Golden-bound regression tests (paper Tables 1 and 2 as snapshots).

Every packaged program's verified byte bounds — and every Table 2 spec's
symbolic bound — are snapshotted under ``tests/golden/``.  A compiler or
analyzer change that silently inflates (or deflates) any verified bound
fails these tests with a per-function diff.

To bless an intentional change:

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/integration/test_golden_bounds.py -q

then commit the rewritten JSON together with the change that caused it.
"""

import json
import os

import pytest

from repro.driver import compile_c, verify_stack_bounds
from repro.logic.bexpr import evaluate, param_names
from repro.programs.catalog import FUNCPTR, RECURSIVE, TABLE1
from repro.programs.loader import load_source
from repro.programs.table2 import TABLE2_PROGRAMS, build_spec_table

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "golden")
TABLE1_GOLDEN = os.path.join(GOLDEN_DIR, "table1_bounds.json")
TABLE2_GOLDEN = os.path.join(GOLDEN_DIR, "table2_bounds.json")
INFERRED_GOLDEN = os.path.join(GOLDEN_DIR, "inferred_bounds.json")

#: Canonical evaluation point for the parametric Table 2 bounds.
SPEC_PARAMS = {"n": 100, "bl": 256}

#: Canonical measure value for instantiating inferred parametric bounds.
INFERRED_AT = 100


def _regen() -> bool:
    return bool(os.environ.get("REPRO_REGEN_GOLDEN"))


def _load(path):
    with open(path) as handle:
        return json.load(handle)


def _save(path, data) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _diff(expected: dict, actual: dict, context: str) -> list[str]:
    """Human-readable per-key diff between two flat mappings."""
    lines = []
    for key in sorted(set(expected) | set(actual)):
        want, got = expected.get(key), actual.get(key)
        if want == got:
            continue
        if want is None:
            lines.append(f"  {context}/{key}: new entry {got!r} "
                         "(not in golden)")
        elif got is None:
            lines.append(f"  {context}/{key}: missing (golden {want!r})")
        else:
            delta = (f" ({got - want:+d} bytes)"
                     if isinstance(want, int) and isinstance(got, int)
                     else "")
            lines.append(f"  {context}/{key}: golden {want!r} -> {got!r}"
                         f"{delta}")
    return lines


def compute_table1_entry(entry) -> dict:
    """Verified byte bounds for one catalog program (default options)."""
    bounds = verify_stack_bounds(load_source(entry.path),
                                 filename=entry.path, macros=entry.macros)
    record = {"functions": {name: int(value)
                            for name, value in bounds.all_bytes().items()},
              "stack_requirement": int(bounds.stack_requirement())}
    return record


def compute_table2_entry(name, spec) -> dict:
    """Symbolic bound plus its byte value under the compiled metric."""
    # ``fact`` has no standalone program: its spec is exercised (and its
    # frame compiled) by fact_sq.c.
    path = TABLE2_PROGRAMS.get(name, TABLE2_PROGRAMS["fact_sq"])
    compilation = compile_c(load_source(path), filename=path)
    metric = compilation.metric.as_dict()
    params = {p: SPEC_PARAMS[p if p in SPEC_PARAMS else "n"]
              for p in spec.params}
    return {
        "params": list(spec.params),
        "symbolic": repr(spec.total_bound()),
        "description": spec.description,
        "bytes_at": {repr(params): int(evaluate(spec.total_bound(), metric,
                                                params))},
    }


class TestTable1Golden:
    """Byte bounds of every auto-analyzed catalog program are pinned."""

    @pytest.fixture(scope="class")
    def golden(self):
        if not _regen() and not os.path.exists(TABLE1_GOLDEN):
            pytest.fail(f"golden file missing: {TABLE1_GOLDEN} "
                        "(run with REPRO_REGEN_GOLDEN=1 to create)")
        return {} if _regen() else _load(TABLE1_GOLDEN)

    # Class-level accumulator so regeneration writes one file at the end.
    _regenerated: dict = {}

    @pytest.mark.parametrize("entry", TABLE1, ids=lambda e: e.path)
    def test_bounds_match_golden(self, entry, golden):
        actual = compute_table1_entry(entry)
        if _regen():
            TestTable1Golden._regenerated[entry.path] = actual
            if len(TestTable1Golden._regenerated) == len(TABLE1):
                _save(TABLE1_GOLDEN, TestTable1Golden._regenerated)
            return
        assert entry.path in golden, \
            f"{entry.path} not in golden file (regenerate to add)"
        expected = golden[entry.path]
        lines = _diff(expected["functions"], actual["functions"], entry.path)
        if expected["stack_requirement"] != actual["stack_requirement"]:
            lines.append(
                f"  {entry.path}/stack_requirement: golden "
                f"{expected['stack_requirement']} -> "
                f"{actual['stack_requirement']}")
        assert not lines, ("verified bounds changed "
                           "(REPRO_REGEN_GOLDEN=1 to bless):\n"
                           + "\n".join(lines))

    def test_every_reported_function_is_bounded(self, golden):
        if _regen():
            pytest.skip("regenerating")
        for entry in TABLE1:
            for function in entry.functions:
                assert function in golden[entry.path]["functions"], \
                    f"{entry.path}: Table 1 reports {function} but the " \
                    "golden snapshot has no bound for it"


class TestTable2Golden:
    """Symbolic Table 2 bounds (and one byte instantiation) are pinned."""

    @pytest.fixture(scope="class")
    def specs(self):
        return dict(build_spec_table().recursive)

    @pytest.fixture(scope="class")
    def golden(self):
        if not _regen() and not os.path.exists(TABLE2_GOLDEN):
            pytest.fail(f"golden file missing: {TABLE2_GOLDEN} "
                        "(run with REPRO_REGEN_GOLDEN=1 to create)")
        return {} if _regen() else _load(TABLE2_GOLDEN)

    def test_symbolic_bounds_match_golden(self, specs, golden):
        actual = {name: compute_table2_entry(name, spec)
                  for name, spec in specs.items()}
        if _regen():
            _save(TABLE2_GOLDEN, actual)
            return
        lines = []
        for name in sorted(set(golden) | set(actual)):
            want, got = golden.get(name), actual.get(name)
            if want is None or got is None:
                lines.append(f"  {name}: {'added' if want is None else 'removed'}")
                continue
            lines.extend(_diff(
                {"symbolic": want["symbolic"], **want["bytes_at"]},
                {"symbolic": got["symbolic"], **got["bytes_at"]},
                name))
        assert not lines, ("Table 2 specs changed "
                           "(REPRO_REGEN_GOLDEN=1 to bless):\n"
                           + "\n".join(lines))


def compute_inferred_entry(path) -> dict:
    """Auto-inferred bounds for one recursive/function-pointer program.

    Symbolic bounds are pinned as their reprs (the inference is
    deterministic), byte values at ``INFERRED_AT`` for parametric
    functions and exactly for ground ones.
    """
    bounds = verify_stack_bounds(load_source(path), filename=path)
    symbolic = {}
    in_bytes = {}
    for name in sorted(bounds.analysis.functions):
        expr = bounds.symbolic(name)
        symbolic[name] = repr(expr)
        params = {p: INFERRED_AT for p in param_names(expr)}
        in_bytes[name] = int(bounds.bytes(name, params or None))
    return {"symbolic": symbolic,
            f"bytes_at_{INFERRED_AT}": in_bytes,
            "stack_requirement": int(bounds.stack_requirement())}


class TestInferredGolden:
    """Auto-inferred recursion and function-pointer bounds are pinned.

    These snapshots are the differential oracle the mutation matrix's
    ``values-candidate-widen`` operator points at: a *sound but looser*
    analysis (widened candidate sets, slack in a ranking function) still
    passes every checker, and only a pinned reference bound exposes it.
    """

    PATHS = RECURSIVE + FUNCPTR

    @pytest.fixture(scope="class")
    def golden(self):
        if not _regen() and not os.path.exists(INFERRED_GOLDEN):
            pytest.fail(f"golden file missing: {INFERRED_GOLDEN} "
                        "(run with REPRO_REGEN_GOLDEN=1 to create)")
        return {} if _regen() else _load(INFERRED_GOLDEN)

    _regenerated: dict = {}

    @pytest.mark.parametrize("path", RECURSIVE + FUNCPTR)
    def test_inferred_bounds_match_golden(self, path, golden):
        actual = compute_inferred_entry(path)
        if _regen():
            TestInferredGolden._regenerated[path] = actual
            if len(TestInferredGolden._regenerated) == len(self.PATHS):
                _save(INFERRED_GOLDEN, TestInferredGolden._regenerated)
            return
        assert path in golden, \
            f"{path} not in golden file (regenerate to add)"
        expected = golden[path]
        lines = []
        for section in ("symbolic", f"bytes_at_{INFERRED_AT}"):
            lines.extend(_diff(expected[section], actual[section],
                               f"{path}/{section}"))
        if expected["stack_requirement"] != actual["stack_requirement"]:
            lines.append(f"  {path}/stack_requirement: golden "
                         f"{expected['stack_requirement']} -> "
                         f"{actual['stack_requirement']}")
        assert not lines, ("inferred bounds changed "
                           "(REPRO_REGEN_GOLDEN=1 to bless):\n"
                           + "\n".join(lines))
