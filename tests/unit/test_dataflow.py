"""Direct unit tests for the Kildall worklist solver on hand-built CFGs."""

from repro.rtl import ast as rtl
from repro.rtl.dataflow import predecessors, solve_backward, solve_forward


def diamond():
    """1: cond -> 2 | 3;  2,3 -> 4;  4: return."""
    graph = {
        1: rtl.Icond(10, 2, 3),
        2: rtl.Iop(("const", 1), [], 11, 4),
        3: rtl.Iop(("const", 2), [], 11, 4),
        4: rtl.Ireturn(11),
    }
    return rtl.RTLFunction("d", [10], set(), 0, graph, 1, 20, False, [False])


def loop():
    """1 -> 2; 2: cond -> 3 (body) | 4; 3 -> 2; 4: return."""
    graph = {
        1: rtl.Iop(("const", 0), [], 5, 2),
        2: rtl.Icond(5, 3, 4),
        3: rtl.Iop(("binop", "add"), [5, 5], 5, 2),
        4: rtl.Ireturn(5),
    }
    return rtl.RTLFunction("l", [], set(), 0, graph, 1, 10, False, [])


class TestPredecessors:
    def test_diamond(self):
        preds = predecessors(diamond().graph)
        assert sorted(preds[4]) == [2, 3]
        assert preds[1] == []

    def test_loop_back_edge(self):
        preds = predecessors(loop().graph)
        assert sorted(preds[2]) == [1, 3]


class TestForward:
    def test_reaches_all_reachable(self):
        function = diamond()
        facts = solve_forward(function, frozenset({"init"}),
                              lambda a, b: a | b,
                              lambda n, i, f: f | {n},
                              lambda a, b: a == b)
        assert set(facts) == {1, 2, 3, 4}
        # node 4 merges both branch histories
        assert {2, 3} <= facts[4]

    def test_unreachable_nodes_absent(self):
        function = diamond()
        function.graph[9] = rtl.Ireturn(None)  # orphan
        facts = solve_forward(function, frozenset(), lambda a, b: a | b,
                              lambda n, i, f: f, lambda a, b: a == b)
        assert 9 not in facts

    def test_loop_reaches_fixpoint(self):
        function = loop()
        # count-to-saturation lattice: set of nodes seen, capped by frozenset
        facts = solve_forward(function, frozenset(), lambda a, b: a | b,
                              lambda n, i, f: f | {n},
                              lambda a, b: a == b)
        assert 3 in facts[2]  # the back edge propagated


class TestBackward:
    def test_liveness_shape(self):
        function = diamond()
        def transfer(_n, instr, out):
            live = set(out)
            for d in instr.defs():
                live.discard(d)
            live.update(instr.uses())
            return frozenset(live)
        after = solve_backward(function, frozenset(), lambda a, b: a | b,
                               transfer, lambda a, b: a == b)
        # r11 is live after nodes 2 and 3 (used by the return).
        assert 11 in after[2] and 11 in after[3]
        assert 11 not in after[4]

    def test_loop_backward_fixpoint(self):
        function = loop()
        def transfer(_n, instr, out):
            live = set(out)
            for d in instr.defs():
                live.discard(d)
            live.update(instr.uses())
            return frozenset(live)
        after = solve_backward(function, frozenset(), lambda a, b: a | b,
                               transfer, lambda a, b: a == b)
        # r5 stays live around the loop.
        assert 5 in after[1]
        assert 5 in after[3]
