"""Unit tests for the command-line driver (python -m repro)."""

import pytest

from repro import obs
from repro.__main__ import main


@pytest.fixture(autouse=True)
def _reset_obs():
    """CLI flags flip the process-global obs switch; isolate each test."""
    yield
    obs.disable()
    obs.reset()


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(
        "#ifndef N\n#define N 3\n#endif\n"
        "int twice(int x) { return x * 2; }\n"
        "int main() { print_int(twice(N)); return 0; }\n")
    return str(path)


class TestBounds:
    def test_prints_table(self, program_file, capsys):
        assert main(["bounds", program_file]) == 0
        out = capsys.readouterr().out
        assert "twice" in out and "main" in out
        assert "stack requirement" in out

    def test_check_flag(self, program_file, capsys):
        assert main(["bounds", program_file, "--check"]) == 0
        out = capsys.readouterr().out
        assert "re-checked" in out and "exact" in out


class TestRun:
    def test_runs_at_verified_bound(self, program_file, capsys):
        assert main(["run", program_file]) == 0
        out = capsys.readouterr().out
        assert "6" in out
        assert "measured stack usage" in out

    def test_define_flag(self, program_file, capsys):
        assert main(["run", program_file, "-D", "N=21"]) == 0
        assert "42" in capsys.readouterr().out

    def test_explicit_stack_overflow(self, program_file, capsys):
        code = main(["run", program_file, "--stack", "4"])
        assert code == 125
        assert "overflow" in capsys.readouterr().out

    def test_exit_code_propagated(self, tmp_path, capsys):
        path = tmp_path / "seven.c"
        path.write_text("int main() { return 7; }\n")
        assert main(["run", str(path)]) == 7


class TestDump:
    @pytest.mark.parametrize("level", ["clight", "rtl", "linear", "mach",
                                       "asm"])
    def test_all_levels(self, program_file, capsys, level):
        assert main(["dump", program_file, "--level", level]) == 0
        assert "twice" in capsys.readouterr().out

    def test_single_function(self, program_file, capsys):
        assert main(["dump", program_file, "--level", "asm",
                     "--function", "twice"]) == 0
        out = capsys.readouterr().out
        assert "twice" in out and "main:" not in out

    def test_pass_toggles(self, program_file, capsys):
        assert main(["dump", program_file, "--level", "rtl",
                     "--no-constprop", "--no-deadcode", "--cse",
                     "--tailcall"]) == 0


class TestTrace:
    def test_events_printed(self, program_file, capsys):
        assert main(["trace", program_file]) == 0
        out = capsys.readouterr().out
        assert "call(main)" in out
        assert "call(twice)" in out
        assert "weight under the compiled metric" in out

    def test_limit(self, program_file, capsys):
        assert main(["trace", program_file, "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "more events" in out


class TestCertify:
    def test_certify_and_recheck(self, program_file, tmp_path, capsys):
        cert = str(tmp_path / "prog.cert.json")
        assert main(["certify", program_file, "-o", cert]) == 0
        assert main(["check-cert", program_file, cert]) == 0
        out = capsys.readouterr().out
        assert "certificate OK" in out and "twice" in out

    def test_certify_to_stdout(self, program_file, capsys):
        assert main(["certify", program_file]) == 0
        assert "repro-stack-certificate" in capsys.readouterr().out

    def test_check_cert_against_modified_program(self, program_file,
                                                 tmp_path, capsys):
        cert = str(tmp_path / "prog.cert.json")
        assert main(["certify", program_file, "-o", cert]) == 0
        other = tmp_path / "other.c"
        other.write_text("int twice(int x) { return x; } "
                         "int main() { return twice(twice(1)); }")
        assert main(["check-cert", str(other), cert]) == 2
        assert "error" in capsys.readouterr().err


class TestCheckCertRejection:
    """Every rejection path exits 2 with a diagnostic, never a traceback."""

    @pytest.fixture
    def cert(self, program_file, tmp_path):
        path = str(tmp_path / "prog.cert.json")
        assert main(["certify", program_file, "-o", path]) == 0
        return path

    def _expect_reject(self, program_file, cert, capsys, needle):
        code = main(["check-cert", program_file, cert])
        captured = capsys.readouterr()
        assert code == 2
        assert "error" in captured.err and needle in captured.err
        assert "certificate OK" not in captured.out

    def test_malformed_json(self, program_file, cert, tmp_path, capsys):
        text = open(cert).read()
        bad = tmp_path / "malformed.json"
        bad.write_text(text[:len(text) // 2])
        self._expect_reject(program_file, str(bad), capsys, "not valid JSON")

    def test_truncated_rule_tree(self, program_file, cert, tmp_path, capsys):
        import json

        data = json.load(open(cert))
        for entry in data["functions"].values():
            nodes = [entry["derivation"]]
            while nodes:
                node = nodes.pop()
                if node.get("children"):
                    node["children"] = node["children"][:-1]
                    nodes = []
                    break
                nodes.extend(node.get("children", ()))
        bad = tmp_path / "truncated.json"
        bad.write_text(json.dumps(data))
        # The diagnostic names the failing rule application.
        self._expect_reject(program_file, str(bad), capsys, "Q:")

    def test_unsupported_version(self, program_file, cert, tmp_path, capsys):
        import json

        data = json.load(open(cert))
        data["version"] += 1
        bad = tmp_path / "version.json"
        bad.write_text(json.dumps(data))
        self._expect_reject(program_file, str(bad), capsys,
                            "unsupported certificate version")

    def test_wrong_program(self, cert, tmp_path, capsys):
        other = tmp_path / "unrelated.c"
        other.write_text("int main() { return 0; }\n")
        self._expect_reject(str(other), cert, capsys, "unknown function")

    def test_corrupt_total_bound(self, program_file, cert, tmp_path, capsys):
        import json

        data = json.load(open(cert))
        data["functions"]["main"]["total_bound"] = {"k": "const", "v": 0}
        bad = tmp_path / "total.json"
        bad.write_text(json.dumps(data))
        self._expect_reject(program_file, str(bad), capsys, "total_bound")


class TestFuzzMatrixCLI:
    def test_plant_choices_come_from_the_registry(self, capsys):
        with pytest.raises(SystemExit):
            main(["fuzz", "--plant", "drop-sp"])
        assert "drop-ra" in capsys.readouterr().err


class TestErrors:
    """Diagnosed errors exit 2 uniformly: one line on stderr, no traceback."""

    def test_missing_file(self, capsys):
        assert main(["bounds", "/nonexistent/x.c"]) == 2
        assert "error" in capsys.readouterr().err

    def test_directory_instead_of_file(self, tmp_path, capsys):
        assert main(["bounds", str(tmp_path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_parse_error(self, tmp_path, capsys):
        path = tmp_path / "broken.c"
        path.write_text("int main( {")
        assert main(["bounds", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_recursion_reported(self, tmp_path, capsys):
        path = tmp_path / "rec.c"
        path.write_text("int f(int n) { return f(n); } "
                        "int main() { return 0; }")
        assert main(["bounds", str(path)]) == 2
        assert "recursion" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["bounds", "run", "dump", "trace",
                                         "profile", "certify"])
    def test_uniform_across_subcommands(self, command, capsys):
        assert main([command, "/nonexistent/x.c"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unwritable_output_diagnosed(self, program_file, capsys):
        code = main(["bounds", program_file,
                     "--metrics-out", "/nonexistent-dir/m.json"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestObservabilityFlags:
    def test_metrics_out(self, program_file, tmp_path, capsys):
        import json

        out = tmp_path / "m.json"
        assert main(["bounds", program_file, "--check",
                     "--metrics-out", str(out)]) == 0
        document = json.loads(out.read_text())
        assert document["schema"] == "repro.obs.metrics/1"
        assert document["counters"]["checker.nodes"] > 0

    def test_trace_out_jsonl(self, program_file, tmp_path, capsys):
        import json

        out = tmp_path / "t.jsonl"
        assert main(["run", program_file, "--trace-out", str(out)]) == 0
        lines = out.read_text().splitlines()
        assert json.loads(lines[0])["type"] == "meta"
        names = {json.loads(line)["name"] for line in lines[1:]}
        assert "compile.frontend" in names
        assert "exec.asm" in names

    def test_trace_out_chrome(self, program_file, tmp_path, capsys):
        import json

        out = tmp_path / "t.json"
        assert main(["run", program_file, "--trace-out", str(out)]) == 0
        document = json.loads(out.read_text())
        assert document["traceEvents"]
        assert all(e["ph"] == "X" for e in document["traceEvents"])


class TestTraceStreaming:
    def test_truncation_marker_counts_hidden_events(self, program_file,
                                                    capsys):
        assert main(["trace", program_file, "--limit", "2"]) == 0
        out = capsys.readouterr().out
        # Exactly 2 events printed, the rest summarized.
        assert len([line for line in out.splitlines()
                    if line.startswith(("call(", "ret("))]) == 2
        assert "+" in out and "more events" in out

    def test_weight_covers_full_stream(self, program_file, capsys):
        """The reported weight is identical however far --limit cuts."""
        assert main(["trace", program_file, "--limit", "1"]) == 0
        truncated = capsys.readouterr().out
        assert main(["trace", program_file, "--limit", "100000"]) == 0
        full = capsys.readouterr().out
        weight = [line for line in full.splitlines() if "weight" in line]
        assert weight and weight[0] in truncated


class TestProfile:
    def test_renders_span_tree(self, program_file, capsys):
        assert main(["profile", program_file]) == 0
        out = capsys.readouterr().out
        for name in ("compile.frontend", "compile.backend", "analyze.auto",
                     "analyze.check", "exec.asm", "exec.clight", "exec.rtl",
                     "exec.mach", "total"):
            assert name in out, f"missing {name} in profile output"
        assert "steps/s" in out and "ms" in out
