"""Differential suite: the Clight/RTL/Mach codegen drivers vs. decoded.

The codegen tier's semantics drivers generate per-program Python (entry
sequence constant-folded, dispatch loop unrolled) around the decoded
closures.  They must be observationally identical to the decoded
engines — which `test_sem_decode.py` already holds to the legacy
machines — including the step-accounting fine print: the raising op is
not counted, and the fuel edge (finishing on the last unit) classifies
as divergence.  The unrolled loop recovers step counts from the
traceback, so the fuel-edge sweep here walks every batch boundary.
"""

from __future__ import annotations

import pytest

from repro.clight import semantics as clight_sem
from repro.driver import compile_c
from repro.mach import semantics as mach_sem
from repro.programs.catalog import ALL_RUNNABLE
from repro.programs.loader import load_source
from repro.rtl import semantics as rtl_sem
from repro.testing.oracles import ABLATIONS
from repro.testing.progen import generate_program

CLIGHT_FUEL = 5_000_000
INTERP_FUEL = 50_000_000

#: (name, semantics module, Compilation attribute, fuel) per level.
LEVELS = [
    ("clight", clight_sem, "clight", CLIGHT_FUEL),
    ("rtl", rtl_sem, "rtl", INTERP_FUEL),
    ("mach", mach_sem, "mach", INTERP_FUEL),
]


def _stream_fingerprint(sem, program, fuel, engine):
    trace: list = []
    output: list = []
    outcome = sem.run_streamed(program, trace.append, fuel=fuel,
                               output=output, engine=engine)
    return (outcome.kind, outcome.return_code, outcome.reason,
            outcome.events, outcome.steps, tuple(trace), tuple(output))


def _assert_levels_agree(compilation, context="", engines=("decoded",
                                                           "codegen")):
    for name, sem, attr, fuel in LEVELS:
        program = getattr(compilation, attr)
        prints = [_stream_fingerprint(sem, program, fuel, engine)
                  for engine in engines]
        assert all(p == prints[0] for p in prints), \
            f"{name} disagrees {context}"


@pytest.mark.parametrize("path", ALL_RUNNABLE)
def test_catalog_program_agrees(path):
    compilation = compile_c(load_source(path), filename=path)
    _assert_levels_agree(compilation, context=f"on {path}")


def test_all_three_tiers_agree():
    """The full triple, including legacy, on the paper example."""
    compilation = compile_c(load_source("paper_example.c"),
                            filename="paper_example.c")
    _assert_levels_agree(compilation, context="on paper_example.c",
                         engines=("legacy", "decoded", "codegen"))


@pytest.mark.parametrize("seed", range(0, 30, 5))
def test_generated_seed_agrees_at_every_ablation(seed):
    source = generate_program(seed)
    for name, options in ABLATIONS.items():
        compilation = compile_c(source, filename=f"seed{seed}.c",
                                options=options)
        _assert_levels_agree(compilation, context=f"under ablation {name!r}")


@pytest.mark.parametrize("fuel", [0, 1, 7, 15, 16, 17, 31, 32, 10_000])
def test_fuel_edges_agree(fuel):
    compilation = compile_c(load_source("compcert/mandelbrot.c"),
                            filename="compcert/mandelbrot.c")
    for name, sem, attr, _fuel in LEVELS:
        program = getattr(compilation, attr)
        decoded = _stream_fingerprint(sem, program, fuel, "decoded")
        generated = _stream_fingerprint(sem, program, fuel, "codegen")
        assert decoded == generated, f"{name} disagrees at fuel={fuel}"
        if fuel:
            assert decoded[0] == "diverges"
            assert decoded[4] == fuel


@pytest.mark.parametrize("engine", ["legacy", "decoded", "codegen"])
def test_run_program_matches_run_streamed(engine):
    """`run_program` is the materialized view of `run_streamed`."""
    compilation = compile_c(load_source("paper_example.c"),
                            filename="paper_example.c")
    for name, sem, attr, fuel in LEVELS:
        program = getattr(compilation, attr)
        behavior = sem.run_program(program, fuel=fuel, engine=engine)
        trace: list = []
        outcome = sem.run_streamed(program, trace.append, fuel=fuel,
                                   engine=engine)
        assert outcome.to_behavior(trace).__class__ is behavior.__class__
        assert tuple(trace) == tuple(behavior.trace)


def test_clight_driver_is_cached():
    compilation = compile_c(load_source("paper_example.c"),
                            filename="paper_example.c")
    from repro.clight import codegen as clight_codegen
    first = clight_codegen.specialize(compilation.clight)
    assert clight_codegen.specialize(compilation.clight) is first
    assert "def run(m, rec, fuel):" in first.source
