"""Binary encoding of ASMsz: an assembler and disassembler.

Gives the assembly level a concrete machine-code form: each instruction
is encoded as an opcode byte followed by fixed-width operands (little-
endian), with symbols and labels resolved against a program-wide string
table.  ``encode_program``/``decode_program`` round-trip exactly, which
the property tests check — the executable counterpart of "what you verify
is what you run" at the bit level.

Encoding layout per instruction::

    [opcode:u8] [operand bytes...]

Registers are single bytes indexing the register-name tables; addressing
modes are a tag byte plus their payload; immediates are 4-byte two's
complement (integers) or 8-byte IEEE-754 (floats); symbols and labels are
4-byte indices into the string/label tables.
"""

from __future__ import annotations

import struct

from repro.asm import ast as asm
from repro.errors import ReproError
from repro.memory.chunks import Chunk

MAGIC = b"ASMZ"


class EncodingError(ReproError):
    pass


_INT_REGS = list(asm.INT_REG_NAMES)
_FLOAT_REGS = list(asm.FLOAT_REG_NAMES)
_CHUNKS = list(Chunk)

_OPCODES = [
    ("movimm", asm.Pmovimm), ("movfimm", asm.Pmovfimm),
    ("mov", asm.Pmov), ("movf", asm.Pmovf), ("lea", asm.Plea),
    ("unop", asm.Punop), ("fneg", asm.Pfneg), ("cvt", asm.Pcvt),
    ("binop", asm.Pbinop), ("binopf", asm.Pbinopf), ("cmpf", asm.Pcmpf),
    ("load", asm.Pload), ("store", asm.Pstore), ("espadd", asm.Pespadd),
    ("label", asm.Plabel), ("jmp", asm.Pjmp), ("jcc", asm.Pjcc),
    ("call", asm.Pcall), ("ret", asm.Pret), ("builtin", asm.Pbuiltin),
]
_OPCODE_OF = {cls: index for index, (_name, cls) in enumerate(_OPCODES)}

# The string vocabularies that single bytes index into.
_UNOPS = ["neg", "notint", "notbool", "cast8signed", "cast8unsigned",
          "cast16signed", "cast16unsigned"]
_CVTS = ["intoffloat", "uintoffloat", "floatofint", "floatofuint"]
_BINOPS = ["add", "sub", "mul", "divs", "divu", "mods", "modu", "and",
           "or", "xor", "shl", "shrs", "shru", "cmp_eq", "cmp_ne",
           "cmp_lts", "cmp_les", "cmp_gts", "cmp_ges", "cmp_ltu",
           "cmp_leu", "cmp_gtu", "cmp_geu"]
_BINOPFS = ["addf", "subf", "mulf", "divf"]
_CMPFS = ["cmpf_eq", "cmpf_ne", "cmpf_lt", "cmpf_le", "cmpf_gt", "cmpf_ge"]


class _Writer:
    def __init__(self, symbols: dict[str, int]) -> None:
        self.out = bytearray()
        self.symbols = symbols

    def u8(self, value: int) -> None:
        if not 0 <= value <= 0xFF:
            raise EncodingError(f"u8 out of range: {value}")
        self.out.append(value)

    def i32(self, value: int) -> None:
        self.out += struct.pack("<i", value)

    def u32(self, value: int) -> None:
        self.out += struct.pack("<I", value & 0xFFFFFFFF)

    def f64(self, value: float) -> None:
        self.out += struct.pack("<d", value)

    def enum(self, table: list, value) -> None:
        try:
            self.u8(table.index(value))
        except ValueError:
            raise EncodingError(f"not encodable: {value!r}") from None

    def ireg(self, name: str) -> None:
        self.enum(_INT_REGS, name)

    def freg(self, name: str) -> None:
        self.enum(_FLOAT_REGS, name)

    def reg_any(self, name: str) -> None:
        if name in _INT_REGS:
            self.u8(0)
            self.ireg(name)
        else:
            self.u8(1)
            self.freg(name)

    def symbol(self, name: str) -> None:
        self.u32(self.symbols[name])

    def addr(self, mode: asm.Addr) -> None:
        if isinstance(mode, asm.AStack):
            self.u8(0)
            self.i32(mode.offset)
        elif isinstance(mode, asm.ABase):
            self.u8(1)
            self.ireg(mode.reg)
            self.i32(mode.offset)
        elif isinstance(mode, asm.AGlobal):
            self.u8(2)
            self.symbol(mode.symbol)
            self.i32(mode.offset)
        else:
            raise EncodingError(f"unknown addressing mode {mode!r}")


class _Reader:
    def __init__(self, data: bytes, symbols: list[str]) -> None:
        self.data = data
        self.pos = 0
        self.symbols = symbols

    def u8(self) -> int:
        value = self.data[self.pos]
        self.pos += 1
        return value

    def i32(self) -> int:
        (value,) = struct.unpack_from("<i", self.data, self.pos)
        self.pos += 4
        return value

    def u32(self) -> int:
        (value,) = struct.unpack_from("<I", self.data, self.pos)
        self.pos += 4
        return value

    def f64(self) -> float:
        (value,) = struct.unpack_from("<d", self.data, self.pos)
        self.pos += 8
        return value

    def enum(self, table: list):
        return table[self.u8()]

    def reg_any(self) -> str:
        if self.u8() == 0:
            return self.enum(_INT_REGS)
        return self.enum(_FLOAT_REGS)

    def symbol(self) -> str:
        return self.symbols[self.u32()]

    def addr(self) -> asm.Addr:
        tag = self.u8()
        if tag == 0:
            return asm.AStack(self.i32())
        if tag == 1:
            reg = self.enum(_INT_REGS)
            return asm.ABase(reg, self.i32())
        if tag == 2:
            symbol = self.symbol()
            return asm.AGlobal(symbol, self.i32())
        raise EncodingError(f"bad addressing tag {tag}")


def _encode_instr(instr: asm.PInstr, w: _Writer) -> None:
    w.u8(_OPCODE_OF[type(instr)])
    if isinstance(instr, asm.Pmovimm):
        w.ireg(instr.dest)
        w.u32(instr.value)
    elif isinstance(instr, asm.Pmovfimm):
        w.freg(instr.dest)
        w.f64(instr.value)
    elif isinstance(instr, asm.Pmov):
        w.ireg(instr.dest)
        w.ireg(instr.src)
    elif isinstance(instr, asm.Pmovf):
        w.freg(instr.dest)
        w.freg(instr.src)
    elif isinstance(instr, asm.Plea):
        w.ireg(instr.dest)
        w.addr(instr.addr)
    elif isinstance(instr, asm.Punop):
        w.enum(_UNOPS, instr.op)
        w.ireg(instr.reg)
    elif isinstance(instr, asm.Pfneg):
        w.freg(instr.reg)
    elif isinstance(instr, asm.Pcvt):
        w.enum(_CVTS, instr.op)
        w.reg_any(instr.dest)
        w.reg_any(instr.src)
    elif isinstance(instr, asm.Pbinop):
        w.enum(_BINOPS, instr.op)
        w.ireg(instr.dest)
        w.ireg(instr.src)
    elif isinstance(instr, asm.Pbinopf):
        w.enum(_BINOPFS, instr.op)
        w.freg(instr.dest)
        w.freg(instr.src)
    elif isinstance(instr, asm.Pcmpf):
        w.enum(_CMPFS, instr.op)
        w.ireg(instr.dest)
        w.freg(instr.src1)
        w.freg(instr.src2)
    elif isinstance(instr, asm.Pload):
        w.enum(_CHUNKS, instr.chunk)
        w.reg_any(instr.dest)
        w.addr(instr.addr)
    elif isinstance(instr, asm.Pstore):
        w.enum(_CHUNKS, instr.chunk)
        w.reg_any(instr.src)
        w.addr(instr.addr)
    elif isinstance(instr, asm.Pespadd):
        w.i32(instr.delta)
    elif isinstance(instr, (asm.Plabel, asm.Pjmp)):
        w.u32(instr.label)
    elif isinstance(instr, asm.Pjcc):
        w.ireg(instr.reg)
        w.u32(instr.label)
    elif isinstance(instr, asm.Pcall):
        w.symbol(instr.symbol)
    elif isinstance(instr, asm.Pret):
        pass
    elif isinstance(instr, asm.Pbuiltin):
        w.symbol(instr.name)
        w.u8(len(instr.args))
        for reg, is_float in zip(instr.args, instr.arg_is_float):
            w.u8(1 if is_float else 0)
            if is_float:
                w.freg(reg)
            else:
                w.ireg(reg)
        if instr.dest is None:
            w.u8(0)
        else:
            w.u8(2 if instr.dest_is_float else 1)
            if instr.dest_is_float:
                w.freg(instr.dest)
            else:
                w.ireg(instr.dest)
    else:
        raise EncodingError(f"unknown instruction {instr!r}")


def _decode_instr(r: _Reader) -> asm.PInstr:
    name, cls = _OPCODES[r.u8()]
    if cls is asm.Pmovimm:
        return asm.Pmovimm(r.enum(_INT_REGS), r.u32())
    if cls is asm.Pmovfimm:
        return asm.Pmovfimm(r.enum(_FLOAT_REGS), r.f64())
    if cls is asm.Pmov:
        return asm.Pmov(r.enum(_INT_REGS), r.enum(_INT_REGS))
    if cls is asm.Pmovf:
        return asm.Pmovf(r.enum(_FLOAT_REGS), r.enum(_FLOAT_REGS))
    if cls is asm.Plea:
        return asm.Plea(r.enum(_INT_REGS), r.addr())
    if cls is asm.Punop:
        return asm.Punop(r.enum(_UNOPS), r.enum(_INT_REGS))
    if cls is asm.Pfneg:
        return asm.Pfneg(r.enum(_FLOAT_REGS))
    if cls is asm.Pcvt:
        return asm.Pcvt(r.enum(_CVTS), r.reg_any(), r.reg_any())
    if cls is asm.Pbinop:
        return asm.Pbinop(r.enum(_BINOPS), r.enum(_INT_REGS),
                          r.enum(_INT_REGS))
    if cls is asm.Pbinopf:
        return asm.Pbinopf(r.enum(_BINOPFS), r.enum(_FLOAT_REGS),
                           r.enum(_FLOAT_REGS))
    if cls is asm.Pcmpf:
        return asm.Pcmpf(r.enum(_CMPFS), r.enum(_INT_REGS),
                         r.enum(_FLOAT_REGS), r.enum(_FLOAT_REGS))
    if cls is asm.Pload:
        return asm.Pload(r.enum(_CHUNKS), r.reg_any(), r.addr())
    if cls is asm.Pstore:
        return asm.Pstore(r.enum(_CHUNKS), r.reg_any(), r.addr())
    if cls is asm.Pespadd:
        return asm.Pespadd(r.i32())
    if cls is asm.Plabel:
        return asm.Plabel(r.u32())
    if cls is asm.Pjmp:
        return asm.Pjmp(r.u32())
    if cls is asm.Pjcc:
        return asm.Pjcc(r.enum(_INT_REGS), r.u32())
    if cls is asm.Pcall:
        return asm.Pcall(r.symbol())
    if cls is asm.Pret:
        return asm.Pret()
    if cls is asm.Pbuiltin:
        symbol = r.symbol()
        count = r.u8()
        args = []
        arg_is_float = []
        for _ in range(count):
            is_float = r.u8() == 1
            arg_is_float.append(is_float)
            args.append(r.enum(_FLOAT_REGS if is_float else _INT_REGS))
        dest_tag = r.u8()
        if dest_tag == 0:
            dest, dest_is_float = None, False
        elif dest_tag == 1:
            dest, dest_is_float = r.enum(_INT_REGS), False
        else:
            dest, dest_is_float = r.enum(_FLOAT_REGS), True
        return asm.Pbuiltin(symbol, args, arg_is_float, dest, dest_is_float)
    raise EncodingError(f"cannot decode opcode {name}")


def encode_program(program: asm.AsmProgram) -> bytes:
    """Serialize a whole program (globals + code) to a binary image."""
    symbols: list[str] = []
    symbol_index: dict[str, int] = {}

    def intern(name: str) -> int:
        if name not in symbol_index:
            symbol_index[name] = len(symbols)
            symbols.append(name)
        return symbol_index[name]

    for var in program.globals:
        intern(var.name)
    for name, function in program.functions.items():
        intern(name)
        for instr in function.body:
            if isinstance(instr, asm.Pcall):
                intern(instr.symbol)
            elif isinstance(instr, asm.Pbuiltin):
                intern(instr.name)
            elif isinstance(instr, asm.Plea) and \
                    isinstance(instr.addr, asm.AGlobal):
                intern(instr.addr.symbol)
            elif isinstance(instr, (asm.Pload, asm.Pstore)) and \
                    isinstance(instr.addr, asm.AGlobal):
                intern(instr.addr.symbol)

    out = bytearray(MAGIC)
    out += struct.pack("<I", len(symbols))
    for name in symbols:
        raw = name.encode()
        out += struct.pack("<H", len(raw)) + raw

    out += struct.pack("<I", len(program.globals))
    for var in program.globals:
        out += struct.pack("<III", symbol_index[var.name], var.size,
                           var.alignment)
        out += var.image

    out += struct.pack("<I", len(program.functions))
    writer_symbols = symbol_index
    for name, function in program.functions.items():
        body = _Writer(writer_symbols)
        for instr in function.body:
            _encode_instr(instr, body)
        out += struct.pack("<III", symbol_index[name], function.frame_size,
                           len(function.body))
        out += struct.pack("<I", len(body.out))
        out += body.out

    out += struct.pack("<I", symbol_index[program.main])
    return bytes(out)


def decode_program(data: bytes) -> asm.AsmProgram:
    """Deserialize a binary image back into an ASM program."""
    if data[:4] != MAGIC:
        raise EncodingError("bad magic")
    pos = 4

    (n_symbols,) = struct.unpack_from("<I", data, pos)
    pos += 4
    symbols: list[str] = []
    for _ in range(n_symbols):
        (length,) = struct.unpack_from("<H", data, pos)
        pos += 2
        symbols.append(data[pos:pos + length].decode())
        pos += length

    from repro.clight.ast import GlobalVar

    (n_globals,) = struct.unpack_from("<I", data, pos)
    pos += 4
    globals_ = []
    for _ in range(n_globals):
        sym, size, alignment = struct.unpack_from("<III", data, pos)
        pos += 12
        image = bytes(data[pos:pos + size])
        pos += size
        globals_.append(GlobalVar(symbols[sym], size, alignment, image))

    (n_functions,) = struct.unpack_from("<I", data, pos)
    pos += 4
    functions = {}
    externals: set[str] = set()
    for _ in range(n_functions):
        sym, frame_size, n_instrs = struct.unpack_from("<III", data, pos)
        pos += 12
        (body_len,) = struct.unpack_from("<I", data, pos)
        pos += 4
        reader = _Reader(data[pos:pos + body_len], symbols)
        pos += body_len
        body = [_decode_instr(reader) for _ in range(n_instrs)]
        name = symbols[sym]
        functions[name] = asm.AsmFunction(name, body, frame_size)

    (main_sym,) = struct.unpack_from("<I", data, pos)
    return asm.AsmProgram(globals_, functions, externals,
                          main=symbols[main_sym])
