"""Allocated RTL → Linear: apply the allocation and linearize the CFG.

Block ordering is a depth-first traversal that prefers the fall-through
successor, so most ``goto``s disappear; a ``goto`` is emitted only when
the successor is not the next emitted node.  Labels are RTL node ids.
"""

from __future__ import annotations

from repro.linear import ast as lin
from repro.regalloc import Allocation, allocate_function
from repro.rtl import ast as rtl


def linear_of_rtl(program: rtl.RTLProgram,
                  spill_everything: bool = False) -> lin.LinearProgram:
    functions = {}
    for function in program.functions.values():
        allocation = allocate_function(function, spill_everything)
        functions[function.name] = _linearize(function, allocation)
    return lin.LinearProgram(program.globals, functions, program.externals,
                             program.main)


def _linearize(function: rtl.RTLFunction,
               allocation: Allocation) -> lin.LinearFunction:
    order = _block_order(function)
    position = {node: index for index, node in enumerate(order)}
    needs_label = _label_targets(function, order, position)
    body: list[lin.LInstr] = []
    loc = allocation.loc

    for index, node in enumerate(order):
        if node in needs_label:
            body.append(lin.Llabel(node))
        instr = function.graph[node]
        next_node = order[index + 1] if index + 1 < len(order) else None

        if isinstance(instr, rtl.Inop):
            pass
        elif isinstance(instr, rtl.Iop):
            if instr.op[0] == "move" and loc(instr.args[0]) == loc(instr.dest):
                pass  # coalesced move
            else:
                body.append(lin.Lop(instr.op,
                                    [loc(a) for a in instr.args],
                                    loc(instr.dest)))
        elif isinstance(instr, rtl.Iload):
            body.append(lin.Lload(instr.chunk, loc(instr.addr),
                                  loc(instr.dest)))
        elif isinstance(instr, rtl.Istore):
            body.append(lin.Lstore(instr.chunk, loc(instr.addr),
                                   loc(instr.src)))
        elif isinstance(instr, rtl.Icall):
            args = [loc(a) for a in instr.args]
            arg_is_float = [a in function.float_regs for a in instr.args]
            dest = loc(instr.dest) if instr.dest is not None else None
            dest_is_float = (instr.dest in function.float_regs
                             if instr.dest is not None else False)
            body.append(lin.Lcall(instr.callee, args, arg_is_float, dest,
                                  dest_is_float))
        elif isinstance(instr, rtl.Icond):
            # Prefer falling through to `ifnot`; branch to `ifso`.
            body.append(lin.Lcond(loc(instr.arg), instr.ifso))
            if next_node != instr.ifnot:
                body.append(lin.Lgoto(instr.ifnot))
            continue  # control flow handled explicitly
        elif isinstance(instr, rtl.Ireturn):
            arg = loc(instr.arg) if instr.arg is not None else None
            is_float = (instr.arg in function.float_regs
                        if instr.arg is not None else False)
            body.append(lin.Lreturn(arg, is_float))
            continue
        else:
            raise TypeError(f"unknown RTL instruction {instr!r}")

        succ = instr.successors()[0]
        if succ != next_node:
            body.append(lin.Lgoto(succ))

    params = [loc(p) for p in function.params]
    return lin.LinearFunction(
        function.name, params, function.param_is_float, function.stacksize,
        allocation.int_slots, allocation.float_slots, body,
        function.returns_float)


def _block_order(function: rtl.RTLFunction) -> list[int]:
    """DFS from the entry preferring fall-through chains."""
    order: list[int] = []
    seen: set[int] = set()
    stack = [function.entry]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        # Follow the straight-line chain as far as possible.
        while node not in seen:
            seen.add(node)
            order.append(node)
            succs = function.graph[node].successors()
            if not succs:
                break
            if isinstance(function.graph[node], rtl.Icond):
                # fall through to ifnot; push ifso for later
                ifso, ifnot = succs
                stack.append(ifso)
                node = ifnot
            else:
                node = succs[0]
    return order


def _label_targets(function: rtl.RTLFunction, order: list[int],
                   position: dict[int, int]) -> set[int]:
    targets: set[int] = set()
    for index, node in enumerate(order):
        instr = function.graph[node]
        if isinstance(instr, rtl.Icond):
            targets.add(instr.ifso)
            if index + 1 >= len(order) or order[index + 1] != instr.ifnot:
                targets.add(instr.ifnot)
            continue
        succs = instr.successors()
        if succs:
            if index + 1 >= len(order) or order[index + 1] != succs[0]:
                targets.add(succs[0])
    return targets
