"""Type checker and name resolver for the C subset.

Responsibilities:

* resolve every :class:`~repro.c.ast.Name` to a local, parameter or global,
  alpha-renaming locals so that every function has a flat, unique local
  namespace (block scoping is compiled away here);
* compute the type of every expression and materialize the implicit
  conversions of C as explicit :class:`~repro.c.ast.Cast` nodes (usual
  arithmetic conversions, assignment conversions, argument conversions,
  array-to-pointer decay);
* collect, per function, the set of *addressable* variables — those whose
  address is taken or whose type is an aggregate — which the Clight
  lowering will place in memory blocks (everything else becomes a pure
  Clight temporary);
* reject the unsupported features the paper also excludes (``goto``,
  VLAs) with precise source locations.  Function pointers are admitted in
  a restricted fragment — scalar locals and parameters only, no globals,
  arrays, struct members or address-taken pointers — chosen so that every
  write to a function pointer is syntactically visible and the value
  analysis (:mod:`repro.analyzer.values`) can resolve each indirect call
  to a finite candidate set.

The checker mutates the AST in place (filling ``ty``/``binding`` slots and
wrapping operands in casts) and attaches ``locals_types``, ``addressable``
and ``param_copies`` attributes to each :class:`FunctionDef`.
"""

from __future__ import annotations

from typing import Optional

from repro.c import ast
from repro.c import types as ct
from repro.errors import TypeError_, UnsupportedFeatureError

# Signatures of the runtime builtins (external functions with zero stack
# cost, cf. the stack-metric convention M(g) = 0).
BUILTIN_SIGNATURES: dict[str, ct.TFunction] = {
    "print_int": ct.TFunction(ct.VOID, [ct.INT]),
    "print_float": ct.TFunction(ct.VOID, [ct.DOUBLE]),
    "print_char": ct.TFunction(ct.VOID, [ct.INT]),
    "sin": ct.TFunction(ct.DOUBLE, [ct.DOUBLE]),
    "cos": ct.TFunction(ct.DOUBLE, [ct.DOUBLE]),
    "sqrt": ct.TFunction(ct.DOUBLE, [ct.DOUBLE]),
    "fabs": ct.TFunction(ct.DOUBLE, [ct.DOUBLE]),
    "floor": ct.TFunction(ct.DOUBLE, [ct.DOUBLE]),
    "pow": ct.TFunction(ct.DOUBLE, [ct.DOUBLE, ct.DOUBLE]),
    "atan": ct.TFunction(ct.DOUBLE, [ct.DOUBLE]),
    "exp": ct.TFunction(ct.DOUBLE, [ct.DOUBLE]),
    "log": ct.TFunction(ct.DOUBLE, [ct.DOUBLE]),
    "malloc": ct.TFunction(ct.TPointer(ct.VOID), [ct.UINT]),
    "abort": ct.TFunction(ct.VOID, []),
}


class ProgramEnv:
    """The resolved global environment of a checked program."""

    def __init__(self) -> None:
        self.globals: dict[str, ct.CType] = {}
        self.functions: dict[str, ct.TFunction] = {}
        self.externals: dict[str, ct.TFunction] = dict(BUILTIN_SIGNATURES)

    def function_type(self, name: str) -> ct.TFunction:
        if name in self.functions:
            return self.functions[name]
        if name in self.externals:
            return self.externals[name]
        raise TypeError_(f"call to undeclared function {name!r}")

    def is_internal(self, name: str) -> bool:
        return name in self.functions


def typecheck(program: ast.Program) -> ProgramEnv:
    """Check ``program`` in place and return its global environment."""
    env = ProgramEnv()
    for extern in program.externs:
        if not isinstance(extern.ftype, ct.TFunction):
            raise TypeError_(f"extern {extern.name!r} is not a function",
                             extern.loc)
        env.externals[extern.name] = extern.ftype
    for decl in program.globals:
        if decl.name in env.globals:
            raise TypeError_(f"global {decl.name!r} redefined", decl.loc)
        _check_complete(decl.ctype, decl.loc)
        if _contains_function_pointer(decl.ctype):
            # Globals live in memory; resolving their targets would need
            # the value analysis to model stores.  Function pointers are
            # supported in locals and parameters only.
            raise UnsupportedFeatureError(
                f"global {decl.name!r}: global function-pointer "
                "variables are not supported", decl.loc)
        env.globals[decl.name] = decl.ctype
    for function in program.functions:
        if function.name in env.functions:
            raise TypeError_(f"function {function.name!r} redefined",
                             function.loc)
        if isinstance(function.result, (ct.TStruct, ct.TArray)):
            raise UnsupportedFeatureError(
                f"{function.name!r}: functions returning aggregates are "
                "not supported", function.loc)
        if _contains_function_pointer(function.result):
            # Return-value flow would escape the value analysis.
            raise UnsupportedFeatureError(
                f"{function.name!r}: functions returning function "
                "pointers are not supported", function.loc)
        params = [p.ctype for p in function.params]
        env.functions[function.name] = ct.TFunction(function.result, params)
    env.externals = {name: sig for name, sig in env.externals.items()
                     if name not in env.functions}
    for decl in program.globals:
        if decl.init is not None:
            _check_global_init(decl, env)
    for function in program.functions:
        _FunctionChecker(env, function).check()
    return env


def _check_complete(ctype: ct.CType, loc) -> None:
    if isinstance(ctype, ct.TVoid):
        raise TypeError_("variable of type void", loc)
    if isinstance(ctype, ct.TFunction):
        raise UnsupportedFeatureError(
            "function-typed variables are not supported "
            "(declare a function pointer: int (*fp)(int))", loc)
    if isinstance(ctype, ct.TArray):
        if ctype.length == 0:
            raise TypeError_("zero-length array", loc)
        if _contains_function_pointer(ctype.element):
            # The value analysis only tracks function pointers held in
            # scalar variables; an array cell would escape it.
            raise UnsupportedFeatureError(
                "arrays of function pointers are not supported", loc)
        _check_complete(ctype.element, loc)
    # A bare function pointer (TPointer(TFunction)) is an ordinary 4-byte
    # scalar: the value analysis resolves its targets before lowering.
    # Anything *deeper* (pointer to function pointer) would escape it.
    if isinstance(ctype, ct.TPointer) and \
            not isinstance(ctype.target, ct.TFunction) and \
            _contains_function_pointer(ctype.target):
        raise UnsupportedFeatureError(
            "pointers to function pointers are not supported", loc)


def _contains_function_pointer(ctype: ct.CType) -> bool:
    if isinstance(ctype, ct.TFunction):
        return True
    if isinstance(ctype, ct.TPointer):
        return _contains_function_pointer(ctype.target)
    if isinstance(ctype, ct.TArray):
        return _contains_function_pointer(ctype.element)
    return False


def _check_global_init(decl: ast.GlobalDecl, env: ProgramEnv) -> None:
    """Global initializers must be constant expressions; checked by the
    evaluator in :mod:`repro.clight.globals` — here we only type them."""
    _type_initializer(decl.init, decl.ctype, env, decl.loc)


def _type_initializer(init: ast.Initializer, ctype: ct.CType,
                      env: ProgramEnv, loc) -> None:
    if isinstance(init, ast.InitScalar):
        if isinstance(ctype, (ct.TArray, ct.TStruct)):
            raise TypeError_(f"scalar initializer for aggregate {ctype}", init.loc)
        checker = _FunctionChecker(env, None)
        actual = checker.check_rvalue(init.expr)
        init.expr = checker.convert(init.expr, actual, ctype)
        return
    assert isinstance(init, ast.InitList)
    if isinstance(ctype, ct.TArray):
        if len(init.items) > ctype.length:
            raise TypeError_(
                f"too many initializers ({len(init.items)}) for {ctype}", init.loc)
        for item in init.items:
            _type_initializer(item, ctype.element, env, loc)
        return
    if isinstance(ctype, ct.TStruct):
        if len(init.items) > len(ctype.fields):
            raise TypeError_(f"too many initializers for {ctype}", init.loc)
        for item, field in zip(init.items, ctype.fields):
            _type_initializer(item, field.ctype, env, loc)
        return
    if len(init.items) == 1:
        _type_initializer(init.items[0], ctype, env, loc)
        return
    raise TypeError_(f"brace initializer for scalar {ctype}", init.loc)


class _Scope:
    def __init__(self, parent: Optional["_Scope"]) -> None:
        self.parent = parent
        self.names: dict[str, str] = {}  # source name -> unique name

    def lookup(self, name: str) -> Optional[str]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class _FunctionChecker:
    def __init__(self, env: ProgramEnv, function: Optional[ast.FunctionDef]) -> None:
        self.env = env
        self.function = function
        self.locals_types: dict[str, ct.CType] = {}
        self.addressable: set[str] = set()
        self.scope = _Scope(None)
        self._counter: dict[str, int] = {}
        self._loop_depth = 0
        if function is not None:
            for param in function.params:
                _check_complete(param.ctype, function.loc)
                if self.scope.lookup(param.name) is not None:
                    raise TypeError_(f"duplicate parameter {param.name!r}",
                                     function.loc)
                self.scope.names[param.name] = param.name
                self.locals_types[param.name] = param.ctype

    # -- driver ---------------------------------------------------------------

    def check(self) -> None:
        assert self.function is not None
        self.check_stmt(self.function.body)
        self.function.locals_types = self.locals_types  # type: ignore[attr-defined]
        self.function.addressable = self.addressable  # type: ignore[attr-defined]
        param_names = {p.name for p in self.function.params}
        self.function.param_copies = self.addressable & param_names  # type: ignore[attr-defined]

    # -- statements -----------------------------------------------------------

    def check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.SBlock):
            self.scope = _Scope(self.scope)
            for child in stmt.body:
                self.check_stmt(child)
            assert self.scope.parent is not None
            self.scope = self.scope.parent
            return
        if isinstance(stmt, ast.SDecl):
            self._check_decl(stmt)
            return
        if isinstance(stmt, ast.SDeclGroup):
            for decl in stmt.decls:
                self._check_decl(decl)
            return
        if isinstance(stmt, ast.SExpr):
            self.check_rvalue(stmt.expr)
            return
        if isinstance(stmt, ast.SIf):
            self._check_condition(stmt.cond)
            self.check_stmt(stmt.then)
            if stmt.otherwise is not None:
                self.check_stmt(stmt.otherwise)
            return
        if isinstance(stmt, ast.SWhile):
            self._check_condition(stmt.cond)
            self._in_loop(stmt.body)
            return
        if isinstance(stmt, ast.SDoWhile):
            self._in_loop(stmt.body)
            self._check_condition(stmt.cond)
            return
        if isinstance(stmt, ast.SFor):
            self.scope = _Scope(self.scope)
            if stmt.init is not None:
                self.check_stmt(stmt.init)
            if stmt.cond is not None:
                self._check_condition(stmt.cond)
            if stmt.step is not None:
                self.check_rvalue(stmt.step)
            self._in_loop(stmt.body)
            assert self.scope.parent is not None
            self.scope = self.scope.parent
            return
        if isinstance(stmt, ast.SSwitch):
            ty = self.check_rvalue(stmt.scrutinee)
            if not ty.is_integer:
                raise TypeError_(f"switch on non-integer type {ty}", stmt.loc)
            seen: set[Optional[int]] = set()
            for value, stmts in stmt.cases:
                if value in seen:
                    raise TypeError_(f"duplicate case {value}", stmt.loc)
                seen.add(value)
                self._loop_depth += 1  # break is legal inside a switch
                self.scope = _Scope(self.scope)
                for child in stmts:
                    self.check_stmt(child)
                assert self.scope.parent is not None
                self.scope = self.scope.parent
                self._loop_depth -= 1
            return
        if isinstance(stmt, ast.SBreak):
            if self._loop_depth == 0:
                raise TypeError_("break outside loop or switch", stmt.loc)
            return
        if isinstance(stmt, ast.SContinue):
            if self._loop_depth == 0:
                raise TypeError_("continue outside loop", stmt.loc)
            return
        if isinstance(stmt, ast.SReturn):
            self._check_return(stmt)
            return
        if isinstance(stmt, ast.SSkip):
            return
        raise TypeError_(f"unknown statement {type(stmt).__name__}", stmt.loc)

    def _in_loop(self, body: ast.Stmt) -> None:
        self._loop_depth += 1
        self.check_stmt(body)
        self._loop_depth -= 1

    def _check_decl(self, stmt: ast.SDecl) -> None:
        _check_complete(stmt.ctype, stmt.loc)
        unique = self._fresh_name(stmt.name)
        self.scope.names[stmt.name] = unique
        self.locals_types[unique] = stmt.ctype
        if isinstance(stmt.ctype, (ct.TArray, ct.TStruct)):
            self.addressable.add(unique)
        stmt.name = unique
        if stmt.init is not None:
            _type_local_initializer(self, stmt.init, stmt.ctype)

    def _check_return(self, stmt: ast.SReturn) -> None:
        assert self.function is not None
        result = self.function.result
        if stmt.value is None:
            if not isinstance(result, ct.TVoid):
                raise TypeError_("return without a value in a non-void "
                                 "function", stmt.loc)
            return
        if isinstance(result, ct.TVoid):
            raise TypeError_("return with a value in a void function", stmt.loc)
        actual = self.check_rvalue(stmt.value)
        stmt.value = self.convert(stmt.value, actual, result)

    def _check_condition(self, expr: ast.Expr) -> None:
        ty = self.check_rvalue(expr)
        if not ty.is_scalar:
            raise TypeError_(f"condition of non-scalar type {ty}", expr.loc)

    def _fresh_name(self, name: str) -> str:
        count = self._counter.get(name, 0)
        self._counter[name] = count + 1
        if count == 0 and self.scope.lookup(name) is None \
                and name not in self.locals_types:
            return name
        candidate = f"{name}${count + 1}"
        while candidate in self.locals_types:
            count += 1
            candidate = f"{name}${count + 1}"
        return candidate

    # -- expressions ------------------------------------------------------------

    def check_rvalue(self, expr: ast.Expr) -> ct.CType:
        """Type an expression used for its value; arrays decay to pointers."""
        ty = self._check(expr)
        if isinstance(ty, ct.TArray):
            ty = ct.TPointer(ty.element)
            expr.ty = ty
        return ty

    def check_lvalue(self, expr: ast.Expr) -> ct.CType:
        """Type an expression used as a location; no decay."""
        ty = self._check(expr)
        if not self._is_lvalue(expr):
            raise TypeError_("expression is not an lvalue", expr.loc)
        return ty

    @staticmethod
    def _is_lvalue(expr: ast.Expr) -> bool:
        if isinstance(expr, ast.Name):
            # A function designator is a value, never a location.
            return expr.binding != "function"
        if isinstance(expr, (ast.Index, ast.Member)):
            return True
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return True
        return False

    def convert(self, expr: ast.Expr, actual: ct.CType,
                target: ct.CType) -> ast.Expr:
        """Insert a cast realizing C's implicit conversion, if legal."""
        if actual == target:
            return expr
        if actual.is_arithmetic and target.is_arithmetic:
            return self._cast_node(expr, target)
        if isinstance(target, ct.TPointer):
            if isinstance(expr, ast.IntLit) and expr.value == 0:
                return self._cast_node(expr, target)
            if isinstance(actual, ct.TPointer):
                void_involved = isinstance(target.target, ct.TVoid) or \
                    isinstance(actual.target, ct.TVoid)
                if void_involved or actual.target == target.target:
                    return self._cast_node(expr, target)
        raise TypeError_(f"cannot convert {actual} to {target}", expr.loc)

    @staticmethod
    def _cast_node(expr: ast.Expr, target: ct.CType) -> ast.Expr:
        cast = ast.Cast(target, expr, expr.loc)
        cast.ty = target
        return cast

    # The central dispatcher: computes the *inherent* type (before decay).
    def _check(self, expr: ast.Expr) -> ct.CType:
        ty = self._check_inner(expr)
        expr.ty = ty
        return ty

    def _check_inner(self, expr: ast.Expr) -> ct.CType:
        if isinstance(expr, ast.IntLit):
            if expr.unsigned_suffix or expr.value > ct.MAX_INT_LIT_SIGNED:
                return ct.UINT
            return ct.INT
        if isinstance(expr, ast.FloatLit):
            return ct.DOUBLE
        if isinstance(expr, ast.CharLit):
            return ct.INT
        if isinstance(expr, ast.Name):
            return self._check_name(expr)
        if isinstance(expr, ast.Unary):
            return self._check_unary(expr)
        if isinstance(expr, ast.IncDec):
            return self._check_incdec(expr)
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr)
        if isinstance(expr, ast.Logical):
            self._check_condition(expr.left)
            self._check_condition(expr.right)
            return ct.INT
        if isinstance(expr, ast.Conditional):
            return self._check_conditional(expr)
        if isinstance(expr, ast.Assign):
            return self._check_assign(expr)
        if isinstance(expr, ast.Call):
            return self._check_call(expr)
        if isinstance(expr, ast.Index):
            return self._check_index(expr)
        if isinstance(expr, ast.Member):
            return self._check_member(expr)
        if isinstance(expr, ast.Cast):
            return self._check_cast(expr)
        if isinstance(expr, ast.SizeOf):
            return self._check_sizeof(expr)
        if isinstance(expr, ast.Comma):
            self.check_rvalue(expr.left)
            return self.check_rvalue(expr.right)
        raise TypeError_(f"unknown expression {type(expr).__name__}", expr.loc)

    def _check_name(self, expr: ast.Name) -> ct.CType:
        unique = self.scope.lookup(expr.ident)
        if unique is not None:
            expr.ident = unique
            expr.binding = "local"
            return self.locals_types[unique]
        if expr.ident in self.env.globals:
            expr.binding = "global"
            return self.env.globals[expr.ident]
        if expr.ident in self.env.functions:
            # A function name used as a value decays to a pointer to it;
            # the value analysis later resolves which targets can flow to
            # each indirect call site.
            expr.binding = "function"
            return ct.TPointer(self.env.functions[expr.ident])
        if expr.ident in self.env.externals:
            raise UnsupportedFeatureError(
                f"external function {expr.ident!r} used as a value "
                "(only defined functions can be function-pointer targets)",
                expr.loc)
        raise TypeError_(f"undeclared identifier {expr.ident!r}", expr.loc)

    def _check_unary(self, expr: ast.Unary) -> ct.CType:
        if expr.op == "&":
            operand = expr.operand
            if isinstance(operand, ast.Name) \
                    and self.scope.lookup(operand.ident) is None \
                    and operand.ident not in self.env.globals \
                    and (operand.ident in self.env.functions
                         or operand.ident in self.env.externals):
                # ``&f`` on a function designator is the same pointer as
                # plain ``f`` (no extra indirection).
                return self.check_rvalue(operand)
            inner = self.check_lvalue(expr.operand)
            if _contains_function_pointer(inner):
                # A pointer-to-function-pointer would let writes escape
                # the value analysis that resolves indirect calls.
                raise UnsupportedFeatureError(
                    "taking the address of a function pointer is not "
                    "supported", expr.loc)
            self._mark_addressable(expr.operand)
            return ct.TPointer(inner)
        if expr.op == "*":
            inner = self.check_rvalue(expr.operand)
            if not isinstance(inner, ct.TPointer):
                raise TypeError_(f"dereference of non-pointer {inner}", expr.loc)
            if isinstance(inner.target, ct.TVoid):
                raise TypeError_("dereference of void pointer", expr.loc)
            if isinstance(inner.target, ct.TFunction):
                # ``(*fp)(...)`` is folded to ``fp(...)`` by the parser;
                # any other deref of a function pointer has no value here.
                raise UnsupportedFeatureError(
                    "dereferencing a function pointer outside a call "
                    "is not supported", expr.loc)
            return inner.target
        inner = self.check_rvalue(expr.operand)
        if expr.op in ("-", "+"):
            if not inner.is_arithmetic:
                raise TypeError_(f"unary {expr.op} on {inner}", expr.loc)
            promoted = ct.integer_promotion(inner)
            expr.operand = self.convert(expr.operand, inner, promoted)
            return promoted
        if expr.op == "~":
            if not inner.is_integer:
                raise TypeError_(f"~ on {inner}", expr.loc)
            promoted = ct.integer_promotion(inner)
            expr.operand = self.convert(expr.operand, inner, promoted)
            return promoted
        if expr.op == "!":
            if not inner.is_scalar:
                raise TypeError_(f"! on {inner}", expr.loc)
            return ct.INT
        raise TypeError_(f"unknown unary operator {expr.op!r}", expr.loc)

    def _mark_addressable(self, expr: ast.Expr) -> None:
        base = expr
        while True:
            if isinstance(base, ast.Index):
                # taking &a[i]: if `a` is a pointer the target is already
                # in memory; if it is a local array it is already
                # addressable by construction.
                return
            if isinstance(base, ast.Member) and not base.through_pointer:
                base = base.base
                continue
            break
        if isinstance(base, ast.Name) and base.binding == "local":
            self.addressable.add(base.ident)
        if isinstance(base, ast.Unary) and base.op == "*":
            return  # already a memory location

    def _check_incdec(self, expr: ast.IncDec) -> ct.CType:
        ty = self.check_lvalue(expr.operand)
        if isinstance(ty, ct.TPointer):
            return ty
        if ty.is_arithmetic:
            return ty
        raise TypeError_(f"{expr.op} on {ty}", expr.loc)

    def _check_binary(self, expr: ast.Binary) -> ct.CType:
        left = self.check_rvalue(expr.left)
        right = self.check_rvalue(expr.right)
        op = expr.op
        if op in ("+", "-"):
            if isinstance(left, ct.TPointer) and right.is_integer:
                return left
            if op == "+" and left.is_integer and isinstance(right, ct.TPointer):
                return right
            if op == "-" and isinstance(left, ct.TPointer) \
                    and isinstance(right, ct.TPointer):
                if left.target != right.target:
                    raise TypeError_("subtraction of incompatible pointers",
                                     expr.loc)
                return ct.INT
        if op in ("<<", ">>"):
            if not (left.is_integer and right.is_integer):
                raise TypeError_(f"shift on {left} and {right}", expr.loc)
            promoted = ct.integer_promotion(left)
            expr.left = self.convert(expr.left, left, promoted)
            expr.right = self.convert(expr.right, right,
                                      ct.integer_promotion(right))
            return promoted
        if op in ("&", "|", "^", "%") and not (left.is_integer and right.is_integer):
            raise TypeError_(f"{op} on {left} and {right}", expr.loc)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if isinstance(left, ct.TPointer) or isinstance(right, ct.TPointer):
                self._check_pointer_comparison(expr, left, right)
                return ct.INT
            common = ct.usual_arithmetic_conversion(left, right)
            expr.left = self.convert(expr.left, left, common)
            expr.right = self.convert(expr.right, right, common)
            return ct.INT
        if not (left.is_arithmetic and right.is_arithmetic):
            raise TypeError_(f"{op} on {left} and {right}", expr.loc)
        if op == "%" and (left.is_float or right.is_float):
            raise TypeError_("% on floating-point operands", expr.loc)
        common = ct.usual_arithmetic_conversion(left, right)
        if op in ("/",) and common.is_float:
            pass  # float division is fine
        expr.left = self.convert(expr.left, left, common)
        expr.right = self.convert(expr.right, right, common)
        return common

    def _check_pointer_comparison(self, expr: ast.Binary, left: ct.CType,
                                  right: ct.CType) -> None:
        def ok(a: ct.CType, b: ct.CType, b_expr: ast.Expr) -> bool:
            if isinstance(a, ct.TPointer) and isinstance(b, ct.TPointer):
                return a.target == b.target or isinstance(a.target, ct.TVoid) \
                    or isinstance(b.target, ct.TVoid)
            if isinstance(a, ct.TPointer) and isinstance(b_expr, ast.IntLit) \
                    and b_expr.value == 0:
                return True
            return False

        if not (ok(left, right, expr.right) or ok(right, left, expr.left)):
            raise TypeError_(
                f"comparison between {left} and {right}", expr.loc)
        if expr.op not in ("==", "!=", "<", "<=", ">", ">="):
            raise TypeError_(f"{expr.op} on pointers", expr.loc)

    def _check_conditional(self, expr: ast.Conditional) -> ct.CType:
        self._check_condition(expr.cond)
        then_ty = self.check_rvalue(expr.then)
        else_ty = self.check_rvalue(expr.otherwise)
        if then_ty.is_arithmetic and else_ty.is_arithmetic:
            common = ct.usual_arithmetic_conversion(then_ty, else_ty)
            expr.then = self.convert(expr.then, then_ty, common)
            expr.otherwise = self.convert(expr.otherwise, else_ty, common)
            return common
        if then_ty == else_ty:
            return then_ty
        raise TypeError_(
            f"incompatible branches of ?: ({then_ty} vs {else_ty})", expr.loc)

    def _check_assign(self, expr: ast.Assign) -> ct.CType:
        target_ty = self.check_lvalue(expr.target)
        if isinstance(target_ty, (ct.TArray, ct.TStruct)):
            raise UnsupportedFeatureError(
                f"assignment to aggregate {target_ty} is not supported",
                expr.loc)
        value_ty = self.check_rvalue(expr.value)
        if expr.op == "=":
            expr.value = self.convert(expr.value, value_ty, target_ty)
            return target_ty
        # Compound assignment: target op= value behaves like
        # target = target op value with the binary operator's rules.
        binary_op = expr.op[:-1]
        if isinstance(target_ty, ct.TPointer):
            if binary_op not in ("+", "-") or not value_ty.is_integer:
                raise TypeError_(
                    f"{expr.op} on pointer target", expr.loc)
            return target_ty
        if not (target_ty.is_arithmetic and value_ty.is_arithmetic):
            raise TypeError_(f"{expr.op} on {target_ty} and {value_ty}", expr.loc)
        if binary_op in ("%", "&", "|", "^", "<<", ">>") and \
                not (target_ty.is_integer and value_ty.is_integer):
            raise TypeError_(f"{expr.op} on {target_ty} and {value_ty}", expr.loc)
        if binary_op in ("<<", ">>"):
            return target_ty
        common = ct.usual_arithmetic_conversion(target_ty, value_ty)
        expr.value = self.convert(expr.value, value_ty, common)
        return target_ty

    def _check_call(self, expr: ast.Call) -> ct.CType:
        signature = self._resolve_callee(expr)
        if len(expr.args) != len(signature.params) and not signature.varargs:
            raise TypeError_(
                f"{expr.callee!r} expects {len(signature.params)} arguments, "
                f"got {len(expr.args)}", expr.loc)
        new_args: list[ast.Expr] = []
        for index, arg in enumerate(expr.args):
            arg_ty = self.check_rvalue(arg)
            if index < len(signature.params):
                arg = self.convert(arg, arg_ty, signature.params[index])
            new_args.append(arg)
        expr.args = new_args
        if isinstance(signature.result, ct.TStruct):
            raise UnsupportedFeatureError(
                "functions returning structs are not supported", expr.loc)
        return signature.result

    def _resolve_callee(self, expr: ast.Call) -> ct.TFunction:
        """Resolve ``expr.callee``: a variable of function-pointer type in
        scope shadows any function of the same name (C scoping).  Indirect
        calls keep the resolved pointer read in ``expr.callee_expr`` for
        the lowering and the value analysis."""
        unique = self.scope.lookup(expr.callee)
        if unique is not None:
            ty = self.locals_types[unique]
            if not (isinstance(ty, ct.TPointer)
                    and isinstance(ty.target, ct.TFunction)):
                raise TypeError_(
                    f"called object {expr.callee!r} has type {ty}, "
                    "which is not a function pointer", expr.loc)
            name_node = ast.Name(expr.callee, expr.loc)
            self.check_rvalue(name_node)  # resolves + alpha-renames
            expr.indirect = True
            expr.callee = name_node.ident
            expr.callee_expr = name_node
            expr.signature = ty.target
            if _contains_function_pointer(ty.target.result):
                raise UnsupportedFeatureError(
                    "function pointers returning function pointers "
                    "are not supported", expr.loc)
            return ty.target
        return self.env.function_type(expr.callee)

    def _check_index(self, expr: ast.Index) -> ct.CType:
        base_ty = self.check_rvalue(expr.base)
        index_ty = self.check_rvalue(expr.index)
        if not index_ty.is_integer:
            raise TypeError_(f"array index of type {index_ty}", expr.loc)
        if isinstance(base_ty, ct.TPointer):
            if isinstance(base_ty.target, ct.TVoid):
                raise TypeError_("indexing a void pointer", expr.loc)
            return base_ty.target
        raise TypeError_(f"indexing a non-pointer {base_ty}", expr.loc)

    def _check_member(self, expr: ast.Member) -> ct.CType:
        if expr.through_pointer:
            base_ty = self.check_rvalue(expr.base)
            if not (isinstance(base_ty, ct.TPointer)
                    and isinstance(base_ty.target, ct.TStruct)):
                raise TypeError_(f"-> on {base_ty}", expr.loc)
            struct = base_ty.target
        else:
            base_ty = self.check_lvalue(expr.base)
            if not isinstance(base_ty, ct.TStruct):
                raise TypeError_(f". on {base_ty}", expr.loc)
            struct = base_ty
        return struct.field(expr.field).ctype

    def _check_cast(self, expr: ast.Cast) -> ct.CType:
        inner = self.check_rvalue(expr.operand)
        target = expr.target_type
        if isinstance(target, ct.TVoid):
            return target
        if target.is_arithmetic and inner.is_arithmetic:
            return target
        if isinstance(target, ct.TPointer) and isinstance(inner, ct.TPointer):
            return target
        if isinstance(target, ct.TPointer) and inner.is_integer:
            if isinstance(expr.operand, ast.IntLit):
                return target  # (T*)0 and friends
            raise UnsupportedFeatureError(
                "casting a run-time integer to a pointer is not supported",
                expr.loc)
        if target.is_integer and isinstance(inner, ct.TPointer):
            raise UnsupportedFeatureError(
                "casting a pointer to an integer is not supported", expr.loc)
        raise TypeError_(f"cast from {inner} to {target}", expr.loc)

    def _check_sizeof(self, expr: ast.SizeOf) -> ct.CType:
        if expr.arg_type is not None:
            expr.arg_type.size  # raises for void/function
            return ct.UINT
        assert expr.arg_expr is not None
        self._check(expr.arg_expr)
        assert expr.arg_expr.ty is not None
        expr.arg_expr.ty.size
        return ct.UINT


def _type_local_initializer(checker: _FunctionChecker, init: ast.Initializer,
                            ctype: ct.CType) -> None:
    if isinstance(init, ast.InitScalar):
        if isinstance(ctype, (ct.TArray, ct.TStruct)):
            raise TypeError_(f"scalar initializer for aggregate {ctype}",
                             init.loc)
        actual = checker.check_rvalue(init.expr)
        init.expr = checker.convert(init.expr, actual, ctype)
        return
    assert isinstance(init, ast.InitList)
    if isinstance(ctype, ct.TArray):
        if len(init.items) > ctype.length:
            raise TypeError_(f"too many initializers for {ctype}", init.loc)
        for item in init.items:
            _type_local_initializer(checker, item, ctype.element)
        return
    if isinstance(ctype, ct.TStruct):
        if len(init.items) > len(ctype.fields):
            raise TypeError_(f"too many initializers for {ctype}", init.loc)
        for item, field in zip(init.items, ctype.fields):
            _type_local_initializer(checker, item, field.ctype)
        return
    if len(init.items) == 1:
        _type_local_initializer(checker, init.items[0], ctype)
        return
    raise TypeError_(f"brace initializer for scalar {ctype}", init.loc)
