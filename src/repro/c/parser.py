"""Recursive-descent parser for the C subset.

Produces the untyped AST of :mod:`repro.c.ast`.  The parser keeps the
``typedef`` table and ``struct`` tag table it needs to disambiguate
declarations from expressions; struct types must be defined before use
(forward references are only allowed behind a pointer inside the same
struct definition, which none of the benchmarks need, so they are simply
rejected).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.c import ast
from repro.c import types as ct
from repro.c.lexer import Token, tokenize
from repro.errors import ParseError, UnsupportedFeatureError

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


def parse(source: str, filename: str = "<string>",
          macros: Optional[dict[str, str]] = None) -> ast.Program:
    """Parse a translation unit into an :class:`ast.Program`."""
    tokens = tokenize(source, filename, macros)
    return _Parser(tokens).parse_program()


class _Parser:
    def __init__(self, tokens: Sequence[Token]) -> None:
        self._tokens = list(tokens)
        self._pos = 0
        self._typedefs: dict[str, ct.CType] = {}
        self._structs: dict[str, ct.TStruct] = {}
        self._enum_constants: dict[str, int] = {}

    # -- token plumbing ------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _expect_op(self, text: str) -> Token:
        token = self._next()
        if not token.is_op(text):
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.loc)
        return token

    def _expect_keyword(self, text: str) -> Token:
        token = self._next()
        if not token.is_keyword(text):
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.loc)
        return token

    def _expect_ident(self) -> Token:
        token = self._next()
        if token.kind != "id":
            raise ParseError(f"expected identifier, found {token.text!r}", token.loc)
        return token

    def _accept_op(self, text: str) -> bool:
        if self._peek().is_op(text):
            self._next()
            return True
        return False

    def _accept_keyword(self, text: str) -> bool:
        if self._peek().is_keyword(text):
            self._next()
            return True
        return False

    # -- programs ------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        globals_: list[ast.GlobalDecl] = []
        functions: list[ast.FunctionDef] = []
        externs: list[ast.ExternDecl] = []
        while self._peek().kind != "eof":
            if self._accept_keyword("typedef"):
                self._parse_typedef()
                continue
            if self._peek().is_keyword("struct") and self._peek(2).is_op("{"):
                # struct definition at top level: struct Tag { ... };
                self._parse_type_specifier()
                self._expect_op(";")
                continue
            if self._peek().is_keyword("enum") and (
                    self._peek(1).is_op("{") or self._peek(2).is_op("{")):
                self._parse_type_specifier()
                self._expect_op(";")
                continue
            self._parse_toplevel_decl(globals_, functions, externs)
        return ast.Program(globals_, functions, externs, self._structs)

    def _parse_typedef(self) -> None:
        base = self._parse_type_specifier()
        name_token, ctype = self._parse_declarator(base)
        self._expect_op(";")
        self._typedefs[name_token.text] = ctype

    def _parse_toplevel_decl(self, globals_: list, functions: list,
                             externs: list) -> None:
        is_extern = False
        while True:
            if self._accept_keyword("extern"):
                is_extern = True
            elif self._accept_keyword("static") or self._accept_keyword("const"):
                pass  # accepted and ignored: storage/qualifiers do not
                # affect stack bounds
            else:
                break
        base = self._parse_type_specifier()
        if self._accept_op(";"):
            return  # bare struct declaration
        name_token, ctype = self._parse_declarator(base)

        if self._peek().is_op("(") or isinstance(ctype, ct.TFunction):
            # Declarator did not consume parameters only when ctype is not
            # a function; _parse_declarator handles parameter lists, so at
            # this point a TFunction means we saw `T name(params)`.
            if not isinstance(ctype, ct.TFunction):
                raise ParseError("malformed function declarator", name_token.loc)
            if self._accept_op(";"):
                externs.append(ast.ExternDecl(name_token.text, ctype, name_token.loc))
                return
            body = self._parse_block()
            params = self._pending_params
            functions.append(ast.FunctionDef(
                name_token.text, ctype.result, params, body, name_token.loc))
            return

        # Global variable(s).
        while True:
            init: Optional[ast.Initializer] = None
            if self._accept_op("="):
                init = self._parse_initializer()
            if is_extern and init is None:
                # extern data declarations are treated as definitions with
                # zero-initialization; every benchmark is a single file.
                pass
            globals_.append(ast.GlobalDecl(name_token.text, ctype, init, name_token.loc))
            if self._accept_op(","):
                name_token, ctype = self._parse_declarator(base)
                continue
            self._expect_op(";")
            return

    # -- types ---------------------------------------------------------------

    def _is_type_start(self, token: Token, ahead: int = 0) -> bool:
        if token.kind == "keyword" and token.text in (
                "void", "char", "short", "int", "long", "unsigned", "signed",
                "float", "double", "struct", "enum", "const"):
            return True
        return token.kind == "id" and token.text in self._typedefs

    def _parse_type_specifier(self) -> ct.CType:
        token = self._peek()
        if token.kind == "id" and token.text in self._typedefs:
            self._next()
            return self._typedefs[token.text]
        if token.is_keyword("struct"):
            return self._parse_struct_specifier()
        if token.is_keyword("enum"):
            return self._parse_enum_specifier()
        if token.is_keyword("union"):
            raise UnsupportedFeatureError("union is not supported", token.loc)
        if token.is_keyword("const"):
            self._next()
            return self._parse_type_specifier()

        signed: Optional[bool] = None
        base: Optional[str] = None
        saw_long = 0
        while True:
            token = self._peek()
            if token.is_keyword("unsigned"):
                signed = False
            elif token.is_keyword("signed"):
                signed = True
            elif token.is_keyword("long"):
                saw_long += 1
            elif token.kind == "keyword" and token.text in (
                    "void", "char", "short", "int", "float", "double"):
                if base is not None:
                    raise ParseError("duplicate type specifier", token.loc)
                base = token.text
            elif token.is_keyword("const"):
                pass
            else:
                break
            self._next()

        if base is None and signed is None and saw_long == 0:
            raise ParseError(f"expected a type, found {self._peek().text!r}",
                             self._peek().loc)
        if saw_long > 1:
            raise UnsupportedFeatureError("long long is not supported", self._peek().loc)
        if base in (None, "int"):
            # 'unsigned', 'long', 'unsigned long' and friends: all 32-bit.
            return ct.INT if signed in (None, True) else ct.UINT
        if base == "void":
            return ct.VOID
        if base == "char":
            return ct.CHAR if signed in (None, True) else ct.UCHAR
        if base == "short":
            return ct.SHORT if signed in (None, True) else ct.USHORT
        if base in ("float", "double"):
            return ct.DOUBLE
        raise ParseError(f"cannot parse type specifier near {base!r}", self._peek().loc)

    def _parse_struct_specifier(self) -> ct.CType:
        self._expect_keyword("struct")
        tag_token = self._expect_ident()
        tag = tag_token.text
        if not self._peek().is_op("{"):
            if tag not in self._structs:
                raise UnsupportedFeatureError(
                    f"struct {tag} used before its definition", tag_token.loc)
            return self._structs[tag]
        if tag in self._structs and self._structs[tag].is_complete:
            raise ParseError(f"struct {tag} redefined", tag_token.loc)
        self._expect_op("{")
        # Register an incomplete struct so members can hold pointers to
        # the struct being defined (linked-list nodes etc.).
        struct = ct.TStruct.incomplete(tag)
        self._structs[tag] = struct
        members: list[tuple[str, ct.CType]] = []
        while not self._accept_op("}"):
            base = self._parse_type_specifier()
            while True:
                name_token, ctype = self._parse_declarator(base)
                if isinstance(ctype, ct.TFunction):
                    raise UnsupportedFeatureError(
                        "function members are not supported", name_token.loc)
                if _mentions_function_pointer(ctype):
                    # The value analysis tracks function pointers only in
                    # scalar variables; a struct member would escape it.
                    raise UnsupportedFeatureError(
                        "function-pointer struct members are not supported",
                        name_token.loc)
                members.append((name_token.text, ctype))
                if self._accept_op(","):
                    continue
                self._expect_op(";")
                break
        struct.complete(members)
        return struct

    def _parse_enum_specifier(self) -> ct.CType:
        """``enum [Tag] { A, B = const, ... }`` — enumerators become
        integer constants usable in expressions; the type is ``int``."""
        self._expect_keyword("enum")
        if self._peek().kind == "id":
            self._next()  # tag, recorded nowhere: the type is plain int
        if self._accept_op("{"):
            value = 0
            while True:
                name_token = self._expect_ident()
                if self._accept_op("="):
                    value = self._const_int(self.parse_conditional())
                if name_token.text in self._enum_constants:
                    raise ParseError(
                        f"enumerator {name_token.text!r} redefined",
                        name_token.loc)
                self._enum_constants[name_token.text] = value
                value += 1
                if self._accept_op(","):
                    if self._peek().is_op("}"):
                        break
                    continue
                break
            self._expect_op("}")
        return ct.INT

    def _parse_declarator(self, base: ct.CType) -> tuple[Token, ct.CType]:
        """Parse ``* ... name [dims] | (params)`` around a base type."""
        while self._accept_op("*"):
            base = ct.TPointer(base)
            while self._accept_keyword("const"):
                pass
        # Function-pointer declarator: ``base (*name)(params)``.
        if self._peek().is_op("(") and self._peek(1).is_op("*"):
            self._next()
            self._next()
            name_token = self._expect_ident()
            self._expect_op(")")
            self._expect_op("(")
            params, varargs = self._parse_params(allow_unnamed=True)
            if varargs:
                raise ParseError("variadic function pointers are not "
                                 "supported", name_token.loc)
            param_types = [p.ctype for p in params]
            return name_token, ct.TPointer(
                ct.TFunction(base, param_types, varargs))
        name_token = self._expect_ident()
        # Function declarator?
        if self._peek().is_op("("):
            self._next()
            params, varargs = self._parse_params()
            self._pending_params = params
            param_types = [p.ctype for p in params]
            return name_token, ct.TFunction(base, param_types, varargs)
        # Array dimensions.
        dims: list[int] = []
        while self._accept_op("["):
            size_expr = self.parse_assignment()
            self._expect_op("]")
            dims.append(self._const_int(size_expr))
        for dim in reversed(dims):
            base = ct.TArray(base, dim)
        return name_token, base

    _pending_params: list = []

    def _parse_params(self,
                      allow_unnamed: bool = False
                      ) -> tuple[list[ast.ParamDecl], bool]:
        params: list[ast.ParamDecl] = []
        varargs = False
        if self._accept_op(")"):
            return params, varargs
        if self._peek().is_keyword("void") and self._peek(1).is_op(")"):
            self._next()
            self._next()
            return params, varargs
        while True:
            if self._accept_op("..."):
                varargs = True
                self._expect_op(")")
                return params, varargs
            base = self._parse_type_specifier()
            while self._accept_op("*"):
                base = ct.TPointer(base)
            if self._peek().is_op("(") and self._peek(1).is_op("*"):
                # Function-pointer parameter: ``base (*name)(params)``.
                # The inner parameter list is abstract (names optional).
                open_token = self._next()
                self._next()
                if self._peek().is_op(")") and allow_unnamed:
                    name = ""
                    loc = open_token.loc
                else:
                    name_token = self._expect_ident()
                    name = name_token.text
                    loc = name_token.loc
                self._expect_op(")")
                self._expect_op("(")
                inner, inner_varargs = self._parse_params(allow_unnamed=True)
                if inner_varargs:
                    raise ParseError("variadic function pointers are not "
                                     "supported", loc)
                fp_type = ct.TPointer(ct.TFunction(
                    base, [p.ctype for p in inner], inner_varargs))
                params.append(ast.ParamDecl(name, fp_type))
                if self._accept_op(","):
                    continue
                self._expect_op(")")
                return params, varargs
            if allow_unnamed and not self._peek().kind == "id":
                params.append(ast.ParamDecl("", base))
                if self._accept_op(","):
                    continue
                self._expect_op(")")
                return params, varargs
            name_token = self._expect_ident()
            ctype: ct.CType = base
            while self._accept_op("["):
                # Array parameters decay to pointers; the size (possibly
                # empty) is accepted and discarded.
                if not self._peek().is_op("]"):
                    self.parse_assignment()
                self._expect_op("]")
                ctype = ct.TPointer(ctype if not isinstance(ctype, ct.TPointer)
                                    else ctype)
                break
            if isinstance(ctype, ct.TArray):
                ctype = ct.TPointer(ctype.element)
            params.append(ast.ParamDecl(name_token.text, ctype))
            if self._accept_op(","):
                continue
            self._expect_op(")")
            return params, varargs

    def _const_int(self, expr: ast.Expr) -> int:
        value = _fold_const(expr)
        if value is None:
            raise ParseError("expected a constant integer expression",
                             expr.loc)
        return value

    # -- initializers ----------------------------------------------------------

    def _parse_initializer(self) -> ast.Initializer:
        token = self._peek()
        if token.is_op("{"):
            self._next()
            items: list[ast.Initializer] = []
            if not self._peek().is_op("}"):
                while True:
                    items.append(self._parse_initializer())
                    if self._accept_op(","):
                        if self._peek().is_op("}"):
                            break
                        continue
                    break
            self._expect_op("}")
            return ast.InitList(items, token.loc)
        expr = self.parse_assignment()
        return ast.InitScalar(expr, expr.loc)

    # -- statements ------------------------------------------------------------

    def _parse_block(self) -> ast.SBlock:
        open_token = self._expect_op("{")
        body: list[ast.Stmt] = []
        while not self._accept_op("}"):
            body.append(self.parse_statement())
        return ast.SBlock(body, open_token.loc)

    def parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.is_op("{"):
            return self._parse_block()
        if token.is_op(";"):
            self._next()
            return ast.SSkip(token.loc)
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("do"):
            return self._parse_do_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("switch"):
            return self._parse_switch()
        if token.is_keyword("break"):
            self._next()
            self._expect_op(";")
            return ast.SBreak(token.loc)
        if token.is_keyword("continue"):
            self._next()
            self._expect_op(";")
            return ast.SContinue(token.loc)
        if token.is_keyword("return"):
            self._next()
            value = None if self._peek().is_op(";") else self.parse_expr()
            self._expect_op(";")
            return ast.SReturn(value, token.loc)
        if token.is_keyword("goto"):
            raise UnsupportedFeatureError("goto is not supported", token.loc)
        if self._is_type_start(token) and not token.is_op("("):
            return self._parse_local_decl()
        expr = self.parse_expr()
        self._expect_op(";")
        return ast.SExpr(expr, expr.loc)

    def _parse_local_decl(self) -> ast.Stmt:
        loc = self._peek().loc
        base = self._parse_type_specifier()
        decls: list[ast.Stmt] = []
        while True:
            name_token, ctype = self._parse_declarator(base)
            if isinstance(ctype, ct.TFunction):
                raise UnsupportedFeatureError(
                    "local function declarations are not supported",
                    name_token.loc)
            init = None
            if self._accept_op("="):
                init = self._parse_initializer()
            decls.append(ast.SDecl(name_token.text, ctype, init, name_token.loc))
            if self._accept_op(","):
                continue
            self._expect_op(";")
            break
        if len(decls) == 1:
            return decls[0]
        return ast.SDeclGroup(decls, loc)

    def _parse_if(self) -> ast.Stmt:
        token = self._expect_keyword("if")
        self._expect_op("(")
        cond = self.parse_expr()
        self._expect_op(")")
        then = self.parse_statement()
        otherwise = self.parse_statement() if self._accept_keyword("else") else None
        return ast.SIf(cond, then, otherwise, token.loc)

    def _parse_while(self) -> ast.Stmt:
        token = self._expect_keyword("while")
        self._expect_op("(")
        cond = self.parse_expr()
        self._expect_op(")")
        body = self.parse_statement()
        return ast.SWhile(cond, body, token.loc)

    def _parse_do_while(self) -> ast.Stmt:
        token = self._expect_keyword("do")
        body = self.parse_statement()
        self._expect_keyword("while")
        self._expect_op("(")
        cond = self.parse_expr()
        self._expect_op(")")
        self._expect_op(";")
        return ast.SDoWhile(body, cond, token.loc)

    def _parse_for(self) -> ast.Stmt:
        token = self._expect_keyword("for")
        self._expect_op("(")
        init: Optional[ast.Stmt] = None
        if not self._peek().is_op(";"):
            if self._is_type_start(self._peek()):
                init = self._parse_local_decl()
            else:
                expr = self.parse_expr()
                self._expect_op(";")
                init = ast.SExpr(expr, expr.loc)
        else:
            self._next()
        cond = None if self._peek().is_op(";") else self.parse_expr()
        self._expect_op(";")
        step = None if self._peek().is_op(")") else self.parse_expr()
        self._expect_op(")")
        body = self.parse_statement()
        return ast.SFor(init, cond, step, body, token.loc)

    def _parse_switch(self) -> ast.Stmt:
        token = self._expect_keyword("switch")
        self._expect_op("(")
        scrutinee = self.parse_expr()
        self._expect_op(")")
        self._expect_op("{")
        cases: list[tuple[Optional[int], list[ast.Stmt]]] = []
        current: Optional[list[ast.Stmt]] = None
        while not self._accept_op("}"):
            if self._accept_keyword("case"):
                value = self._const_int(self.parse_conditional())
                self._expect_op(":")
                current = []
                cases.append((value, current))
                continue
            if self._accept_keyword("default"):
                self._expect_op(":")
                current = []
                cases.append((None, current))
                continue
            if current is None:
                raise ParseError("statement before first case label",
                                 self._peek().loc)
            current.append(self.parse_statement())
        return ast.SSwitch(scrutinee, cases, token.loc)

    # -- expressions -------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        expr = self.parse_assignment()
        while self._peek().is_op(","):
            comma = self._next()
            right = self.parse_assignment()
            expr = ast.Comma(expr, right, comma.loc)
        return expr

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_conditional()
        token = self._peek()
        if token.kind == "op" and token.text in _ASSIGN_OPS:
            self._next()
            right = self.parse_assignment()
            return ast.Assign(token.text, left, right, token.loc)
        return left

    def parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._peek().is_op("?"):
            token = self._next()
            then = self.parse_expr()
            self._expect_op(":")
            otherwise = self.parse_conditional()
            return ast.Conditional(cond, then, otherwise, token.loc)
        return cond

    _PRECEDENCE: list[list[str]] = [
        ["||"], ["&&"], ["|"], ["^"], ["&"],
        ["==", "!="], ["<", "<=", ">", ">="],
        ["<<", ">>"], ["+", "-"], ["*", "/", "%"],
    ]

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._PRECEDENCE):
            return self._parse_unary()
        ops = self._PRECEDENCE[level]
        left = self._parse_binary(level + 1)
        while self._peek().kind == "op" and self._peek().text in ops:
            token = self._next()
            right = self._parse_binary(level + 1)
            if token.text in ("&&", "||"):
                left = ast.Logical(token.text, left, right, token.loc)
            else:
                left = ast.Binary(token.text, left, right, token.loc)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "op" and token.text in ("-", "+", "~", "!", "&", "*"):
            self._next()
            operand = self._parse_unary()
            return ast.Unary(token.text, operand, token.loc)
        if token.is_op("++") or token.is_op("--"):
            self._next()
            operand = self._parse_unary()
            return ast.IncDec(token.text, operand, True, token.loc)
        if token.is_keyword("sizeof"):
            self._next()
            if self._peek().is_op("(") and self._is_type_start(self._peek(1)):
                self._next()
                arg_type = self._parse_abstract_type()
                self._expect_op(")")
                return ast.SizeOf(arg_type, None, token.loc)
            operand = self._parse_unary()
            return ast.SizeOf(None, operand, token.loc)
        if token.is_op("(") and self._is_type_start(self._peek(1)):
            self._next()
            target_type = self._parse_abstract_type()
            self._expect_op(")")
            operand = self._parse_unary()
            return ast.Cast(target_type, operand, token.loc)
        return self._parse_postfix()

    def _parse_abstract_type(self) -> ct.CType:
        base = self._parse_type_specifier()
        while self._accept_op("*"):
            base = ct.TPointer(base)
        return base

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_op("["):
                self._next()
                index = self.parse_expr()
                self._expect_op("]")
                expr = ast.Index(expr, index, token.loc)
            elif token.is_op("."):
                self._next()
                field = self._expect_ident()
                expr = ast.Member(expr, field.text, False, token.loc)
            elif token.is_op("->"):
                self._next()
                field = self._expect_ident()
                expr = ast.Member(expr, field.text, True, token.loc)
            elif token.is_op("++") or token.is_op("--"):
                self._next()
                expr = ast.IncDec(token.text, expr, False, token.loc)
            elif token.is_op("("):
                if (isinstance(expr, ast.Unary) and expr.op == "*"
                        and isinstance(expr.operand, ast.Name)):
                    # ``(*fp)(args)`` is the same call as ``fp(args)``.
                    expr = expr.operand
                if not isinstance(expr, ast.Name):
                    raise UnsupportedFeatureError(
                        "calls through arbitrary expressions are not "
                        "supported (only named function pointers)", token.loc)
                self._next()
                args: list[ast.Expr] = []
                if not self._peek().is_op(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if self._accept_op(","):
                            continue
                        break
                self._expect_op(")")
                expr = ast.Call(expr.ident, args, token.loc)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._next()
        if token.kind == "int":
            return ast.IntLit(token.value, False, token.loc)
        if token.kind == "uint":
            return ast.IntLit(token.value, True, token.loc)
        if token.kind == "float":
            return ast.FloatLit(token.value, token.loc)
        if token.kind == "char":
            return ast.CharLit(token.value, token.loc)
        if token.kind == "id":
            if token.text in self._enum_constants:
                return ast.IntLit(self._enum_constants[token.text], False,
                                  token.loc)
            return ast.Name(token.text, token.loc)
        if token.is_op("("):
            expr = self.parse_expr()
            self._expect_op(")")
            return expr
        raise ParseError(f"unexpected token {token.text!r}", token.loc)


# ---------------------------------------------------------------------------
# Constant folding for array sizes and case labels
# ---------------------------------------------------------------------------


def _mentions_function_pointer(ctype: ct.CType) -> bool:
    if isinstance(ctype, ct.TPointer):
        return isinstance(ctype.target, ct.TFunction) or \
            _mentions_function_pointer(ctype.target)
    if isinstance(ctype, ct.TArray):
        return _mentions_function_pointer(ctype.element)
    return False


def _fold_const(expr: ast.Expr) -> Optional[int]:
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.CharLit):
        return expr.value
    if isinstance(expr, ast.Unary):
        inner = _fold_const(expr.operand)
        if inner is None:
            return None
        if expr.op == "-":
            return -inner
        if expr.op == "+":
            return inner
        if expr.op == "~":
            return ~inner
        if expr.op == "!":
            return 0 if inner else 1
        return None
    if isinstance(expr, ast.Binary):
        left = _fold_const(expr.left)
        right = _fold_const(expr.right)
        if left is None or right is None:
            return None
        try:
            return {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: left // right if right else None,
                "%": lambda: left % right if right else None,
                "<<": lambda: left << right,
                ">>": lambda: left >> right,
                "&": lambda: left & right,
                "|": lambda: left | right,
                "^": lambda: left ^ right,
                "==": lambda: int(left == right),
                "!=": lambda: int(left != right),
                "<": lambda: int(left < right),
                "<=": lambda: int(left <= right),
                ">": lambda: int(left > right),
                ">=": lambda: int(left >= right),
            }[expr.op]()
        except KeyError:
            return None
    return None
