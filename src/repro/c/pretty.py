"""Pretty-printer for the parsed (untyped) C AST.

Prints a program back to compilable C source.  Used by the round-trip
property tests (``parse(pretty(parse(src)))`` must compile to the same
behavior) and by debugging tools.  Expressions are conservatively
parenthesized, so the output is verbose but unambiguous; typedefs are
resolved away by the parser, so the printer emits underlying types.

Must be applied to a *freshly parsed* AST: the type checker alpha-renames
locals with ``$`` suffixes that are not valid C identifiers.
"""

from __future__ import annotations

from repro.c import ast
from repro.c import types as ct


def pretty_program(program: ast.Program) -> str:
    parts: list[str] = []
    for struct in program.structs.values():
        parts.append(_struct_def(struct))
    for extern in program.externs:
        assert isinstance(extern.ftype, ct.TFunction)
        params = ", ".join(_declare(p, f"p{i}")
                           for i, p in enumerate(extern.ftype.params)) or "void"
        parts.append(f"{_declare(extern.ftype.result, extern.name)}"
                     f"({params});")
    for decl in program.globals:
        init = f" = {_init(decl.init)}" if decl.init is not None else ""
        parts.append(f"{_declare(decl.ctype, decl.name)}{init};")
    for function in program.functions:
        parts.append(_function(function))
    return "\n\n".join(parts) + "\n"


def _struct_def(struct: ct.TStruct) -> str:
    fields = "\n".join(f"    {_declare(f.ctype, f.name)};"
                       for f in struct.fields)
    return f"struct {struct.name} {{\n{fields}\n}};"


def _declare(ctype: ct.CType, name: str) -> str:
    """C declarator syntax: arrays wrap the name, pointers prefix it,
    function pointers parenthesize it."""
    if isinstance(ctype, ct.TPointer) \
            and isinstance(ctype.target, ct.TFunction):
        fn = ctype.target
        params = ", ".join(_declare(p, "").rstrip()
                           for p in fn.params) or "void"
        return f"{_declare(fn.result, f'(*{name})')}({params})"
    if isinstance(ctype, ct.TArray):
        dims = ""
        base = ctype
        while isinstance(base, ct.TArray):
            dims += f"[{base.length}]"
            base = base.element
        return f"{_base_type(base)} {name}{dims}"
    return f"{_base_type(ctype)} {name}"


def _base_type(ctype: ct.CType) -> str:
    if isinstance(ctype, ct.TPointer):
        return f"{_base_type(ctype.target)} *"
    if isinstance(ctype, ct.TStruct):
        return f"struct {ctype.name}"
    return str(ctype)


def _function(function: ast.FunctionDef) -> str:
    params = ", ".join(_declare(p.ctype, p.name)
                       for p in function.params) or "void"
    header = f"{_declare(function.result, function.name)}({params})"
    body = _stmt(function.body, 0)
    return f"{header} {body}"


def _init(init: ast.Initializer) -> str:
    if isinstance(init, ast.InitScalar):
        return _expr(init.expr)
    assert isinstance(init, ast.InitList)
    return "{" + ", ".join(_init(i) for i in init.items) + "}"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


def _stmt(stmt: ast.Stmt, depth: int) -> str:
    pad = "    " * depth
    if isinstance(stmt, ast.SBlock):
        inner = "\n".join(_line(child, depth + 1) for child in stmt.body)
        return "{\n" + inner + ("\n" if stmt.body else "") + pad + "}"
    return _line(stmt, depth).lstrip()


def _line(stmt: ast.Stmt, depth: int) -> str:
    pad = "    " * depth
    if isinstance(stmt, ast.SSkip):
        return f"{pad};"
    if isinstance(stmt, ast.SExpr):
        return f"{pad}{_expr(stmt.expr)};"
    if isinstance(stmt, ast.SDecl):
        init = f" = {_init(stmt.init)}" if stmt.init is not None else ""
        return f"{pad}{_declare(stmt.ctype, stmt.name)}{init};"
    if isinstance(stmt, ast.SDeclGroup):
        return "\n".join(_line(d, depth) for d in stmt.decls)
    if isinstance(stmt, ast.SBlock):
        return f"{pad}{_stmt(stmt, depth)}"
    if isinstance(stmt, ast.SIf):
        out = f"{pad}if ({_expr(stmt.cond)}) {_block_of(stmt.then, depth)}"
        if stmt.otherwise is not None:
            out += f" else {_block_of(stmt.otherwise, depth)}"
        return out
    if isinstance(stmt, ast.SWhile):
        return (f"{pad}while ({_expr(stmt.cond)}) "
                f"{_block_of(stmt.body, depth)}")
    if isinstance(stmt, ast.SDoWhile):
        return (f"{pad}do {_block_of(stmt.body, depth)} "
                f"while ({_expr(stmt.cond)});")
    if isinstance(stmt, ast.SFor):
        init = ""
        if isinstance(stmt.init, ast.SExpr):
            init = _expr(stmt.init.expr)
        elif isinstance(stmt.init, ast.SDecl):
            init = _line(stmt.init, 0).rstrip(";")
        elif isinstance(stmt.init, ast.SDeclGroup):
            decls = stmt.init.decls
            first = _line(decls[0], 0).rstrip(";")
            rest = ", ".join(
                f"{d.name}" + (f" = {_init(d.init)}" if d.init else "")
                for d in decls[1:])
            init = f"{first}, {rest}" if rest else first
        cond = _expr(stmt.cond) if stmt.cond is not None else ""
        step = _expr(stmt.step) if stmt.step is not None else ""
        return (f"{pad}for ({init}; {cond}; {step}) "
                f"{_block_of(stmt.body, depth)}")
    if isinstance(stmt, ast.SSwitch):
        lines = [f"{pad}switch ({_expr(stmt.scrutinee)}) {{"]
        for value, stmts in stmt.cases:
            label = "default" if value is None else f"case {value}"
            lines.append(f"{pad}{label}:")
            for child in stmts:
                lines.append(_line(child, depth + 1))
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    if isinstance(stmt, ast.SBreak):
        return f"{pad}break;"
    if isinstance(stmt, ast.SContinue):
        return f"{pad}continue;"
    if isinstance(stmt, ast.SReturn):
        if stmt.value is None:
            return f"{pad}return;"
        return f"{pad}return {_expr(stmt.value)};"
    raise TypeError(f"unknown statement {type(stmt).__name__}")


def _block_of(stmt: ast.Stmt, depth: int) -> str:
    """Render a sub-statement as a braced block (keeps nesting sane)."""
    if isinstance(stmt, ast.SBlock):
        return _stmt(stmt, depth)
    return _stmt(ast.SBlock([stmt]), depth)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def _expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.IntLit):
        suffix = "u" if expr.unsigned_suffix else ""
        return f"{expr.value}{suffix}"
    if isinstance(expr, ast.FloatLit):
        return repr(expr.value)
    if isinstance(expr, ast.CharLit):
        return str(expr.value)
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.Unary):
        return f"({expr.op}{_expr(expr.operand)})"
    if isinstance(expr, ast.IncDec):
        if expr.is_prefix:
            return f"({expr.op}{_expr(expr.operand)})"
        return f"({_expr(expr.operand)}{expr.op})"
    if isinstance(expr, ast.Binary):
        return f"({_expr(expr.left)} {expr.op} {_expr(expr.right)})"
    if isinstance(expr, ast.Logical):
        return f"({_expr(expr.left)} {expr.op} {_expr(expr.right)})"
    if isinstance(expr, ast.Conditional):
        return (f"({_expr(expr.cond)} ? {_expr(expr.then)} : "
                f"{_expr(expr.otherwise)})")
    if isinstance(expr, ast.Assign):
        return f"({_expr(expr.target)} {expr.op} {_expr(expr.value)})"
    if isinstance(expr, ast.Call):
        args = ", ".join(_expr(a) for a in expr.args)
        return f"{expr.callee}({args})"
    if isinstance(expr, ast.Index):
        return f"{_expr(expr.base)}[{_expr(expr.index)}]"
    if isinstance(expr, ast.Member):
        op = "->" if expr.through_pointer else "."
        return f"{_expr(expr.base)}{op}{expr.field}"
    if isinstance(expr, ast.Cast):
        return f"(({_base_type(expr.target_type)}){_expr(expr.operand)})"
    if isinstance(expr, ast.SizeOf):
        if expr.arg_type is not None:
            return f"sizeof({_base_type(expr.arg_type)})"
        return f"sizeof({_expr(expr.arg_expr)})"
    if isinstance(expr, ast.Comma):
        return f"({_expr(expr.left)}, {_expr(expr.right)})"
    raise TypeError(f"unknown expression {type(expr).__name__}")
