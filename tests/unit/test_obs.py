"""Unit tests for ``repro.obs``: spans, metrics, merge, disabled no-op."""

import json

import pytest

from repro import obs
from repro.obs.export import (chrome_trace_document, metrics_document,
                              spans_jsonl_lines, validate_metrics_document,
                              validate_span_record, validate_spans_jsonl)
from repro.obs.metrics import (Histogram, MetricsRegistry, derive_rates,
                               empty_snapshot, merge_snapshots)
from repro.obs.spans import NULL_SPAN, SpanRecorder


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with a disabled, empty facade."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestSpanRecorder:
    def test_nesting_parents(self):
        recorder = SpanRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        inner, outer = recorder.records
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None

    def test_durations_and_attrs(self):
        recorder = SpanRecorder()
        with recorder.span("work", {"phase": "test"}) as sp:
            sp.set(items=3)
        record = recorder.records[0]
        assert record["dur"] >= 0 and record["cpu"] >= 0
        assert record["attrs"] == {"phase": "test", "items": 3}
        assert record["ts"] > 0

    def test_exception_marks_error_attr(self):
        recorder = SpanRecorder()
        with pytest.raises(ValueError):
            with recorder.span("doomed"):
                raise ValueError("boom")
        assert recorder.records[0]["attrs"]["error"] == "ValueError"

    def test_drain_and_adopt(self):
        recorder = SpanRecorder()
        with recorder.span("a"):
            pass
        shipped = recorder.drain()
        assert recorder.records == [] and len(shipped) == 1
        other = SpanRecorder()
        other.adopt(shipped)
        assert other.records == shipped

    def test_sibling_spans_share_parent(self):
        recorder = SpanRecorder()
        with recorder.span("parent"):
            with recorder.span("first"):
                pass
            with recorder.span("second"):
                pass
        first, second, parent = recorder.records
        assert first["parent"] == second["parent"] == parent["id"]


class TestHistogram:
    def test_bucket_placement(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 5.0):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1]   # <=1, <=2, overflow
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(8.0)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))


class TestRegistryMerge:
    def test_counters_add_gauges_max(self):
        registry = MetricsRegistry()
        registry.add("seeds", 2)
        registry.set_gauge("heartbeat", 10.0)
        registry.merge({"counters": {"seeds": 3, "new": 1},
                        "gauges": {"heartbeat": 7.0, "other": 1.0}})
        snap = registry.snapshot()
        assert snap["counters"] == {"seeds": 5, "new": 1}
        assert snap["gauges"] == {"heartbeat": 10.0, "other": 1.0}

    def test_histograms_merge_bucketwise(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.observe("lat", 0.002, buckets=(0.001, 0.01))
        b.observe("lat", 0.5, buckets=(0.001, 0.01))
        a.merge(b.snapshot())
        merged = a.snapshot()["histograms"]["lat"]
        assert merged["counts"] == [0, 1, 1]
        assert merged["count"] == 2

    def test_histogram_bucket_mismatch_rejected(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.observe("lat", 1.0, buckets=(1.0, 2.0))
        b.observe("lat", 1.0, buckets=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_drain_resets(self):
        registry = MetricsRegistry()
        registry.add("x")
        delta = registry.drain()
        assert delta["counters"] == {"x": 1}
        assert registry.snapshot() == empty_snapshot()

    def test_merge_snapshots_matches_registry_merge(self):
        """The plain-dict fold and the registry fold agree."""
        deltas = [{"counters": {"s": 1}, "gauges": {"g": float(i)},
                   "histograms": {"h": {"buckets": [1.0], "counts": [1, 0],
                                        "sum": 0.5, "count": 1}}}
                  for i in range(3)]
        plain = empty_snapshot()
        registry = MetricsRegistry()
        for delta in deltas:
            merge_snapshots(plain, delta)
            registry.merge(delta)
        assert plain == registry.snapshot()


class TestDerivedRates:
    def test_steps_per_second(self):
        derived = derive_rates({"counters": {"interp.asm.steps": 1000,
                                             "interp.asm.seconds": 2.0}})
        assert derived["interp.asm.steps_per_s"] == 500.0

    def test_hit_rate_from_counters_and_gauges(self):
        derived = derive_rates({"counters": {"decode.asm.cache.hits": 3,
                                             "decode.asm.cache.misses": 1},
                                "gauges": {"bexpr.nf.hits": 9,
                                           "bexpr.nf.misses": 1}})
        assert derived["decode.asm.cache.hit_rate"] == 0.75
        assert derived["bexpr.nf.hit_rate"] == 0.9

    def test_no_rate_without_denominator(self):
        assert derive_rates({"counters": {"x.steps": 5}}) == {}
        assert derive_rates({"counters": {"x.hits": 5}}) == {}


class TestDisabledFacade:
    def test_span_is_the_shared_null_span(self):
        assert obs.span("anything", key=1) is NULL_SPAN
        with obs.span("anything") as sp:
            sp.set(ignored=True)
        assert obs.span_records() == []
        assert NULL_SPAN.attrs == {}

    def test_metrics_are_noops(self):
        obs.add("c", 5)
        obs.set_gauge("g", 1.0)
        obs.observe("h", 0.1)
        assert obs.registry.snapshot() == empty_snapshot()

    def test_enable_records(self):
        obs.enable()
        with obs.span("region", tag="x"):
            obs.add("counter")
        assert obs.span_records()[0]["name"] == "region"
        assert obs.registry.snapshot()["counters"] == {"counter": 1}

    def test_traced_decorator(self):
        @obs.traced("fn.region")
        def double(x):
            return 2 * x

        assert double(3) == 6              # disabled: no record
        assert obs.span_records() == []
        obs.enable()
        assert double(4) == 8
        assert obs.span_records()[0]["name"] == "fn.region"


class TestExportDocuments:
    def _records(self):
        recorder = SpanRecorder()
        with recorder.span("outer", {"k": "v"}):
            with recorder.span("inner"):
                pass
        return recorder.records

    def test_spans_jsonl_roundtrip(self):
        lines = list(spans_jsonl_lines(self._records()))
        assert validate_spans_jsonl(lines) == 2
        meta = json.loads(lines[0])
        assert meta["type"] == "meta"

    def test_span_record_validation_catches_drift(self):
        record = dict(self._records()[0], type="span")
        validate_span_record(record)
        broken = dict(record)
        del broken["dur"]
        with pytest.raises(ValueError):
            validate_span_record(broken)
        with pytest.raises(ValueError):
            validate_span_record(dict(record, attrs={"bad": [1, 2]}))

    def test_chrome_trace_document(self):
        document = chrome_trace_document(self._records())
        assert {e["name"] for e in document["traceEvents"]} \
            == {"outer", "inner"}
        for event in document["traceEvents"]:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0

    def test_metrics_document_validates(self):
        registry = MetricsRegistry()
        registry.add("interp.asm.steps", 100)
        registry.add("interp.asm.seconds", 0.5)
        registry.observe("lat", 0.01)
        document = metrics_document(registry.snapshot())
        validate_metrics_document(document)
        assert document["derived"]["interp.asm.steps_per_s"] == 200.0
        with pytest.raises(ValueError):
            validate_metrics_document(dict(document, schema="nope"))
