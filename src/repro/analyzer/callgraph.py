"""Call graphs of Clight programs, with recursion detection.

The automatic analyzer needs functions in topological order of the call
graph and must reject recursion (paper §5).  Strongly connected components
are computed with Tarjan's algorithm so that the error message can name
the whole recursive cycle, not just one function.
"""

from __future__ import annotations

from typing import Iterator

from repro.clight import ast as cl
from repro.errors import AnalysisError


class CallGraph:
    def __init__(self, program: cl.Program) -> None:
        self.program = program
        self.calls: dict[str, set[str]] = {}
        self.external_calls: dict[str, set[str]] = {}
        for name, function in program.functions.items():
            internal: set[str] = set()
            external: set[str] = set()
            for callee in _callees(function.body):
                if program.is_internal(callee):
                    internal.add(callee)
                else:
                    external.add(callee)
            self.calls[name] = internal
            self.external_calls[name] = external

    def callees(self, name: str) -> set[str]:
        return self.calls[name]

    def sccs(self) -> list[list[str]]:
        """Strongly connected components in reverse topological order."""
        index_counter = [0]
        stack: list[str] = []
        lowlink: dict[str, int] = {}
        index: dict[str, int] = {}
        on_stack: set[str] = set()
        result: list[list[str]] = []

        def strongconnect(node: str) -> None:
            index[node] = index_counter[0]
            lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for succ in sorted(self.calls[node]):
                if succ not in index:
                    strongconnect(succ)
                    lowlink[node] = min(lowlink[node], lowlink[succ])
                elif succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 4 * len(self.calls) + 100))
        try:
            for node in sorted(self.calls):
                if node not in index:
                    strongconnect(node)
        finally:
            sys.setrecursionlimit(old_limit)
        return result

    def recursive_components(self) -> list[list[str]]:
        """SCCs that contain recursion (size > 1, or a self loop)."""
        out = []
        for component in self.sccs():
            if len(component) > 1:
                out.append(sorted(component))
            elif component[0] in self.calls[component[0]]:
                out.append(component)
        return out

    def topological_order(self) -> list[str]:
        """Callees before callers; raises on recursion."""
        recursive = self.recursive_components()
        if recursive:
            pretty = "; ".join(" <-> ".join(c) for c in recursive)
            raise AnalysisError(
                f"the automatic analyzer does not support recursion: {pretty}")
        return [component[0] for component in self.sccs()]


def build_call_graph(program: cl.Program) -> CallGraph:
    return CallGraph(program)


def _callees(stmt: cl.Stmt) -> Iterator[str]:
    if isinstance(stmt, cl.SCall):
        yield stmt.callee
    elif isinstance(stmt, cl.SSeq):
        yield from _callees(stmt.first)
        yield from _callees(stmt.second)
    elif isinstance(stmt, cl.SIf):
        yield from _callees(stmt.then)
        yield from _callees(stmt.otherwise)
    elif isinstance(stmt, cl.SLoop):
        yield from _callees(stmt.body)
        yield from _callees(stmt.post)
    elif isinstance(stmt, cl.SBlock):
        yield from _callees(stmt.body)
