"""A generic Kildall worklist solver for RTL dataflow problems.

Used by constant propagation (forward) and liveness (backward).  The
lattice is supplied by the client as a pair of callbacks; the solver only
needs a join and a transfer function, plus equality on facts.
"""

from __future__ import annotations

import heapq
from typing import Callable, Mapping, TypeVar

from repro.rtl import ast as rtl

Fact = TypeVar("Fact")


def _reverse_postorder(function: rtl.RTLFunction) -> dict[int, int]:
    """Node -> visit priority in reverse postorder from the entry.

    Processing a forward problem in RPO reaches a node only after (most
    of) its predecessors are stable, so loop bodies converge in a couple
    of sweeps instead of rippling one edge at a time.
    """
    graph = function.graph
    order: dict[int, int] = {}
    seen = {function.entry}
    # Iterative DFS with an explicit successor cursor (postorder).
    stack: list[tuple[int, iter]] = [(function.entry,
                                      iter(graph[function.entry].successors()))]
    post: list[int] = []
    while stack:
        node, successors = stack[-1]
        for succ in successors:
            if succ not in seen and succ in graph:
                seen.add(succ)
                stack.append((succ, iter(graph[succ].successors())))
                break
        else:
            post.append(node)
            stack.pop()
    for index, node in enumerate(reversed(post)):
        order[node] = index
    return order


def predecessors(graph: Mapping[int, rtl.Instr]) -> dict[int, list[int]]:
    preds: dict[int, list[int]] = {node: [] for node in graph}
    for node, instr in graph.items():
        for succ in instr.successors():
            preds.setdefault(succ, []).append(node)
    return preds


def solve_forward(function: rtl.RTLFunction, entry_fact: Fact,
                  join: Callable[[Fact, Fact], Fact],
                  transfer: Callable[[int, rtl.Instr, Fact], Fact],
                  equal: Callable[[Fact, Fact], bool],
                  merge: Callable[[Fact, Fact], bool] | None = None,
                  copy: Callable[[Fact], Fact] | None = None
                  ) -> dict[int, Fact]:
    """Facts *before* each node; unreachable nodes are absent.

    With only ``join``/``equal``, each merge builds a fresh fact and then
    compares it against the old one — two full traversals per edge.  A
    client whose facts are mutable can instead supply ``merge(old, new)``,
    which joins ``new`` into ``old`` *in place* and returns whether ``old``
    changed, plus ``copy`` to give the solver an owned fact at first
    reach (transfer results may alias other nodes' facts).  Both paths
    compute the same fixpoint; the fused one is what constant propagation
    uses on its hot dict-per-register lattice.
    """
    graph = function.graph
    facts: dict[int, Fact] = {function.entry: entry_fact}
    if merge is None:
        # Reference solver: plain LIFO worklist, allocate-and-compare.
        worklist = [function.entry]
        while worklist:
            node = worklist.pop()
            instr = graph[node]
            out = transfer(node, instr, facts[node])
            for succ in instr.successors():
                if succ not in facts:
                    facts[succ] = out
                    worklist.append(succ)
                else:
                    merged = join(facts[succ], out)
                    if not equal(merged, facts[succ]):
                        facts[succ] = merged
                        worklist.append(succ)
        return facts
    # Fused solver: in-place merge, deduplicated worklist drained in
    # reverse postorder so loop bodies stabilize in a few sweeps.
    order = _reverse_postorder(function)
    heap = [(order[function.entry], function.entry)]
    pending = {function.entry}
    while heap:
        _, node = heapq.heappop(heap)
        pending.discard(node)
        instr = graph[node]
        out = transfer(node, instr, facts[node])
        for succ in instr.successors():
            if succ not in facts:
                facts[succ] = copy(out)
            elif not merge(facts[succ], out):
                continue
            if succ not in pending:
                pending.add(succ)
                heapq.heappush(heap, (order[succ], succ))
    return facts


def solve_backward(function: rtl.RTLFunction, exit_fact: Fact,
                   join: Callable[[Fact, Fact], Fact],
                   transfer: Callable[[int, rtl.Instr, Fact], Fact],
                   equal: Callable[[Fact, Fact], bool],
                   merge: Callable[[Fact, Fact], bool] | None = None,
                   copy: Callable[[Fact], Fact] | None = None
                   ) -> dict[int, Fact]:
    """Facts *after* each node (the join over successors' before-facts).

    ``merge``/``copy`` select the fused solver, as in
    :func:`solve_forward`: in-place joins and a deduplicated worklist
    drained in postorder (the convergent direction backward).
    """
    graph = function.graph
    preds = predecessors(graph)
    if merge is None:
        after: dict[int, Fact] = {node: exit_fact for node in graph}
        before: dict[int, Fact] = {}
        worklist = list(graph)
        while worklist:
            node = worklist.pop()
            instr = graph[node]
            new_before = transfer(node, instr, after[node])
            if node in before and equal(new_before, before[node]):
                continue
            before[node] = new_before
            for pred in preds.get(node, ()):
                merged = join(after[pred], new_before)
                if not equal(merged, after[pred]):
                    after[pred] = merged
                    worklist.append(pred)
        return after
    order = _reverse_postorder(function)
    fallback = len(order)
    after = {node: copy(exit_fact) for node in graph}
    before = {}
    heap = [(-order.get(node, fallback), node) for node in graph]
    heapq.heapify(heap)
    pending = set(graph)
    while heap:
        _priority, node = heapq.heappop(heap)
        if node not in pending:
            continue
        pending.discard(node)
        instr = graph[node]
        new_before = transfer(node, instr, after[node])
        if node in before and equal(new_before, before[node]):
            continue
        before[node] = new_before
        for pred in preds.get(node, ()):
            if merge(after[pred], new_before) and pred not in pending:
                pending.add(pred)
                heapq.heappush(heap, (-order.get(pred, fallback), pred))
    return after
