"""Exception hierarchy shared by every subsystem of the reproduction.

The pipeline distinguishes *static* errors (raised while parsing, type
checking, lowering, or analyzing a program) from *dynamic* errors (raised
while one of the interpreters executes a program).  Dynamic errors
correspond to the paper's "going wrong" behaviors: the soundness statements
only apply to programs that do not go wrong, so the interpreters surface
every wrong behavior as a distinct exception instead of silently recovering.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


# ---------------------------------------------------------------------------
# Static (compile-time) errors
# ---------------------------------------------------------------------------


class SourceLocation:
    """A position in a C source file, carried by front-end errors."""

    __slots__ = ("filename", "line", "column")

    def __init__(self, filename: str, line: int, column: int) -> None:
        self.filename = filename
        self.line = line
        self.column = column

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    def __repr__(self) -> str:
        return f"SourceLocation({self.filename!r}, {self.line}, {self.column})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourceLocation):
            return NotImplemented
        return (self.filename, self.line, self.column) == (
            other.filename,
            other.line,
            other.column,
        )


class StaticError(ReproError):
    """A compile-time error, optionally carrying a source location."""

    def __init__(self, message: str, loc: SourceLocation | None = None) -> None:
        self.loc = loc
        if loc is not None:
            message = f"{loc}: {message}"
        super().__init__(message)


class LexError(StaticError):
    """The lexer met a character sequence that is not a token."""


class ParseError(StaticError):
    """The parser met a token sequence outside the supported C subset."""


class TypeError_(StaticError):
    """The type checker rejected the program.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class UnsupportedFeatureError(StaticError):
    """The program uses a C feature outside the supported subset.

    Mirrors the paper's explicit exclusions: ``goto``, variable-length
    arrays, and ``alloca``.  Function pointers are supported in a
    restricted fragment (scalar locals and parameters, resolved to finite
    candidate sets by :mod:`repro.analyzer.values`); uses outside that
    fragment raise this error.
    """


class LoweringError(ReproError):
    """An internal invariant was violated during a compiler pass."""


class AnalysisError(ReproError):
    """The automatic stack analyzer cannot bound the program.

    Raised for recursion patterns outside the structural fragment the
    ranking-function inference handles, and for function-pointer call
    sites whose candidate set the value analysis cannot resolve.

    ``sccs`` optionally carries the offending strongly connected
    components of the call graph as structured data (a list of sorted
    name lists), so callers can dispatch on *which* functions were
    recursive instead of re-running SCC detection or parsing the message.
    """

    def __init__(self, message: str,
                 sccs: "list[list[str]] | None" = None) -> None:
        super().__init__(message)
        self.sccs = list(sccs) if sccs is not None else None


class DerivationError(ReproError):
    """A quantitative-logic derivation failed to check.

    This is the executable analogue of a Coq proof script failing: some
    rule application in the derivation tree does not satisfy its side
    conditions.
    """


# ---------------------------------------------------------------------------
# Dynamic (run-time) errors: the "goes wrong" behaviors
# ---------------------------------------------------------------------------


class DynamicError(ReproError):
    """Base class for wrong behaviors of the interpreters."""


class MemoryError_(DynamicError):
    """An invalid memory access (bad block, bad offset, freed block)."""


class UndefinedBehaviorError(DynamicError):
    """Evaluation reached an undefined operation (e.g. division by zero)."""


class StackOverflowError_(DynamicError):
    """ASMsz only: the program needed more stack than was preallocated.

    The whole point of the paper is that a verified bound rules this out
    (Theorem 1), so the finite-stack machine must be able to produce it.
    """

    def __init__(self, message: str, needed: int | None = None, available: int | None = None) -> None:
        super().__init__(message)
        self.needed = needed
        self.available = available


class FuelExhaustedError(DynamicError):
    """An interpreter ran out of fuel (step budget) before terminating.

    Used by tests and benchmarks to cut off divergent executions; it is a
    harness artifact, not a wrong behavior of the program.
    """
