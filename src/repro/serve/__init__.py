"""``repro.serve``: certified bounds as a service.

The paper's pipeline — C source in, verified stack bound plus checkable
certificate out — is a pure function of ``(source text, compiler
options)``, which makes it an ideal cacheable service.  This package is
that service, three layers deep:

* :mod:`repro.serve.store` — a content-addressed result store at every
  pipeline stage boundary, keyed by ``sha256(source) ×
  CompilerOptions.key()``, with integrity-checked entries and pin-aware
  LRU eviction;
* :mod:`repro.serve.pipeline` — ``driver.py``'s composable stages
  (frontend → backend → analyze → check) run through the store, so
  repeat requests hit at every stage and near-repeats (same source,
  different backend flags) are partial hits;
* :mod:`repro.serve.pool` / :mod:`repro.serve.server` — a persistent
  worker pool (campaign warmup + heartbeat telemetry) behind a
  zero-dependency HTTP daemon with bounded-queue backpressure,
  ``/metrics`` and ``/healthz``.

CLI: ``python -m repro serve``; API + schema: ``docs/SERVING.md``.
"""

from repro.serve.pipeline import (RESPONSE_SCHEMA, STAGES, ServeRequest,
                                  error_response, options_from_json,
                                  reset_warm, run_pipeline,
                                  validate_response, validate_response_text)
from repro.serve.pool import PoolSaturated, ServePool
from repro.serve.server import (BATCH_SCHEMA, DEFAULT_STORE_DIR,
                                MAX_BATCH_ITEMS, BoundsServer, ServeConfig,
                                run_server)
from repro.serve.store import (DEFAULT_MAX_BYTES, STORE_SCHEMA, ResultStore,
                               ServeError, options_digest, source_digest,
                               stage_key)

__all__ = [
    "BATCH_SCHEMA", "BoundsServer", "DEFAULT_MAX_BYTES",
    "DEFAULT_STORE_DIR", "MAX_BATCH_ITEMS", "PoolSaturated",
    "RESPONSE_SCHEMA", "ResultStore", "STAGES", "STORE_SCHEMA",
    "ServeConfig", "ServeError", "ServePool", "ServeRequest",
    "error_response", "options_digest", "options_from_json", "reset_warm",
    "run_pipeline", "run_server", "source_digest", "stage_key",
    "validate_response", "validate_response_text",
]
