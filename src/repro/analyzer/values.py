"""Function-pointer value analysis: finite candidate sets for indirect calls.

The automatic stack analyzer needs a *static* call graph, but C programs
dispatch through function pointers.  Following the CompCert value-analysis
tradition (Blazy et al., "Formal verification of a C value analysis based
on abstract interpretation"), this module resolves every indirect call to
a finite set of candidate targets, so the certified analyzer can price an
indirect call as the *maximum* over its possible callees instead of
rejecting the program.

The abstract domain is deliberately small — a set of function names per
function-pointer *cell* — because the type checker already confines
function pointers to scalar locals and parameters (no globals, no arrays,
no struct members, no address-taken pointers; see
:mod:`repro.c.typecheck`).  Under that discipline every write to a
function pointer is syntactically visible, so a flow-insensitive
constraint system over

    cell ::= (function, local)        a local/parameter fp variable

is sound: ``solution(cell)`` over-approximates every value the variable
can hold at runtime.  Constraints come from three places:

* declarations with initializers       ``int (*f)(int) = add;``
* assignments                          ``f = cond ? add : sub;``
* argument passing at call sites       ``apply(add, 3)`` — including
  arguments of *indirect* calls, whose target set is itself part of the
  fixpoint.

The solver then annotates every indirect ``Call`` node with its sorted
``fp_candidates`` and assigns a small integer *function id* (fid) to each
function whose address is taken.  The Clight lowering
(:mod:`repro.clight.from_c`) materializes function-pointer values as
these fids and compiles each indirect call into a fid-comparison chain
over the candidates — after which the call graph is direct again and the
quantitative logic's ``DIf``/``DCall`` rules price the dispatch as the
max over targets, with an ordinary checkable derivation.

``_FAULT`` is a test-only mutation knob (see :mod:`repro.testing.faults`):
``"widen"`` adds every address-taken function to every candidate set,
which the differential oracle catches because the devirtualized dispatch
chain no longer matches the manual bound.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.c import ast as c
from repro.c import types as ct
from repro.c.typecheck import ProgramEnv
from repro.errors import AnalysisError

# Test-only fault injection: None | "widen" (see module docstring).
_FAULT: Optional[str] = None

Cell = tuple[str, str]  # (function name, unique local/param name)


def _is_fp(ctype: Optional[ct.CType]) -> bool:
    return isinstance(ctype, ct.TPointer) and \
        isinstance(ctype.target, ct.TFunction)


class FPResolution:
    """Result of the analysis: fid numbering plus per-call annotations
    (the candidate sets live on the ``Call`` nodes themselves)."""

    def __init__(self, fids: dict[str, int], sites: int) -> None:
        self.fids = fids
        self.sites = sites

    @property
    def any_indirect(self) -> bool:
        return self.sites > 0

    def fid(self, name: str) -> int:
        return self.fids[name]


class _Flow:
    """A flow value: a set of known targets plus a set of cell references."""

    __slots__ = ("consts", "cells")

    def __init__(self) -> None:
        self.consts: set[str] = set()
        self.cells: set[Cell] = set()

    def union(self, other: "_Flow") -> "_Flow":
        self.consts |= other.consts
        self.cells |= other.cells
        return self


class _Resolver:
    def __init__(self, program: c.Program, env: ProgramEnv) -> None:
        self.program = program
        self.env = env
        self.defs = {fn.name: fn for fn in program.functions}
        # cell -> incoming flows (constraint right-hand sides)
        self.inflows: dict[Cell, _Flow] = {}
        # indirect call sites: (caller name, Call node, callee cell)
        self.sites: list[tuple[str, c.Call, Cell]] = []
        self.designators: set[str] = set()

    # -- constraint collection ------------------------------------------------

    def collect(self) -> None:
        for fn in self.program.functions:
            for node in _walk(fn.body):
                if isinstance(node, c.SDecl) and _is_fp(node.ctype) \
                        and isinstance(node.init, c.InitScalar):
                    self._flow_into((fn.name, node.name), node.init.expr, fn)
                elif isinstance(node, c.Assign) \
                        and isinstance(node.target, c.Name) \
                        and _is_fp(node.target.ty):
                    self._flow_into((fn.name, node.target.ident),
                                    node.value, fn)
                elif isinstance(node, c.Call):
                    self._collect_call(fn, node)

    def _collect_call(self, fn: c.FunctionDef, call: c.Call) -> None:
        if call.indirect:
            signature = call.signature
            cell = (fn.name, call.callee)
            self.sites.append((fn.name, call, cell))
            self.inflows.setdefault(cell, _Flow())
        elif self.env.is_internal(call.callee):
            signature = self.env.function_type(call.callee)
        else:  # external callee: its signature cannot mention fp types
            for arg in call.args:
                if _is_fp(arg.ty):
                    raise AnalysisError(
                        "function pointers cannot be passed to external "
                        f"function {call.callee!r}")
            return
        for index, param in enumerate(signature.params):
            if not _is_fp(param):
                continue
            if call.indirect:
                # The argument flows into this parameter of *every*
                # candidate — resolved during the fixpoint below.
                continue
            target_fn = self.defs[call.callee]
            target_cell = (call.callee, target_fn.params[index].name)
            self._flow_into(target_cell, call.args[index], fn)

    def _flow_into(self, cell: Cell, expr: c.Expr,
                   fn: c.FunctionDef) -> None:
        flow = self.inflows.setdefault(cell, _Flow())
        flow.union(self._eval(expr, fn))

    def _eval(self, expr: c.Expr, fn: c.FunctionDef) -> _Flow:
        """Abstract evaluation of a function-pointer-typed expression."""
        flow = _Flow()
        if isinstance(expr, c.Name):
            if expr.binding == "function":
                self.designators.add(expr.ident)
                flow.consts.add(expr.ident)
                return flow
            if expr.binding == "local":
                flow.cells.add((fn.name, expr.ident))
                return flow
        if isinstance(expr, c.Unary) and expr.op == "&":
            return self._eval(expr.operand, fn)
        if isinstance(expr, c.Cast):
            return self._eval(expr.operand, fn)
        if isinstance(expr, c.Conditional):
            return self._eval(expr.then, fn).union(
                self._eval(expr.otherwise, fn))
        if isinstance(expr, c.Comma):
            return self._eval(expr.right, fn)
        if isinstance(expr, c.Assign) and expr.op == "=" \
                and isinstance(expr.target, c.Name):
            # ``g = (f = add)``: the assignment's value is its RHS.
            return self._eval(expr.value, fn)
        if isinstance(expr, c.IntLit) and expr.value == 0:
            return flow  # the null pointer contributes no targets
        raise AnalysisError(
            "unresolvable function-pointer expression "
            f"({type(expr).__name__}) in {fn.name!r}: the value analysis "
            "only tracks function names, fp variables, casts, "
            "conditionals and null")

    # -- fixpoint -------------------------------------------------------------

    def solve(self) -> dict[Cell, set[str]]:
        solution: dict[Cell, set[str]] = {cell: set() for cell in self.inflows}
        changed = True
        while changed:
            changed = False
            for cell, flow in self.inflows.items():
                value = set(flow.consts)
                for dep in flow.cells:
                    value |= solution.get(dep, set())
                if not value <= solution[cell]:
                    solution[cell] |= value
                    changed = True
            # Arguments of indirect calls flow into the fp parameters of
            # every *currently known* candidate of that call.
            for caller, call, cell in self.sites:
                signature = call.signature
                indices = [i for i, p in enumerate(signature.params)
                           if _is_fp(p)]
                if not indices:
                    continue
                for target in solution.get(cell, set()):
                    target_fn = self.defs[target]
                    for index in indices:
                        tcell = (target, target_fn.params[index].name)
                        flow = self.inflows.setdefault(tcell, _Flow())
                        solution.setdefault(tcell, set())
                        before = set(flow.consts), set(flow.cells)
                        flow.union(self._eval(call.args[index],
                                              self.defs[caller]))
                        if before != (flow.consts, flow.cells):
                            changed = True
        return solution

    # -- checking and annotation ----------------------------------------------

    def annotate(self, solution: dict[Cell, set[str]]) -> FPResolution:
        for cell, targets in solution.items():
            fname, local = cell
            declared = self._cell_signature(cell)
            for target in sorted(targets):
                actual = self.env.functions.get(target)
                if actual != declared.target:
                    raise AnalysisError(
                        f"function pointer {local!r} in {fname!r} has type "
                        f"{declared} but may hold {target!r} of type "
                        f"{actual}")
        order = {fn.name: index for index, fn in
                 enumerate(self.program.functions)}
        for caller, call, cell in self.sites:
            targets = solution.get(cell, set())
            if _FAULT == "widen":
                targets = targets | self.designators
            if not targets:
                raise AnalysisError(
                    f"indirect call in {caller!r} has no possible targets "
                    "(the function pointer can only be null here)")
            call.fp_candidates = sorted(targets, key=lambda t: order[t])
            obs.add("analyzer.values.candidates", len(targets))
        fids = {name: index + 1
                for index, name in enumerate(
                    fn.name for fn in self.program.functions
                    if fn.name in self.designators)}
        return FPResolution(fids, len(self.sites))

    def _cell_signature(self, cell: Cell) -> ct.TPointer:
        fname, local = cell
        fn = self.defs[fname]
        for param in fn.params:
            if param.name == local:
                return param.ctype  # type: ignore[return-value]
        ty = fn.locals_types[local]  # type: ignore[attr-defined]
        assert _is_fp(ty)
        return ty  # type: ignore[return-value]


def _walk(node: c.Node):
    """Yield every AST node reachable from ``node`` (statements,
    expressions and initializers), including ``node`` itself."""
    yield node
    for slot in _slots(type(node)):
        value = getattr(node, slot, None)
        if isinstance(value, c.Node):
            yield from _walk(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, c.Node):
                    yield from _walk(item)
                elif isinstance(item, tuple):  # switch cases: (value, stmts)
                    for sub in item:
                        if isinstance(sub, list):
                            for child in sub:
                                if isinstance(child, c.Node):
                                    yield from _walk(child)
                        elif isinstance(sub, c.Node):
                            yield from _walk(sub)


def _slots(cls) -> list[str]:
    slots: list[str] = []
    for klass in cls.__mro__:
        slots.extend(getattr(klass, "__slots__", ()))
    return slots


def resolve_function_pointers(program: c.Program,
                              env: ProgramEnv) -> FPResolution:
    """Resolve every indirect call in ``program`` to a finite candidate
    set (annotated on the ``Call`` nodes) and number the address-taken
    functions.  Raises :class:`AnalysisError` when a function-pointer
    value escapes the supported fragment."""
    with obs.span("analyzer.values.resolve") as sp:
        resolver = _Resolver(program, env)
        resolver.collect()
        if not resolver.sites and not resolver.designators:
            sp.set(sites=0)
            return FPResolution({}, 0)
        solution = resolver.solve()
        resolution = resolver.annotate(solution)
        obs.add("analyzer.values.sites", resolution.sites)
        obs.add("analyzer.values.designators", len(resolution.fids))
        sp.set(sites=resolution.sites, designators=len(resolution.fids))
        return resolution
