"""Unit tests for the C→Clight lowering and the Clight small-step machine."""

import pytest

from repro.c.parser import parse
from repro.c.typecheck import typecheck
from repro.clight import ast as cl
from repro.clight.from_c import clight_of_program
from repro.clight.semantics import run_call, run_program
from repro.events.trace import (CallEvent, Converges, Diverges, GoesWrong,
                                IOEvent, ReturnEvent, is_well_bracketed)
from repro.memory.values import VInt


def lower(source):
    program = parse(source)
    env = typecheck(program)
    return clight_of_program(program, env)


def run(source, fuel=1_000_000):
    output = []
    behavior = run_program(lower(source), fuel=fuel, output=output)
    return behavior, output


def expect_return(source, expected, fuel=1_000_000):
    behavior, _output = run(source, fuel)
    assert isinstance(behavior, Converges), behavior
    assert behavior.return_code == expected
    return behavior


class TestLoweringShapes:
    def test_scalars_become_temps(self):
        program = lower("int main() { int x = 1; return x; }")
        main = program.function("main")
        assert "x" in main.temps
        assert not main.stackvars

    def test_arrays_become_stackvars(self):
        program = lower("int main() { int a[4]; a[0] = 1; return a[0]; }")
        main = program.function("main")
        names = [v.name for v in main.stackvars]
        assert "a" in names
        assert main.stackvars[0].size == 16

    def test_address_taken_param_gets_copy(self):
        program = lower("int f(int a) { int *p = &a; return *p; } "
                        "int main() { return f(3); }")
        f = program.function("f")
        assert f.params == ["a$in"]
        assert [v.name for v in f.stackvars] == ["a"]

    @staticmethod
    def _flatten(stmt):
        if isinstance(stmt, cl.SSeq):
            yield from TestLoweringShapes._flatten(stmt.first)
            yield from TestLoweringShapes._flatten(stmt.second)
        else:
            yield stmt

    def test_while_becomes_loop_with_guard(self):
        program = lower("int main() { while (0) ; return 1; }")
        stmts = list(self._flatten(program.function("main").body))
        loops = [s for s in stmts if isinstance(s, cl.SLoop)]
        assert len(loops) == 1
        # The guard is compiled into the loop body as if/break.
        guard = next(iter(self._flatten(loops[0].body)))
        assert isinstance(guard, cl.SIf)
        assert isinstance(guard.otherwise, cl.SBreak)

    def test_switch_becomes_block(self):
        program = lower(
            "int main() { switch (2) { case 1: return 10; case 2: break; } "
            "return 20; }")
        stmts = list(self._flatten(program.function("main").body))
        assert any(isinstance(s, cl.SBlock) for s in stmts)

    def test_float_temps_recorded(self):
        program = lower("int main() { double d = 1.0; return d > 0.0; }")
        main = program.function("main")
        assert "d" in main.float_temps

    def test_global_image(self):
        program = lower("int g = 0x01020304; int main() { return g; }")
        (var,) = program.globals
        assert var.image == b"\x04\x03\x02\x01"

    def test_global_array_image_zero_fill(self):
        program = lower("int a[4] = {1}; int main() { return a[0]; }")
        (var,) = program.globals
        assert var.image == b"\x01\x00\x00\x00" + b"\x00" * 12


class TestExecution:
    def test_return_code(self):
        expect_return("int main() { return 41 + 1; }", 42)

    def test_arithmetic_and_locals(self):
        expect_return("int main() { int a = 6, b = 7; return a * b; }", 42)

    def test_while_loop(self):
        expect_return(
            "int main() { int i = 0, s = 0; "
            "while (i < 10) { s += i; i++; } return s; }", 45)

    def test_do_while_runs_once(self):
        expect_return("int main() { int n = 0; do n++; while (0); return n; }",
                      1)

    def test_for_with_continue(self):
        expect_return(
            "int main() { int s = 0; "
            "for (int i = 0; i < 10; i++) { if (i % 2) continue; s += i; } "
            "return s; }", 20)

    def test_break_leaves_innermost_loop(self):
        expect_return(
            "int main() { int n = 0; "
            "for (int i = 0; i < 3; i++) { "
            "  for (int j = 0; j < 100; j++) { if (j == 2) break; n++; } } "
            "return n; }", 6)

    def test_continue_in_switch_targets_loop(self):
        expect_return(
            "int main() { int s = 0; "
            "for (int i = 0; i < 4; i++) { "
            "  switch (i) { case 1: continue; case 2: s += 10; break; "
            "  default: s += 1; } } return s; }", 12)

    def test_switch_fallthrough(self):
        expect_return(
            "int main() { int s = 0; switch (1) { "
            "case 1: s += 1; case 2: s += 2; break; case 3: s += 4; } "
            "return s; }", 3)

    def test_switch_default_position(self):
        expect_return(
            "int main() { int s = 0; switch (9) { case 1: s = 1; break; "
            "default: s = 7; break; case 2: s = 2; break; } return s; }", 7)

    def test_logical_short_circuit(self):
        expect_return(
            "int g = 0; int bump() { g++; return 1; } "
            "int main() { 0 && bump(); 1 || bump(); return g; }", 0)

    def test_conditional_expression(self):
        expect_return("int main() { return 1 ? 5 : 9; }", 5)

    def test_incdec_semantics(self):
        expect_return(
            "int main() { int x = 5; int a = x++; int b = ++x; "
            "return a * 100 + b * 10 + x; }", 500 + 70 + 7)

    def test_compound_assignment_on_memory(self):
        expect_return(
            "int a[2]; int main() { a[1] = 10; a[1] += 5; a[1] <<= 1; "
            "return a[1]; }", 30)

    def test_char_narrowing(self):
        expect_return("int main() { char c = 300; return c; }", 44)

    def test_unsigned_char_narrowing(self):
        expect_return("int main() { unsigned char c = 300; return c; }", 44)

    def test_short_sign_extension(self):
        expect_return("int main() { short s = -2; return s == -2; }", 1)

    def test_pointer_walk(self):
        expect_return(
            "int a[5]; int main() { int *p = a; int s = 0; "
            "for (int i = 0; i < 5; i++) a[i] = i + 1; "
            "while (p < a + 5) { s += *p; p++; } return s; }", 15)

    def test_struct_fields(self):
        expect_return(
            "struct P { int x; double d; int y; }; struct P p; "
            "int main() { p.x = 3; p.y = 4; p.d = 0.5; "
            "return p.x + p.y + (p.d == 0.5); }", 8)

    def test_struct_pointer_access(self):
        expect_return(
            "struct P { int v; }; struct P p; "
            "int f(struct P *q) { q->v = 9; return q->v; } "
            "int main() { return f(&p); }", 9)

    def test_recursion(self):
        expect_return(
            "int f(int n) { if (n == 0) return 0; return n + f(n - 1); } "
            "int main() { return f(10); }", 55)

    def test_mutual_recursion(self):
        expect_return(
            "int odd(int n); "
            "int even(int n) { if (n == 0) return 1; return odd(n - 1); } "
            "int odd(int n) { if (n == 0) return 0; return even(n - 1); } "
            "int main() { return even(10) * 10 + odd(10); }", 10)

    def test_comma_operator(self):
        expect_return("int main() { int x = (1, 2, 3); return x; }", 3)

    def test_evaluation_order_left_to_right(self):
        expect_return(
            "int g = 0; int bump() { g++; return g; } "
            "int main() { int r = bump() * 10 + bump(); return r; }", 12)

    def test_malloc_builtin(self):
        expect_return(
            "int main() { int *p = malloc(8); p[0] = 4; p[1] = 5; "
            "return p[0] + p[1]; }", 9)

    def test_double_arithmetic(self):
        expect_return(
            "int main() { double a = 0.1, b = 0.2; "
            "return (a + b > 0.29) && (a + b < 0.31); }", 1)

    def test_float_condition(self):
        expect_return("int main() { double d = 0.5; if (d) return 1; "
                      "return 0; }", 1)

    def test_not_on_double(self):
        expect_return("int main() { double d = 0.0; return !d; }", 1)


class TestEventsAndTraces:
    def test_call_events_emitted(self):
        behavior, _ = run("int f() { return 1; } int main() { return f(); }")
        assert behavior.trace == (CallEvent("main"), CallEvent("f"),
                                  ReturnEvent("f"), ReturnEvent("main"))

    def test_io_events_carry_values(self):
        behavior, output = run("int main() { print_int(-7); return 0; }")
        assert IOEvent("print_int", [-7], 0) in behavior.trace
        assert output == [-7]

    def test_traces_well_bracketed(self):
        behavior, _ = run(
            "int f(int n) { if (n) return f(n - 1); return 0; } "
            "int main() { return f(4); }")
        assert is_well_bracketed(behavior.trace)

    def test_externals_emit_no_memory_events(self):
        behavior, _ = run("int main() { print_int(1); return 0; }")
        calls = [e for e in behavior.trace if isinstance(e, CallEvent)]
        assert calls == [CallEvent("main")]


class TestWrongAndDivergent:
    def test_division_by_zero_goes_wrong(self):
        behavior, _ = run("int z = 0; int main() { return 1 / z; }")
        assert isinstance(behavior, GoesWrong)

    def test_null_deref_goes_wrong(self):
        behavior, _ = run("int main() { int *p = 0; return *p; }")
        assert isinstance(behavior, GoesWrong)

    def test_dangling_stack_pointer_goes_wrong(self):
        behavior, _ = run(
            "int *f() { int x = 1; return &x; } "
            "int main() { int *p = f(); return *p; }")
        assert isinstance(behavior, GoesWrong)

    def test_out_of_bounds_goes_wrong(self):
        behavior, _ = run("int a[2]; int main() { return a[5]; }")
        assert isinstance(behavior, GoesWrong)

    def test_uninitialized_branch_goes_wrong(self):
        behavior, _ = run("int main() { int x; if (x) return 1; return 0; }")
        assert isinstance(behavior, GoesWrong)

    def test_infinite_loop_diverges(self):
        behavior, _ = run("int main() { while (1) ; return 0; }", fuel=5000)
        assert isinstance(behavior, Diverges)

    def test_infinite_recursion_diverges_with_trace(self):
        behavior, _ = run("int f() { return f(); } int main() { return f(); }",
                          fuel=5000)
        assert isinstance(behavior, Diverges)
        assert CallEvent("f") in behavior.trace


class TestRunCall:
    def test_run_call_returns_value(self):
        program = lower("int add(int a, int b) { return a + b; } "
                        "int main() { return 0; }")
        behavior, result = run_call(program, "add", [VInt(2), VInt(3)])
        assert isinstance(behavior, Converges)
        assert result == VInt(5)

    def test_run_call_trace_brackets_function(self):
        program = lower("int id(int x) { return x; } int main() { return 0; }")
        behavior, _ = run_call(program, "id", [VInt(1)])
        assert behavior.trace[0] == CallEvent("id")
        assert behavior.trace[-1] == ReturnEvent("id")
