"""Reproducer hygiene: nothing in ``repro-failures/`` may rot.

A campaign reproducer pins a bug.  Once the bug is fixed the file starts
*passing* — and without a guard nothing notices, so the directory fills
with stale reproducers that no longer test anything (exactly what
happened to the original ``seed{0,1,2}_bound-soundness.c`` trio).  The
contract enforced here:

- every ``.c`` file under ``repro-failures/`` must still reproduce its
  violation; if it does, the bug is open and this test fails loudly;
- if it *passes*, this test also fails — with instructions to promote
  the file to ``tests/integration/fixtures/promoted-repros/``, where it
  becomes a pinned regression fixture replayed forever.

Promoted fixtures re-run the same oracle hierarchy recorded in their
header and must stay green.
"""

import glob
import os
import re

import pytest

from repro.testing.oracles import check_seed

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
FAILURE_DIR = os.path.normpath(os.path.join(REPO_ROOT, "repro-failures"))
PROMOTED_DIR = os.path.join(os.path.dirname(__file__), "fixtures",
                            "promoted-repros")

HEADER = re.compile(
    r"/\* seed (?P<seed>\d+); oracle (?P<oracle>[\w-]+)@(?P<ablation>[\w/-]+);"
    r" gen_kwargs (?P<kwargs>\{.*?\})", re.S)


def _replay(path: str):
    """Re-run the oracle hierarchy recorded in a reproducer's header."""
    with open(path) as handle:
        text = handle.read()
    match = HEADER.search(text)
    assert match, f"{path}: missing campaign reproducer header"
    seed = int(match.group("seed"))
    gen_kwargs = eval(match.group("kwargs"))  # header is repo-authored
    verdict = check_seed(seed, gen_kwargs=gen_kwargs, source=text,
                         probes=False)
    return match.group("oracle"), verdict


def _cases(directory: str) -> list[str]:
    return sorted(glob.glob(os.path.join(directory, "*.c")))


@pytest.mark.parametrize("path", _cases(FAILURE_DIR) or ["<empty>"])
def test_open_reproducers_still_reproduce(path):
    """Open reproducers must fire their oracle; passing ones must move."""
    if path == "<empty>":
        pytest.skip("no open reproducers (the healthy state)")
    oracle, verdict = _replay(path)
    if verdict.ok:
        pytest.fail(
            f"{os.path.basename(path)} no longer reproduces its "
            f"{oracle} violation: the bug is fixed, so promote the file "
            f"to {PROMOTED_DIR} and delete it from repro-failures/")
    assert verdict.oracle == oracle, (
        f"{os.path.basename(path)} now fails a different oracle "
        f"({verdict.oracle}, recorded {oracle}): re-triage it")
    pytest.fail(
        f"open bug: {os.path.basename(path)} still violates {oracle} "
        f"([{verdict.oracle}@{verdict.ablation}] {verdict.detail})")


@pytest.mark.parametrize("path", _cases(PROMOTED_DIR))
def test_promoted_reproducers_stay_fixed(path):
    """Once-failing seeds are pinned regressions: they must stay green."""
    oracle, verdict = _replay(path)
    assert verdict.ok, (
        f"promoted regression {os.path.basename(path)} regressed: "
        f"recorded oracle {oracle}, now "
        f"[{verdict.oracle}@{verdict.ablation}] {verdict.detail}")
