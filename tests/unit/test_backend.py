"""Unit tests for the backend passes: Cminor, RTL, optimizations,
register allocation, Linear, Mach."""

import pytest

from repro.c.parser import parse
from repro.c.typecheck import typecheck
from repro.clight import ast as cl
from repro.clight.from_c import clight_of_program
from repro.clight.semantics import run_program as run_clight
from repro.cminor import FRAME_VAR, cminor_of_clight
from repro.cminor.lower import layout_stackvars
from repro.events.refinement import check_quantitative_refinement
from repro.linear import ast as lin
from repro.linear.lower import linear_of_rtl
from repro.mach import ast as mach
from repro.mach.lower import arg_offsets, mach_of_linear
from repro.mach.semantics import run_program as run_mach
from repro.regalloc import (FLOAT_REGS, INT_REGS, LFReg, LReg, LSlot,
                            allocate_function)
from repro.rtl import ast as rtl
from repro.rtl.constprop import constprop, constprop_program
from repro.rtl.deadcode import deadcode
from repro.rtl.liveness import liveness
from repro.rtl.lower import rtl_of_cminor
from repro.rtl.semantics import run_program as run_rtl


def lower(source):
    program = parse(source)
    env = typecheck(program)
    return clight_of_program(program, env)


def to_rtl(source):
    return rtl_of_cminor(cminor_of_clight(lower(source)))


class TestCminor:
    def test_layout_respects_alignment(self):
        layout = layout_stackvars([
            cl.StackVar("c", 1, 1),
            cl.StackVar("d", 8, 4),
            cl.StackVar("i", 4, 4),
        ])
        assert layout.offsets == {"c": 0, "d": 4, "i": 12}
        assert layout.size == 16  # rounded to 8

    def test_empty_layout(self):
        layout = layout_stackvars([])
        assert layout.size == 0

    def test_single_frame_var(self):
        cminor = cminor_of_clight(lower(
            "int main() { int a[3]; int b[2]; a[0] = b[0] = 1; "
            "return a[0] + b[1]; }"))
        main = cminor.functions["main"]
        assert len(main.stackvars) == 1
        assert main.stackvars[0].name == FRAME_VAR
        assert main.stackvars[0].size == 24  # 12 + 8 rounded to 8

    def test_cminor_runs_identically(self):
        source = ("int main() { int a[4]; int x = 0; "
                  "for (int i = 0; i < 4; i++) a[i] = i * i; "
                  "for (int i = 0; i < 4; i++) x += a[i]; return x; }")
        clight = lower(source)
        cminor = cminor_of_clight(clight)
        b1 = run_clight(clight)
        b2 = run_clight(cminor.program)
        assert b1.trace == b2.trace
        assert b1.return_code == b2.return_code == 14


class TestRTLLowering:
    def test_every_function_lowered(self):
        program = to_rtl("int f() { return 1; } int main() { return f(); }")
        assert set(program.functions) == {"f", "main"}

    def test_graph_reachable_and_terminated(self):
        program = to_rtl(
            "int main() { int s = 0; for (int i = 0; i < 3; i++) s += i; "
            "return s; }")
        main = program.functions["main"]
        seen = set()
        stack = [main.entry]
        returns = 0
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            instr = main.graph[node]
            if isinstance(instr, rtl.Ireturn):
                returns += 1
            stack.extend(instr.successors())
        assert returns >= 1

    def test_float_condition_normalized(self):
        program = to_rtl("int main() { double d = 1.0; if (d) return 1; "
                         "return 0; }")
        main = program.functions["main"]
        for instr in main.graph.values():
            if isinstance(instr, rtl.Icond):
                assert instr.arg not in main.float_regs

    def test_rtl_executes(self):
        program = to_rtl(
            "int fib(int n) { if (n < 2) return 1; "
            "return fib(n-1) + fib(n-2); } "
            "int main() { return fib(10); }")
        behavior = run_rtl(program)
        assert behavior.return_code == 89


class TestConstprop:
    def test_constant_folded(self):
        program = to_rtl("int main() { int x = 2 + 3; return x * 4; }")
        changed = constprop_program(program)
        assert changed > 0
        behavior = run_rtl(program)
        assert behavior.return_code == 20

    def test_constant_branch_folded(self):
        program = to_rtl("int main() { if (1 < 2) return 7; return 8; }")
        constprop_program(program)
        main = program.functions["main"]
        conds = [i for i in main.graph.values()
                 if isinstance(i, rtl.Icond)]
        assert not conds
        assert run_rtl(program).return_code == 7

    def test_params_not_folded(self):
        program = to_rtl("int f(int x) { return x + 0 * x; } "
                         "int main() { return f(5); }")
        constprop_program(program)
        assert run_rtl(program).return_code == 5

    def test_division_by_zero_not_folded(self):
        # 1/0 must stay in the code (the program keeps its wrong behavior).
        program = to_rtl("int main() { int z = 0; return 1 / z; }")
        constprop_program(program)
        behavior = run_rtl(program)
        from repro.events.trace import GoesWrong

        assert isinstance(behavior, GoesWrong)

    def test_loop_variable_not_folded(self):
        program = to_rtl(
            "int main() { int s = 0; for (int i = 0; i < 4; i++) s += i; "
            "return s; }")
        constprop_program(program)
        assert run_rtl(program).return_code == 6


class TestDeadcode:
    def test_dead_computation_removed(self):
        program = to_rtl("int main() { int dead = 1 + 2; return 7; }")
        main = program.functions["main"]
        before = sum(1 for i in main.graph.values()
                     if isinstance(i, rtl.Iop))
        removed = deadcode(main)
        assert removed > 0
        after = sum(1 for i in main.graph.values()
                    if isinstance(i, rtl.Iop))
        assert after < before
        assert run_rtl(program).return_code == 7

    def test_stores_never_removed(self):
        program = to_rtl("int g; int main() { g = 5; return 0; }")
        main = program.functions["main"]
        deadcode(main)
        stores = [i for i in main.graph.values()
                  if isinstance(i, rtl.Istore)]
        assert stores

    def test_cascading_removal(self):
        program = to_rtl(
            "int main() { int a = 1; int b = a + 2; int c = b * 3; "
            "return 9; }")
        main = program.functions["main"]
        deadcode(main)
        ops = [i for i in main.graph.values()
               if isinstance(i, rtl.Iop) and i.op[0] == "binop"]
        assert not ops

    def test_unreachable_pruned(self):
        program = to_rtl("int main() { if (1) return 1; return 2; }")
        main = program.functions["main"]
        constprop(main)
        deadcode(main)
        returns = [i for i in main.graph.values()
                   if isinstance(i, rtl.Ireturn)]
        # only the taken return (plus the synthetic fallback if reachable)
        assert len(returns) <= 2


class TestLiveness:
    def test_param_live_at_entry(self):
        from repro.rtl.liveness import live_before

        program = to_rtl("int f(int x) { return x; } "
                         "int main() { return f(1); }")
        f = program.functions["f"]
        live = liveness(f)
        param = f.params[0]
        entry_live_in = live_before(f.graph[f.entry],
                                    live.get(f.entry, frozenset()))
        assert param in entry_live_in


class TestRegalloc:
    def test_all_vregs_mapped(self):
        program = to_rtl("int main() { int a = 1, b = 2, c = 3; "
                         "return a + b * c; }")
        main = program.functions["main"]
        allocation = allocate_function(main)
        for node, instr in main.graph.items():
            for reg in list(instr.uses()) + list(instr.defs()):
                assert reg in allocation.mapping

    def test_classes_respected(self):
        program = to_rtl("int main() { double d = 1.5; int i = 2; "
                         "return i + (d > 1.0); }")
        main = program.functions["main"]
        allocation = allocate_function(main)
        for reg, loc in allocation.mapping.items():
            assert loc.is_float_class == (reg in main.float_regs)

    def test_values_live_across_calls_spilled(self):
        program = to_rtl(
            "int f() { return 1; } "
            "int main() { int keep = 42; f(); return keep; }")
        main = program.functions["main"]
        allocation = allocate_function(main)
        live = liveness(main, conservative=True)
        for node, instr in main.graph.items():
            if isinstance(instr, rtl.Icall):
                for reg in live[node]:
                    if reg == instr.dest:
                        continue
                    assert isinstance(allocation.loc(reg), LSlot), \
                        f"r{reg} live across a call but in a register"

    def test_params_get_distinct_locations(self):
        program = to_rtl("int f(int a, int b, int c) { return a*100+b*10+c; }"
                         " int main() { return f(1, 2, 3); }")
        f = program.functions["f"]
        allocation = allocate_function(f)
        locations = [allocation.loc(p) for p in f.params]
        assert len({repr(l) for l in locations}) == 3

    def test_spill_everything_mode(self):
        program = to_rtl("int main() { int a = 1; return a; }")
        main = program.functions["main"]
        allocation = allocate_function(main, spill_everything=True)
        assert all(isinstance(loc, LSlot)
                   for loc in allocation.mapping.values())

    def test_scratch_registers_never_allocated(self):
        program = to_rtl(
            "int main() { int a=1,b=2,c=3,d=4,e=5,f=6,g=7,h=8; "
            "return a+b+c+d+e+f+g+h; }")
        main = program.functions["main"]
        allocation = allocate_function(main)
        for loc in allocation.mapping.values():
            if isinstance(loc, LReg):
                assert loc.name in INT_REGS
            if isinstance(loc, LFReg):
                assert loc.name in FLOAT_REGS


class TestLinearAndMach:
    def test_linearization_preserves_behavior(self):
        source = ("int gcd(int a, int b) { while (b) { int t = a % b; "
                  "a = b; b = t; } return a; } "
                  "int main() { return gcd(48, 18); }")
        program = to_rtl(source)
        linear = linear_of_rtl(program)
        machp = mach_of_linear(linear)
        assert run_mach(machp).return_code == 6

    def test_arg_offsets(self):
        offsets, total = arg_offsets([False, True, False])
        assert offsets == [0, 4, 12]
        assert total == 16

    def test_frame_info_layout(self):
        frame = mach.FrameInfo(out_size=8, int_slots=2, float_slots=1,
                               locals_size=12)
        assert frame.out_size == 8
        assert frame.slot_offset(LSlot(0, False)) == 8
        assert frame.slot_offset(LSlot(1, False)) == 12
        assert frame.slot_offset(LSlot(0, True)) == 16
        assert frame.locals_base == 24
        assert frame.size == 40  # 24 + 12 = 36 rounded to 8

    def test_metric_adds_return_address(self):
        program = lower("int main() { return 0; }")
        from repro.driver import compile_clight

        compilation = compile_clight(program)
        sf = compilation.frame_sizes["main"]
        assert compilation.metric.cost("main") == sf + 4

    def test_leaf_frame_can_be_empty(self):
        from repro.driver import compile_clight

        compilation = compile_clight(lower(
            "int f() { return 1; } int main() { return f(); }"))
        assert compilation.frame_sizes["f"] == 0
        assert compilation.metric.cost("f") == 4

    def test_mach_traces_match_clight(self):
        source = ("int sq(int x) { return x * x; } "
                  "int main() { int s = 0; "
                  "for (int i = 0; i < 5; i++) s += sq(i); "
                  "print_int(s); return s; }")
        clight = lower(source)
        from repro.driver import compile_clight

        compilation = compile_clight(clight)
        b_clight = run_clight(clight)
        b_mach = run_mach(compilation.mach)
        assert b_clight.trace == b_mach.trace
        check_quantitative_refinement(b_mach, b_clight, compilation.metric)
