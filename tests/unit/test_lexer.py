"""Unit tests for the lexer and the minimal preprocessor."""

import pytest

from repro.c.lexer import tokenize
from repro.errors import LexError


def kinds(source, **kwargs):
    return [(t.kind, t.value) for t in tokenize(source, **kwargs)[:-1]]


class TestBasicTokens:
    def test_identifiers_and_keywords(self):
        tokens = tokenize("int foo while_x return")
        assert [t.kind for t in tokens[:-1]] == ["keyword", "id", "id",
                                                 "keyword"]

    def test_eof_sentinel(self):
        assert tokenize("")[-1].kind == "eof"

    def test_operators_maximal_munch(self):
        text = [t.text for t in tokenize("a<<=b>>c<=d->e++")[:-1]]
        assert text == ["a", "<<=", "b", ">>", "c", "<=", "d", "->",
                        "e", "++"]

    def test_ellipsis(self):
        assert any(t.text == "..." for t in tokenize("f(int a, ...)"))

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("int a @ b;")

    def test_locations(self):
        token = tokenize("\n\n  foo")[0]
        assert token.loc.line == 3
        assert token.loc.column == 3


class TestNumbers:
    def test_decimal(self):
        assert kinds("42") == [("int", 42)]

    def test_hex(self):
        assert kinds("0xFF 0x10") == [("int", 255), ("int", 16)]

    def test_octal(self):
        assert kinds("017") == [("int", 15)]

    def test_zero_is_not_octal_prefix_only(self):
        assert kinds("0") == [("int", 0)]

    def test_unsigned_suffix(self):
        tokens = tokenize("42u 42U 42ul")[:-1]
        assert all(t.kind == "uint" for t in tokens)

    def test_long_suffix_stays_int(self):
        assert tokenize("42L")[0].kind == "int"

    def test_float_forms(self):
        assert kinds("1.5 2. 1e3 1.5e-2") == [
            ("float", 1.5), ("float", 2.0), ("float", 1000.0),
            ("float", 0.015)]

    def test_integer_not_float(self):
        assert tokenize("123")[0].kind == "int"


class TestCharLiterals:
    def test_plain(self):
        assert kinds("'a'") == [("char", ord("a"))]

    def test_escapes(self):
        assert kinds(r"'\n' '\0' '\\'") == [("char", 10), ("char", 0),
                                            ("char", 92)]

    def test_unterminated(self):
        with pytest.raises(LexError):
            tokenize("'a")

    def test_string_literals_rejected(self):
        with pytest.raises(LexError):
            tokenize('"hello"')


class TestComments:
    def test_line_comment(self):
        assert kinds("1 // two three\n2") == [("int", 1), ("int", 2)]

    def test_block_comment(self):
        assert kinds("1 /* anything \n over lines */ 2") == [("int", 1),
                                                             ("int", 2)]

    def test_block_comment_preserves_line_numbers(self):
        tokens = tokenize("/* a\nb\nc */ x")
        assert tokens[0].loc.line == 3

    def test_unterminated_block(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")


class TestPreprocessor:
    def test_object_macro(self):
        assert kinds("#define N 42\nN") == [("int", 42)]

    def test_macro_multi_token(self):
        assert kinds("#define E (1 + 2)\nE")[0] == ("op", "(")

    def test_macro_recursive_expansion(self):
        assert kinds("#define A B\n#define B 7\nA") == [("int", 7)]

    def test_macro_self_reference_terminates(self):
        tokens = tokenize("#define X X\nX")
        assert tokens[0].text == "X"

    def test_predefined_macros(self):
        assert kinds("N", predefined_macros={"N": "99"}) == [("int", 99)]

    def test_predefined_overridden_by_ifndef(self):
        source = "#ifndef N\n#define N 1\n#endif\nN"
        assert kinds(source, predefined_macros={"N": "5"}) == [("int", 5)]

    def test_ifdef_taken(self):
        source = "#define A 1\n#ifdef A\n11\n#else\n22\n#endif"
        assert kinds(source) == [("int", 11)]

    def test_ifdef_not_taken(self):
        source = "#ifdef A\n11\n#else\n22\n#endif"
        assert kinds(source) == [("int", 22)]

    def test_nested_conditionals(self):
        source = ("#define A 1\n#ifdef A\n#ifdef B\n1\n#else\n2\n#endif\n"
                  "#else\n3\n#endif")
        assert kinds(source) == [("int", 2)]

    def test_unterminated_if(self):
        with pytest.raises(LexError):
            tokenize("#ifdef A\n1")

    def test_include_is_ignored(self):
        assert kinds("#include <stdio.h>\n7") == [("int", 7)]

    def test_undef(self):
        source = "#define N 1\n#undef N\nN"
        assert tokenize(source)[0].kind == "id"

    def test_function_like_macro_rejected(self):
        with pytest.raises(LexError):
            tokenize("#define F(x) x\n")

    def test_backslash_continuation(self):
        assert kinds("#define N 1 + \\\n 2\nN") == [
            ("int", 1), ("op", "+"), ("int", 2)]
