"""Unit tests of the campaign's IPC chunk sizing (``chunksize_for``).

The heuristic targets ~4 chunks per worker: large campaigns get large
chunks (amortized dispatch), small campaigns floor at 1 (every worker
gets work), and nothing caps the growth — the historical ``min(4, …)``
clamp meant a 10k-seed overnight campaign paid one IPC round-trip per 4
seeds regardless of scale.
"""

from __future__ import annotations

import pytest

from repro.testing.campaign import chunksize_for


class TestChunksizeFor:
    @pytest.mark.parametrize("n_work,jobs,expected", [
        (1, 4, 1),            # tiny workload: floor
        (8, 4, 1),            # fewer seeds than 4*jobs: floor
        (16, 4, 1),           # boundary: exactly one seed per chunk
        (64, 4, 4),           # the old cap's last honest answer
        (100, 4, 6),
        (400, 2, 50),         # the old heuristic said 4
        (1_000, 8, 31),
        (10_000, 4, 625),     # large campaign: large chunks
        (256, 1, 64),         # single worker still batches
    ])
    def test_representative_pairs(self, n_work, jobs, expected):
        assert chunksize_for(n_work, jobs) == expected

    def test_grows_with_workload_instead_of_capping(self):
        sizes = [chunksize_for(n, 4) for n in (10, 100, 1_000, 10_000)]
        assert sizes == sorted(sizes)
        assert sizes[-1] > 4, "the min(4, ...) cap is back"

    def test_about_four_chunks_per_worker(self):
        for n_work, jobs in ((128, 2), (1_000, 8), (5_000, 16)):
            chunks = n_work / chunksize_for(n_work, jobs)
            assert chunks >= 4 * jobs          # tail stays balanced
            assert chunks <= 8 * jobs + jobs   # dispatch stays amortized

    def test_degenerate_inputs_floor_at_one(self):
        assert chunksize_for(0, 4) == 1
        assert chunksize_for(5, 0) == 1   # jobs guard: no ZeroDivisionError
