"""Unit tests for the extension passes: CSE, tail-call recognition, and
the interactive body-level prover."""

import pytest

from repro.c.parser import parse
from repro.c.typecheck import typecheck
from repro.clight.from_c import clight_of_program
from repro.clight.semantics import run_program as run_clight
from repro.cminor import cminor_of_clight
from repro.driver import CompilerOptions, compile_c
from repro.errors import AnalysisError, DerivationError
from repro.events.refinement import (check_quantitative_refinement,
                                     dominates_for_all_metrics)
from repro.events.trace import CallEvent
from repro.rtl import ast as rtl
from repro.rtl.cse import cse_function, cse_program
from repro.rtl.lower import rtl_of_cminor
from repro.rtl.semantics import run_program as run_rtl
from repro.rtl.tailcall import tailcall_function, tailcall_program


def lower(source):
    program = parse(source)
    env = typecheck(program)
    return clight_of_program(program, env)


def to_rtl(source):
    return rtl_of_cminor(cminor_of_clight(lower(source)))


class TestCSE:
    def test_repeated_expression_eliminated(self):
        program = to_rtl(
            "int f(int a, int b) { return (a * b) + (a * b); } "
            "int main() { return f(6, 7); }")
        changed = cse_program(program)
        assert changed >= 1
        assert run_rtl(program).return_code == 84

    def test_redefinition_kills_availability(self):
        program = to_rtl(
            "int f(int a) { int x = a * a; a = a + 1; int y = a * a; "
            "return x + y; } int main() { return f(3); }")
        cse_program(program)
        assert run_rtl(program).return_code == 9 + 16

    def test_store_kills_loads(self):
        program = to_rtl(
            "int g[2]; int main() { g[0] = 1; int a = g[0]; g[0] = 2; "
            "int b = g[0]; return a * 10 + b; }")
        cse_program(program)
        assert run_rtl(program).return_code == 12

    def test_call_kills_loads(self):
        program = to_rtl(
            "int g; void set() { g = 9; } "
            "int main() { g = 1; int a = g; set(); int b = g; "
            "return a * 10 + b; }")
        cse_program(program)
        assert run_rtl(program).return_code == 19

    def test_load_reused_when_safe(self):
        program = to_rtl(
            "int g; int main() { g = 5; int a = g; int b = g; "
            "return a + b; }")
        before = sum(1 for f in program.functions.values()
                     for i in f.graph.values() if isinstance(i, rtl.Iload))
        changed = cse_program(program)
        after = sum(1 for f in program.functions.values()
                    for i in f.graph.values() if isinstance(i, rtl.Iload))
        assert changed >= 1 and after < before
        assert run_rtl(program).return_code == 10

    def test_branch_join_intersects(self):
        program = to_rtl(
            "int f(int c, int a) { int r; "
            "if (c) r = a * a; else r = a + a; "
            "return r + a * a; } "
            "int main() { return f(1, 4) + f(0, 4); }")
        cse_program(program)
        # f(1,4)=32, f(0,4)=24
        assert run_rtl(program).return_code == 56

    def test_behavior_preserved_on_benchmarks(self):
        source = ("int h(int x) { return x * x + x * x; } "
                  "int main() { int s = 0; "
                  "for (int i = 0; i < 5; i++) s += h(i); return s; }")
        plain = compile_c(source, options=CompilerOptions(cse=False))
        csed = compile_c(source, options=CompilerOptions(cse=True))
        b1, _m = plain.run()
        b2, _m = csed.run()
        assert b1.return_code == b2.return_code == 60


SELF_TAIL = ("int gcd(int a, int b) { if (b == 0) return a; "
             "return gcd(b, a % b); } "
             "int main() { return gcd(252, 105); }")


class TestTailcall:
    def test_self_tail_call_converted(self):
        program = to_rtl(SELF_TAIL)
        converted = tailcall_program(program)
        assert converted == 1
        behavior = run_rtl(program)
        assert behavior.return_code == 21

    def test_call_events_deleted(self):
        program = to_rtl(SELF_TAIL)
        baseline = run_rtl(to_rtl(SELF_TAIL))
        tailcall_program(program)
        optimized = run_rtl(program)
        calls_before = sum(1 for e in baseline.trace
                           if e == CallEvent("gcd"))
        calls_after = sum(1 for e in optimized.trace
                          if e == CallEvent("gcd"))
        assert calls_before > 1
        assert calls_after == 1

    def test_quantitative_refinement_holds(self):
        program = to_rtl(SELF_TAIL)
        baseline = run_rtl(to_rtl(SELF_TAIL))
        tailcall_program(program)
        optimized = run_rtl(program)
        assert dominates_for_all_metrics(optimized.trace, baseline.trace)
        check_quantitative_refinement(optimized, baseline)

    def test_non_tail_recursion_untouched(self):
        source = ("int fact(int n) { if (n <= 1) return 1; "
                  "return n * fact(n - 1); } "
                  "int main() { return fact(6); }")
        program = to_rtl(source)
        assert tailcall_program(program) == 0
        assert run_rtl(program).return_code == 720

    def test_functions_with_frames_excluded(self):
        source = ("int f(int n) { int a[2]; a[0] = n; "
                  "if (n == 0) return a[0]; return f(n - 1); } "
                  "int main() { return f(3); }")
        program = to_rtl(source)
        assert tailcall_program(program) == 0

    def test_argument_swap_handled(self):
        # gcd(b, a % b) swaps its arguments: the parallel-move temps must
        # prevent the first assignment from clobbering the second's input.
        source = ("int sub(int a, int b) { if (a == 0) return b; "
                  "return sub(a - 1, b + a); } "
                  "int main() { return sub(4, 0); }")
        program = to_rtl(source)
        assert tailcall_program(program) == 1
        assert run_rtl(program).return_code == 10

    def test_constant_stack_end_to_end(self):
        from repro.measure import measure_compilation

        source = ("int count(int n, int acc) { if (n == 0) return acc; "
                  "return count(n - 1, acc + 1); } "
                  "int main() { return count(N, 0) == N; }")
        shallow = compile_c(source, macros={"N": "8"},
                            options=CompilerOptions(tailcall=True))
        deep = compile_c(source, macros={"N": "800"},
                         options=CompilerOptions(tailcall=True))
        r1 = measure_compilation(shallow)
        r2 = measure_compilation(deep)
        assert r1.return_code == r2.return_code == 1
        assert r1.measured_bytes == r2.measured_bytes  # constant stack


class TestInteractiveProver:
    def prove_recid(self, bound_factor_extra=0):
        from repro.analyzer.interactive import prove_function
        from repro.logic.assertions import FunContext, FunSpec
        from repro.logic.bexpr import (BMul, BParamDiff, badd, bconst,
                                       bmetric, bparam)
        from repro.programs.loader import load_source

        program = lower(load_source("recursive/recid.c"))
        depth = bparam("n") if bound_factor_extra == 0 else \
            badd(bparam("n"), bconst(bound_factor_extra))
        spec = FunSpec("recid", ["n"], BMul(depth, bmetric("recid")))
        gamma = FunContext()
        gamma.add(spec)
        hints = {"recid": lambda call: {
            "n": BParamDiff(bparam("n"), bconst(1))}}
        return prove_function(program, spec, gamma, hints,
                              param_domains={"n": range(0, 64)})

    def test_recid_body_proof_checks(self):
        derivation, report = self.prove_recid()
        assert report is not None
        assert report.nodes > 5
        assert report.sampled_conditions > 0  # parametric side conditions

    def test_unsound_hint_rejected(self):
        from repro.analyzer.interactive import prove_function
        from repro.logic.assertions import FunContext, FunSpec
        from repro.logic.bexpr import BMul, bmetric, bparam
        from repro.programs.loader import load_source

        program = lower(load_source("recursive/recid.c"))
        spec = FunSpec("recid", ["n"], BMul(bparam("n"), bmetric("recid")))
        gamma = FunContext()
        gamma.add(spec)
        # identity hint claims the callee needs as much as the caller —
        # the induction does not go through.
        hints = {"recid": lambda call: {"n": bparam("n")}}
        with pytest.raises(DerivationError):
            prove_function(program, spec, gamma, hints,
                           param_domains={"n": range(0, 64)})

    def test_missing_hint_rejected(self):
        from repro.analyzer.interactive import prove_function
        from repro.logic.assertions import FunContext, FunSpec
        from repro.logic.bexpr import BMul, bmetric, bparam
        from repro.programs.loader import load_source

        program = lower(load_source("recursive/recid.c"))
        spec = FunSpec("recid", ["n"], BMul(bparam("n"), bmetric("recid")))
        gamma = FunContext()
        gamma.add(spec)
        with pytest.raises(AnalysisError):
            prove_function(program, spec, gamma, hints={},
                           param_domains={"n": range(0, 8)})

    def test_proved_bound_sound_at_runtime(self):
        from repro.logic.soundness import validate_call_bound
        from repro.logic.bexpr import BMul, badd, bmetric, bparam
        from repro.programs.loader import load_source

        _derivation, _report = self.prove_recid()
        source = load_source("recursive/recid.c")
        compilation = compile_c(source, macros={"N": "20"})
        bound = badd(bmetric("recid"),
                     BMul(bparam("n"), bmetric("recid")))
        for n in (0, 1, 7, 20):
            validate_call_bound(compilation.clight, "recid", [n], bound,
                                compilation.metric, params={"n": n})
