"""Codegen-tier acceptance benchmark: generated Python vs. the oracles.

Measures warm steps/sec of the per-program generated-Python engine
(`repro.asm.codegen`) against the decoded closure interpreter and the
legacy step loop on the standing BENCH workloads, and records the
geometric-mean speedups — the acceptance numbers for the codegen tier
(>= 2x over decoded, >= 8x over legacy on the ASM machine).  "Warm"
means the per-program compile has already happened, which is the state
every repeat execution is in: the campaign's stack probes, the serving
daemon's probe path and the profile harness all run one program many
times against one ``compile()`` call.

Run standalone to refresh the committed baseline::

    PYTHONPATH=src python benchmarks/bench_codegen.py [-o BENCH_codegen.json]

CI runs the cheap regression gate only (warm codegen throughput on one
program against a floor recorded with 2x headroom)::

    PYTHONPATH=src python benchmarks/bench_codegen.py --check-floor
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.asm import codegen as asm_codegen
from repro.asm.machine import run_program
from repro.driver import compile_c
from repro.events.trace import Converges
from repro.programs.loader import load_source

HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(HERE, "BENCH_codegen.json")

#: Program for the CI floor check: compiles in seconds, runs long
#: enough (~220k steps) for a stable steps/sec figure.
FLOOR_PROGRAM = "mibench/crc32.c"

#: The standing BENCH workloads (the acceptance set for the tier).
PROGRAMS = [
    "mibench/crc32.c",
    "mibench/dijkstra.c",
    "recursive/fib.c",
    "compcert/mandelbrot.c",
    "mibench/blowfish.c",
]

FUEL = 150_000_000


def _steps_per_s(asm, engine: str) -> tuple[float, int]:
    start = time.perf_counter()
    behavior, machine = run_program(asm, fuel=FUEL, engine=engine)
    elapsed = time.perf_counter() - start
    assert isinstance(behavior, Converges), behavior
    return machine.steps / elapsed, machine.steps


def _geomean(ratios: list[float]) -> float:
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def bench(repeats: int) -> dict:
    out: dict = {}
    vs_decoded: list[float] = []
    vs_legacy: list[float] = []
    for path in PROGRAMS:
        compilation = compile_c(load_source(path), filename=path)
        compile_start = time.perf_counter()
        asm_codegen.codegen_program(compilation.asm)
        compile_s = time.perf_counter() - compile_start
        # Interleave the engines so cache/frequency drift hits all three.
        best_legacy = best_decoded = best_codegen = 0.0
        steps = 0
        for _ in range(repeats):
            legacy, steps = _steps_per_s(compilation.asm, "legacy")
            decoded, _ = _steps_per_s(compilation.asm, "decoded")
            codegen, _ = _steps_per_s(compilation.asm, "codegen")
            best_legacy = max(best_legacy, legacy)
            best_decoded = max(best_decoded, decoded)
            best_codegen = max(best_codegen, codegen)
        vs_decoded.append(best_codegen / best_decoded)
        vs_legacy.append(best_codegen / best_legacy)
        out[path] = {
            "steps": steps,
            "compile_s": round(compile_s, 4),
            "legacy_steps_per_s": round(best_legacy),
            "decoded_steps_per_s": round(best_decoded),
            "codegen_steps_per_s": round(best_codegen),
            "codegen_vs_decoded": round(best_codegen / best_decoded, 2),
            "codegen_vs_legacy": round(best_codegen / best_legacy, 2),
        }
        print(f"  {path:28s} {steps:>9d} steps  "
              f"legacy {best_legacy:>10,.0f}/s  "
              f"decoded {best_decoded:>10,.0f}/s  "
              f"codegen {best_codegen:>10,.0f}/s  "
              f"({best_codegen / best_decoded:.2f}x/"
              f"{best_codegen / best_legacy:.2f}x)")
    out["geomean_vs_decoded"] = round(_geomean(vs_decoded), 2)
    out["geomean_vs_legacy"] = round(_geomean(vs_legacy), 2)
    print(f"  geomean: {out['geomean_vs_decoded']:.2f}x over decoded, "
          f"{out['geomean_vs_legacy']:.2f}x over legacy")
    return out


def check_floor() -> int:
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    floor = baseline["floor_codegen_steps_per_s"]
    compilation = compile_c(load_source(FLOOR_PROGRAM),
                            filename=FLOOR_PROGRAM)
    asm_codegen.codegen_program(compilation.asm)   # measure warm
    # Best of three: CI machines are noisy and the gate only needs to
    # catch real regressions (the floor already has 2x headroom).
    best = max(_steps_per_s(compilation.asm, "codegen")[0]
               for _ in range(3))
    print(f"warm codegen throughput on {FLOOR_PROGRAM}: "
          f"{best:,.0f} steps/s (floor {floor:,} steps/s)")
    if best < floor:
        print("FAIL: codegen-tier throughput regressed below the "
              "checked-in floor", file=sys.stderr)
        return 1
    # The tier must also still beat the decoded oracle — catching a
    # "codegen silently fell back to decoded" regression that absolute
    # throughput alone might miss on a fast machine.
    decoded = max(_steps_per_s(compilation.asm, "decoded")[0]
                  for _ in range(3))
    print(f"decoded throughput on {FLOOR_PROGRAM}: {decoded:,.0f} steps/s "
          f"({best / decoded:.2f}x)")
    if best <= decoded:
        print("FAIL: codegen tier is no faster than the decoded engine",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default=BASELINE_PATH,
                        help="where to write the JSON baseline")
    parser.add_argument("--repeats", type=int, default=3,
                        help="interleaved best-of-N per engine")
    parser.add_argument("--check-floor", action="store_true",
                        help="only verify warm codegen throughput against "
                             "the committed floor (CI mode)")
    args = parser.parse_args(argv)

    if args.check_floor:
        return check_floor()

    results = {
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    print("asm: codegen vs decoded vs legacy steps/sec (warm)")
    results["asm"] = bench(args.repeats)

    floor_codegen = results["asm"][FLOOR_PROGRAM]["codegen_steps_per_s"]
    results["floor_program"] = FLOOR_PROGRAM
    results["floor_codegen_steps_per_s"] = floor_codegen // 2  # 2x headroom

    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
