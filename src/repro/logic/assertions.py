"""Assertions, postconditions and function contexts (paper §4.3).

In the implementation an assertion *is* a bound expression
(:class:`~repro.logic.bexpr.BExpr`): its ``BParam`` atoms refer to the
enclosing function's formal parameters, whose values are fixed at function
entry.  This realizes the paper's auxiliary-state mechanism — the logical
variable ``Z`` of the ``bsearch`` derivation (Fig. 6) is simply a parameter
of the spec that each call site instantiates.

Postconditions carry four components: fall-through (``skip``), ``break``,
``return`` and ``continue`` (the paper's three plus the continue slot the
paper lists as an easy extension, which our frontend's ``for`` loops use).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.logic.bexpr import BExpr, TOP, ZERO, substitute_params


class Post:
    """A four-part postcondition ``(skip, break, return, continue)``."""

    __slots__ = ("skip", "brk", "ret", "cont")

    def __init__(self, skip: BExpr, brk: BExpr = TOP, ret: BExpr = TOP,
                 cont: BExpr = TOP) -> None:
        self.skip = skip
        self.brk = brk
        self.ret = ret
        self.cont = cont

    @classmethod
    def uniform(cls, bound: BExpr) -> "Post":
        """All four exits restore the same amount of stack."""
        return cls(bound, bound, bound, bound)

    def map(self, transform) -> "Post":
        return Post(transform(self.skip), transform(self.brk),
                    transform(self.ret), transform(self.cont))

    def parts(self) -> tuple[BExpr, BExpr, BExpr, BExpr]:
        return (self.skip, self.brk, self.ret, self.cont)

    def __repr__(self) -> str:
        return (f"(skip: {self.skip!r}, break: {self.brk!r}, "
                f"return: {self.ret!r}, continue: {self.cont!r})")


class FunSpec:
    """The specification Γ(f) = (P_f, Q_f) of a function.

    ``pre`` and ``post`` are bound expressions over ``params`` (the spec's
    logical parameters — typically the function's integer arguments plus
    any auxiliary variables).  The bound excludes the callee's own frame:
    the Q:CALL rule adds ``M(f)`` at the call site.
    """

    __slots__ = ("name", "params", "pre", "post", "description")

    def __init__(self, name: str, params: Sequence[str], pre: BExpr,
                 post: Optional[BExpr] = None, description: str = "") -> None:
        self.name = name
        self.params = list(params)
        self.pre = pre
        self.post = post if post is not None else pre
        self.description = description

    def instantiate(self, mapping: Mapping[str, BExpr]) -> tuple[BExpr, BExpr]:
        """Substitute the spec parameters with call-site expressions."""
        missing = [p for p in self.params if p not in mapping]
        if missing:
            raise ValueError(
                f"spec {self.name} not fully instantiated: missing {missing}")
        return (substitute_params(self.pre, mapping),
                substitute_params(self.post, mapping))

    @classmethod
    def constant(cls, name: str, bound: BExpr, description: str = "") -> "FunSpec":
        """A ground (non-parametric) spec — what the auto analyzer emits."""
        return cls(name, [], bound, bound, description)

    def __repr__(self) -> str:
        params = ", ".join(self.params)
        return f"FunSpec({self.name}({params}): pre={self.pre!r}, post={self.post!r})"


class FunContext:
    """The context Γ mapping function names to their specifications."""

    def __init__(self, specs: Optional[Mapping[str, FunSpec]] = None) -> None:
        self._specs: dict[str, FunSpec] = dict(specs or {})

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __getitem__(self, name: str) -> FunSpec:
        return self._specs[name]

    def add(self, spec: FunSpec) -> None:
        self._specs[spec.name] = spec

    def names(self):
        return self._specs.keys()

    def extended(self, spec: FunSpec) -> "FunContext":
        out = FunContext(self._specs)
        out.add(spec)
        return out

    def __repr__(self) -> str:
        return f"FunContext({sorted(self._specs)})"


BOTTOM_POST = Post(TOP, TOP, TOP, TOP)
ZERO_POST = Post.uniform(ZERO)
