"""The staged verify pipeline behind ``repro serve``.

``run_pipeline`` is ``driver.verify_stack_bounds`` re-expressed with a
:class:`~repro.serve.store.ResultStore` consulted at every stage
boundary:

========  =======================================  =====================
stage     computes                                 keyed by
========  =======================================  =====================
frontend  parse + typecheck + Clight lowering      sha256(source, macros)
backend   Cminor → … → Mach metric ``M(f)``        source × options.key()
analyze   automatic analyzer → proof certificate   sha256(source, macros)
check     ``load_certificate`` derivation re-run   sha256(source, macros)
========  =======================================  =====================

A repeat request hits the store at all four stages; a near-repeat (same
source, different backend flags) misses only ``backend``.  A fifth slot,
``codegen``, is not a pipeline stage but the *persistent artifact* of
the probe path: the generated Python source of the codegen execution
tier, keyed like ``backend`` and tagged with the generator's
``CODEGEN_VERSION`` — a restarted daemon (or a sibling pool worker)
``compile()``s the stored source instead of regenerating it, and a
stale-version or hash-mismatched artifact is dropped and regenerated,
never executed.  The analyze
stage stores the *certificate* — the paper's independently re-checkable
artifact — and the check stage is literally ``load_certificate`` run
against the (possibly cached) Clight program, so the trust root of a
served bound is the same checker that guards the CLI and the campaign.

The response document is schema'd (:data:`RESPONSE_SCHEMA`) and
:func:`validate_response` is its executable definition, used by the
serving fault operators and the smoke gate.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import time
from collections import OrderedDict
from typing import Any, Optional

from repro import obs
from repro.driver import (CompilerOptions, analyze_clight, compile_clight,
                          compile_frontend)
from repro.errors import AnalysisError
from repro.logic.bexpr import INFINITY, evaluate
from repro.logic.certificate import (bexpr_from_json, export_certificate,
                                     load_certificate)
from repro.serve.store import (ResultStore, ServeError, options_digest,
                               source_digest, stage_key)

#: The stage boundaries, in pipeline order.
STAGES = ("frontend", "backend", "analyze", "check")

#: Response document schema identifier (bump on incompatible changes).
RESPONSE_SCHEMA = "repro.serve.response/1"


class ServeRequest:
    """One verify request: a translation unit plus compiler options."""

    def __init__(self, source: str, filename: str = "<request>",
                 macros: Optional[dict[str, str]] = None,
                 options: Optional[CompilerOptions] = None,
                 probe: bool = False) -> None:
        self.source = source
        self.filename = filename
        self.macros = macros
        self.options = options or CompilerOptions()
        #: Execute the program at its verified bound on the codegen tier
        #: and attach the observed watermark to the response.
        self.probe = probe

    def keys(self) -> dict[str, str]:
        """The store key of every stage boundary for this request.

        ``codegen`` is the persistent-artifact slot for the generated
        Python source of the compiled program — keyed like the backend
        stage (source × options) because the generator's input is the
        backend's output; the artifact's ``CODEGEN_VERSION`` tag lives
        in the payload and is checked on load.
        """
        src = source_digest(self.source, self.macros)
        opt = options_digest(self.options)
        return {"frontend": stage_key("frontend", src),
                "backend": stage_key("backend", src, opt),
                "analyze": stage_key("analyze", src),
                "check": stage_key("check", src),
                "codegen": stage_key("codegen", src, opt)}


def options_from_json(data: Optional[dict]) -> CompilerOptions:
    """Build ``CompilerOptions`` from a request's ``options`` object.

    Field names are validated against ``CompilerOptions.__init__`` (the
    same audited surface ``tests/unit/test_compiler_options.py`` locks),
    so a typo'd flag is a diagnosed 400, never a silently-default cache
    key.
    """
    data = data or {}
    if not isinstance(data, dict):
        raise ServeError("options must be a JSON object of booleans")
    valid = set(inspect.signature(CompilerOptions).parameters)
    unknown = sorted(set(data) - valid)
    if unknown:
        raise ServeError(
            f"unknown compiler option(s) {', '.join(unknown)}; "
            f"valid: {', '.join(sorted(valid))}")
    for name, value in data.items():
        if not isinstance(value, bool):
            raise ServeError(f"compiler option {name!r} must be a boolean")
    return CompilerOptions(**data)


#: Compiled programs kept warm across requests, keyed by the backend
#: stage key (source x options).  Holding the ``AsmProgram`` alive keeps
#: its generated code object alive too — the codegen tier caches per
#: program in a ``WeakKeyDictionary`` — so a warm probe skips re-codegen
#: entirely.  Small and LRU-bounded: entries are whole programs.
_warm_programs: "OrderedDict[str, Any]" = OrderedDict()
_WARM_CAP = 32

#: Probe executions are demonstrations, not campaigns: cap the fuel.
PROBE_FUEL = 50_000_000


def _warm_put(key: str, asm_program: Any) -> None:
    _warm_programs[key] = asm_program
    _warm_programs.move_to_end(key)
    while len(_warm_programs) > _WARM_CAP:
        _warm_programs.popitem(last=False)


def _warm_get(key: str) -> Optional[Any]:
    asm_program = _warm_programs.get(key)
    if asm_program is not None:
        _warm_programs.move_to_end(key)
        obs.add("serve.codegen.warm_hits")
    else:
        obs.add("serve.codegen.warm_misses")
    return asm_program


def reset_warm() -> None:
    """Drop every warm program (the restart-simulation seam for tests
    and the stored-artifact fault operators).  Dropping the programs
    also empties the codegen tier's ``WeakKeyDictionary`` cache."""
    _warm_programs.clear()


# ---------------------------------------------------------------------------
# The persistent codegen artifact (the source text of the generated tier)
# ---------------------------------------------------------------------------


def _load_codegen_artifact(store: ResultStore, key: str) -> Optional[str]:
    """The validated generated source stored under ``key``, or ``None``.

    Two payload-level checks on top of the store's wire integrity, both
    with the store's poison-drop discipline (an invalid artifact is
    dropped and counted, never returned):

    * ``codegen_version`` must equal the *current* generator's
      :data:`~repro.asm.codegen.CODEGEN_VERSION` — an artifact from an
      older generator is recompiled, never executed;
    * ``sha256`` must match the source text — a truncated or edited
      source never reaches ``exec``.
    """
    from repro.asm.codegen import CODEGEN_VERSION

    payload = store.get(key)
    if payload is None:
        return None
    source = payload.get("source") if isinstance(payload, dict) else None
    if (not isinstance(payload, dict) or not isinstance(source, str)
            or payload.get("codegen_version") != CODEGEN_VERSION
            or payload.get("sha256")
            != hashlib.sha256(source.encode()).hexdigest()):
        store.discard(key)
        obs.add("serve.codegen.artifact.stale")
        return None
    return source


def _store_codegen_artifact(store: ResultStore, key: str,
                            source: str) -> None:
    from repro.asm.codegen import CODEGEN_VERSION

    store.put(key, {
        "codegen_version": CODEGEN_VERSION,
        "sha256": hashlib.sha256(source.encode()).hexdigest(),
        "source": source})


def _ensure_codegen(asm_program: Any, store: ResultStore,
                    key: str) -> str:
    """Make ``asm_program``'s codegen tier runnable; persist the source.

    Returns where the compiled code object came from: ``"warm"`` (still
    live from an earlier request), ``"store"`` (persisted source,
    ``compile()``d — no regeneration), or ``"generated"`` (full
    ``_generate`` + compile, after which the source is persisted so the
    next daemon incarnation or pool worker skips it).
    """
    from repro.asm import codegen as asm_codegen

    if asm_codegen.cached_program(asm_program) is not None:
        how = "warm"
    else:
        how = "generated"
        source = _load_codegen_artifact(store, key)
        if source is not None:
            try:
                asm_codegen.install_source(asm_program, source)
                how = "store"
            except ValueError:
                # Loadability is the last line of the poison discipline:
                # hash-valid text that does not exec is still dropped.
                store.discard(key)
                obs.add("serve.codegen.artifact.stale")
        if how == "generated":
            asm_codegen.codegen_program(asm_program)
    if key not in store:
        _store_codegen_artifact(
            store, key, asm_codegen.codegen_program(asm_program).source)
    return how


def _run_probe(request: ServeRequest, keys: dict[str, str], clight,
               stack_bytes: int, warm: bool, store: ResultStore) -> dict:
    """Execute at the verified bound on the codegen tier.

    The probe is the serving-path version of the Theorem 1 experiment:
    a stack block of exactly the served ``stack_requirement`` bytes must
    run the program to completion, and the measured high-water mark is
    returned next to the bound it must stay under.
    """
    from repro.asm.machine import run_program
    from repro.events.trace import Converges

    asm_program = _warm_get(keys["backend"])
    if asm_program is None:
        asm_program = compile_clight(clight, request.options).asm
        _warm_put(keys["backend"], asm_program)
    codegen_origin = _ensure_codegen(asm_program, store, keys["codegen"])
    output: list = []
    behavior, machine = run_program(asm_program, stack_bytes=stack_bytes,
                                    output=output, fuel=PROBE_FUEL,
                                    engine="codegen")
    converged = isinstance(behavior, Converges)
    probe = {"engine": "codegen", "warm": warm,
             "codegen": codegen_origin,
             "stack_bytes": stack_bytes, "converged": converged,
             "measured_bytes": machine.measured_stack_usage,
             "steps": machine.steps}
    if converged:
        probe["return_code"] = behavior.return_code
    else:
        probe["reason"] = getattr(behavior, "reason",
                                  type(behavior).__name__)
    return probe


def run_pipeline(request: ServeRequest, store: ResultStore) -> dict:
    """Run (or replay) the full verify pipeline for one request.

    Returns the response payload (see ``docs/SERVING.md``); raises
    :class:`~repro.errors.ReproError` subclasses for programs the
    pipeline rejects (parse errors, recursion, …) — the server maps
    those to 422 responses.
    """
    started = time.perf_counter()
    keys = request.keys()
    # Warmness is a property of the *request boundary*: was the compiled
    # program already resident when this request arrived?  (The backend
    # stage itself populates the cache, so probing after the stages
    # would always look warm.)
    probe_was_warm = keys["backend"] in _warm_programs
    stages: dict[str, str] = {}
    with store.pinned(*keys.values()):
        with obs.span("serve.pipeline", filename=request.filename):
            # frontend: parse + typecheck + lower to Clight
            clight = store.get(keys["frontend"], codec="pickle")
            if clight is None:
                stages["frontend"] = "miss"
                clight = compile_frontend(request.source, request.filename,
                                          request.macros)
                store.put(keys["frontend"], clight, codec="pickle")
            else:
                stages["frontend"] = "hit"

            # backend: everything later stages need from the compiler —
            # the Mach SF map and the metric M(f) = SF(f) + 4.
            backend = store.get(keys["backend"])
            if backend is None:
                stages["backend"] = "miss"
                compilation = compile_clight(clight, request.options)
                backend = {"frame_sizes": compilation.frame_sizes,
                           "metric": compilation.metric.as_dict(),
                           "main": compilation.asm.main}
                store.put(keys["backend"], backend)
                _warm_put(keys["backend"], compilation.asm)
            else:
                stages["backend"] = "hit"

            # analyze: the self-certifying analyzer; what we store is the
            # certificate, the independently re-checkable artifact.
            analyze = store.get(keys["analyze"])
            if analyze is None:
                stages["analyze"] = "miss"
                analysis = analyze_clight(clight)
                analyze = {"certificate": export_certificate(analysis)}
                store.put(keys["analyze"], analyze)
            else:
                stages["analyze"] = "hit"
            certificate_text = analyze["certificate"]

            # check: re-run every derivation through the logic checker.
            check = store.get(keys["check"])
            if check is None:
                stages["check"] = "miss"
                _gamma, _bounds, report = load_certificate(
                    certificate_text, clight)
                check = {"ok": True, "nodes": report.nodes,
                         "exact": report.fully_exact}
                store.put(keys["check"], check)
            else:
                stages["check"] = "hit"

    response = _assemble(request, backend, certificate_text, check, stages)
    if request.probe:
        with obs.span("serve.probe", filename=request.filename):
            response["probe"] = _run_probe(
                request, keys, clight,
                response["bounds"]["stack_requirement"], probe_was_warm,
                store)
    elapsed = time.perf_counter() - started
    response["elapsed_s"] = round(elapsed, 6)
    obs.observe("serve.pipeline_seconds", elapsed)
    return validate_response(response)


def _assemble(request: ServeRequest, backend: dict, certificate_text: str,
              check: dict, stages: dict) -> dict:
    """The response document: concrete bounds under the compiled metric."""
    certificate = json.loads(certificate_text)
    metric = backend["metric"]
    functions: dict[str, int] = {}
    parametric: list[str] = []
    for name, entry in certificate["functions"].items():
        if entry.get("spec", {}).get("params"):
            # A recursive (or recursion-reaching) function: its bound
            # depends on its arguments, so there is no single byte figure
            # — the symbolic bound lives in the certificate, and callers
            # with concrete arguments (main included) still get concrete
            # bounds below.
            parametric.append(name)
            continue
        value = evaluate(bexpr_from_json(entry["total_bound"]), metric)
        if value == INFINITY:
            raise AnalysisError(f"bound of {name} is unbounded")
        functions[name] = int(value)
    main = backend["main"]
    if main not in functions:
        raise AnalysisError("program has no analyzed main function"
                            if main not in parametric else
                            "main has a parametric bound; cannot size "
                            "the stack block")
    bounds = {"functions": functions, "main": main,
              "stack_requirement": functions[main]}
    if parametric:
        bounds["parametric"] = sorted(parametric)
    return {
        "schema": RESPONSE_SCHEMA,
        "verdict": "verified",
        "bounds": bounds,
        "frame_sizes": backend["frame_sizes"],
        "certificate": certificate,
        "check": {"nodes": check["nodes"], "exact": check["exact"]},
        "options": dict(request.options.key()),
        "stages": stages,
    }


def error_response(error: Exception) -> dict:
    """The 4xx/5xx response body for one diagnosed failure."""
    return {"schema": RESPONSE_SCHEMA, "verdict": "error",
            "kind": type(error).__name__, "error": str(error)}


# ---------------------------------------------------------------------------
# Response schema validation (the executable format definition)
# ---------------------------------------------------------------------------


def _fail(message: str) -> None:
    raise ValueError(f"serve response: {message}")


def validate_response(data: Any) -> dict:
    """Validate one response document; raises ``ValueError`` on drift.

    The server validates its own documents before sending them, and the
    ``response-truncate`` fault operator plus the smoke client validate
    what arrives — a malformed or truncated response is always a
    diagnosed failure, never silently consumed.
    """
    if not isinstance(data, dict):
        _fail("document is not an object")
    if data.get("schema") != RESPONSE_SCHEMA:
        _fail(f"unknown schema {data.get('schema')!r}")
    if "collapsed" in data and data["collapsed"] is not True:
        # Single-flight followers carry the marker; leaders omit it.
        _fail("collapsed, when present, must be true")
    verdict = data.get("verdict")
    if verdict == "error":
        if not isinstance(data.get("error"), str) or not data["error"]:
            _fail("error verdict without a diagnostic")
        if not isinstance(data.get("kind"), str):
            _fail("error verdict without an error kind")
        return data
    if verdict != "verified":
        _fail(f"unknown verdict {verdict!r}")
    bounds = data.get("bounds")
    if not isinstance(bounds, dict):
        _fail("missing bounds object")
    functions = bounds.get("functions")
    if not isinstance(functions, dict) or not functions:
        _fail("bounds.functions must be a non-empty object")
    for name, value in functions.items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            _fail(f"bound of {name!r} must be a non-negative integer")
    main = bounds.get("main")
    if main not in functions:
        _fail(f"bounds.main {main!r} has no bound")
    if bounds.get("stack_requirement") != functions[main]:
        _fail("stack_requirement does not match the bound of main")
    parametric = bounds.get("parametric", [])
    if not isinstance(parametric, list) or not all(
            isinstance(name, str) for name in parametric):
        _fail("bounds.parametric must be a list of function names")
    if set(parametric) & set(functions):
        _fail("a function cannot be both concretely bounded and parametric")
    certificate = data.get("certificate")
    if not isinstance(certificate, dict) \
            or "functions" not in certificate:
        _fail("missing certificate")
    if set(certificate["functions"]) != set(functions) | set(parametric):
        _fail("certificate and bounds cover different functions")
    stages = data.get("stages")
    if not isinstance(stages, dict) or set(stages) != set(STAGES):
        _fail("stages must report every pipeline stage")
    for stage, status in stages.items():
        if status not in ("hit", "miss"):
            _fail(f"stage {stage}: unknown status {status!r}")
    probe = data.get("probe")
    if probe is not None:
        if not isinstance(probe, dict):
            _fail("probe must be an object")
        if probe.get("engine") not in ("legacy", "decoded", "codegen"):
            _fail(f"probe.engine unknown: {probe.get('engine')!r}")
        if probe.get("codegen") not in ("warm", "store", "generated"):
            _fail(f"probe.codegen unknown: {probe.get('codegen')!r}")
        for field in ("warm", "converged"):
            if not isinstance(probe.get(field), bool):
                _fail(f"probe.{field} must be a boolean")
        for field in ("stack_bytes", "measured_bytes", "steps"):
            value = probe.get(field)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                _fail(f"probe.{field} must be a non-negative integer")
        if probe["converged"]:
            if not isinstance(probe.get("return_code"), int):
                _fail("converged probe without a return code")
            if probe["measured_bytes"] > probe["stack_bytes"]:
                _fail("probe watermark exceeds its stack block")
        elif not isinstance(probe.get("reason"), str):
            _fail("non-converged probe without a reason")
    return data


def validate_response_text(text: str) -> dict:
    """Parse + validate a response body as received over the wire."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"serve response: not valid JSON: {error}") \
            from error
    return validate_response(data)
