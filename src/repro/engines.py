"""Engine selection shared by the four language backends.

Every execution entry point accepts two selectors:

``decoded`` (bool, legacy knob)
    The PR 2-3 era selector: ``True`` = the pre-decoded threaded-code
    engine, ``False`` = the original step loop.  Kept working verbatim
    so existing call sites, tests and benchmark monkeypatches are
    untouched.

``engine`` (str, the three-tier knob)
    ``"legacy"`` | ``"decoded"`` | ``"codegen"``.  Wins over
    ``decoded`` when both are given.

When neither is passed the module defaults decide: ``DEFAULT_DECODED``
(the old kill switch — ``False`` forces the legacy loop everywhere,
which ``bench_interp``/``bench_campaign`` rely on) and
``DEFAULT_ENGINE`` (the tier used when decoding is on at all).  The
defaults live in each language module so monkeypatching
``clight.semantics.DEFAULT_DECODED`` keeps its established meaning;
this module only holds the shared resolution rule and the
traceback-based step recovery used by the codegen drivers.
"""

from __future__ import annotations

from typing import Optional

#: The three execution tiers, slowest (and most trusted) first.
ENGINES = ("legacy", "decoded", "codegen")


def resolve(default_decoded: bool, default_engine: str,
            decoded: Optional[bool], engine: Optional[str]) -> str:
    """The one resolution rule every backend uses."""
    if engine is not None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r} (expected one of {ENGINES})")
        return engine
    if decoded is not None:
        return "decoded" if decoded else "legacy"
    if not default_decoded:
        return "legacy"
    return default_engine


def recover_steps(exc: BaseException, filename: str,
                  slot_by_line: dict[int, int]):
    """Exact step count from an exception that crossed a generated driver.

    The codegen drivers run many interpreter steps per loop iteration;
    the completed-step count at a raise is ``st`` (the frame local) plus
    the ordinal of the raising statement within the unrolled body
    (``slot_by_line``, keyed by line number in the generated source).
    Returns ``(steps, code_local)`` — ``code_local`` is the driver's
    ``code`` variable, which distinguishes genuine termination (the
    sentinel ``None`` was called) from a ``TypeError`` inside an op —
    or ``(None, None)`` if the exception never crossed the driver.
    """
    frame = None
    lineno = 0
    tb = exc.__traceback__
    while tb is not None:
        if tb.tb_frame.f_code.co_filename == filename:
            frame = tb.tb_frame
            lineno = tb.tb_lineno
        tb = tb.tb_next
    if frame is None:
        return None, None
    local = frame.f_locals
    steps = local.get("st", 0) + slot_by_line.get(lineno, 0)
    return steps, local.get("code")


#: Unroll factor of the generated dispatch loops (one fuel check per
#: batch instead of one per step).
UNROLL = 16


def build_driver(filename: str, entry_lines: list[str],
                 namespace: dict) -> tuple:
    """Compile a specialized dispatch driver for a semantics tier.

    ``entry_lines`` is the per-program constant-folded entry sequence
    (arity guards resolved, temp/register counts and stack-block specs
    inlined as literals); the builder appends the shared unrolled
    ``code = code(m)`` trampoline.  The driver's first statement sets
    ``code = True`` so :func:`recover_steps` can tell clean termination
    (the ``None`` sentinel was called) from a genuine ``TypeError``
    raised while the entry sequence is still running.

    Returns ``(run, slot_by_line, source)`` where ``run(m, rec, fuel)``
    executes the program (``rec`` is the decoded main record, read only
    for ``call_event``/``entry`` so uncached decoders stay safe) and
    ``slot_by_line`` feeds :func:`recover_steps`.
    """
    lines = ["def run(m, rec, fuel):",
             "    code = True"]
    for entry_line in entry_lines:
        lines.append("    " + entry_line)
    slots: dict[int, int] = {}
    lines.append("    st = 0")
    lines.append(f"    _n = fuel - {UNROLL}")
    lines.append("    while st <= _n:")
    for j in range(UNROLL):
        lines.append("        code = code(m)")
        slots[len(lines)] = j
    lines.append(f"        st += {UNROLL}")
    lines.append("    while st < fuel:")
    lines.append("        code = code(m)")
    slots[len(lines)] = 0
    lines.append("        st += 1")
    lines.append("    return fuel")
    source = "\n".join(lines) + "\n"
    ns = dict(namespace)
    exec(compile(source, filename, "exec"), ns)
    return ns["run"], slots, source
