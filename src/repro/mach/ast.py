"""Mach abstract syntax.

The frame layout of a function (offsets grow upward from the bottom of
the frame, i.e. from the final ESP)::

    [ outgoing argument area | spill slots | addressable locals ]
    0                         out_size      locals_base           SF(f)

Incoming parameters live in the *caller's* outgoing area and are read by
``MGetParam`` (at the assembly level this becomes plain ESP arithmetic —
no back link, exactly the simplification the paper's ASMsz enables).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.c.types import align_up
from repro.clight.ast import GlobalVar
from repro.events.metrics import StackMetric
from repro.memory.chunks import Chunk
from repro.regalloc.locations import LSlot, Loc

RA_BYTES = 4  # size of a pushed return address


class FrameInfo:
    """Concrete frame layout; ``size`` is the paper's ``SF(f)``."""

    __slots__ = ("out_size", "slot_offsets", "locals_base", "size")

    def __init__(self, out_size: int, int_slots: int, float_slots: int,
                 locals_size: int) -> None:
        self.out_size = align_up(out_size, 4)
        self.slot_offsets: dict[LSlot, int] = {}
        offset = self.out_size
        for index in range(int_slots):
            self.slot_offsets[LSlot(index, False)] = offset
            offset += 4
        for index in range(float_slots):
            self.slot_offsets[LSlot(index, True)] = offset
            offset += 8
        self.locals_base = offset
        offset += locals_size
        self.size = align_up(offset, 8)

    def slot_offset(self, slot: LSlot) -> int:
        return self.slot_offsets[slot]

    def __repr__(self) -> str:
        return (f"FrameInfo(out={self.out_size}, locals@{self.locals_base}, "
                f"SF={self.size})")


class MInstr:
    __slots__ = ()


class MOp(MInstr):
    __slots__ = ("op", "args", "dest")

    def __init__(self, op: tuple, args: Sequence[Loc], dest: Loc) -> None:
        self.op = op
        self.args = tuple(args)
        self.dest = dest

    def __repr__(self) -> str:
        args = ", ".join(map(repr, self.args))
        return f"{self.dest!r} = {self.op}({args})"


class MLoad(MInstr):
    __slots__ = ("chunk", "addr", "dest")

    def __init__(self, chunk: Chunk, addr: Loc, dest: Loc) -> None:
        self.chunk = chunk
        self.addr = addr
        self.dest = dest

    def __repr__(self) -> str:
        return f"{self.dest!r} = load {self.chunk.value} [{self.addr!r}]"


class MStore(MInstr):
    __slots__ = ("chunk", "addr", "src")

    def __init__(self, chunk: Chunk, addr: Loc, src: Loc) -> None:
        self.chunk = chunk
        self.addr = addr
        self.src = src

    def __repr__(self) -> str:
        return f"store {self.chunk.value} [{self.addr!r}] = {self.src!r}"


class MStoreArg(MInstr):
    """Store an outgoing argument at ``offset`` in the outgoing area."""

    __slots__ = ("src", "offset", "is_float")

    def __init__(self, src: Loc, offset: int, is_float: bool) -> None:
        self.src = src
        self.offset = offset
        self.is_float = is_float

    def __repr__(self) -> str:
        return f"arg[{self.offset}] = {self.src!r}"


class MCall(MInstr):
    """Call an internal function; the result arrives in EAX/XMM0."""

    __slots__ = ("callee",)

    def __init__(self, callee: str) -> None:
        self.callee = callee

    def __repr__(self) -> str:
        return f"call {self.callee}"


class MExtCall(MInstr):
    """Invoke an external function (no stack use, metric 0)."""

    __slots__ = ("callee", "args", "arg_is_float", "dest", "dest_is_float")

    def __init__(self, callee: str, args: Sequence[Loc],
                 arg_is_float: Sequence[bool], dest: Optional[Loc],
                 dest_is_float: bool) -> None:
        self.callee = callee
        self.args = tuple(args)
        self.arg_is_float = tuple(arg_is_float)
        self.dest = dest
        self.dest_is_float = dest_is_float

    def __repr__(self) -> str:
        dest = f"{self.dest!r} = " if self.dest is not None else ""
        args = ", ".join(map(repr, self.args))
        return f"{dest}ext {self.callee}({args})"


class MGetParam(MInstr):
    """Load incoming parameter from the caller's outgoing area."""

    __slots__ = ("offset", "dest", "is_float")

    def __init__(self, offset: int, dest: Loc, is_float: bool) -> None:
        self.offset = offset
        self.dest = dest
        self.is_float = is_float

    def __repr__(self) -> str:
        return f"{self.dest!r} = param[{self.offset}]"


class MLabel(MInstr):
    __slots__ = ("label",)

    def __init__(self, label: int) -> None:
        self.label = label

    def __repr__(self) -> str:
        return f"L{self.label}:"


class MGoto(MInstr):
    __slots__ = ("label",)

    def __init__(self, label: int) -> None:
        self.label = label

    def __repr__(self) -> str:
        return f"goto L{self.label}"


class MCond(MInstr):
    __slots__ = ("arg", "label")

    def __init__(self, arg: Loc, label: int) -> None:
        self.arg = arg
        self.label = label

    def __repr__(self) -> str:
        return f"if {self.arg!r} goto L{self.label}"


class MReturn(MInstr):
    """Return; the value (if any) is already in EAX/XMM0."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "return"


class MachFunction:
    def __init__(self, name: str, body: list[MInstr], frame: FrameInfo,
                 returns_float: bool) -> None:
        self.name = name
        self.body = body
        self.frame = frame
        self.returns_float = returns_float
        self.labels: dict[int, int] = {
            instr.label: index for index, instr in enumerate(body)
            if isinstance(instr, MLabel)}

    def pretty(self) -> str:
        lines = [f"{self.name}: {self.frame!r}"]
        for instr in self.body:
            pad = "" if isinstance(instr, MLabel) else "    "
            lines.append(f"{pad}{instr!r}")
        return "\n".join(lines)


class MachProgram:
    def __init__(self, globals_: Sequence[GlobalVar],
                 functions: dict[str, MachFunction],
                 externals: set[str], main: str = "main") -> None:
        self.globals = list(globals_)
        self.functions = dict(functions)
        self.externals = set(externals)
        self.main = main

    def is_internal(self, name: str) -> bool:
        return name in self.functions

    def frame_sizes(self) -> dict[str, int]:
        """The SF map of the paper (Theorem 1, item 2)."""
        return {name: fn.frame.size for name, fn in self.functions.items()}

    def cost_metric(self) -> StackMetric:
        """The compiler-produced metric ``M(f) = SF(f) + 4``."""
        return StackMetric({name: size + RA_BYTES
                            for name, size in self.frame_sizes().items()})
