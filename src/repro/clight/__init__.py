"""CompCert Clight: the language of the quantitative Hoare logic (paper §4).

Clight is the most abstract intermediate language of the pipeline: loops
are infinite unless exited by ``break``, expressions are side-effect free,
and every local variable is either a pure temporary or an explicitly
memory-resident (addressable) variable.  The front end
(:mod:`repro.clight.from_c`) compiles the typed C AST into this form; the
continuation-based small-step semantics (:mod:`repro.clight.semantics`)
generates the event traces that the quantitative logic bounds.
"""

from repro.clight.from_c import clight_of_program
from repro.clight.semantics import run_program

__all__ = ["clight_of_program", "run_program"]
