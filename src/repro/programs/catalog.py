"""The experiment catalog: which programs and functions Table 1 reports.

``TABLE1`` mirrors the layout of the paper's Table 1: one entry per file,
listing the functions whose automatically verified bounds are reported.
The benchmark harness iterates this structure to regenerate the table.
"""

from __future__ import annotations


class Table1Entry:
    __slots__ = ("path", "display_name", "functions", "macros")

    def __init__(self, path: str, display_name: str,
                 functions: list[str], macros: dict | None = None) -> None:
        self.path = path
        self.display_name = display_name
        self.functions = functions
        self.macros = macros or {}


TABLE1: list[Table1Entry] = [
    Table1Entry("mibench/dijkstra.c", "mibench/net/dijkstra.c",
                ["enqueue", "dequeue", "dijkstra"]),
    Table1Entry("mibench/bitcount.c", "mibench/auto/bitcount.c",
                ["bitcount", "bitstring"]),
    Table1Entry("mibench/blowfish.c", "mibench/sec/blowfish.c",
                ["BF_encrypt", "BF_options", "BF_ecb_encrypt"]),
    Table1Entry("mibench/md5.c", "mibench/sec/pgp/md5.c",
                ["MD5Init", "MD5Update", "MD5Final", "MD5Transform"]),
    Table1Entry("mibench/fft.c", "mibench/tele/fft.c",
                ["IsPowerOfTwo", "NumberOfBitsNeeded", "ReverseBits",
                 "fft_float"]),
    # Two files beyond the paper's Table 1 (its artifact evaluation also
    # exercised additional programs).
    Table1Entry("mibench/sha.c", "mibench/sec/sha.c (extra)",
                ["sha_init", "sha_transform", "sha_update", "sha_final"]),
    Table1Entry("mibench/crc32.c", "mibench/tele/crc32.c (extra)",
                ["crc32_init", "crc32_update", "crc32_buffer"]),
    Table1Entry("mibench/stringsearch.c", "mibench/off/stringsearch.c (extra)",
                ["init_search", "strsearch", "naive_search"]),
    Table1Entry("certikos/vmm.c", "certikos/vmm.c",
                ["palloc", "pfree", "mem_init", "pmap_init", "pt_free",
                 "pt_init", "pt_init_kern", "pt_insert", "pt_read",
                 "pt_resv"]),
    Table1Entry("certikos/proc.c", "certikos/proc.c",
                ["enqueue", "dequeue", "kctxt_new", "sched_init",
                 "tdqueue_init", "thread_init", "thread_spawn", "main"]),
    Table1Entry("compcert/mandelbrot.c", "compcert/mandelbrot.c",
                ["main"]),
    Table1Entry("compcert/nbody.c", "compcert/nbody.c",
                ["advance", "energy", "offset_momentum", "setup_bodies",
                 "main"]),
]

# Function-pointer programs: indirect calls resolved to finite candidate
# sets by repro.analyzer.values, devirtualized during Clight lowering.
FUNCPTR: list[str] = [
    "funcptr/dispatch.c",
    "funcptr/callback.c",
]

# Recursive programs: self-recursive functions whose parametric bounds
# the ranking-function inference derives automatically (Table 2 keeps
# the manual specs as differential oracles).
RECURSIVE: list[str] = [
    "recursive/recid.c",
    "recursive/bsearch.c",
    "recursive/fib.c",
    "recursive/qsort.c",
    "recursive/sum.c",
    "recursive/filter_pos.c",
    "recursive/fact_sq.c",
    "recursive/filter_find.c",
]

# Every packaged program that must compile and converge (used by the
# integration tests).  Recursive ones get *parametric* bounds from the
# ranking-function inference; everything else must analyze exactly.
ALL_RUNNABLE: list[str] = [
    "paper_example.c",
    "mibench/dijkstra.c",
    "mibench/bitcount.c",
    "mibench/blowfish.c",
    "mibench/md5.c",
    "mibench/fft.c",
    "mibench/sha.c",
    "mibench/crc32.c",
    "certikos/vmm.c",
    "certikos/proc.c",
    "mibench/stringsearch.c",
    "compcert/mandelbrot.c",
    "compcert/nbody.c",
    "compcert/binarytrees.c",
    *RECURSIVE,
    *FUNCPTR,
]

# Non-recursive programs: the automatic analyzer must succeed on these
# with fully exact derivation re-checks (the function-pointer programs
# included — devirtualization leaves an ordinary direct call graph).
AUTO_ANALYZABLE: list[str] = [entry.path for entry in TABLE1] + FUNCPTR
