"""Unit tests of the serving result store (``repro.serve.store``).

What these pin down, per the store's contract:

* **key distinctness** — every ``CompilerOptions`` flag flip yields a
  distinct backend stage key (the serving extension of the
  ``test_compiler_options.py`` audit), while the option-independent
  stages share keys across flag flips — which is exactly the partial-hit
  property;
* **integrity** — a corrupted, truncated, or cross-key-substituted
  entry is detected on ``get``, counted, dropped, and never returned;
  the caller's recompute repairs the store;
* **eviction** — the size cap is honored, pinned (in-flight) entries
  are never evicted, unpinned entries go oldest-first.
"""

from __future__ import annotations

import inspect
import itertools
import json

import pytest

from repro import obs
from repro.driver import CompilerOptions
from repro.serve import (STAGES, ResultStore, ServeRequest, options_digest,
                         run_pipeline, source_digest, stage_key)

FLAGS = list(inspect.signature(CompilerOptions).parameters)


def _options_with(enabled: tuple[str, ...]) -> CompilerOptions:
    defaults = {name: parameter.default for name, parameter
                in inspect.signature(CompilerOptions).parameters.items()}
    return CompilerOptions(**{name: not defaults[name] if name in enabled
                              else defaults[name] for name in defaults})


@pytest.fixture()
def metrics():
    obs.enable()
    obs.reset()
    yield obs
    obs.disable()
    obs.reset()


def _counter(name: str) -> float:
    return obs.snapshot()["counters"].get(name, 0)


class TestKeys:
    def test_every_flag_flip_changes_the_backend_key(self):
        """Pairwise flag-flip audit, lifted to serving keys."""
        src = source_digest("int main(void){return 0;}")
        combinations = [()] + [
            combo for r in (1, 2)
            for combo in itertools.combinations(FLAGS, r)]
        keys = {}
        for combo in combinations:
            key = stage_key("backend", src,
                            options_digest(_options_with(combo)))
            assert key not in keys, \
                f"options {combo} and {keys[key]} alias backend key {key}"
            keys[key] = combo

    def test_option_independent_stages_share_keys_across_flags(self):
        """The structural fact behind near-repeat partial hits."""
        source = "int main(void){return 0;}"
        for combo in [()] + [(f,) for f in FLAGS]:
            request = ServeRequest(source, options=_options_with(combo))
            keys = request.keys()
            baseline = ServeRequest(source).keys()
            for stage in ("frontend", "analyze", "check"):
                assert keys[stage] == baseline[stage]
            if combo:
                assert keys["backend"] != baseline["backend"]

    def test_source_digest_ignores_filename_but_not_macros(self):
        source = "int main(void){return N;}"
        assert ServeRequest(source, filename="a.c").keys() \
            == ServeRequest(source, filename="b.c").keys()
        assert source_digest(source, {"N": "1"}) \
            != source_digest(source, {"N": "2"})
        assert source_digest(source, {"N": "1"}) != source_digest(source)

    def test_key_embeds_the_stage_name(self):
        src = source_digest("x")
        names = {stage_key(stage, src) for stage in STAGES}
        assert len(names) == len(STAGES)


class TestRoundTrip:
    @pytest.mark.parametrize("root", ["memory", "disk"])
    def test_json_and_pickle_codecs(self, root, tmp_path, metrics):
        store = ResultStore(None if root == "memory" else str(tmp_path))
        payload = {"frame_sizes": {"main": 16}, "metric": {"main": 20}}
        store.put("backend:abc:def", payload)
        assert store.get("backend:abc:def") == payload
        blob = {"nested": (1, 2, {"three"})}        # not JSON-able
        store.put("frontend:abc", blob, codec="pickle")
        assert store.get("frontend:abc", codec="pickle") == blob
        assert _counter("store.backend.hits") == 1
        assert _counter("store.frontend.hits") == 1
        assert _counter("store.poisoned") == 0

    @pytest.mark.parametrize("root", ["memory", "disk"])
    def test_miss_is_counted_per_stage(self, root, tmp_path, metrics):
        store = ResultStore(None if root == "memory" else str(tmp_path))
        assert store.get("analyze:nothing") is None
        assert _counter("store.analyze.misses") == 1
        assert _counter("store.misses") == 1


class TestPoisonDetection:
    """A poisoned entry is dropped and recomputed, never returned."""

    @pytest.mark.parametrize("root", ["memory", "disk"])
    def test_corrupted_payload(self, root, tmp_path, metrics):
        store = ResultStore(None if root == "memory" else str(tmp_path))
        key = "backend:abc:def"
        store.put(key, {"value": 1})
        entry = json.loads(store.raw_read(key))
        entry["payload"] = {"value": 2}             # flip without re-hashing
        store.raw_write(key, json.dumps(entry))
        assert store.get(key) is None
        assert _counter("store.poisoned") == 1
        # The entry is gone: a fresh put repairs the store.
        assert key not in store
        store.put(key, {"value": 1})
        assert store.get(key) == {"value": 1}

    def test_truncated_entry(self, tmp_path, metrics):
        store = ResultStore(str(tmp_path))
        store.put("check:abc", {"ok": True})
        text = store.raw_read("check:abc")
        store.raw_write("check:abc", text[:len(text) // 2])
        assert store.get("check:abc") is None
        assert _counter("store.poisoned") == 1

    def test_cross_key_substitution(self, metrics):
        # A valid entry written under another key must not be served:
        # the embedded key is part of the integrity check.
        store = ResultStore()
        store.put("analyze:aaa", {"certificate": "A"})
        store.put("analyze:bbb", {"certificate": "B"})
        store.raw_write("analyze:aaa", store.raw_read("analyze:bbb"))
        assert store.get("analyze:aaa") is None
        assert _counter("store.poisoned") == 1
        assert store.get("analyze:bbb") == {"certificate": "B"}

    def test_wrong_codec_is_poison(self, metrics):
        store = ResultStore()
        store.put("frontend:abc", {"x": 1}, codec="pickle")
        assert store.get("frontend:abc", codec="json") is None
        assert _counter("store.poisoned") == 1

    def test_pipeline_recomputes_through_poison(self, metrics):
        # End to end: poison the analyze entry of a warmed pipeline and
        # re-run — the stage recomputes and the answer is unchanged.
        store = ResultStore()
        request = ServeRequest("int f(void) { return 1; } "
                               "int main(void) { return f(); }")
        first = run_pipeline(request, store)
        key = request.keys()["analyze"]
        store.raw_write(key, store.raw_read(key)[:-10])
        second = run_pipeline(request, store)
        assert second["stages"]["analyze"] == "miss"
        assert second["stages"]["frontend"] == "hit"
        assert second["bounds"] == first["bounds"]
        assert _counter("store.poisoned") == 1


class TestEviction:
    """Size-capped, pin-aware, oldest-first."""

    def _filled(self, max_bytes: int) -> ResultStore:
        store = ResultStore(max_bytes=max_bytes)
        return store

    def test_cap_is_honored(self, metrics):
        store = ResultStore(max_bytes=2000)
        for index in range(40):
            store.put(f"backend:src{index}:opt", {"pad": "x" * 100})
        assert store.size_bytes() <= 2000
        assert _counter("store.evictions") > 0

    def test_eviction_is_oldest_first(self, metrics):
        store = ResultStore(max_bytes=8_000)
        for index in range(20):
            store.put(f"backend:src{index}:opt", {"pad": "x" * 100})
        store.get("backend:src0:opt")               # refresh the LRU stamp
        for index in range(20, 40):
            store.put(f"backend:src{index}:opt", {"pad": "x" * 100})
        # The refreshed entry survived; the stale neighbors did not.
        assert "backend:src0:opt" in store
        assert "backend:src1:opt" not in store

    def test_pinned_entries_are_never_evicted(self, metrics):
        store = ResultStore(max_bytes=1500)
        with store.pinned("backend:hot:opt"):
            store.put("backend:hot:opt", {"pad": "x" * 100})
            for index in range(40):
                store.put(f"backend:cold{index}:opt", {"pad": "x" * 100})
            # Massive pressure, yet the in-flight entry is still there...
            assert "backend:hot:opt" in store
        # ...and pins are refcounts: after release it is fair game.
        store.pin("backend:hot:opt")
        store.pin("backend:hot:opt")
        store.unpin("backend:hot:opt")
        assert "backend:hot:opt" in store
        store.unpin("backend:hot:opt")
        for index in range(40, 80):
            store.put(f"backend:cold{index}:opt", {"pad": "x" * 100})
        assert "backend:hot:opt" not in store

    def test_disk_store_cap(self, tmp_path, metrics):
        store = ResultStore(str(tmp_path), max_bytes=2000)
        for index in range(40):
            store.put(f"backend:src{index}:opt", {"pad": "x" * 100})
        assert store.size_bytes() <= 2000
        assert _counter("store.evictions") > 0

    @pytest.mark.parametrize("root", [None, "disk"])
    def test_occupancy_gauge_tracks_puts(self, tmp_path, metrics, root):
        """``store.bytes`` makes the LRU cap observable on /metrics."""
        store = ResultStore(str(tmp_path) if root else None,
                            max_bytes=1 << 20)
        assert "store.bytes" not in obs.snapshot()["gauges"]
        store.put("backend:src0:opt", {"pad": "x" * 100})
        first = obs.snapshot()["gauges"]["store.bytes"]
        assert first > 0
        store.put("backend:src1:opt", {"pad": "x" * 100})
        assert obs.snapshot()["gauges"]["store.bytes"] > first
        assert obs.snapshot()["gauges"]["store.bytes"] \
            == store.size_bytes()

    def test_occupancy_gauge_reflects_eviction(self, metrics):
        store = ResultStore(max_bytes=2000)
        for index in range(40):
            store.put(f"backend:src{index}:opt", {"pad": "x" * 100})
        assert _counter("store.evictions") > 0
        assert obs.snapshot()["gauges"]["store.bytes"] <= 2000
