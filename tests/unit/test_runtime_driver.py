"""Unit tests for the builtin runtime and the top-level driver."""

import math

import pytest

from repro.driver import (CompilerOptions, VerifiedBounds, compile_c,
                          verify_stack_bounds)
from repro.errors import DynamicError, UndefinedBehaviorError
from repro.events.trace import Converges, IOEvent
from repro.memory.values import VFloat, VInt, VPtr
from repro.runtime import EXTERNAL_INFO, call_external, is_known_external


def _alloc(size):
    return VPtr(99, 0)


class TestRuntime:
    def test_print_int_event(self):
        result, event = call_external("print_int", [VInt(-5)], _alloc)
        assert event == IOEvent("print_int", [-5], 0)

    def test_print_outputs_collected(self):
        output = []
        call_external("print_int", [VInt(3)], _alloc, output)
        call_external("print_char", [VInt(65)], _alloc, output)
        call_external("print_float", [VFloat(0.5)], _alloc, output)
        assert output == [3, "A", 0.5]

    def test_math_builtins(self):
        result, event = call_external("sqrt", [VFloat(9.0)], _alloc)
        assert result == VFloat(3.0)
        result, _ = call_external("pow", [VFloat(2.0), VFloat(10.0)], _alloc)
        assert result == VFloat(1024.0)

    def test_math_domain_error_is_nan(self):
        result, _ = call_external("sqrt", [VFloat(-1.0)], _alloc)
        assert result.value != result.value

    def test_malloc_event_carries_size_not_pointer(self):
        result, event = call_external("malloc", [VInt(16)], _alloc)
        assert event == IOEvent("malloc", [16], 0)
        assert result == VPtr(99, 0)

    def test_abort_raises(self):
        with pytest.raises(DynamicError):
            call_external("abort", [], _alloc)

    def test_arity_checked(self):
        with pytest.raises(UndefinedBehaviorError):
            call_external("sin", [], _alloc)

    def test_wrong_class_checked(self):
        with pytest.raises(UndefinedBehaviorError):
            call_external("sin", [VInt(1)], _alloc)

    def test_unknown_external(self):
        with pytest.raises(DynamicError):
            call_external("nonsense", [], _alloc)
        assert not is_known_external("nonsense")
        assert is_known_external("sin")

    def test_external_info_consistent(self):
        for name, (observable, arity, _rf) in EXTERNAL_INFO.items():
            assert arity >= 0
            assert isinstance(observable, bool)


class TestDriver:
    SOURCE = ("int helper(int x) { return x * 2; } "
              "int main() { print_int(helper(21)); return 0; }")

    def test_compile_c_produces_all_levels(self):
        compilation = compile_c(self.SOURCE)
        assert compilation.clight.function("main")
        assert "main" in compilation.rtl.functions
        assert "main" in compilation.linear.functions
        assert "main" in compilation.mach.functions
        assert "main" in compilation.asm.functions

    def test_macros_forwarded(self):
        compilation = compile_c("int main() { return N; }",
                                macros={"N": "17"})
        behavior, _machine = compilation.run()
        assert behavior.return_code == 17

    def test_metric_covers_all_functions(self):
        compilation = compile_c(self.SOURCE)
        assert set(compilation.frame_sizes) == {"helper", "main"}
        for name, sf in compilation.frame_sizes.items():
            assert compilation.metric.cost(name) == sf + 4

    def test_verify_stack_bounds_end_to_end(self):
        bounds = verify_stack_bounds(self.SOURCE)
        table = bounds.all_bytes()
        assert set(table) == {"helper", "main"}
        assert table["main"] >= table["helper"]
        assert bounds.stack_requirement() == table["main"]

    def test_verified_program_runs_at_bound(self):
        bounds = verify_stack_bounds(self.SOURCE)
        behavior, machine = bounds.compilation.run(
            stack_bytes=bounds.stack_requirement() + 4)
        assert isinstance(behavior, Converges)
        assert machine.measured_stack_usage == bounds.stack_requirement() - 4

    def test_options_disable_passes(self):
        options = CompilerOptions(constprop=False, deadcode=False)
        compilation = compile_c(self.SOURCE, options=options)
        behavior, _machine = compilation.run()
        assert behavior.return_code == 0

    def test_spill_everything_inflates_frames(self):
        default = compile_c(self.SOURCE)
        spilled = compile_c(self.SOURCE,
                            options=CompilerOptions(spill_everything=True))
        assert spilled.frame_sizes["main"] >= default.frame_sizes["main"]
        behavior, _machine = spilled.run()
        assert behavior.return_code == 0

    def test_symbolic_bounds_exposed(self):
        bounds = verify_stack_bounds(self.SOURCE)
        assert "M(helper)" in repr(bounds.symbolic("main"))

    def test_inexact_derivation_check_raises(self, monkeypatch):
        """A sampled (non-exact) derivation re-check must raise
        AnalysisError — a bare assert would vanish under ``python -O``
        (regression for the guard in verify_stack_bounds)."""
        from repro.analyzer import AnalysisResult
        from repro.errors import AnalysisError
        from repro.logic.checker import CheckReport

        def sampled_check(self, externals=None):
            report = CheckReport()
            report.nodes = 1
            report.sampled_conditions = 1
            return report

        monkeypatch.setattr(AnalysisResult, "check", sampled_check)
        with pytest.raises(AnalysisError, match="sampled"):
            verify_stack_bounds(self.SOURCE)
        # With the re-check disabled the sampled report is never consulted.
        bounds = verify_stack_bounds(self.SOURCE, check_derivations=False)
        assert bounds.stack_requirement() > 0
