"""Machine locations: physical registers and stack slots.

The register file is x86-32-like: four allocatable integer registers
(EAX, EBX, ECX, EDX) with ESI/EDI reserved as assembler scratch, and six
allocatable XMM registers with XMM6/XMM7 reserved.  ESP is the stack
pointer and is never allocatable (there is no frame pointer — the paper's
ASMsz does all frame addressing with ESP arithmetic).
"""

from __future__ import annotations

INT_REGS = ("eax", "ebx", "ecx", "edx")
INT_SCRATCH = ("esi", "edi")
FLOAT_REGS = ("xmm0", "xmm1", "xmm2", "xmm3", "xmm4", "xmm5")
FLOAT_SCRATCH = ("xmm6", "xmm7")

RESULT_INT = "eax"
RESULT_FLOAT = "xmm0"


class Loc:
    """A machine location."""

    __slots__ = ()

    @property
    def is_float_class(self) -> bool:
        raise NotImplementedError

    @property
    def is_register(self) -> bool:
        return isinstance(self, (LReg, LFReg))


class LReg(Loc):
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    @property
    def is_float_class(self) -> bool:
        return False

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LReg) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("LReg", self.name))


class LFReg(Loc):
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    @property
    def is_float_class(self) -> bool:
        return True

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LFReg) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("LFReg", self.name))


class LSlot(Loc):
    """A spill slot; the Mach layout pass assigns its byte offset."""

    __slots__ = ("index", "_is_float")

    def __init__(self, index: int, is_float: bool) -> None:
        self.index = index
        self._is_float = is_float

    @property
    def is_float_class(self) -> bool:
        return self._is_float

    def __repr__(self) -> str:
        marker = "f" if self._is_float else "i"
        return f"slot{marker}{self.index}"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, LSlot) and other.index == self.index
                and other._is_float == self._is_float)

    def __hash__(self) -> int:
        return hash(("LSlot", self.index, self._is_float))
