/* CertiKOS process-management module (simplified analog of the
 * development version's proc.c analyzed in Table 1).  Thread control
 * blocks, per-channel ready queues as doubly linked lists threaded
 * through the TCB array, kernel-context creation and a round-robin
 * scheduler.  Functions match Table 1: enqueue, dequeue, kctxt_new,
 * sched_init, tdqueue_init, thread_init, thread_spawn, plus main. */

#define NUM_PROC 64
#define NUM_CHAN 8
#define TD_FREE 0
#define TD_READY 1
#define TD_RUN 2
#define TD_DEAD 3
#define KCTXT_SIZE 6

typedef unsigned int u32;

struct tcb {
    int state;
    int prev;
    int next;
    int chan;
    u32 kctxt[KCTXT_SIZE];   /* esp, edi, esi, ebx, ebp, eip */
};

struct tdq {
    int head;
    int tail;
};

struct tcb tcbs[NUM_PROC];
struct tdq tdqs[NUM_CHAN];
u32 stack_tops[NUM_PROC];
int cur_pid = -1;

/* Append thread pid to channel chid's ready queue. */
void enqueue(int chid, int pid) {
    int tail = tdqs[chid].tail;
    if (tail == -1) {
        tdqs[chid].head = pid;
    } else {
        tcbs[tail].next = pid;
    }
    tcbs[pid].prev = tail;
    tcbs[pid].next = -1;
    tcbs[pid].chan = chid;
    tcbs[pid].state = TD_READY;
    tdqs[chid].tail = pid;
}

/* Pop the head of channel chid's ready queue; -1 when empty. */
int dequeue(int chid) {
    int pid = tdqs[chid].head;
    if (pid == -1) {
        return -1;
    }
    tdqs[chid].head = tcbs[pid].next;
    if (tcbs[pid].next == -1) {
        tdqs[chid].tail = -1;
    } else {
        tcbs[tcbs[pid].next].prev = -1;
    }
    tcbs[pid].prev = -1;
    tcbs[pid].next = -1;
    return pid;
}

/* Set up a fresh kernel context for thread pid starting at entry. */
void kctxt_new(int pid, u32 entry, u32 stack_top) {
    int i;
    for (i = 0; i < KCTXT_SIZE; i++) {
        tcbs[pid].kctxt[i] = 0;
    }
    tcbs[pid].kctxt[0] = stack_top;
    tcbs[pid].kctxt[KCTXT_SIZE - 1] = entry;
}

void tdqueue_init() {
    int i;
    for (i = 0; i < NUM_CHAN; i++) {
        tdqs[i].head = -1;
        tdqs[i].tail = -1;
    }
}

void thread_init(int pid) {
    tcbs[pid].state = TD_FREE;
    tcbs[pid].prev = -1;
    tcbs[pid].next = -1;
    tcbs[pid].chan = -1;
    stack_tops[pid] = (u32)(pid + 1) * 4096;
}

/* Bring up the scheduler: queues first, then every TCB. */
void sched_init() {
    int i;
    tdqueue_init();
    for (i = 0; i < NUM_PROC; i++) {
        thread_init(i);
    }
    cur_pid = -1;
}

/* Allocate a TCB, build its context, and make it ready on channel 0. */
int thread_spawn(u32 entry) {
    int pid = -1;
    int i;
    for (i = 0; i < NUM_PROC; i++) {
        if (tcbs[i].state == TD_FREE) {
            pid = i;
            break;
        }
    }
    if (pid == -1) {
        return -1;
    }
    kctxt_new(pid, entry, stack_tops[pid]);
    enqueue(0, pid);
    return pid;
}

/* Round-robin: pick the next ready thread on channel 0. */
int sched_next() {
    int pid = dequeue(0);
    if (pid == -1) {
        return cur_pid;
    }
    if (cur_pid != -1) {
        enqueue(0, cur_pid);
    }
    tcbs[pid].state = TD_RUN;
    cur_pid = pid;
    return pid;
}

int main() {
    int i, pid, ok = 1;
    int spawned[8];

    sched_init();
    for (i = 0; i < 8; i++) {
        spawned[i] = thread_spawn((u32)(0x1000 + i));
        if (spawned[i] != i) ok = 0;
    }
    /* Spawned threads must come back in FIFO order. */
    for (i = 0; i < 8; i++) {
        pid = sched_next();
        if (pid != i) ok = 0;
        if (tcbs[pid].kctxt[KCTXT_SIZE - 1] != (u32)(0x1000 + pid)) ok = 0;
    }
    /* The round robin must now cycle through all eight. */
    for (i = 0; i < 16; i++) {
        pid = sched_next();
        if (pid < 0 || pid >= 8) ok = 0;
    }
    print_int(ok);
    return ok;
}
