"""Stack-usage measurement: the reproduction of the paper's ptrace tool.

The paper measured actual stack consumption of compiled programs with a
small Linux tool that forks the monitored process under ``ptrace`` and
tracks its stack pointer.  Our ASMsz machine records the same information
natively (the ESP low-watermark relative to ``main``'s entry); this
package packages it as experiment runners used by Figure 7 and the
"exactly 4 bytes" claim of §6.
"""

from repro.measure.monitor import (MeasuredRun, measure_c_program,
                                   measure_compilation, minimal_stack)

__all__ = ["MeasuredRun", "measure_compilation", "measure_c_program",
           "minimal_stack"]
