"""The block memory used from C down to Mach.

Memory is a finite map from block identifiers to arrays of *symbolic
bytes*.  A symbolic byte is either a concrete byte, a fragment of a pointer
(pointers are opaque ``(block, offset)`` pairs that cannot be inspected a
byte at a time), or undefined.  This is CompCert's ``memval`` construction
and it is what lets the same memory serve languages in which pointer values
are still abstract.

Freed blocks stay in the map with a tombstone, realizing the paper's ``•``
marker: any access to a freed block goes wrong instead of silently aliasing
a reallocation.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import MemoryError_
from repro.memory.chunks import Chunk
from repro.memory.values import VFloat, VInt, VPtr, VUndef, Value


class Pointer:
    """Convenience alias used in signatures; a pointer is just a VPtr."""

    __slots__ = ()


class _ByteCell:
    """A concrete byte."""

    __slots__ = ("byte",)

    def __init__(self, byte: int) -> None:
        self.byte = byte & 0xFF


class _PtrFragment:
    """Byte ``index`` (0..3) of the pointer value ``ptr``."""

    __slots__ = ("ptr", "index")

    def __init__(self, ptr: VPtr, index: int) -> None:
        self.ptr = ptr
        self.index = index


_UNDEF_CELL = None  # undefined contents are represented by None

#: Byte cells are immutable, so all 256 of them are preallocated and
#: shared.  This turns every concrete store into table lookups instead of
#: per-byte object allocations — the dominant cost of the interpreter's
#: ``Pload``/``Pstore`` traffic through the block memory.
_BYTE_CELLS = tuple(_ByteCell(byte) for byte in range(256))


class _Block:
    __slots__ = ("size", "cells", "alive", "tag")

    def __init__(self, size: int, tag: str) -> None:
        self.size = size
        self.cells: list = [_UNDEF_CELL] * size
        self.alive = True
        self.tag = tag


class Memory:
    """A growable collection of disjoint memory blocks."""

    def __init__(self) -> None:
        self._blocks: dict[int, _Block] = {}
        self._next_block = 1
        # High-watermark of simultaneously live bytes, for diagnostics.
        self.live_bytes = 0
        self.peak_live_bytes = 0

    # -- allocation ---------------------------------------------------------

    def alloc(self, size: int, tag: str = "") -> VPtr:
        """Allocate a fresh block of ``size`` undefined bytes."""
        if size < 0:
            raise MemoryError_(f"allocation of negative size {size}")
        ident = self._next_block
        self._next_block += 1
        self._blocks[ident] = _Block(size, tag)
        self.live_bytes += size
        self.peak_live_bytes = max(self.peak_live_bytes, self.live_bytes)
        return VPtr(ident, 0)

    def free(self, ptr: VPtr) -> None:
        """Free a whole block; the pointer must reference offset 0."""
        block = self._require_block(ptr.block, "free")
        if ptr.offset != 0:
            raise MemoryError_(f"free of interior pointer {ptr!r}")
        block.alive = False
        block.cells = []
        self.live_bytes -= block.size

    def block_size(self, block_id: int) -> int:
        return self._require_block(block_id, "size query").size

    def is_alive(self, block_id: int) -> bool:
        block = self._blocks.get(block_id)
        return block is not None and block.alive

    def blocks(self) -> Iterable[int]:
        return self._blocks.keys()

    # -- typed access -------------------------------------------------------

    def load(self, chunk: Chunk, ptr: VPtr) -> Value:
        """Load a value through ``chunk`` at ``ptr``.

        Loading bytes that are all concrete decodes an integer or a float;
        loading the four fragments of one pointer in order reconstructs the
        pointer; anything mixed or undefined loads :class:`VUndef` (and it
        is the *use* of that undef that subsequently goes wrong, exactly as
        in CompCert).
        """
        if not isinstance(ptr, VPtr):
            raise MemoryError_(f"load through non-pointer value {ptr!r}")
        return self.load_at(chunk, ptr.block, ptr.offset)

    def load_at(self, chunk: Chunk, block_id: int, offset: int) -> Value:
        """:meth:`load` for callers that already peeled the pointer apart.

        The decoded interpreters fuse ``load(base + displacement)`` into
        one call, skipping the intermediate ``VPtr`` allocation; ``offset``
        must already be in unsigned 32-bit representation.
        """
        block = self._blocks.get(block_id)
        if block is None or not block.alive:
            self._require_block(block_id, "load")  # raises with the details
        size = chunk.size
        if offset % chunk.alignment != 0:
            raise MemoryError_(
                f"misaligned load: offset {offset} for chunk {chunk.value}"
            )
        if offset + size > block.size:
            raise MemoryError_(
                f"load of {size} bytes at offset {offset} "
                f"overflows block of {block.size} bytes ({block.tag})"
            )
        cells = block.cells[offset : offset + size]
        try:
            # Fast path: all-concrete bytes.  Only _ByteCell has a ``byte``
            # attribute, so fragments and undef fall through via
            # AttributeError without a per-byte isinstance sweep.  Word
            # loads (the overwhelmingly common case) assemble the integer
            # directly, skipping the bytes object and decode dispatch.
            if chunk is Chunk.INT32:
                c0, c1, c2, c3 = cells
                return VInt(c0.byte | (c1.byte << 8) | (c2.byte << 16)
                            | (c3.byte << 24))
            raw = bytes([cell.byte for cell in cells])
        except AttributeError:
            if chunk is Chunk.INT32:
                c0 = cells[0]
                # A fragment group is written by a single store, so all
                # four cells normally share one VPtr object: check
                # identity first, equality as the semantic backstop.
                if type(c0) is _PtrFragment and c0.index == 0:
                    ptr = c0.ptr
                    c1, c2, c3 = cells[1], cells[2], cells[3]
                    if (type(c1) is _PtrFragment and c1.index == 1
                            and (c1.ptr is ptr or c1.ptr == ptr)
                            and type(c2) is _PtrFragment and c2.index == 2
                            and (c2.ptr is ptr or c2.ptr == ptr)
                            and type(c3) is _PtrFragment and c3.index == 3
                            and (c3.ptr is ptr or c3.ptr == ptr)):
                        return ptr
            return VUndef()
        if chunk.is_float:
            return VFloat(chunk.decode_float(raw))
        return VInt(chunk.decode_int(raw))

    def store(self, chunk: Chunk, ptr: VPtr, value: Value) -> None:
        """Store ``value`` through ``chunk`` at ``ptr``."""
        if not isinstance(ptr, VPtr):
            raise MemoryError_(f"store through non-pointer value {ptr!r}")
        self.store_at(chunk, ptr.block, ptr.offset, value)

    def store_at(self, chunk: Chunk, block_id: int, offset: int,
                 value: Value) -> None:
        """:meth:`store` for callers that already peeled the pointer apart.

        Like :meth:`load_at`, this lets the decoded interpreters fuse
        ``store(base + displacement, v)`` without building the address
        ``VPtr``; ``offset`` must be in unsigned 32-bit representation.
        The access checks run before the value is inspected, preserving
        the error order of :meth:`store`.
        """
        block = self._blocks.get(block_id)
        if block is None or not block.alive:
            self._require_block(block_id, "store")  # raises with the details
        size = chunk.size
        if offset % chunk.alignment != 0:
            raise MemoryError_(
                f"misaligned store: offset {offset} for chunk {chunk.value}"
            )
        if offset + size > block.size:
            raise MemoryError_(
                f"store of {size} bytes at offset {offset} "
                f"overflows block of {block.size} bytes ({block.tag})"
            )
        base = offset
        if isinstance(value, VPtr):
            if chunk is not Chunk.INT32:
                raise MemoryError_(f"pointer stored through non-word chunk {chunk}")
            new_cells: list = [_PtrFragment(value, index) for index in range(4)]
        elif isinstance(value, VInt):
            if chunk is Chunk.INT32:
                v = value.value
                new_cells = [_BYTE_CELLS[v & 0xFF], _BYTE_CELLS[(v >> 8) & 0xFF],
                             _BYTE_CELLS[(v >> 16) & 0xFF], _BYTE_CELLS[v >> 24]]
            elif chunk.is_float:
                raise MemoryError_("integer stored through float chunk")
            else:
                raw = chunk.encode_int(value.value)
                new_cells = [_BYTE_CELLS[byte] for byte in raw]
        elif isinstance(value, VFloat):
            if not chunk.is_float:
                raise MemoryError_("float stored through integer chunk")
            raw = chunk.encode_float(value.value)
            new_cells = [_BYTE_CELLS[byte] for byte in raw]
        elif isinstance(value, VUndef):
            new_cells = [_UNDEF_CELL] * chunk.size
        else:
            raise MemoryError_(f"cannot store value {value!r}")
        block.cells[base : base + size] = new_cells

    def load_bytes(self, ptr: VPtr, length: int) -> bytes:
        """Read ``length`` concrete bytes (goes wrong on undef / fragments)."""
        block = self._require_block(ptr.block, "load_bytes")
        self._check_range(block, ptr, length, "load_bytes")
        out = bytearray()
        for cell in block.cells[ptr.offset : ptr.offset + length]:
            if not isinstance(cell, _ByteCell):
                raise MemoryError_("load_bytes through undefined or pointer bytes")
            out.append(cell.byte)
        return bytes(out)

    def store_bytes(self, ptr: VPtr, data: bytes) -> None:
        """Write concrete bytes (used for global initializers)."""
        block = self._require_block(ptr.block, "store_bytes")
        self._check_range(block, ptr, len(data), "store_bytes")
        block.cells[ptr.offset : ptr.offset + len(data)] = [
            _BYTE_CELLS[byte] for byte in data
        ]

    # -- internals ----------------------------------------------------------

    def _require_block(self, block_id: int, what: str) -> _Block:
        block = self._blocks.get(block_id)
        if block is None:
            raise MemoryError_(f"{what} of unknown block b{block_id}")
        if not block.alive:
            raise MemoryError_(f"{what} of freed block b{block_id} ({block.tag})")
        return block

    @staticmethod
    def _check_range(block: _Block, ptr: VPtr, length: int, what: str) -> None:
        if ptr.offset + length > block.size:
            raise MemoryError_(
                f"{what} of {length} bytes at offset {ptr.offset} "
                f"overflows block of {block.size} bytes ({block.tag})"
            )

