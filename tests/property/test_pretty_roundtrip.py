"""Round-trip property: parse → pretty-print → parse is behaviorally
the identity.

The printed source is re-parsed, re-compiled through the whole pipeline,
and must produce the *same ASMsz behavior* (trace and return code) as the
original — a strong joint test of parser, printer and determinism.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.c.parser import parse
from repro.c.pretty import pretty_program
from repro.driver import compile_c
from repro.programs.catalog import ALL_RUNNABLE
from repro.programs.loader import load_source
from repro.testing import generate_program

import pytest

SETTINGS = settings(max_examples=15, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def roundtrip_equal(source, fuel=100_000_000):
    printed = pretty_program(parse(source))
    original = compile_c(source)
    reparsed = compile_c(printed)
    b1, _m1 = original.run(fuel=fuel)
    b2, _m2 = reparsed.run(fuel=fuel)
    assert b1 == b2, f"behaviors differ after round trip:\n{printed[:800]}"
    return printed


@SETTINGS
@given(st.integers(0, 10_000))
def test_random_programs_roundtrip(seed):
    roundtrip_equal(generate_program(seed, max_functions=3, max_depth=2))


@pytest.mark.parametrize("path", [p for p in ALL_RUNNABLE
                                  if p != "paper_example.c"])
def test_benchmarks_roundtrip(path):
    # paper_example.c is excluded only because of its #ifndef defaults;
    # everything else must survive printing verbatim.
    roundtrip_equal(load_source(path))


def test_printer_is_stable():
    """pretty(parse(pretty(parse(s)))) == pretty(parse(s)) — printing is
    a normal form."""
    source = load_source("mibench/bitcount.c")
    once = pretty_program(parse(source))
    twice = pretty_program(parse(once))
    assert once == twice
