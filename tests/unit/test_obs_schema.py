"""Schema smoke test: validate real ``--trace-out``/``--metrics-out`` files.

The validators in :mod:`repro.obs.export` are the executable definition
of the export formats; this test runs actual CLI commands and feeds
their output back through them, so the formats documented in
``docs/OBSERVABILITY.md`` cannot drift silently.
"""

import json

import pytest

from repro import obs
from repro.__main__ import main
from repro.obs.export import validate_metrics_document, validate_spans_jsonl

SOURCE = ("int helper(int x) { return x + 1; } "
          "int main() { print_int(helper(41)); return 0; }")


@pytest.fixture(autouse=True)
def _reset_obs():
    yield
    obs.disable()
    obs.reset()


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return str(path)


class TestCliExports:
    def test_bounds_exports_validate(self, program_file, tmp_path, capsys):
        spans = tmp_path / "spans.jsonl"
        metrics = tmp_path / "metrics.json"
        assert main(["bounds", program_file, "--check",
                     "--trace-out", str(spans),
                     "--metrics-out", str(metrics)]) == 0
        count = validate_spans_jsonl(spans.read_text().splitlines())
        assert count > 0
        validate_metrics_document(json.loads(metrics.read_text()))

    def test_run_exports_validate(self, program_file, tmp_path, capsys):
        spans = tmp_path / "spans.jsonl"
        metrics = tmp_path / "metrics.json"
        assert main(["run", program_file,
                     "--trace-out", str(spans),
                     "--metrics-out", str(metrics)]) == 0
        validate_spans_jsonl(spans.read_text().splitlines())
        document = json.loads(metrics.read_text())
        validate_metrics_document(document)
        # The execution layer reported its counters.
        assert document["counters"]["interp.asm.runs"] >= 1
        assert document["derived"]["interp.asm.steps_per_s"] > 0

    def test_chrome_trace_is_loadable(self, program_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["run", program_file, "--trace-out", str(trace)]) == 0
        document = json.loads(trace.read_text())
        assert isinstance(document["traceEvents"], list)
        for event in document["traceEvents"]:
            assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid"}

    def test_fuzz_exports_merge_worker_deltas(self, tmp_path, capsys):
        """A 2-worker campaign's metrics file carries both workers'
        telemetry and per-seed spans from inside the pool."""
        spans = tmp_path / "spans.jsonl"
        metrics = tmp_path / "metrics.json"
        assert main(["fuzz", "--seeds", "2", "--jobs", "2", "--no-cache",
                     "--no-shrink", "--status-interval", "0",
                     "--trace-out", str(spans),
                     "--metrics-out", str(metrics)]) == 0
        assert validate_spans_jsonl(spans.read_text().splitlines()) > 0
        document = json.loads(metrics.read_text())
        validate_metrics_document(document)
        counters = document["counters"]
        assert counters["campaign.seeds"] == 2
        assert counters["campaign.verdict.ok"] == 2
        worker_seed_counts = [value for name, value in counters.items()
                              if name.startswith("campaign.worker.")
                              and name.endswith(".seeds")]
        assert sum(worker_seed_counts) == 2
        # Per-seed spans were adopted from the workers.
        names = [json.loads(line).get("name")
                 for line in spans.read_text().splitlines()]
        assert names.count("campaign.seed") == 2
