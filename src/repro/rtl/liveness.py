"""Backward liveness analysis over RTL.

Produces, for every node, the set of registers live *after* the node
(`live-out`).  Consumed by dead-code elimination and by the register
allocator's interference construction.
"""

from __future__ import annotations

from repro.rtl import ast as rtl
from repro.rtl.dataflow import solve_backward

Fact = frozenset


def has_side_effect(instr: rtl.Instr) -> bool:
    """Instructions that must be kept even if their result is dead."""
    return isinstance(instr, (rtl.Istore, rtl.Icall, rtl.Ireturn, rtl.Icond))


def _make_transfer(conservative: bool):
    def transfer(_node: int, instr: rtl.Instr, live_out: Fact) -> Fact:
        live = set(live_out)
        defs = instr.defs()
        # A pure instruction whose destination is dead contributes no
        # uses: its operands need not stay live (this is what lets DCE
        # cascade).  The conservative variant — used by the register
        # allocator, which must stay correct even when dead instructions
        # are left in the code — keeps such uses live.
        if not conservative and defs and not has_side_effect(instr) \
                and not any(d in live_out for d in defs):
            return frozenset(live - set(defs))
        for d in defs:
            live.discard(d)
        live.update(instr.uses())
        return frozenset(live)

    return transfer


def _merge_sets(old: set, new: Fact) -> bool:
    size = len(old)
    old |= new
    return len(old) != size


def liveness(function: rtl.RTLFunction,
             conservative: bool = False) -> dict[int, Fact]:
    """Map node -> registers live after the node.

    Uses the solver's fused path: the live-out facts are grown in place
    (plain sets), so consumers get sets rather than frozensets — they only
    test membership and iterate, and a union per edge replaces the
    allocate-then-compare round trip.
    """
    return solve_backward(function, frozenset(), lambda a, b: a | b,
                          _make_transfer(conservative), lambda a, b: a == b,
                          merge=_merge_sets, copy=set)


def live_before(instr: rtl.Instr, live_out: Fact,
                conservative: bool = False) -> Fact:
    return _make_transfer(conservative)(0, instr, live_out)
