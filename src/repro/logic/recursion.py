"""Interactively developed specs for recursive functions (paper §4, Fig. 6).

A :class:`RecursiveSpec` is the executable form of a hand-written proof in
the quantitative logic with auxiliary state: a parametric bound ``P_f``
over the function's integer arguments, together with the *recurrence
structure* of the body — which calls the worst-case execution path makes,
with which argument transformations (the paper's choice of auxiliary
state ``Z -> Z - 1`` at each recursive call site).

Checking (:func:`check_spec`) is the executable surrogate for the Coq
side-condition proofs and comes in two parts:

* the **induction step**: for every parameter valuation in the declared
  verification domain, ``P_f(v) >= M(g) + P_g(args(v))`` must hold for
  every call obligation — after folding the parameters the comparison is
  ground max-plus and hence *exact for all stack metrics at once*;
* **structural consistency**: every obligation's callee has a spec (or a
  ground bound from the automatic analyzer), so specs compose with
  ``auto_bound`` results exactly as the paper composes the ``bsearch``
  proof into ``filter_find``.

Runtime validation against the Clight semantics and the ASMsz monitor is
layered on top by :mod:`repro.logic.soundness` and the test-suite.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.errors import DerivationError
from repro.logic.assertions import FunSpec
from repro.logic.bexpr import (BExpr, badd, bmetric, bound_le,
                               fold_with_params)

Params = dict  # parameter name -> int


class CallObligation:
    """One call the worst-case path performs: ``callee(args(params))``."""

    __slots__ = ("callee", "args")

    def __init__(self, callee: str, args: Params) -> None:
        self.callee = callee
        self.args = dict(args)

    def __repr__(self) -> str:
        return f"{self.callee}({self.args})"


class RecursiveSpec:
    """A manually proved parametric stack bound for one function.

    ``bound`` is ``P_f`` over ``params`` and *excludes* the function's own
    frame (Q:CALL adds ``M(f)`` at each call site, exactly as in the
    logic).  ``obligations`` maps a concrete parameter valuation to the
    call obligations of the body on that input's worst-case path.
    """

    def __init__(self, name: str, params: Sequence[str], bound: BExpr,
                 obligations: Callable[[Params], Iterable[CallObligation]],
                 domain: Mapping[str, Iterable[int]],
                 description: str = "") -> None:
        self.name = name
        self.params = list(params)
        self.bound = bound
        self.obligations = obligations
        self.domain = {name: list(values) for name, values in domain.items()}
        self.description = description

    def total_bound(self) -> BExpr:
        """The bound for *calling* the function (Table 2's entries)."""
        return badd(bmetric(self.name), self.bound)

    def total_bytes(self, metric, params: Params) -> int:
        """Instantiate with a compiler metric and concrete arguments."""
        from repro.logic.bexpr import evaluate

        value = evaluate(self.total_bound(), metric, params)
        if value == float("inf"):
            raise DerivationError(
                f"{self.name}: bound is infinite at {params}")
        return int(value)

    def fun_spec(self) -> FunSpec:
        """The Γ entry, so auto-analyzed callers can use this spec."""
        return FunSpec(self.name, self.params, self.bound, self.bound,
                       self.description)

    def __repr__(self) -> str:
        return f"RecursiveSpec({self.name}: {self.bound!r})"


class SpecTable:
    """A set of specs (recursive and ground) closed under obligations."""

    def __init__(self) -> None:
        self._bounds: dict[str, tuple[list[str], BExpr]] = {}
        self.recursive: dict[str, RecursiveSpec] = {}

    def add_recursive(self, spec: RecursiveSpec) -> None:
        self.recursive[spec.name] = spec
        self._bounds[spec.name] = (spec.params, spec.bound)

    def add_ground(self, name: str, bound: BExpr) -> None:
        """A constant bound, e.g. from the automatic analyzer."""
        self._bounds[name] = ([], bound)

    def callee_bound(self, callee: str, args: Params) -> BExpr:
        if callee not in self._bounds:
            raise DerivationError(
                f"obligation on {callee!r} but no spec is registered")
        params, bound = self._bounds[callee]
        missing = [p for p in params if p not in args]
        if missing:
            raise DerivationError(
                f"obligation on {callee!r} missing arguments {missing}")
        return fold_with_params(bound, args)


class InductionReport:
    """Result of checking one spec: how many instances were verified."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.instances = 0
        self.obligation_checks = 0

    def __repr__(self) -> str:
        return (f"InductionReport({self.name}: {self.instances} instances, "
                f"{self.obligation_checks} obligations)")


def check_spec(spec: RecursiveSpec, table: SpecTable) -> InductionReport:
    """Verify the induction step of ``spec`` over its whole domain.

    Every instance is a *ground* max-plus comparison, so each check is
    exact for all stack metrics; raises :class:`DerivationError` with the
    offending instance otherwise.
    """
    report = InductionReport(spec.name)
    missing = [name for name in spec.params if name not in spec.domain]
    if missing:
        raise DerivationError(
            f"{spec.name}: no verification domain for parameters {missing}; "
            "an unconstrained parameter would make the induction vacuous")
    empty = [name for name, values in spec.domain.items() if not values]
    if empty:
        raise DerivationError(
            f"{spec.name}: empty verification domain for {empty}; "
            "zero instances would make the induction pass vacuously")
    names = list(spec.domain)
    for combo in product(*(spec.domain[name] for name in names)):
        valuation: Params = dict(zip(names, combo))
        lhs = fold_with_params(spec.bound, valuation)
        report.instances += 1
        for obligation in spec.obligations(valuation):
            callee_bound = table.callee_bound(obligation.callee,
                                              obligation.args)
            rhs = badd(bmetric(obligation.callee), callee_bound)
            result = bound_le(rhs, lhs)
            report.obligation_checks += 1
            if not result.holds:
                raise DerivationError(
                    f"{spec.name}: induction step fails at {valuation} "
                    f"for {obligation!r}: needs {rhs!r}, has {lhs!r}")
            if not result.exact:
                raise DerivationError(
                    f"{spec.name}: non-ground side condition at {valuation}")
    return report


def check_table(table: SpecTable) -> dict[str, InductionReport]:
    """Check every recursive spec in the table."""
    return {name: check_spec(spec, table)
            for name, spec in table.recursive.items()}
