"""Call graphs of Clight programs, with recursion detection.

The automatic analyzer needs functions in bottom-up order of the call
graph.  Strongly connected components are computed with an iterative
Tarjan's algorithm (no recursion limit on deep call chains): singleton
SCCs analyze directly, self-recursive singletons go through the
ranking-function inference (:mod:`repro.analyzer.recursion`), and larger
components (mutual recursion) are rejected with the whole cycle named in
the error.  Indirect calls never appear here: the Clight lowering
devirtualizes them against the value analysis' candidate sets
(:mod:`repro.analyzer.values`), so this graph is always direct.
"""

from __future__ import annotations

from typing import Iterator

from repro.clight import ast as cl
from repro.errors import AnalysisError


class CallGraph:
    def __init__(self, program: cl.Program) -> None:
        self.program = program
        self.calls: dict[str, set[str]] = {}
        self.external_calls: dict[str, set[str]] = {}
        for name, function in program.functions.items():
            internal: set[str] = set()
            external: set[str] = set()
            for callee in _callees(function.body):
                if program.is_internal(callee):
                    internal.add(callee)
                else:
                    external.add(callee)
            self.calls[name] = internal
            self.external_calls[name] = external

    def callees(self, name: str) -> set[str]:
        return self.calls[name]

    def sccs(self) -> list[list[str]]:
        """Strongly connected components in reverse topological order.

        Iterative Tarjan: an explicit work stack replaces the recursive
        ``strongconnect``, so arbitrarily deep call chains (progen likes
        those) never approach the Python recursion limit — and nothing
        touches the process-global ``sys.setrecursionlimit``, which was
        not safe under the serve pool's concurrent requests.
        """
        index_counter = 0
        stack: list[str] = []
        lowlink: dict[str, int] = {}
        index: dict[str, int] = {}
        on_stack: set[str] = set()
        result: list[list[str]] = []

        for root in sorted(self.calls):
            if root in index:
                continue
            # Each frame is (node, iterator over its successors).
            work: list[tuple[str, Iterator[str]]] = []
            index[root] = lowlink[root] = index_counter
            index_counter += 1
            stack.append(root)
            on_stack.add(root)
            work.append((root, iter(sorted(self.calls[root]))))
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index:
                        index[succ] = lowlink[succ] = index_counter
                        index_counter += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(self.calls[succ]))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    result.append(component)
        return result

    def recursive_components(self) -> list[list[str]]:
        """SCCs that contain recursion (size > 1, or a self loop)."""
        out = []
        for component in self.sccs():
            if len(component) > 1:
                out.append(sorted(component))
            elif component[0] in self.calls[component[0]]:
                out.append(component)
        return out

    def topological_order(self) -> list[str]:
        """Callees before callers; raises on recursion.

        The raised :class:`AnalysisError` carries the recursive SCCs as
        structured data (``error.sccs``), so the recursion analyzer can
        dispatch on exactly which functions were recursive and serve
        responses can report them, without re-running SCC detection.
        """
        recursive = self.recursive_components()
        if recursive:
            pretty = "; ".join(" <-> ".join(c) for c in recursive)
            raise AnalysisError(
                f"the automatic analyzer does not support recursion: {pretty}",
                sccs=recursive)
        return [component[0] for component in self.sccs()]


def build_call_graph(program: cl.Program) -> CallGraph:
    return CallGraph(program)


def _callees(stmt: cl.Stmt) -> Iterator[str]:
    if isinstance(stmt, cl.SCall):
        yield stmt.callee
    elif isinstance(stmt, cl.SSeq):
        yield from _callees(stmt.first)
        yield from _callees(stmt.second)
    elif isinstance(stmt, cl.SIf):
        yield from _callees(stmt.then)
        yield from _callees(stmt.otherwise)
    elif isinstance(stmt, cl.SLoop):
        yield from _callees(stmt.body)
        yield from _callees(stmt.post)
    elif isinstance(stmt, cl.SBlock):
        yield from _callees(stmt.body)
