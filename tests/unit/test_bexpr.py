"""Unit tests for the bound-expression language."""

import math

import pytest

from repro.logic.bexpr import (BConst, BFrameDiff, BLog2, BMax, BMul, BParam,
                               BParamDiff, BScale, INFINITY, NotGround, TOP,
                               ZERO, badd, bconst, bmax, bmetric, bound_equal,
                               bound_le, bparam, evaluate, fold_with_params,
                               maxplus_normal_form, metric_atoms, param_names,
                               substitute_params)

M = {"f": 8, "g": 16, "h": 24}


class TestConstruction:
    def test_badd_drops_zero(self):
        assert repr(badd(bmetric("f"), ZERO)) == "M(f)"

    def test_badd_flattens(self):
        expr = badd(badd(bconst(1), bconst(2)), bconst(3))
        assert evaluate(expr) == 6

    def test_bmax_flattens_and_drops_zero(self):
        expr = bmax(bmax(bmetric("f"), ZERO), bmetric("g"))
        assert evaluate(expr, M) == 16

    def test_negative_constant_rejected(self):
        with pytest.raises(ValueError):
            bconst(-1)

    def test_operator_sugar(self):
        expr = bmetric("f") + 4
        assert evaluate(expr, M) == 12
        assert evaluate(3 * bmetric("f"), M) == 24


class TestEvaluation:
    def test_metric_atom(self):
        assert evaluate(bmetric("g"), M) == 16

    def test_missing_metric_raises(self):
        with pytest.raises(ValueError):
            evaluate(bmetric("f"))

    def test_param(self):
        assert evaluate(bparam("n"), params={"n": 7}) == 7

    def test_missing_param_raises(self):
        with pytest.raises(ValueError):
            evaluate(bparam("n"))

    def test_infinity_propagates(self):
        assert evaluate(badd(TOP, bconst(1))) == INFINITY
        assert evaluate(bmax(TOP, bconst(1))) == INFINITY

    def test_frame_diff(self):
        expr = BFrameDiff(bmax(bmetric("f"), bmetric("g")), bmetric("f"))
        assert evaluate(expr, M) == 8

    def test_frame_diff_clamps(self):
        expr = BFrameDiff(bconst(3), bconst(10))
        assert evaluate(expr) == 0

    def test_log2_conventions(self):
        assert evaluate(BLog2(bconst(0))) == 0
        assert evaluate(BLog2(bconst(1))) == 0
        assert evaluate(BLog2(bconst(2))) == 1
        assert evaluate(BLog2(bconst(3))) == 2  # ceiling
        assert evaluate(BLog2(bconst(1024))) == 10

    def test_log2_of_negative_is_infinite(self):
        expr = BLog2(BParamDiff(bparam("lo"), bparam("hi")))
        assert evaluate(expr, params={"lo": 1, "hi": 5}) == INFINITY

    def test_param_diff_clamped_at_top_level(self):
        expr = BParamDiff(bparam("a"), bparam("b"))
        assert evaluate(expr, params={"a": 2, "b": 5}) == 0

    def test_mul_and_scale(self):
        expr = BMul(bparam("n"), bmetric("f"))
        assert evaluate(expr, M, {"n": 3}) == 24
        assert evaluate(BScale(5, bmetric("f")), M) == 40


class TestStructure:
    def test_metric_atoms(self):
        expr = badd(bmetric("f"), bmax(bmetric("g"), bconst(4)))
        assert metric_atoms(expr) == {"f", "g"}

    def test_param_names(self):
        expr = BMul(bparam("n"), badd(bmetric("f"), bparam("k")))
        assert param_names(expr) == {"n", "k"}

    def test_substitute_params(self):
        expr = BMul(bparam("n"), bmetric("f"))
        inst = substitute_params(expr, {"n": bconst(4)})
        assert evaluate(inst, M) == 32


class TestNormalForm:
    def test_const(self):
        assert maxplus_normal_form(bconst(5)) == frozenset({(5, frozenset())})

    def test_add_distributes_over_max(self):
        # f + max(g, h) = max(f+g, f+h)
        expr = badd(bmetric("f"), bmax(bmetric("g"), bmetric("h")))
        terms = maxplus_normal_form(expr)
        assert len(terms) == 2

    def test_dominated_terms_pruned(self):
        # max(f, f + g) = f + g  (metrics are nonnegative)
        expr = bmax(bmetric("f"), badd(bmetric("f"), bmetric("g")))
        terms = maxplus_normal_form(expr)
        assert len(terms) == 1

    def test_scale_multiplies_atoms(self):
        terms = maxplus_normal_form(BScale(3, badd(bmetric("f"), bconst(2))))
        ((const, atoms),) = terms
        assert const == 6 and dict(atoms) == {"f": 3}

    def test_parametric_raises(self):
        with pytest.raises(NotGround):
            maxplus_normal_form(bparam("n"))


class TestOrder:
    def test_zero_is_bottom(self):
        result = bound_le(ZERO, BFrameDiff(bmetric("f"), bmetric("g")))
        assert result.holds and result.exact

    def test_monotone_in_atoms(self):
        assert bound_le(bmetric("f"), badd(bmetric("f"), bmetric("g"))).holds

    def test_max_upper_bound(self):
        small = bmetric("f")
        large = bmax(bmetric("f"), bmetric("g"))
        assert bound_le(small, large).holds
        assert not bound_le(large, small).holds

    def test_sum_not_below_max(self):
        # f + g <= max(f, g) must FAIL (choose f = g = 1).
        assert not bound_le(badd(bmetric("f"), bmetric("g")),
                            bmax(bmetric("f"), bmetric("g"))).holds

    def test_constants_compare(self):
        assert bound_le(bconst(3), bconst(4)).holds
        assert not bound_le(bconst(4), bconst(3)).holds

    def test_top_dominates(self):
        assert bound_le(badd(bmetric("f"), bconst(1000)), TOP).holds

    def test_frame_rewrite_makes_equal(self):
        total = bmax(bmetric("f"), bmetric("g"))
        framed = badd(bmetric("f"), BFrameDiff(total, bmetric("f")))
        result = bound_equal(framed, total)
        assert result.holds and result.exact

    def test_paper_figure5_shape(self):
        # {max(mf, mg)} f(); g() {max(mf, mg)}: both call bounds are
        # below the max.
        mf, mg = bmetric("f"), bmetric("g")
        total = bmax(mf, mg)
        assert bound_le(mf, total).holds
        assert bound_le(mg, total).holds

    def test_parametric_needs_domain(self):
        with pytest.raises(ValueError):
            bound_le(bparam("n"), bconst(10))

    def test_parametric_with_domain(self):
        result = bound_le(bparam("n"), bconst(10),
                          param_domains={"n": range(0, 11)})
        assert result.holds and not result.exact
        result = bound_le(bparam("n"), bconst(10),
                          param_domains={"n": range(0, 12)})
        assert not result.holds

    def test_parametric_scaled_metric(self):
        small = BMul(bparam("n"), bmetric("f"))
        large = BMul(badd(bparam("n"), bconst(1)), bmetric("f"))
        assert bound_le(small, large,
                        param_domains={"n": range(0, 50)}).holds


class TestFolding:
    def test_fold_to_ground(self):
        expr = BMul(badd(bconst(1), BLog2(bparam("n"))), bmetric("f"))
        ground = fold_with_params(expr, {"n": 16})
        assert evaluate(ground, M) == 5 * 8
        # ground expressions have exact comparisons
        assert bound_le(ground, BScale(5, bmetric("f"))).exact

    def test_fold_negative_diff_to_infinity_in_log(self):
        expr = BLog2(BParamDiff(bparam("hi"), bparam("lo")))
        assert evaluate(fold_with_params(expr, {"hi": 0, "lo": 4})) == INFINITY

    def test_fold_clamps_negative(self):
        expr = BParamDiff(bparam("a"), bparam("b"))
        folded = fold_with_params(expr, {"a": 1, "b": 9})
        assert evaluate(folded) == 0

    def test_fold_mixed_add(self):
        expr = badd(bmetric("f"), bparam("n"), bconst(2))
        folded = fold_with_params(expr, {"n": 5})
        assert evaluate(folded, M) == 8 + 7

    def test_fold_max(self):
        expr = bmax(bparam("n"), bmetric("f"))
        folded = fold_with_params(expr, {"n": 100})
        assert evaluate(folded, M) == 100

    def test_fold_consistent_with_evaluate(self):
        expr = badd(BMul(bparam("n"), bmetric("g")),
                    bmax(bmetric("f"), BScale(2, bparam("n"))))
        for n in (0, 1, 5, 33):
            folded = fold_with_params(expr, {"n": n})
            assert evaluate(folded, M) == evaluate(expr, M, {"n": n})
