#!/usr/bin/env python3
"""CI smoke gate for ``repro serve``: boot, load, probe, gate.

Boots the daemon in-process on an ephemeral port, replays a 20-request
mixed hot/cold client mix over the packaged catalog, runs a deliberate
saturation probe (concurrent chaos sleeps against a one-slot queue
server), writes the final ``/metrics`` snapshot to ``--metrics-out``
(the CI artifact), and gates:

* store hit-rate > 0 — the hot half of the mix must replay from the
  content-addressed store;
* zero 5xx other than the probe's deliberate 503s;
* every 200 body validates against the response schema;
* the codegen warm path: two ``probe`` requests for the same program
  execute at the verified bound on the codegen tier, and the second
  must reuse the compiled code object — exactly one codegen compile in
  the metrics, and the response says ``warm: true``;
* in-batch dedup: a 3-item ``POST /batch`` with one duplicate streams
  all three results but runs the pipeline twice — the duplicate comes
  back with a ``duplicate_of`` marker and ``serve.batch.deduped``
  counts it;
* restart warmth: a *subprocess* daemon fills a store directory, a
  second daemon on the same directory answers from the persisted
  artifacts — its probe reports ``codegen: "store"`` and its metrics
  show exactly zero codegen regenerations.

Exit 0 when all gates hold, 1 otherwise (one line per violated gate on
stderr).  Stdlib only, like everything it tests.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import urllib.error
import urllib.request

sys.path.insert(0, "src")

from repro.programs.loader import load_source                    # noqa: E402
from repro.serve import (BoundsServer, ServeConfig,              # noqa: E402
                         validate_response_text)

#: Cheap, auto-analyzable, structurally varied.
SAMPLE = ("mibench/bitcount.c", "mibench/crc32.c",
          "mibench/dijkstra.c", "mibench/fft.c")


def _post_path(port: int, path: str, payload: dict) -> tuple[int, str]:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=180) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


def _post(port: int, payload: dict) -> tuple[int, str]:
    return _post_path(port, "/verify", payload)


def _subprocess_round(store_dir: str, payload: dict) -> tuple[dict, int]:
    """Boot a daemon subprocess, run one probe, return (probe, compiles)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", "0", "--store-dir", store_dir],
        stderr=subprocess.PIPE, text=True, env=env)
    try:
        line = process.stderr.readline()
        if "serving certified bounds" not in line:
            raise RuntimeError(f"daemon failed to boot: {line!r}")
        port = int(line.split("http://127.0.0.1:")[1].split()[0])
        status, body = _post(port, dict(payload))
        if status != 200:
            raise RuntimeError(f"probe status {status}: {body[:200]}")
        probe = json.loads(body).get("probe") or {}
        compiles = _metrics(port).get("histograms", {}) \
            .get("codegen.compile_seconds", {}).get("count", 0)
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)
    return probe, compiles


def _metrics(port: int) -> dict:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics",
                                timeout=30) as response:
        return json.loads(response.read())


def mixed_load(port: int, requests: int) -> list[tuple[int, str]]:
    """``requests`` sequential POSTs cycling the sample: cold, then hot."""
    results = []
    for index in range(requests):
        path = SAMPLE[index % len(SAMPLE)]
        results.append(_post(port, {"source": load_source(path),
                                    "filename": path}))
    return results


def saturation_probe(port: int, clients: int = 6) -> list[int]:
    """Concurrent slow requests against a one-slot queue: some must 503."""
    statuses = [0] * clients
    source = "int main(void) { return 0; }"

    def client(index: int) -> None:
        statuses[index], _body = _post(
            port, {"source": source, "chaos": "sleep:0.4"})

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60)
    return statuses


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=20,
                        help="mixed hot/cold request count (default 20)")
    parser.add_argument("--metrics-out", default="serve-metrics.json",
                        help="where to write the final /metrics snapshot")
    args = parser.parse_args(argv)

    failures: list[str] = []

    # Phase 1: the serving mix, against a pooled daemon with a store.
    server = BoundsServer(ServeConfig(port=0, jobs=2, queue_depth=16,
                                      timeout_s=120.0,
                                      store_root=".repro-cache/serve-smoke"))
    server.start_background()
    port = server.bound_port
    print(f"# serve-smoke: daemon on port {port}, "
          f"{args.requests} mixed requests over {len(SAMPLE)} programs")
    results = mixed_load(port, args.requests)
    for index, (status, body) in enumerate(results):
        if status != 200:
            failures.append(f"request {index}: status {status}: {body[:200]}")
            continue
        try:
            validate_response_text(body)
        except ValueError as error:
            failures.append(f"request {index}: invalid response: {error}")
    snapshot = _metrics(port)
    server.stop(drain_timeout_s=30.0)

    hit_rate = snapshot.get("derived", {}).get("store.hit_rate", 0)
    statuses = sorted({status for status, _body in results})
    print(f"# serve-smoke: statuses {statuses}, store.hit_rate {hit_rate}")
    if not hit_rate > 0:
        failures.append(f"store hit-rate gate: {hit_rate} (expected > 0)")
    counters = snapshot.get("counters", {})
    bad_5xx = sum(value for name, value in counters.items()
                  if name.startswith("serve.responses.5"))
    if bad_5xx:
        failures.append(f"{bad_5xx} undiagnosed 5xx responses in phase 1")

    # Phase 2: the deliberate 503 probe, against a one-slot toy server.
    probe = BoundsServer(ServeConfig(port=0, jobs=0, queue_depth=1,
                                     timeout_s=30.0, store_root=None,
                                     allow_chaos=True))
    probe.start_background()
    statuses = saturation_probe(probe.bound_port)
    probe.stop(drain_timeout_s=10.0)
    print(f"# serve-smoke: saturation probe statuses {sorted(statuses)}")
    if 503 not in statuses:
        failures.append("saturation probe never drew a 503")
    if any(status not in (200, 503) for status in statuses):
        failures.append(f"probe drew non-200/503 statuses: {statuses}")

    # Phase 3: the codegen warm path, against an in-process server (the
    # pipeline, pool and metrics share one registry there, so the gate
    # reads exactly the compiles this phase caused).
    warm_server = BoundsServer(ServeConfig(port=0, jobs=0, queue_depth=4,
                                           timeout_s=120.0, store_root=None))
    warm_server.start_background()
    warm_port = warm_server.bound_port
    payload = {"source": load_source("mibench/dijkstra.c"),
               "filename": "mibench/dijkstra.c", "probe": True}
    probe_results = [_post(warm_port, dict(payload)) for _ in range(2)]
    warm_snapshot = _metrics(warm_port)
    warm_server.stop(drain_timeout_s=10.0)

    probe_bodies = []
    for index, (status, body) in enumerate(probe_results):
        if status != 200:
            failures.append(
                f"probe request {index}: status {status}: {body[:200]}")
            continue
        try:
            probe_bodies.append(validate_response_text(body))
        except ValueError as error:
            failures.append(f"probe request {index}: invalid: {error}")
    if len(probe_bodies) == 2:
        cold, hot = (body.get("probe") or {} for body in probe_bodies)
        print(f"# serve-smoke: probe cold warm={cold.get('warm')} "
              f"measured={cold.get('measured_bytes')}B of "
              f"{cold.get('stack_bytes')}B; hot warm={hot.get('warm')}")
        if not (cold.get("converged") and hot.get("converged")):
            failures.append("probe did not converge at the served bound")
        if cold.get("warm") is not False or hot.get("warm") is not True:
            failures.append(
                f"warm path broken: cold.warm={cold.get('warm')} "
                f"hot.warm={hot.get('warm')}")
    warm_counters = warm_snapshot.get("counters", {})
    codegen_hits = warm_counters.get("codegen.asm.cache.hits", 0)
    compiles = warm_snapshot.get("histograms", {}) \
        .get("codegen.compile_seconds", {}).get("count", 0)
    print(f"# serve-smoke: codegen compiles {compiles}, "
          f"cache hits {codegen_hits}")
    if not codegen_hits >= 1:
        failures.append(
            f"warm probe did not hit the codegen cache ({codegen_hits})")
    if compiles != 1:
        failures.append(
            f"warm path re-ran codegen: {compiles} compiles (expected 1)")

    # Phase 4: in-batch dedup, against the same in-process server shape.
    # Three items, first and last identical: the stream must carry all
    # three results but the pipeline must run only twice.
    batch_server = BoundsServer(ServeConfig(port=0, jobs=2, queue_depth=8,
                                            timeout_s=120.0,
                                            store_root=None))
    batch_server.start_background()
    batch_port = batch_server.bound_port
    item_a = {"source": load_source("mibench/crc32.c"),
              "filename": "mibench/crc32.c"}
    item_b = {"source": load_source("mibench/bitcount.c"),
              "filename": "mibench/bitcount.c"}
    status, body = _post_path(batch_port, "/batch",
                              {"items": [item_a, item_b, dict(item_a)]})
    batch_snapshot = _metrics(batch_port)
    batch_server.stop(drain_timeout_s=10.0)
    if status != 200:
        failures.append(f"batch: status {status}: {body[:200]}")
    else:
        lines = [json.loads(line) for line in body.splitlines()]
        header, footer = lines[0], lines[-1]
        by_index = {line["index"]: line for line in lines[1:-1]}
        print(f"# serve-smoke: batch items={header.get('items')} "
              f"unique={header.get('unique')} done={footer.get('done')}")
        if header.get("unique") != 2:
            failures.append(f"batch dedup missed: unique="
                            f"{header.get('unique')} (expected 2)")
        if footer.get("done") is not True:
            failures.append("batch stream has no done footer")
        if sorted(by_index) != [0, 1, 2]:
            failures.append(f"batch stream lost items: {sorted(by_index)}")
        elif by_index[2].get("duplicate_of") != 0:
            failures.append(f"duplicate item not marked: "
                            f"{by_index[2].get('duplicate_of')!r}")
        bad = [i for i, line in by_index.items() if line["status"] != 200]
        if bad:
            failures.append(f"batch items {bad} did not return 200")
    deduped = batch_snapshot.get("counters", {}).get("serve.batch.deduped", 0)
    if deduped < 1:
        failures.append(f"serve.batch.deduped is {deduped} (expected >= 1)")

    # Phase 5: restart warmth.  Subprocess daemons (an honest restart:
    # fresh process, only the store directory survives) — the second
    # daemon must answer the probe from the persisted codegen artifact
    # without a single regeneration.
    store_dir = tempfile.mkdtemp(prefix="serve-smoke-restart-")
    payload = {"source": load_source("mibench/crc32.c"),
               "filename": "mibench/crc32.c", "probe": True}
    try:
        cold_probe, _compiles = _subprocess_round(store_dir, payload)
        warm_probe, compiles = _subprocess_round(store_dir, payload)
    except RuntimeError as error:
        failures.append(f"restart phase: {error}")
        cold_probe = warm_probe = {}
        compiles = -1
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
    print(f"# serve-smoke: restart codegen cold={cold_probe.get('codegen')} "
          f"warm={warm_probe.get('codegen')}, warm compiles={compiles}")
    if cold_probe.get("codegen") != "generated":
        failures.append(f"cold daemon probe codegen="
                        f"{cold_probe.get('codegen')!r} "
                        "(expected 'generated')")
    if warm_probe.get("codegen") != "store":
        failures.append(f"restarted daemon probe codegen="
                        f"{warm_probe.get('codegen')!r} (expected 'store')")
    if compiles != 0:
        failures.append(f"restarted daemon ran codegen {compiles} time(s) "
                        "(expected exactly 0)")

    with open(args.metrics_out, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
    print(f"# serve-smoke: metrics snapshot -> {args.metrics_out}")

    for failure in failures:
        print(f"serve-smoke: FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("# serve-smoke: all gates passed")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
