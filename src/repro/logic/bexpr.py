"""Symbolic bound expressions: the assertion language of the logic.

A bound expression denotes a function ``(metric, params) -> N ∪ {∞}``::

    B ::= c | M(f) | B + B | max(B, B) | B - B (guarded) | k * B
        | p | log2(B) | B^2 ...

where ``M(f)`` is the stack cost the compiler will later assign to
function ``f`` and ``p`` ranges over integer parameters (function
arguments) used by parametric specs.

Two fragments matter:

* the **ground max-plus fragment** (constants, metric atoms, ``+``,
  ``max``, scaling by constants, and the ``frame-diff`` shape
  ``max(..) - B`` emitted by Q:FRAME) — this is what the automatic
  analyzer produces, and the order ``B1 <= B2`` is *decided exactly* by
  normalizing both sides to max-plus normal form;
* the **parametric fragment** (adds parameters, ``log2``, products) used
  by manual specs for recursive functions — the order is checked by
  exhaustive evaluation over a declared verification domain, which is the
  executable surrogate for the paper's Coq side-condition proofs.

``log2`` follows the paper's convention: ``log2(x) = ∞`` for ``x < 0`` and
``log2(0) = 0``; we additionally round up (``ceil``) so that integer
recursion depths are bounded soundly.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Mapping, Optional, Union

Number = Union[int, float]  # float only for math.inf
INFINITY: float = math.inf


class BExpr:
    """Abstract bound expression; immutable and hash-consed.

    Every constructor interns through a per-class pool, so structurally
    equal expressions are the *same object*.  That makes child tuples
    usable as pool keys (identity hashing is structural hashing), lets
    :func:`_syntactically_equal` short-circuit on ``is``, and gives each
    node a place to cache its max-plus normal form: the analyzer and the
    derivation re-check ask :func:`bound_le` about the same subtrees over
    and over, and the normal form of a shared node is computed once.
    """

    # Memo slots start unset (plain __slots__ attribute semantics); the
    # memoized entry points fill them lazily.
    __slots__ = ("_memo_mpnf", "_memo_frames")

    def __reduce__(self):
        # Re-enter the interning constructor on unpickle/copy: every
        # concrete class's __new__ takes its own __slots__ in order.
        cls = type(self)
        return cls, tuple(getattr(self, name) for name in cls.__slots__)

    # Convenience operators for building bounds in specs and tests.
    def __add__(self, other: "BExpr | int") -> "BExpr":
        return badd(self, _coerce(other))

    def __radd__(self, other: "BExpr | int") -> "BExpr":
        return badd(_coerce(other), self)

    def __mul__(self, other: int) -> "BExpr":
        return BScale(other, self)

    def __rmul__(self, other: int) -> "BExpr":
        return BScale(other, self)


class BConst(BExpr):
    __slots__ = ("value",)
    _pool: dict = {}

    def __new__(cls, value: Number) -> "BConst":
        if value != INFINITY and (not isinstance(value, int) or value < 0):
            raise ValueError(f"bound constants must be naturals or ∞: {value!r}")
        self = cls._pool.get(value)
        if self is None:
            self = object.__new__(cls)
            self.value = value
            cls._pool[value] = self
        return self

    def __repr__(self) -> str:
        return "∞" if self.value == INFINITY else str(self.value)


class BMetric(BExpr):
    """``M(f)``: the (unknown until compilation) stack cost of ``f``."""

    __slots__ = ("function",)
    _pool: dict = {}

    def __new__(cls, function: str) -> "BMetric":
        self = cls._pool.get(function)
        if self is None:
            self = object.__new__(cls)
            self.function = function
            cls._pool[function] = self
        return self

    def __repr__(self) -> str:
        return f"M({self.function})"


class BParam(BExpr):
    """An integer parameter of a parametric spec (a function argument)."""

    __slots__ = ("name",)
    _pool: dict = {}

    def __new__(cls, name: str) -> "BParam":
        self = cls._pool.get(name)
        if self is None:
            self = object.__new__(cls)
            self.name = name
            cls._pool[name] = self
        return self

    def __repr__(self) -> str:
        return self.name


class BAdd(BExpr):
    __slots__ = ("items",)
    _pool: dict = {}

    def __new__(cls, items: Iterable[BExpr]) -> "BAdd":
        # Interned children hash by identity, so the tuple is a
        # structural key.
        key = tuple(items)
        self = cls._pool.get(key)
        if self is None:
            self = object.__new__(cls)
            self.items = key
            cls._pool[key] = self
        return self

    def __repr__(self) -> str:
        return "(" + " + ".join(map(repr, self.items)) + ")"


class BMax(BExpr):
    __slots__ = ("items",)
    _pool: dict = {}

    def __new__(cls, items: Iterable[BExpr]) -> "BMax":
        key = tuple(items)
        self = cls._pool.get(key)
        if self is None:
            self = object.__new__(cls)
            self.items = key
            cls._pool[key] = self
        return self

    def __repr__(self) -> str:
        return "max(" + ", ".join(map(repr, self.items)) + ")"


class BScale(BExpr):
    """``k * B`` with a non-negative integer constant ``k``."""

    __slots__ = ("factor", "body")
    _pool: dict = {}

    def __new__(cls, factor: int, body: BExpr) -> "BScale":
        if factor < 0:
            raise ValueError("scaling factor must be non-negative")
        key = (factor, body)
        self = cls._pool.get(key)
        if self is None:
            self = object.__new__(cls)
            self.factor = factor
            self.body = body
            cls._pool[key] = self
        return self

    def __repr__(self) -> str:
        return f"{self.factor}·{self.body!r}"


class BFrameDiff(BExpr):
    """``total - part``, used as the constant of a Q:FRAME application.

    Only meaningful when ``part <= total``; evaluation clamps at 0 (which
    matches how the frame rule is used: framing a sub-derivation whose
    precondition is dominated by the target).
    """

    __slots__ = ("total", "part")
    _pool: dict = {}

    def __new__(cls, total: BExpr, part: BExpr) -> "BFrameDiff":
        key = (total, part)
        self = cls._pool.get(key)
        if self is None:
            self = object.__new__(cls)
            self.total = total
            self.part = part
            cls._pool[key] = self
        return self

    def __repr__(self) -> str:
        return f"({self.total!r} - {self.part!r})"


class BMul(BExpr):
    """Product of two parametric bounds (e.g. ``24 * n * n``)."""

    __slots__ = ("left", "right")
    _pool: dict = {}

    def __new__(cls, left: BExpr, right: BExpr) -> "BMul":
        key = (left, right)
        self = cls._pool.get(key)
        if self is None:
            self = object.__new__(cls)
            self.left = left
            self.right = right
            cls._pool[key] = self
        return self

    def __repr__(self) -> str:
        return f"({self.left!r} * {self.right!r})"


class BLog2(BExpr):
    """Paper-convention logarithm: ∞ below 0, 0 at 0, else ceil(log2)."""

    __slots__ = ("arg",)
    _pool: dict = {}

    def __new__(cls, arg: BExpr) -> "BLog2":
        self = cls._pool.get(arg)
        if self is None:
            self = object.__new__(cls)
            self.arg = arg
            cls._pool[arg] = self
        return self

    def __repr__(self) -> str:
        return f"log2({self.arg!r})"


class BHalf(BExpr):
    """``floor(a/2)`` or ``ceil(a/2)`` — the argument shape of divide-and-
    conquer recursions (``bsearch``'s worst recursive call receives
    ``ceil((hi-lo)/2)`` elements)."""

    __slots__ = ("arg", "ceil")
    _pool: dict = {}

    def __new__(cls, arg: BExpr, ceil: bool = False) -> "BHalf":
        key = (arg, ceil)
        self = cls._pool.get(key)
        if self is None:
            self = object.__new__(cls)
            self.arg = arg
            self.ceil = ceil
            cls._pool[key] = self
        return self

    def __repr__(self) -> str:
        name = "ceil_half" if self.ceil else "half"
        return f"{name}({self.arg!r})"


class BParamDiff(BExpr):
    """``a - b`` over parameters (e.g. ``hi - lo``); may go negative.

    A negative intermediate is legal *inside* ``log2`` (where it yields ∞
    per the paper's convention) and is clamped to 0 anywhere a bound in
    ``N ∪ {∞}`` is required.
    """

    __slots__ = ("left", "right")
    _pool: dict = {}

    def __new__(cls, left: BExpr, right: BExpr) -> "BParamDiff":
        key = (left, right)
        self = cls._pool.get(key)
        if self is None:
            self = object.__new__(cls)
            self.left = left
            self.right = right
            cls._pool[key] = self
        return self

    def __repr__(self) -> str:
        return f"({self.left!r} - {self.right!r})"


def bconst(value: Number) -> BConst:
    return BConst(value)


def bmetric(function: str) -> BMetric:
    return BMetric(function)


def bparam(name: str) -> BParam:
    return BParam(name)


def badd(*items: BExpr) -> BExpr:
    flat: list[BExpr] = []
    for item in items:
        if isinstance(item, BAdd):
            flat.extend(item.items)
        elif isinstance(item, BConst) and item.value == 0:
            continue
        else:
            flat.append(item)
    if not flat:
        return BConst(0)
    if len(flat) == 1:
        return flat[0]
    return BAdd(flat)


def bmax(*items: BExpr) -> BExpr:
    flat: list[BExpr] = []
    for item in items:
        if isinstance(item, BMax):
            flat.extend(item.items)
        else:
            flat.append(item)
    flat = [i for i in flat
            if not (isinstance(i, BConst) and i.value == 0)] or [BConst(0)]
    if len(flat) == 1:
        return flat[0]
    return BMax(flat)


TOP = BConst(INFINITY)
ZERO = BConst(0)


def _coerce(value: "BExpr | int") -> BExpr:
    if isinstance(value, BExpr):
        return value
    return BConst(value)


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


def evaluate(expr: BExpr, metric: Optional[Mapping[str, int]] = None,
             params: Optional[Mapping[str, int]] = None) -> Number:
    """Evaluate under a metric (``M(f)`` prices) and parameter valuation.

    The result is clamped into ``N ∪ {∞}`` except inside ``BParamDiff``
    sub-evaluations (see that class).
    """
    value = _eval(expr, metric, params)
    if value == INFINITY:
        return INFINITY
    return max(0, value)


def _eval(expr: BExpr, metric, params) -> Number:
    if isinstance(expr, BConst):
        return expr.value
    if isinstance(expr, BMetric):
        if metric is None:
            raise ValueError(f"metric needed to evaluate {expr!r}")
        return metric[expr.function]
    if isinstance(expr, BParam):
        if params is None or expr.name not in params:
            raise ValueError(f"parameter {expr.name!r} has no value")
        return params[expr.name]
    if isinstance(expr, BAdd):
        total: Number = 0
        for item in expr.items:
            total += _eval(item, metric, params)
        return total
    if isinstance(expr, BMax):
        return max(_eval(item, metric, params) for item in expr.items)
    if isinstance(expr, BScale):
        return expr.factor * _eval(expr.body, metric, params)
    if isinstance(expr, BFrameDiff):
        total = _eval(expr.total, metric, params)
        part = _eval(expr.part, metric, params)
        if total == INFINITY:
            return INFINITY
        return max(0, total - part)
    if isinstance(expr, BMul):
        return _eval(expr.left, metric, params) * _eval(expr.right, metric, params)
    if isinstance(expr, BLog2):
        arg = _eval(expr.arg, metric, params)
        if arg < 0:
            return INFINITY
        if arg <= 1:
            return 0
        return math.ceil(math.log2(arg))
    if isinstance(expr, BParamDiff):
        return _eval(expr.left, metric, params) - _eval(expr.right, metric, params)
    if isinstance(expr, BHalf):
        value = _eval(expr.arg, metric, params)
        if value == INFINITY:
            return INFINITY
        value = int(value)
        return (value + 1) // 2 if expr.ceil else value // 2
    raise TypeError(f"unknown bound expression {expr!r}")


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------


def metric_atoms(expr: BExpr) -> set[str]:
    """All function names whose metric the expression mentions."""
    out: set[str] = set()
    _walk(expr, out, kind="metric")
    return out


def param_names(expr: BExpr) -> set[str]:
    out: set[str] = set()
    _walk(expr, out, kind="param")
    return out


def frame_diffs(expr: BExpr) -> list["BFrameDiff"]:
    """Every :class:`BFrameDiff` node inside ``expr``, preorder.

    The checker uses this to discharge the Q:FRAME side condition
    ``part <= total`` for each difference appearing in a frame constant:
    the ``part + (total - part) -> total`` rewrite in the comparators is
    only an equality under that domination, so it must be established
    separately wherever a certificate authors a difference.
    """
    out: list[BFrameDiff] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, BFrameDiff):
            out.append(node)
        stack.extend(reversed(_children(node)))
    return out


def _walk(expr: BExpr, out: set[str], kind: str) -> None:
    if isinstance(expr, BMetric) and kind == "metric":
        out.add(expr.function)
    if isinstance(expr, BParam) and kind == "param":
        out.add(expr.name)
    for child in _children(expr):
        _walk(child, out, kind)


def _children(expr: BExpr) -> tuple[BExpr, ...]:
    if isinstance(expr, (BAdd, BMax)):
        return expr.items
    if isinstance(expr, BScale):
        return (expr.body,)
    if isinstance(expr, BFrameDiff):
        return (expr.total, expr.part)
    if isinstance(expr, (BMul, BParamDiff)):
        return (expr.left, expr.right)
    if isinstance(expr, BLog2):
        return (expr.arg,)
    if isinstance(expr, BHalf):
        return (expr.arg,)
    return ()


def substitute_params(expr: BExpr, mapping: Mapping[str, BExpr]) -> BExpr:
    """Replace parameters by bound expressions (spec instantiation)."""
    if isinstance(expr, BParam):
        return mapping.get(expr.name, expr)
    if isinstance(expr, BAdd):
        return badd(*[substitute_params(i, mapping) for i in expr.items])
    if isinstance(expr, BMax):
        return bmax(*[substitute_params(i, mapping) for i in expr.items])
    if isinstance(expr, BScale):
        return BScale(expr.factor, substitute_params(expr.body, mapping))
    if isinstance(expr, BFrameDiff):
        return BFrameDiff(substitute_params(expr.total, mapping),
                          substitute_params(expr.part, mapping))
    if isinstance(expr, BMul):
        return BMul(substitute_params(expr.left, mapping),
                    substitute_params(expr.right, mapping))
    if isinstance(expr, BLog2):
        return BLog2(substitute_params(expr.arg, mapping))
    if isinstance(expr, BParamDiff):
        return BParamDiff(substitute_params(expr.left, mapping),
                          substitute_params(expr.right, mapping))
    if isinstance(expr, BHalf):
        return BHalf(substitute_params(expr.arg, mapping), expr.ceil)
    return expr


def fold_with_params(expr: BExpr, params: Mapping[str, int]) -> BExpr:
    """Substitute concrete parameter values and fold to a *ground* bound.

    The result contains only constants, metric atoms, sums, maxima and
    scalings — i.e. it is in the max-plus fragment, so the exact
    comparator applies.  This is what turns one instance of a parametric
    side condition (say, the induction step of ``bsearch`` at
    ``hi - lo = 17``) into an exactly decidable question, valid for *all*
    stack metrics at once.

    Negative intermediate values are legal inside ``BParamDiff``/``BLog2``
    (the paper's ∞ convention applies); a negative value reaching a bound
    position is clamped to 0, mirroring :func:`evaluate`.
    """
    kind, value = _fold(expr, params)
    if kind == "num":
        return BConst(_clamp_num(value))
    return value


def _clamp_num(value: Number) -> Number:
    if value == INFINITY:
        return INFINITY
    return max(0, int(value))


def _fold(expr: BExpr, params: Mapping[str, int]):
    """Returns ('num', n) for fully numeric subtrees, else ('expr', b)."""
    if isinstance(expr, BConst):
        return "num", expr.value
    if isinstance(expr, BParam):
        if expr.name not in params:
            raise ValueError(f"no value for parameter {expr.name!r}")
        return "num", params[expr.name]
    if isinstance(expr, BMetric):
        return "expr", expr
    if isinstance(expr, BParamDiff):
        lk, lv = _fold(expr.left, params)
        rk, rv = _fold(expr.right, params)
        if lk != "num" or rk != "num":
            raise ValueError("parameter difference over metric atoms")
        return "num", lv - rv
    if isinstance(expr, BLog2):
        kind, value = _fold(expr.arg, params)
        if kind != "num":
            raise ValueError("log2 of a metric expression")
        if value < 0:
            return "num", INFINITY
        if value <= 1:
            return "num", 0
        return "num", math.ceil(math.log2(value))
    if isinstance(expr, BMul):
        lk, lv = _fold(expr.left, params)
        rk, rv = _fold(expr.right, params)
        if lk == "num" and rk == "num":
            return "num", lv * rv
        if lk == "num":
            return "expr", _scale_folded(lv, rv)
        if rk == "num":
            return "expr", _scale_folded(rv, lv)
        raise ValueError("product of two metric expressions")
    if isinstance(expr, BScale):
        kind, value = _fold(expr.body, params)
        if kind == "num":
            return "num", expr.factor * value
        return "expr", BScale(expr.factor, value)
    if isinstance(expr, BAdd):
        total = 0
        parts: list[BExpr] = []
        for item in expr.items:
            kind, value = _fold(item, params)
            if kind == "num":
                total += value
            else:
                parts.append(value)
        if not parts:
            return "num", total
        if total:
            parts.append(BConst(_clamp_num(total)))
        return "expr", badd(*parts)
    if isinstance(expr, BMax):
        folded = [_fold(item, params) for item in expr.items]
        if all(kind == "num" for kind, _ in folded):
            return "num", max(value for _, value in folded)
        parts = [BConst(_clamp_num(value)) if kind == "num" else value
                 for kind, value in folded]
        return "expr", bmax(*parts)
    if isinstance(expr, BHalf):
        kind, value = _fold(expr.arg, params)
        if kind != "num":
            raise ValueError("half of a metric expression")
        if value == INFINITY:
            return "num", INFINITY
        value = int(value)
        return "num", (value + 1) // 2 if expr.ceil else value // 2
    if isinstance(expr, BFrameDiff):
        lk, lv = _fold(expr.total, params)
        rk, rv = _fold(expr.part, params)
        left = BConst(_clamp_num(lv)) if lk == "num" else lv
        right = BConst(_clamp_num(rv)) if rk == "num" else rv
        return "expr", BFrameDiff(left, right)
    raise TypeError(f"unknown bound expression {expr!r}")


def _scale_folded(factor: Number, body: BExpr) -> BExpr:
    if factor == INFINITY:
        return TOP
    factor_int = int(factor)
    if factor_int < 0:
        raise ValueError(f"negative scale factor {factor}")
    return BScale(factor_int, body)


# ---------------------------------------------------------------------------
# Max-plus normal form for the ground fragment
# ---------------------------------------------------------------------------


class NotGround(Exception):
    """The expression is outside the ground max-plus fragment."""


# Normal-form memoization.  Results live on the interned nodes themselves
# (slot ``_memo_mpnf``), so any two occurrences of the same subtree — even
# in unrelated bound_le queries — share one normalization.  ``NotGround``
# is memoized too (as the sentinel ``_NOT_GROUND``): asking again about a
# parametric subtree is as common as asking about a ground one.
_NOT_GROUND = object()
_memo_enabled = True
_nf_hits = 0
_nf_misses = 0


def configure_memoization(enabled: bool) -> None:
    """Turn normal-form memoization on/off (benchmarks flip this)."""
    global _memo_enabled
    _memo_enabled = enabled


def nf_cache_stats() -> dict:
    """Hit/miss counters of the normal-form memo, for the perf benches."""
    total = _nf_hits + _nf_misses
    return {"hits": _nf_hits, "misses": _nf_misses,
            "hit_rate": _nf_hits / total if total else 0.0}


def reset_nf_cache_stats() -> None:
    global _nf_hits, _nf_misses
    _nf_hits = _nf_misses = 0


def maxplus_normal_form(expr: BExpr) -> frozenset:
    """Normalize a ground expression to a set of (const, atom-multiset).

    The denotation is ``max over terms of (const + sum of priced atoms)``.
    Raises :class:`NotGround` on parametric forms.
    """
    terms = _mpnf(expr)
    return frozenset(_prune_dominated(terms))


def _mpnf(expr: BExpr) -> tuple:
    """Memoizing wrapper around :func:`_mpnf_impl`."""
    global _nf_hits, _nf_misses
    if _memo_enabled:
        try:
            memo = expr._memo_mpnf
        except AttributeError:
            pass
        else:
            _nf_hits += 1
            if memo is _NOT_GROUND:
                raise NotGround(f"not a ground bound: {expr!r}")
            return memo
        _nf_misses += 1
        try:
            terms = tuple(_mpnf_impl(expr))
        except NotGround:
            expr._memo_mpnf = _NOT_GROUND
            raise
        expr._memo_mpnf = terms
        return terms
    return tuple(_mpnf_impl(expr))


def _mpnf_impl(expr: BExpr) -> list[tuple[Number, frozenset]]:
    """Each term is (const, frozenset of (atom, multiplicity))."""
    if isinstance(expr, BConst):
        return [(expr.value, frozenset())]
    if isinstance(expr, BMetric):
        return [(0, frozenset({(expr.function, 1)}))]
    if isinstance(expr, BAdd):
        terms = [(0, frozenset())]
        for item in expr.items:
            terms = _cross_add(terms, _mpnf(item))
        return terms
    if isinstance(expr, BMax):
        out: list[tuple[Number, frozenset]] = []
        for item in expr.items:
            out.extend(_mpnf(item))
        return out
    if isinstance(expr, BScale):
        inner = _mpnf(expr.body)
        if expr.factor == 0:
            return [(0, frozenset())]
        out = []
        for const, atoms in inner:
            scaled_const = const * expr.factor if const != INFINITY else INFINITY
            scaled_atoms = frozenset((name, mult * expr.factor)
                                     for name, mult in atoms)
            out.append((scaled_const, scaled_atoms))
        return out
    if isinstance(expr, BFrameDiff):
        # Only the pattern Add(part, FrameDiff(total, part)) normalizes;
        # it is rewritten by _cross_add below.  A bare FrameDiff is not in
        # the fragment.
        raise NotGround(f"frame-diff outside an Add: {expr!r}")
    raise NotGround(f"not a ground bound: {expr!r}")


def _cross_add(left: list, right: list) -> list:
    out = []
    for const_l, atoms_l in left:
        for const_r, atoms_r in right:
            const = INFINITY if INFINITY in (const_l, const_r) \
                else const_l + const_r
            out.append((const, _merge_atoms(atoms_l, atoms_r)))
    return out


def _merge_atoms(left: frozenset, right: frozenset) -> frozenset:
    counts: dict[str, int] = {}
    for name, mult in left:
        counts[name] = counts.get(name, 0) + mult
    for name, mult in right:
        counts[name] = counts.get(name, 0) + mult
    return frozenset(counts.items())


# Fault-injection knob for the comparator layer (see testing/faults.py):
# "fm-strict-gap-drop" rebuilds the failure-region constraints without the
# integer gap of 1; "fm-nonneg-drop" omits the var >= 0 rows.  Production
# code never sets this.
_FAULT: Optional[str] = None

# Monotone counter ticked whenever Fourier-Motzkin elimination abandons a
# query because it blew past its constraint limit.  The cross-check backend
# snapshots it around each FM call to tell conservative refusals (sound,
# just incomplete) apart from lying ones.
_FM_BLOWUPS = 0


def fm_blowup_count() -> int:
    """Number of FM queries so far abandoned on the constraint limit."""
    return _FM_BLOWUPS


def _tick_blowup() -> None:
    global _FM_BLOWUPS
    _FM_BLOWUPS += 1


def _term_covered(small: tuple, large_terms: Iterable[tuple]) -> bool:
    """Exact coverage: ``small <= max(large_terms)`` pointwise on metrics.

    Termwise domination (:func:`_term_le`) misses inequalities that need a
    case split over the metric — e.g. ``M(f) + 1 <= max(2*M(f), 1)``,
    which holds (take ``1`` at ``M(f) = 0`` and ``2*M(f)`` otherwise) but
    has no single dominating term.  The failure region

        { x >= 0 : large_j(x) <= small(x) - 1  for every j }

    is a rational polyhedron (metrics are integer-valued, so a strict
    violation means a gap of at least 1); if it is empty over the reals it
    contains no integer metric either, and the inequality holds.
    Emptiness is decided by Fourier–Motzkin elimination.
    """
    const_s, atoms_s = small
    if const_s == INFINITY:
        return False
    small_counts = dict(atoms_s)
    variables: set[str] = set(small_counts)
    # Each constraint is (coeffs, const) meaning sum(coeffs*x) + const <= 0.
    constraints: list[tuple[dict, Number]] = []
    for const_l, atoms_l in large_terms:
        if const_l == INFINITY:
            return True
        coeffs: dict[str, Number] = {}
        for name, mult in atoms_l:
            coeffs[name] = coeffs.get(name, 0) + mult
        for name, mult in small_counts.items():
            coeffs[name] = coeffs.get(name, 0) - mult
        coeffs = {name: c for name, c in coeffs.items() if c != 0}
        variables.update(coeffs)
        gap = 0 if _FAULT == "fm-strict-gap-drop" else 1
        constraints.append((coeffs, const_l - const_s + gap))
    if _FAULT != "fm-nonneg-drop":
        for name in variables:
            constraints.append(({name: -1}, 0))
    return not _fm_feasible(constraints, sorted(variables))


def _fm_feasible(constraints: list, variables: list[str],
                 limit: int = 4096) -> bool:
    """Real feasibility of ``{x : sum(coeffs*x) + const <= 0 for all}``.

    Conservatively reports *feasible* if elimination would blow past
    ``limit`` constraints.  The resulting row count ``rest + pos*neg`` is
    known before the product is materialized, so the blowup verdict is
    O(1) instead of the old O(limit^2) of building the product first and
    only then noticing.  Blowups tick :func:`fm_blowup_count` so callers
    can tell the conservative verdict apart from a decided one.
    """
    from fractions import Fraction

    for var in variables:
        pos, neg, rest = [], [], []
        for coeffs, const in constraints:
            a = coeffs.get(var, 0)
            (pos if a > 0 else neg if a < 0 else rest).append((coeffs, const))
        new = rest
        if len(new) + len(pos) * len(neg) > limit:
            _tick_blowup()
            return True
        for cp, kp in pos:
            ap = cp[var]
            for cn, kn in neg:
                an = -cn[var]
                coeffs = {}
                for name, val in cp.items():
                    if name != var:
                        coeffs[name] = coeffs.get(name, 0) + Fraction(val, ap)
                for name, val in cn.items():
                    if name != var:
                        coeffs[name] = coeffs.get(name, 0) + Fraction(val, an)
                coeffs = {name: c for name, c in coeffs.items() if c != 0}
                new.append((coeffs, Fraction(kp, ap) + Fraction(kn, an)))
        constraints = new
    return all(const <= 0 for _coeffs, const in constraints)


def _fm_solve(constraints: list, variables: list[str],
              limit: int = 4096) -> Optional[dict]:
    """A rational point of ``{x : sum(coeffs*x) + const <= 0}``, or None.

    Recursive Fourier–Motzkin with back-substitution; integer coordinates
    are preferred when the feasible interval allows one.
    """
    from fractions import Fraction

    if not variables:
        return {} if all(const <= 0 for _c, const in constraints) else None
    var, rest_vars = variables[0], variables[1:]
    pos, neg, rest = [], [], []
    for coeffs, const in constraints:
        a = coeffs.get(var, 0)
        (pos if a > 0 else neg if a < 0 else rest).append((coeffs, const))
    new = list(rest)
    if len(new) + len(pos) * len(neg) > limit:
        _tick_blowup()
        return None
    for cp, kp in pos:
        ap = cp[var]
        for cn, kn in neg:
            an = -cn[var]
            coeffs = {}
            for name, val in cp.items():
                if name != var:
                    coeffs[name] = coeffs.get(name, 0) + Fraction(val, ap)
            for name, val in cn.items():
                if name != var:
                    coeffs[name] = coeffs.get(name, 0) + Fraction(val, an)
            coeffs = {name: c for name, c in coeffs.items() if c != 0}
            new.append((coeffs, Fraction(kp, ap) + Fraction(kn, an)))
    solution = _fm_solve(new, rest_vars, limit)
    if solution is None:
        return None

    def residual(coeffs, const):
        return const + sum(Fraction(c) * solution[n]
                           for n, c in coeffs.items() if n != var)

    upper = None
    for coeffs, const in pos:  # a*var <= -residual
        bound = Fraction(-residual(coeffs, const), coeffs[var])
        upper = bound if upper is None else min(upper, bound)
    # The lower bound must come only from actual constraints: assuming an
    # implicit var >= 0 here used to pick points *outside* the system when
    # the caller supplied no nonnegativity row (an upper bound below zero
    # made `value` violate it), so witnesses could be fabricated or missed.
    lower = None
    for coeffs, const in neg:  # a*var >= residual  (a = -coeff > 0)
        bound = Fraction(residual(coeffs, const), -coeffs[var])
        lower = bound if lower is None else max(lower, bound)
    if lower is None:
        value = Fraction(0) if upper is None \
            else min(Fraction(0), Fraction(math.floor(upper)))
    else:
        value = Fraction(math.ceil(lower))
        if upper is not None and value > upper:
            value = (lower + upper) / 2
    solution[var] = value
    return solution


def find_violation_metric(small: BExpr, large: BExpr) -> Optional[dict]:
    """An integer metric witnessing ``small > large``, or ``None``.

    Only meaningful after :func:`bound_le` refused a ground comparison;
    tests use it to certify that a refusal is justified by evaluation.
    """
    small = _rewrite_frames(small)
    large = _rewrite_frames(large)
    try:
        small_terms = maxplus_normal_form(small)
        large_terms = maxplus_normal_form(large)
    except NotGround:
        return None
    atoms = sorted(metric_atoms(small) | metric_atoms(large))
    zero = {name: 0 for name in atoms}
    if any(const == INFINITY for const, _a in small_terms) and \
            not any(const == INFINITY for const, _a in large_terms):
        return zero
    for const_s, atoms_s in small_terms:
        if const_s == INFINITY:
            continue
        small_counts = dict(atoms_s)
        variables: set[str] = set(small_counts)
        constraints: list[tuple[dict, Number]] = []
        infinite_cover = False
        for const_l, atoms_l in large_terms:
            if const_l == INFINITY:
                infinite_cover = True
                break
            coeffs: dict[str, Number] = {}
            for name, mult in atoms_l:
                coeffs[name] = coeffs.get(name, 0) + mult
            for name, mult in small_counts.items():
                coeffs[name] = coeffs.get(name, 0) - mult
            coeffs = {name: c for name, c in coeffs.items() if c != 0}
            variables.update(coeffs)
            constraints.append((coeffs, const_l - const_s + 1))
        if infinite_cover:
            continue
        for name in variables:
            constraints.append(({name: -1}, 0))
        point = _fm_solve(constraints, sorted(variables))
        if point is None:
            continue
        # Search the integer neighborhood of the rational point.
        axes = []
        for name in sorted(variables):
            value = point[name]
            floor = max(0, math.floor(value))
            axes.append(sorted({floor, floor + 1, max(0, floor - 1),
                                math.ceil(value)}))
        for combo in itertools.product(*axes):
            metric = dict(zero)
            metric.update(zip(sorted(variables), combo))
            if evaluate(small, metric) > evaluate(large, metric):
                return metric
    return None


def _term_le(small: tuple, large: tuple) -> bool:
    const_s, atoms_s = small
    const_l, atoms_l = large
    if const_l != INFINITY and (const_s == INFINITY or const_s > const_l):
        return False
    large_counts = dict(atoms_l)
    if const_l == INFINITY:
        return True
    for name, mult in atoms_s:
        if large_counts.get(name, 0) < mult:
            return False
    return True


def _prune_dominated(terms: list) -> list:
    out = []
    for index, term in enumerate(terms):
        dominated = any(
            _term_le(term, other) and (not _term_le(other, term) or j < index)
            for j, other in enumerate(terms) if j != index)
        if not dominated:
            out.append(term)
    return out or [(0, frozenset())]


def _rewrite_frames(expr: BExpr) -> BExpr:
    """Rewrite ``part + (total - part) -> total`` (the Q:FRAME shape).

    Memoized on the interned node (slot ``_memo_frames``): every
    :func:`bound_le` call rewrites both sides first, and derivation
    re-checks compare the same bounds many times.
    """
    if _memo_enabled:
        try:
            return expr._memo_frames
        except AttributeError:
            pass
        result = _rewrite_frames_impl(expr)
        expr._memo_frames = result
        return result
    return _rewrite_frames_impl(expr)


def _rewrite_frames_impl(expr: BExpr) -> BExpr:
    if isinstance(expr, BAdd):
        items = [_rewrite_frames(i) for i in expr.items]
        diffs = [i for i in items if isinstance(i, BFrameDiff)]
        for diff in diffs:
            rest = list(items)
            rest.remove(diff)
            if _syntactically_equal(badd(*rest), diff.part):
                return _rewrite_frames(diff.total)
        return badd(*items)
    if isinstance(expr, BMax):
        return bmax(*[_rewrite_frames(i) for i in expr.items])
    if isinstance(expr, BScale):
        return BScale(expr.factor, _rewrite_frames(expr.body))
    if isinstance(expr, BFrameDiff):
        total = _rewrite_frames(expr.total)
        part = _rewrite_frames(expr.part)
        if isinstance(part, BConst) and part.value == 0:
            return total
        return BFrameDiff(total, part)
    return expr


def _syntactically_equal(a: BExpr, b: BExpr) -> bool:
    # Hash-consing makes structural equality an identity check for nodes
    # built through the constructors; the repr fallback keeps the old
    # behavior for pickled/copied expressions that bypassed interning.
    return a is b or repr(a) == repr(b)


# ---------------------------------------------------------------------------
# The order on bounds
# ---------------------------------------------------------------------------


class CompareResult:
    """Outcome of a bound comparison: holds + whether it was exact."""

    __slots__ = ("holds", "exact")

    def __init__(self, holds: bool, exact: bool) -> None:
        self.holds = holds
        self.exact = exact

    def __bool__(self) -> bool:
        return self.holds


# Module-level default decision backend.  "fm" is the historical
# Fourier-Motzkin / sampled procedure; "z3" and "cross" dispatch through
# repro.logic.smt (imported lazily so the z3 dependency stays optional and
# the import graph acyclic).  Selected via --bounds-backend on the CLI,
# the CheckerContext knob, or set_default_backend().
_BACKEND = "fm"


def set_default_backend(name: str) -> None:
    """Select the process-wide default ``bound_le`` backend."""
    global _BACKEND
    if name not in ("fm", "z3", "cross"):
        raise ValueError(f"unknown bounds backend {name!r}; "
                         f"known: fm, z3, cross")
    _BACKEND = name


def get_default_backend() -> str:
    return _BACKEND


def bound_le(small: BExpr, large: BExpr,
             param_domains: Optional[Mapping[str, Iterable[int]]] = None,
             metric_samples: Optional[Iterable[Mapping[str, int]]] = None,
             backend: Optional[str] = None) -> CompareResult:
    """Decide ``small <= large`` (pointwise over metrics and parameters).

    Dispatches on ``backend`` (or the module default): ``fm`` is the
    Fourier-Motzkin / sampled procedure below, ``z3`` the SMT backend in
    :mod:`repro.logic.smt`, ``cross`` the agree-or-fail differential mode
    that runs both and raises on any mismatch.
    """
    chosen = backend or _BACKEND
    if chosen != "fm":
        from repro.logic import smt
        return smt.dispatch_bound_le(small, large, param_domains,
                                     metric_samples, chosen)
    return fm_bound_le(small, large, param_domains, metric_samples)


def fm_bound_le(small: BExpr, large: BExpr,
                param_domains: Optional[Mapping[str, Iterable[int]]] = None,
                metric_samples: Optional[Iterable[Mapping[str, int]]] = None
                ) -> CompareResult:
    """The Fourier-Motzkin / exhaustive-evaluation decision procedure.

    Ground expressions are compared exactly via max-plus normal forms.
    Parametric expressions are compared by exhaustive evaluation over the
    given ``param_domains`` (and metric samples), which reproduces the
    role of the Coq side-condition proofs on a finite verification domain.
    """
    if isinstance(small, BConst) and small.value == 0:
        # Every bound denotes a value in N ∪ {∞} (evaluation clamps), so
        # 0 is a global lower bound.
        return CompareResult(True, True)
    small = _rewrite_frames(small)
    large = _rewrite_frames(large)
    try:
        small_terms = maxplus_normal_form(small)
        large_terms = maxplus_normal_form(large)
    except NotGround:
        return _bound_le_sampled(small, large, param_domains, metric_samples)
    for term in small_terms:
        if not any(_term_le(term, other) for other in large_terms):
            if not _term_covered(term, large_terms):
                return CompareResult(False, True)
    return CompareResult(True, True)


def _default_metric_samples(atoms: set[str]) -> list[dict[str, int]]:
    ordered = sorted(atoms)
    samples: list[dict[str, int]] = [
        {name: 8 for name in ordered},
        {name: 8 * (index + 1) for index, name in enumerate(ordered)},
        {name: 8 * (len(ordered) - index) for index, name in enumerate(ordered)},
        {name: 0 for name in ordered},
    ]
    return samples


def _bound_le_sampled(small: BExpr, large: BExpr, param_domains,
                      metric_samples) -> CompareResult:
    params = param_names(small) | param_names(large)
    atoms = metric_atoms(small) | metric_atoms(large)
    if param_domains is None:
        param_domains = {}
    missing = params - set(param_domains)
    if missing:
        raise ValueError(
            f"no verification domain for parameters {sorted(missing)}")
    metrics = list(metric_samples) if metric_samples is not None \
        else _default_metric_samples(atoms)
    names = sorted(params)
    domains = [list(param_domains[name]) for name in names]
    for metric in metrics:
        for combo in itertools.product(*domains) if names else [()]:
            valuation = dict(zip(names, combo))
            if evaluate(small, metric, valuation) > \
                    evaluate(large, metric, valuation):
                return CompareResult(False, False)
    return CompareResult(True, False)


def bound_equal(a: BExpr, b: BExpr, **kwargs) -> CompareResult:
    le = bound_le(a, b, **kwargs)
    if not le.holds:
        return le
    ge = bound_le(b, a, **kwargs)
    return CompareResult(ge.holds, le.exact and ge.exact)
