"""Per-program specialized driver for the RTL codegen tier.

Same scheme as :mod:`repro.clight.codegen`: the decoded closures stay
the execution substrate, and this tier generates a per-program Python
driver with the entry sequence constant-folded (arity guard resolved at
generation time, register count / stack size / frame tag inlined as
literals) and the dispatch loop unrolled.  Step recovery goes through
:func:`repro.engines.recover_steps`.

The RTL optimization passes mutate graphs in place, so — like the RTL
decoder itself — nothing is cached per program object.  The generated
*source* only depends on a handful of folded constants, though, so
compiled drivers are memoized by that constant tuple: re-running a
mutated program regenerates its threaded code but reuses the driver.
"""

from __future__ import annotations

import time
from typing import Optional

from repro import engines, obs
from repro.clight.decode import UNDEF
from repro.errors import DynamicError, UndefinedBehaviorError
from repro.events.stream import Consumer, StreamOutcome
from repro.rtl import ast as rtl
from repro.rtl import decode

_FILENAME = "<codegen:rtl>"

_NAMESPACE = {
    "UNDEF": UNDEF,
    "UndefinedBehaviorError": UndefinedBehaviorError,
}


class _Spec:
    __slots__ = ("run", "slots", "source")

    def __init__(self, run, slots, source) -> None:
        self.run = run
        self.slots = slots
        self.source = source


#: Driver memo keyed by the folded-constant tuple (bounded: cleared
#: wholesale if a pathological campaign ever makes it grow large).
_spec_cache: dict[tuple, _Spec] = {}
_SPEC_CACHE_CAP = 1024


def _entry_lines(main: rtl.RTLFunction, rec) -> list[str]:
    """Constant-folded equivalent of the decoded entry sequence."""
    if main.params:
        return [f"raise UndefinedBehaviorError("
                f"{main.name + ': arity mismatch'!r})"]
    lines = [f"m.regs = [UNDEF] * {rec.n_regs}"]
    if rec.stacksize > 0:
        lines.append(f"m.frame = m.memory.alloc({rec.stacksize}, "
                     f"tag={rec.frame_tag!r})")
    lines.append("m.frec = rec")
    lines.append("m.sink(rec.call_event)")
    lines.append("code = rec.entry")
    return lines


def specialize(main: rtl.RTLFunction, rec) -> _Spec:
    """Generate (or fetch) the specialized driver for this entry shape."""
    key = (main.name, bool(main.params), rec.n_regs, rec.stacksize)
    spec = _spec_cache.get(key)
    if spec is not None:
        if obs.enabled:
            obs.add("codegen.rtl.cache.hits")
        return spec
    if obs.enabled:
        obs.add("codegen.rtl.cache.misses")
    t0 = time.perf_counter()
    run, slots, source = engines.build_driver(
        _FILENAME, _entry_lines(main, rec), _NAMESPACE)
    spec = _Spec(run, slots, source)
    if obs.enabled:
        obs.observe("codegen.compile_seconds", time.perf_counter() - t0)
    if len(_spec_cache) >= _SPEC_CACHE_CAP:
        _spec_cache.clear()
    _spec_cache[key] = spec
    return spec


def codegen_source(program: rtl.RTLProgram) -> str:
    """The generated driver source (CI artifact on differential failure)."""
    main = program.functions[program.main]
    rec = decode.decode_program(program).functions[program.main]
    return specialize(main, rec).source


def run_streamed(program: rtl.RTLProgram, sink: Consumer,
                 fuel: int, output: Optional[list] = None) -> StreamOutcome:
    """Run the codegen driver, pushing events to ``sink``.

    The classification tail mirrors :func:`repro.rtl.decode.run_streamed`
    — no ``FuelExhaustedError`` special case (it classifies as
    ``GoesWrong``, like the legacy RTL loop), the fuel edge reports
    divergence, and step counts exclude the raising op.
    """
    main = program.functions.get(program.main)
    if main is None:
        return StreamOutcome(StreamOutcome.GOES_WRONG,
                             reason="no main function")
    dprog = decode.decode_program(program)
    counting = decode._Counting(sink)
    m = decode.DecodedRTLMachine(program, counting, output=output)
    rec = dprog.functions[program.main]
    spec = specialize(main, rec)
    try:
        try:
            spec.run(m, rec, fuel)
            return StreamOutcome(StreamOutcome.DIVERGES,
                                 events=counting.count, steps=fuel)
        except TypeError as exc:
            i, code = engines.recover_steps(exc, _FILENAME, spec.slots)
            if i is None or code is not None:
                raise  # a genuine TypeError inside an op
    except DynamicError as exc:
        i, _ = engines.recover_steps(exc, _FILENAME, spec.slots)
        return StreamOutcome(StreamOutcome.GOES_WRONG, reason=str(exc),
                             events=counting.count, steps=i or 0)
    if not m.done:
        return StreamOutcome(StreamOutcome.DIVERGES,
                             events=counting.count, steps=i)
    return StreamOutcome(StreamOutcome.CONVERGES, return_code=m.return_code,
                         events=counting.count, steps=i)
