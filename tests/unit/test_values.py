"""Unit tests for the function-pointer value analysis."""

import pytest

from repro.analyzer.values import resolve_function_pointers
from repro.c.parser import parse
from repro.c.typecheck import typecheck
from repro.c import ast as c
from repro.errors import AnalysisError


def resolve(source):
    program = parse(source)
    env = typecheck(program)
    return program, resolve_function_pointers(program, env)


def indirect_calls(program):
    found = []

    def walk(node):
        if isinstance(node, c.Call) and node.indirect:
            found.append(node)
        for slot in _all_slots(type(node)):
            value = getattr(node, slot, None)
            items = value if isinstance(value, (list, tuple)) else [value]
            for item in items:
                if isinstance(item, c.Node):
                    walk(item)
                elif isinstance(item, tuple):
                    for sub in item:
                        for child in (sub if isinstance(sub, list)
                                      else [sub]):
                            if isinstance(child, c.Node):
                                walk(child)

    for fn in program.functions:
        walk(fn.body)
    return found


def _all_slots(cls):
    slots = []
    for klass in cls.__mro__:
        slots.extend(getattr(klass, "__slots__", ()))
    return slots


class TestCandidateSets:
    def test_single_initializer_gives_singleton(self):
        program, resolution = resolve(
            "int add(int x) { return x + 1; }\n"
            "int main(void) { int (*f)(int) = add; return f(3); }\n")
        (call,) = indirect_calls(program)
        assert call.fp_candidates == ["add"]
        assert resolution.sites == 1
        assert resolution.fid("add") >= 1

    def test_conditional_union(self):
        program, _resolution = resolve(
            "int add(int x) { return x + 1; }\n"
            "int sub(int x) { return x - 1; }\n"
            "int main(void) {\n"
            "  int (*f)(int) = 0;\n"
            "  f = 1 ? add : sub;\n"
            "  return f(3);\n"
            "}\n")
        (call,) = indirect_calls(program)
        assert sorted(call.fp_candidates) == ["add", "sub"]

    def test_argument_passing_flows_into_parameter(self):
        program, _resolution = resolve(
            "int add(int x) { return x + 1; }\n"
            "int sub(int x) { return x - 1; }\n"
            "int apply(int (*op)(int), int v) { return op(v); }\n"
            "int main(void) { return apply(add, 1) + apply(sub, 2); }\n")
        (call,) = indirect_calls(program)
        assert sorted(call.fp_candidates) == ["add", "sub"]

    def test_candidates_do_not_include_unrelated_designators(self):
        # heavy's address is taken elsewhere; pick's local pointer can
        # only hold light, and the candidate set must stay that precise
        # (this is exactly what the widen fault operator violates).
        program, _resolution = resolve(
            "int light(int x) { return x + 1; }\n"
            "int heavy(int x) { int a[32]; a[x & 31] = x; return a[0]; }\n"
            "int pick(int x) { int (*f)(int) = light; return f(x); }\n"
            "int main(void) { int (*g)(int) = heavy; return g(pick(3)); }\n")
        by_caller = {}
        for fn in program.functions:
            for call in indirect_calls_in(fn):
                by_caller[fn.name] = call.fp_candidates
        assert by_caller["pick"] == ["light"]
        assert by_caller["main"] == ["heavy"]

    def test_no_function_pointers_is_empty_resolution(self):
        _program, resolution = resolve("int main(void) { return 0; }\n")
        assert resolution.sites == 0
        assert not resolution.any_indirect
        assert resolution.fids == {}


def indirect_calls_in(fn):
    class _One:
        functions = [fn]
    return indirect_calls(_One)


class TestRejections:
    def test_null_only_pointer_rejected(self):
        with pytest.raises(AnalysisError, match="no possible targets"):
            resolve("int main(void) { int (*f)(int) = 0; return f(1); }\n")

    def test_signature_mismatch_rejected(self):
        # The typechecker already rejects every source-level way to put a
        # wrongly-typed function into a pointer, so this annotate-time
        # check is defense in depth: poison the solved candidate sets and
        # confirm the analysis still refuses to annotate.
        from repro.analyzer.values import _Resolver

        program = parse(
            "int add(int x) { return x + 1; }\n"
            "int two(int x, int y) { return x + y; }\n"
            "int main(void) { int (*f)(int) = add; return f(3); }\n")
        env = typecheck(program)
        resolver = _Resolver(program, env)
        resolver.collect()
        solution = resolver.solve()
        for targets in solution.values():
            targets.add("two")
        with pytest.raises(AnalysisError, match="may hold"):
            resolver.annotate(solution)

    def test_fp_escaping_to_external_rejected(self):
        with pytest.raises(AnalysisError, match="external"):
            resolve(
                "int register_cb(int (*f)(int));\n"
                "int add(int x) { return x + 1; }\n"
                "int main(void) { int (*f)(int) = add; "
                "register_cb(f); return 0; }\n")
