"""Exporters and schema validators for the observability layer.

Three on-disk formats (all dependency-free JSON):

* **span JSONL** (``*.jsonl``): one meta line, then one record per
  finished span — the stable machine-readable form
  (``docs/OBSERVABILITY.md`` documents every field);
* **Chrome trace** (any other ``--trace-out`` extension): the
  ``traceEvents`` JSON that ``chrome://tracing`` and
  https://ui.perfetto.dev open directly — complete ``"X"`` events with
  microsecond timestamps, one track per process;
* **metrics JSON** (``--metrics-out``): a registry snapshot plus the
  derived rates of :func:`repro.obs.metrics.derive_rates`.

The ``validate_*`` functions are the schema's executable definition:
the smoke test ``tests/unit/test_obs_schema.py`` runs them over real CLI
output, so the format cannot drift without a test failing.
"""

from __future__ import annotations

import json
import time
from typing import Iterable

from repro.obs.metrics import METRICS_SCHEMA, derive_rates
from repro.obs.spans import SPAN_SCHEMA

_NUMBER = (int, float)
_SCALAR = (int, float, str, bool, type(None))


# ---------------------------------------------------------------------------
# Writers
# ---------------------------------------------------------------------------


def spans_jsonl_lines(records: Iterable[dict]) -> Iterable[str]:
    """The span JSONL document: a meta header line, then one span each."""
    yield json.dumps({"type": "meta", "schema": SPAN_SCHEMA,
                      "written_at": round(time.time(), 3)})
    for record in records:
        yield json.dumps({"type": "span", **record})


def write_spans_jsonl(path: str, records: Iterable[dict]) -> None:
    with open(path, "w") as handle:
        for line in spans_jsonl_lines(records):
            handle.write(line + "\n")


def chrome_trace_document(records: Iterable[dict]) -> dict:
    """Spans as a ``chrome://tracing`` / Perfetto ``traceEvents`` object."""
    events = []
    for record in records:
        events.append({
            "name": record["name"],
            "ph": "X",
            "ts": round(record["ts"] * 1e6, 3),      # microseconds
            "dur": round(record["dur"] * 1e6, 3),
            "pid": record["pid"],
            "tid": record["pid"],
            "args": record["attrs"],
        })
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"schema": SPAN_SCHEMA}}


def write_chrome_trace(path: str, records: Iterable[dict]) -> None:
    with open(path, "w") as handle:
        json.dump(chrome_trace_document(records), handle, indent=1)
        handle.write("\n")


def write_trace(path: str, records: Iterable[dict]) -> None:
    """``--trace-out`` dispatch: ``*.jsonl`` → JSONL, else Chrome trace."""
    if path.endswith(".jsonl"):
        write_spans_jsonl(path, records)
    else:
        write_chrome_trace(path, records)


def metrics_document(snapshot: dict) -> dict:
    """A metrics snapshot as the ``--metrics-out`` JSON document."""
    return {"schema": METRICS_SCHEMA,
            "written_at": round(time.time(), 3),
            "counters": snapshot.get("counters", {}),
            "gauges": snapshot.get("gauges", {}),
            "histograms": snapshot.get("histograms", {}),
            "derived": derive_rates(snapshot)}


def write_metrics_json(path: str, snapshot: dict) -> None:
    with open(path, "w") as handle:
        json.dump(metrics_document(snapshot), handle, indent=1,
                  sort_keys=True)
        handle.write("\n")


# ---------------------------------------------------------------------------
# Schema validation (the executable format definition)
# ---------------------------------------------------------------------------


def _fail(context: str, message: str) -> None:
    raise ValueError(f"{context}: {message}")


def validate_span_record(record: dict, context: str = "span") -> None:
    """Validate one JSONL span record; raises ``ValueError`` on drift."""
    if not isinstance(record, dict):
        _fail(context, "record is not an object")
    if record.get("type") != "span":
        _fail(context, f"type must be 'span', got {record.get('type')!r}")
    if not isinstance(record.get("name"), str) or not record["name"]:
        _fail(context, "name must be a non-empty string")
    for key in ("ts", "dur", "cpu"):
        if not isinstance(record.get(key), _NUMBER):
            _fail(context, f"{key} must be a number")
        if key != "ts" and record[key] < 0:
            _fail(context, f"{key} must be non-negative")
    for key in ("pid", "id"):
        if not isinstance(record.get(key), int):
            _fail(context, f"{key} must be an integer")
    if record.get("parent") is not None \
            and not isinstance(record["parent"], int):
        _fail(context, "parent must be an integer or null")
    attrs = record.get("attrs")
    if not isinstance(attrs, dict):
        _fail(context, "attrs must be an object")
    for name, value in attrs.items():
        if not isinstance(value, _SCALAR):
            _fail(context, f"attr {name!r} must be a JSON scalar")


def validate_spans_jsonl(lines: Iterable[str]) -> int:
    """Validate a span JSONL document; returns the number of spans."""
    count = 0
    meta_seen = False
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("type") == "meta":
            if record.get("schema") != SPAN_SCHEMA:
                _fail(f"line {index + 1}",
                      f"unknown schema {record.get('schema')!r}")
            meta_seen = True
            continue
        validate_span_record(record, context=f"line {index + 1}")
        count += 1
    if not meta_seen:
        _fail("document", "missing meta line with the schema identifier")
    return count


def validate_histogram(name: str, data: dict) -> None:
    if not isinstance(data, dict):
        _fail(name, "histogram must be an object")
    buckets = data.get("buckets")
    counts = data.get("counts")
    if not isinstance(buckets, list) or not all(
            isinstance(b, _NUMBER) for b in buckets):
        _fail(name, "buckets must be a list of numbers")
    if buckets != sorted(set(buckets)):
        _fail(name, "buckets must be strictly increasing")
    if not isinstance(counts, list) or len(counts) != len(buckets) + 1:
        _fail(name, "counts must be a list of len(buckets) + 1 entries")
    if not all(isinstance(c, int) and c >= 0 for c in counts):
        _fail(name, "counts must be non-negative integers")
    if not isinstance(data.get("sum"), _NUMBER):
        _fail(name, "sum must be a number")
    if data.get("count") != sum(counts):
        _fail(name, "count must equal the sum of the bucket counts")


def validate_metrics_document(document: dict) -> None:
    """Validate a ``--metrics-out`` document; raises ``ValueError``."""
    if document.get("schema") != METRICS_SCHEMA:
        _fail("document", f"unknown schema {document.get('schema')!r}")
    for section in ("counters", "gauges", "derived"):
        table = document.get(section)
        if not isinstance(table, dict):
            _fail(section, "must be an object")
        for name, value in table.items():
            if not isinstance(name, str) or not isinstance(value, _NUMBER):
                _fail(section, f"{name!r} must map a string to a number")
    histograms = document.get("histograms")
    if not isinstance(histograms, dict):
        _fail("histograms", "must be an object")
    for name, data in histograms.items():
        validate_histogram(f"histograms[{name!r}]", data)
