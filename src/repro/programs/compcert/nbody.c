/* CompCert test suite: nbody.c (adapted).  N-body simulation of the
 * jovian planets; the literal double constants of the original are set
 * up in setup_bodies.  Functions match Table 1: advance, energy,
 * offset_momentum, setup_bodies, main. */

#define NBODIES 5
#define PI 3.141592653589793
#define SOLAR_MASS (4.0 * PI * PI)
#define DAYS_PER_YEAR 365.24

struct planet {
    double x; double y; double z;
    double vx; double vy; double vz;
    double mass;
};

struct planet bodies[NBODIES];

void advance(int nbodies, double dt) {
    int i, j;
    for (i = 0; i < nbodies; i++) {
        for (j = i + 1; j < nbodies; j++) {
            double dx = bodies[i].x - bodies[j].x;
            double dy = bodies[i].y - bodies[j].y;
            double dz = bodies[i].z - bodies[j].z;
            double distance = sqrt(dx * dx + dy * dy + dz * dz);
            double mag = dt / (distance * distance * distance);
            bodies[i].vx = bodies[i].vx - dx * bodies[j].mass * mag;
            bodies[i].vy = bodies[i].vy - dy * bodies[j].mass * mag;
            bodies[i].vz = bodies[i].vz - dz * bodies[j].mass * mag;
            bodies[j].vx = bodies[j].vx + dx * bodies[i].mass * mag;
            bodies[j].vy = bodies[j].vy + dy * bodies[i].mass * mag;
            bodies[j].vz = bodies[j].vz + dz * bodies[i].mass * mag;
        }
    }
    for (i = 0; i < nbodies; i++) {
        bodies[i].x = bodies[i].x + dt * bodies[i].vx;
        bodies[i].y = bodies[i].y + dt * bodies[i].vy;
        bodies[i].z = bodies[i].z + dt * bodies[i].vz;
    }
}

double energy(int nbodies) {
    double e = 0.0;
    int i, j;
    for (i = 0; i < nbodies; i++) {
        e = e + 0.5 * bodies[i].mass *
            (bodies[i].vx * bodies[i].vx +
             bodies[i].vy * bodies[i].vy +
             bodies[i].vz * bodies[i].vz);
        for (j = i + 1; j < nbodies; j++) {
            double dx = bodies[i].x - bodies[j].x;
            double dy = bodies[i].y - bodies[j].y;
            double dz = bodies[i].z - bodies[j].z;
            double distance = sqrt(dx * dx + dy * dy + dz * dz);
            e = e - (bodies[i].mass * bodies[j].mass) / distance;
        }
    }
    return e;
}

void offset_momentum(int nbodies) {
    double px = 0.0, py = 0.0, pz = 0.0;
    int i;
    for (i = 0; i < nbodies; i++) {
        px = px + bodies[i].vx * bodies[i].mass;
        py = py + bodies[i].vy * bodies[i].mass;
        pz = pz + bodies[i].vz * bodies[i].mass;
    }
    bodies[0].vx = -px / SOLAR_MASS;
    bodies[0].vy = -py / SOLAR_MASS;
    bodies[0].vz = -pz / SOLAR_MASS;
}

void setup_bodies() {
    /* sun */
    bodies[0].x = 0.0; bodies[0].y = 0.0; bodies[0].z = 0.0;
    bodies[0].vx = 0.0; bodies[0].vy = 0.0; bodies[0].vz = 0.0;
    bodies[0].mass = SOLAR_MASS;
    /* jupiter */
    bodies[1].x = 4.84143144246472090;
    bodies[1].y = -1.16032004402742839;
    bodies[1].z = -0.103622044471123109;
    bodies[1].vx = 0.00166007664274403694 * DAYS_PER_YEAR;
    bodies[1].vy = 0.00769901118419740425 * DAYS_PER_YEAR;
    bodies[1].vz = -0.0000690460016972063023 * DAYS_PER_YEAR;
    bodies[1].mass = 0.000954791938424326609 * SOLAR_MASS;
    /* saturn */
    bodies[2].x = 8.34336671824457987;
    bodies[2].y = 4.12479856412430479;
    bodies[2].z = -0.403523417114321381;
    bodies[2].vx = -0.00276742510726862411 * DAYS_PER_YEAR;
    bodies[2].vy = 0.00499852801234917238 * DAYS_PER_YEAR;
    bodies[2].vz = 0.0000230417297573763929 * DAYS_PER_YEAR;
    bodies[2].mass = 0.000285885980666130812 * SOLAR_MASS;
    /* uranus */
    bodies[3].x = 12.8943695621391310;
    bodies[3].y = -15.1111514016986312;
    bodies[3].z = -0.223307578892655734;
    bodies[3].vx = 0.00296460137564761618 * DAYS_PER_YEAR;
    bodies[3].vy = 0.00237847173959480950 * DAYS_PER_YEAR;
    bodies[3].vz = -0.0000296589568540237556 * DAYS_PER_YEAR;
    bodies[3].mass = 0.0000436624404335156298 * SOLAR_MASS;
    /* neptune */
    bodies[4].x = 15.3796971148509165;
    bodies[4].y = -25.9193146099879641;
    bodies[4].z = 0.179258772950371181;
    bodies[4].vx = 0.00268067772490389322 * DAYS_PER_YEAR;
    bodies[4].vy = 0.00162824170038242295 * DAYS_PER_YEAR;
    bodies[4].vz = -0.0000951592254519715870 * DAYS_PER_YEAR;
    bodies[4].mass = 0.0000515138902046611451 * SOLAR_MASS;
}

int main() {
    int i;
    double e0, e1;
    setup_bodies();
    offset_momentum(NBODIES);
    e0 = energy(NBODIES);
    for (i = 0; i < 100; i++) {
        advance(NBODIES, 0.01);
    }
    e1 = energy(NBODIES);
    print_float(e0);
    print_float(e1);
    /* Energy should be roughly conserved by the symplectic step. */
    return fabs(e0 - e1) < 0.01;
}
