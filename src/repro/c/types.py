"""The C type algebra of the supported subset.

Sizes and alignments follow the IA32 ABI that CompCert 1.13 targets:
``char`` 1, ``short`` 2, ``int`` 4, pointers 4, ``double`` 8 (aligned to 4
on the stack, like CompCert's IA32 port aligns float64 chunks to 4).
``float`` is accepted by the parser and treated at double precision.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TypeError_
from repro.memory.chunks import Chunk


class CType:
    """Abstract C type; instances are immutable and structurally equal."""

    __slots__ = ()

    @property
    def size(self) -> int:
        raise NotImplementedError

    @property
    def alignment(self) -> int:
        raise NotImplementedError

    @property
    def is_scalar(self) -> bool:
        return False

    @property
    def is_integer(self) -> bool:
        return False

    @property
    def is_float(self) -> bool:
        return False

    @property
    def is_pointer(self) -> bool:
        return False

    @property
    def is_arithmetic(self) -> bool:
        return self.is_integer or self.is_float

    def chunk(self) -> Chunk:
        """The memory chunk used to load/store a value of this type."""
        raise TypeError_(f"type {self} has no access chunk")


class TVoid(CType):
    __slots__ = ()

    @property
    def size(self) -> int:
        raise TypeError_("sizeof(void)")

    @property
    def alignment(self) -> int:
        return 1

    def __str__(self) -> str:
        return "void"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TVoid)

    def __hash__(self) -> int:
        return hash("TVoid")


class TInt(CType):
    """An integer type of a given byte width and signedness."""

    __slots__ = ("width", "signed")

    def __init__(self, width: int, signed: bool) -> None:
        if width not in (1, 2, 4):
            raise TypeError_(f"unsupported integer width {width}")
        self.width = width
        self.signed = signed

    @property
    def size(self) -> int:
        return self.width

    @property
    def alignment(self) -> int:
        return self.width

    @property
    def is_scalar(self) -> bool:
        return True

    @property
    def is_integer(self) -> bool:
        return True

    def chunk(self) -> Chunk:
        if self.width == 1:
            return Chunk.INT8_SIGNED if self.signed else Chunk.INT8_UNSIGNED
        if self.width == 2:
            return Chunk.INT16_SIGNED if self.signed else Chunk.INT16_UNSIGNED
        return Chunk.INT32

    def __str__(self) -> str:
        base = {1: "char", 2: "short", 4: "int"}[self.width]
        return base if self.signed else f"unsigned {base}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TInt)
            and other.width == self.width
            and other.signed == self.signed
        )

    def __hash__(self) -> int:
        return hash(("TInt", self.width, self.signed))


class TFloat(CType):
    """IEEE binary64 (both ``float`` and ``double`` map here)."""

    __slots__ = ()

    @property
    def size(self) -> int:
        return 8

    @property
    def alignment(self) -> int:
        # CompCert's IA32 port aligns float64 stack data to 4 bytes.
        return 4

    @property
    def is_scalar(self) -> bool:
        return True

    @property
    def is_float(self) -> bool:
        return True

    def chunk(self) -> Chunk:
        return Chunk.FLOAT64

    def __str__(self) -> str:
        return "double"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TFloat)

    def __hash__(self) -> int:
        return hash("TFloat")


class TPointer(CType):
    __slots__ = ("target",)

    def __init__(self, target: CType) -> None:
        self.target = target

    @property
    def size(self) -> int:
        return 4

    @property
    def alignment(self) -> int:
        return 4

    @property
    def is_scalar(self) -> bool:
        return True

    @property
    def is_pointer(self) -> bool:
        return True

    def chunk(self) -> Chunk:
        return Chunk.INT32

    def __str__(self) -> str:
        return f"{self.target}*"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TPointer) and other.target == self.target

    def __hash__(self) -> int:
        return hash(("TPointer", self.target))


class TArray(CType):
    __slots__ = ("element", "length")

    def __init__(self, element: CType, length: int) -> None:
        if length < 0:
            raise TypeError_(f"negative array length {length}")
        self.element = element
        self.length = length

    @property
    def size(self) -> int:
        return self.element.size * self.length

    @property
    def alignment(self) -> int:
        return self.element.alignment

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TArray)
            and other.element == self.element
            and other.length == self.length
        )

    def __hash__(self) -> int:
        return hash(("TArray", self.element, self.length))


class StructField:
    __slots__ = ("name", "ctype", "offset")

    def __init__(self, name: str, ctype: CType, offset: int) -> None:
        self.name = name
        self.ctype = ctype
        self.offset = offset


class TStruct(CType):
    """A struct with a computed layout.

    The layout is the usual sequential one: each field at the next offset
    aligned to the field's alignment; total size padded to the struct's
    alignment (the max field alignment).

    Self-referential structs are supported through two-phase
    construction: :meth:`incomplete` creates the (pointer-only usable)
    tag, and :meth:`complete` fills in the members — the parser completes
    a struct right after its closing brace, so only pointers to the type
    can occur inside its own definition, as in C.
    """

    __slots__ = ("name", "fields", "_size", "_alignment", "_by_name",
                 "_complete")

    def __init__(self, name: str, members: Sequence[tuple[str, CType]]) -> None:
        self.name = name
        self._complete = False
        self.complete(members)

    @classmethod
    def incomplete(cls, name: str) -> "TStruct":
        struct = cls.__new__(cls)
        struct.name = name
        struct.fields = ()
        struct._size = 0
        struct._alignment = 1
        struct._by_name = {}
        struct._complete = False
        return struct

    def complete(self, members: Sequence[tuple[str, CType]]) -> None:
        if self._complete:
            raise TypeError_(f"struct {self.name} redefined")
        offset = 0
        alignment = 1
        fields: list[StructField] = []
        seen: set[str] = set()
        for member_name, member_type in members:
            if member_name in seen:
                raise TypeError_(f"duplicate field {member_name!r} in struct {self.name}")
            seen.add(member_name)
            offset = align_up(offset, member_type.alignment)
            fields.append(StructField(member_name, member_type, offset))
            offset += member_type.size
            alignment = max(alignment, member_type.alignment)
        self.fields = tuple(fields)
        self._alignment = alignment
        self._size = align_up(offset, alignment) if fields else 0
        self._by_name = {field.name: field for field in fields}
        self._complete = True

    @property
    def is_complete(self) -> bool:
        return self._complete

    @property
    def size(self) -> int:
        if not self._complete:
            raise TypeError_(f"sizeof incomplete struct {self.name}")
        return self._size

    @property
    def alignment(self) -> int:
        if not self._complete:
            raise TypeError_(f"alignof incomplete struct {self.name}")
        return self._alignment

    def field(self, name: str) -> StructField:
        try:
            return self._by_name[name]
        except KeyError:
            raise TypeError_(f"struct {self.name} has no field {name!r}") from None

    def __str__(self) -> str:
        return f"struct {self.name}"

    def __eq__(self, other: object) -> bool:
        # Structs are nominal: same tag means same type (one definition
        # per program is enforced by the type checker).
        return isinstance(other, TStruct) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("TStruct", self.name))


class TFunction(CType):
    """A function type (only used at declarations; no function pointers)."""

    __slots__ = ("result", "params", "varargs")

    def __init__(self, result: CType, params: Sequence[CType], varargs: bool = False) -> None:
        self.result = result
        self.params = tuple(params)
        self.varargs = varargs

    @property
    def size(self) -> int:
        raise TypeError_("sizeof(function)")

    @property
    def alignment(self) -> int:
        raise TypeError_("alignof(function)")

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params) or "void"
        return f"{self.result}({params})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TFunction)
            and other.result == self.result
            and other.params == self.params
            and other.varargs == self.varargs
        )

    def __hash__(self) -> int:
        return hash(("TFunction", self.result, self.params, self.varargs))


# Canonical instances ---------------------------------------------------------

VOID = TVoid()
MAX_INT_LIT_SIGNED = (1 << 31) - 1
CHAR = TInt(1, True)
UCHAR = TInt(1, False)
SHORT = TInt(2, True)
USHORT = TInt(2, False)
INT = TInt(4, True)
UINT = TInt(4, False)
DOUBLE = TFloat()


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"bad alignment {alignment}")
    return (value + alignment - 1) // alignment * alignment


def usual_arithmetic_conversion(left: CType, right: CType) -> CType:
    """C's usual arithmetic conversions, restricted to our types.

    Doubles absorb everything; otherwise both sides promote to 32 bits and
    unsignedness wins.
    """
    if not (left.is_arithmetic and right.is_arithmetic):
        raise TypeError_(f"arithmetic conversion on {left} and {right}")
    if left.is_float or right.is_float:
        return DOUBLE
    left_p = integer_promotion(left)
    right_p = integer_promotion(right)
    assert isinstance(left_p, TInt) and isinstance(right_p, TInt)
    if left_p.signed and right_p.signed:
        return INT
    return UINT


def integer_promotion(ctype: CType) -> CType:
    """Promote sub-int integer types to ``int`` (they all fit)."""
    if isinstance(ctype, TInt) and ctype.width < 4:
        return INT
    return ctype
