"""Focused unit tests for the Mach → ASMsz expansion discipline."""

import pytest

from repro.asm import ast as asm
from repro.asm.lower import _Emitter  # tested directly: it is the codegen
from repro.driver import compile_c
from repro.mach import ast as mach
from repro.memory.chunks import Chunk
from repro.regalloc.locations import LFReg, LReg, LSlot


def emitter(out_size=0, int_slots=4, float_slots=2, locals_size=16):
    frame = mach.FrameInfo(out_size, int_slots, float_slots, locals_size)
    function = mach.MachFunction("f", [], frame, returns_float=False)
    return _Emitter(function), frame


class TestOperandDiscipline:
    def test_register_operand_used_directly(self):
        e, _frame = emitter()
        out = []
        assert e.read_int(LReg("eax"), "esi", out) == "eax"
        assert out == []

    def test_slot_operand_loaded_into_scratch(self):
        e, frame = emitter()
        out = []
        reg = e.read_int(LSlot(1, False), "esi", out)
        assert reg == "esi"
        (load,) = out
        assert isinstance(load, asm.Pload)
        assert load.addr.offset == frame.slot_offset(LSlot(1, False))

    def test_float_class_checked(self):
        from repro.errors import LoweringError

        e, _frame = emitter()
        with pytest.raises(LoweringError):
            e.read_int(LFReg("xmm0"), "esi", [])
        with pytest.raises(LoweringError):
            e.read_float(LReg("eax"), "xmm6", [])

    def test_write_to_slot_stores(self):
        e, _frame = emitter()
        out = []
        e.write_int(LSlot(0, False), "esi", out)
        (store,) = out
        assert isinstance(store, asm.Pstore)
        assert store.chunk is Chunk.INT32

    def test_write_to_same_register_is_noop(self):
        e, _frame = emitter()
        out = []
        e.write_int(LReg("ebx"), "ebx", out)
        assert out == []


class TestInstructionExpansion:
    def test_binop_never_clobbers_allocatable_regs(self):
        e, _frame = emitter()
        instr = mach.MOp(("binop", "add"), [LReg("eax"), LReg("ebx")],
                         LReg("ecx"))
        out = e.lower(instr)
        written = set()
        for i in out:
            if isinstance(i, asm.Pmov):
                written.add(i.dest)
            if isinstance(i, asm.Pbinop):
                written.add(i.dest)
        # only the scratch accumulator and the destination are written
        assert written <= {"esi", "edi", "ecx"}

    def test_getparam_offset_includes_frame_and_ra(self):
        e, frame = emitter()
        instr = mach.MGetParam(8, LReg("eax"), False)
        out = e.lower(instr)
        load = next(i for i in out if isinstance(i, asm.Pload))
        assert load.addr.offset == frame.size + 4 + 8

    def test_storearg_hits_outgoing_area(self):
        e, _frame = emitter(out_size=16)
        instr = mach.MStoreArg(LReg("eax"), 4, False)
        out = e.lower(instr)
        (store,) = out
        assert isinstance(store.addr, asm.AStack)
        assert store.addr.offset == 4

    def test_return_restores_frame(self):
        e, frame = emitter()
        out = e.lower(mach.MReturn())
        assert isinstance(out[0], asm.Pespadd)
        assert out[0].delta == frame.size
        assert isinstance(out[1], asm.Pret)

    def test_float_compare_produces_int(self):
        e, _frame = emitter()
        instr = mach.MOp(("binop", "cmpf_lt"),
                         [LFReg("xmm0"), LFReg("xmm1")], LReg("eax"))
        out = e.lower(instr)
        cmp = next(i for i in out if isinstance(i, asm.Pcmpf))
        assert cmp.dest == "eax" or any(
            isinstance(i, asm.Pmov) and i.dest == "eax" for i in out)


class TestWholeProgramInvariants:
    def extract(self, source):
        return compile_c(source).asm

    def test_scratch_only_clobbered_locally(self):
        # Compile something register-heavy and check the ASM never moves
        # an allocatable register into scratch *across* a call boundary
        # expecting it to survive (i.e. no reads of scratch right after
        # a call).
        program = self.extract(
            "int f(int a, int b) { return a + b; } "
            "int main() { int x = 3, y = 4; return f(x, y) + f(y, x); }")
        for function in program.functions.values():
            previous = None
            for instr in function.body:
                if isinstance(previous, asm.Pcall):
                    # first use after a call must not read esi/edi
                    used = []
                    if isinstance(instr, asm.Pmov):
                        used = [instr.src]
                    if isinstance(instr, asm.Pbinop):
                        used = [instr.src]
                    assert "esi" not in used and "edi" not in used
                previous = instr

    def test_all_labels_resolve(self):
        program = self.extract(
            "int main() { int s = 0; "
            "for (int i = 0; i < 9; i++) { if (i % 2) continue; s += i; } "
            "switch (s) { case 20: return 1; default: return 0; } }")
        for function in program.functions.values():
            for instr in function.body:
                if isinstance(instr, (asm.Pjmp, asm.Pjcc)):
                    assert instr.label in function.labels

    def test_esp_balanced_on_every_path(self):
        # Symbolically walk each function: at every Pret the net ESP
        # delta since entry must be zero.
        program = self.extract(
            "int f(int n) { if (n > 0) { int a[4]; a[0] = n; return a[0]; } "
            "return -n; } int main() { return f(3); }")
        for function in program.functions.values():
            self._check_balanced(function)

    @staticmethod
    def _check_balanced(function):
        # breadth-first over (index, delta)
        seen = {}
        work = [(0, 0)]
        while work:
            index, delta = work.pop()
            if index >= len(function.body):
                continue
            if seen.get(index) == delta:
                continue
            seen[index] = delta
            instr = function.body[index]
            if isinstance(instr, asm.Pespadd):
                work.append((index + 1, delta + instr.delta))
            elif isinstance(instr, asm.Pret):
                assert delta == 0, f"{function.name}: unbalanced ESP"
            elif isinstance(instr, asm.Pjmp):
                work.append((function.labels[instr.label], delta))
            elif isinstance(instr, asm.Pjcc):
                work.append((function.labels[instr.label], delta))
                work.append((index + 1, delta))
            else:
                work.append((index + 1, delta))
