"""``python -m repro serve``: certified stack bounds as an HTTP service.

A zero-dependency daemon (stdlib ``http.server`` — one thread per
connection — over the :class:`~repro.serve.pool.ServePool` worker
processes).  Endpoints:

* ``POST /verify`` — a C translation unit in, the verified bounds plus
  the re-checkable proof certificate out (see ``docs/SERVING.md`` for
  the request/response schema).
* ``GET /metrics`` — the pool-wide metrics snapshot (counters, gauges,
  per-request latency histograms, store hit/miss counters and derived
  rates), the same document ``--metrics-out`` writes.
* ``GET /healthz`` — liveness: uptime, in-flight count, worker
  heartbeat ages.

Responses the daemon can produce for ``/verify``:

====  =====================================================
200   verified bounds + certificate
400   malformed request (bad JSON, unknown option, no source)
422   the pipeline rejected the program (parse error, recursion, …)
503   every in-flight slot taken — ``Retry-After`` is set, nothing
      was queued; the client owns the retry
504   the request exceeded the per-request budget (or its worker died)
====  =====================================================

``run_server`` adds the process discipline: one-line exit-2
diagnostics for a port that is already bound or a pool that fails to
start, and a ``SIGTERM``/``SIGINT`` handler that stops accepting,
drains in-flight requests, then exits 0.
"""

from __future__ import annotations

import json
import os
import queue
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro import obs
from repro.obs.export import metrics_document
from repro.serve.pipeline import (ServeRequest, error_response,
                                  options_from_json, validate_response)
from repro.serve.pool import PoolSaturated, ServePool
from repro.serve.store import (DEFAULT_MAX_BYTES, ServeError, options_digest,
                               source_digest)

#: Where the daemon keeps its result store by default (a sibling of the
#: campaign's corpus cache).
DEFAULT_STORE_DIR = os.path.join(".repro-cache", "serve")

#: Seconds a 503 tells the client to back off before retrying.
RETRY_AFTER_S = 1

#: Batch response stream schema identifier (one NDJSON line per item).
BATCH_SCHEMA = "repro.serve.batch/1"

#: Most items one ``POST /batch`` may carry.
MAX_BATCH_ITEMS = 64


class ServeConfig:
    """Everything one daemon needs (defaults match the CLI's)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 jobs: int = 2, queue_depth: int = 16,
                 timeout_s: float = 60.0,
                 store_root: Optional[str] = DEFAULT_STORE_DIR,
                 store_max_bytes: int = DEFAULT_MAX_BYTES,
                 allow_chaos: bool = False) -> None:
        self.host = host
        self.port = port
        self.jobs = jobs
        self.queue_depth = queue_depth
        self.timeout_s = timeout_s
        self.store_root = store_root
        self.store_max_bytes = store_max_bytes
        #: Honor the test-only ``chaos`` request field (fault injection
        #: and the smoke script's deliberate saturation probes).  The
        #: CLI never sets this.
        self.allow_chaos = allow_chaos


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # The daemon's own telemetry goes through /metrics; per-connection
    # stderr chatter would swamp a loaded server.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    @property
    def _srv(self) -> "BoundsServer":
        return self.server  # type: ignore[return-value]

    def _send_json(self, status: int, payload: dict,
                   headers: Optional[dict] = None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        obs.add(f"serve.responses.{status}")

    # -- GET ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        if self.path == "/healthz":
            self._send_json(200, self._srv.health())
            return
        if self.path == "/metrics":
            self._send_json(200, metrics_document(obs.snapshot()))
            return
        self._send_json(404, {"error": f"no such endpoint {self.path}"})

    # -- POST /verify and /batch -------------------------------------------

    def do_POST(self) -> None:  # noqa: N802
        if self.path == "/batch":
            self._do_batch()
            return
        if self.path != "/verify":
            self._send_json(404, {"error": f"no such endpoint {self.path}"})
            return
        started = time.perf_counter()
        obs.add("serve.requests")
        try:
            fields = self._parse_request_body()
        except ServeError as error:
            self._send_json(400, error_response(error))
            return
        try:
            status, body = self._srv.pool.submit(**fields)
        except PoolSaturated as error:
            self._send_json(503, error_response(error),
                            headers={"Retry-After": str(RETRY_AFTER_S)})
            return
        status, body = _self_check(status, body)
        self._send_json(status, body)
        _observe_request(started, status, body)

    # -- POST /batch -------------------------------------------------------

    def _do_batch(self) -> None:
        """Verify a list of sources in one request, streaming NDJSON.

        The batch is deduplicated up front — items agreeing on
        ``(source, macros, options, probe)`` share one pipeline
        execution, the duplicates carrying a ``duplicate_of`` reference
        to their representative's index — and the residual unique items
        fan out across the worker pool concurrently (queuing politely
        on a full pool instead of shedding).  Results stream back one
        JSON line per item in completion order, so a bulk client starts
        consuming answers while the tail is still compiling.
        """
        started = time.perf_counter()
        obs.add("serve.batch.requests")
        try:
            items = self._parse_batch_body()
        except ServeError as error:
            self._send_json(400, error_response(error))
            return
        obs.add("serve.batch.items", len(items))
        representatives: dict[tuple, int] = {}
        duplicate_of: dict[int, int] = {}
        for index, fields in enumerate(items):
            key = (source_digest(fields["source"], fields["macros"]),
                   options_digest(fields["options"]),
                   bool(fields["probe"]))
            if key in representatives:
                duplicate_of[index] = representatives[key]
            else:
                representatives[key] = index
        obs.add("serve.batch.deduped", len(duplicate_of))

        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        self._send_chunk({"schema": BATCH_SCHEMA, "items": len(items),
                          "unique": len(representatives)})

        answers: "queue.Queue[tuple[int, int, dict]]" = queue.Queue()

        def run_one(index: int) -> None:
            item_started = time.perf_counter()
            try:
                status, body = self._srv.pool.submit(
                    block=True, **items[index])
            except PoolSaturated as error:
                status, body = 503, error_response(error)
            status, body = _self_check(status, body)
            _observe_request(item_started, status, body)
            answers.put((index, status, body))

        threads = [threading.Thread(target=run_one, args=(index,),
                                    daemon=True)
                   for index in representatives.values()]
        for thread in threads:
            thread.start()
        followers: dict[int, list[int]] = {}
        for index, representative in duplicate_of.items():
            followers.setdefault(representative, []).append(index)
        for _ in range(len(representatives)):
            index, status, body = answers.get()
            self._send_chunk({"index": index, "status": status,
                              "body": body})
            for duplicate in followers.get(index, ()):
                self._send_chunk({"index": duplicate, "status": status,
                                  "duplicate_of": index, "body": body})
        for thread in threads:
            thread.join(1.0)
        self._send_chunk({"done": True})
        self.wfile.write(b"0\r\n\r\n")
        obs.add("serve.responses.200")
        obs.observe("serve.batch_seconds", time.perf_counter() - started)

    def _send_chunk(self, payload: dict) -> None:
        data = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.wfile.write(f"{len(data):X}\r\n".encode())
        self.wfile.write(data)
        self.wfile.write(b"\r\n")

    def _parse_batch_body(self) -> list[dict]:
        """The per-item ``ServePool.submit`` kwargs for one batch."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise ServeError("malformed Content-Length") from None
        try:
            data = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as error:
            raise ServeError(f"request is not valid JSON: {error}") \
                from None
        if not isinstance(data, dict) \
                or not isinstance(data.get("items"), list):
            raise ServeError('batch request must be {"items": [...]}')
        items = data["items"]
        if not items:
            raise ServeError("batch needs at least one item")
        if len(items) > MAX_BATCH_ITEMS:
            raise ServeError(
                f"batch carries {len(items)} items "
                f"(limit {MAX_BATCH_ITEMS})")
        fields = []
        for index, item in enumerate(items):
            try:
                fields.append(_request_fields(item))
            except ServeError as error:
                raise ServeError(f"batch item {index}: {error}") from None
        return fields

    def _parse_request_body(self) -> dict:
        """The ``ServePool.submit`` kwargs for this HTTP request.

        Two content types: ``application/json`` carries
        ``{source, filename?, macros?, options?}``; anything else is
        the raw C source with default options.
        """
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise ServeError("malformed Content-Length") from None
        raw = self.rfile.read(length)
        content_type = (self.headers.get("Content-Type") or "").split(";")[0]
        if content_type.strip().lower() != "application/json":
            if not raw.strip():
                raise ServeError("empty request body; expected C source")
            return {"source": raw.decode("utf-8", "replace"),
                    "filename": "<request>"}
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ServeError(f"request is not valid JSON: {error}") \
                from None
        fields = _request_fields(data)
        if self._srv.config.allow_chaos and isinstance(data, dict) \
                and data.get("chaos"):
            fields["chaos"] = str(data["chaos"])
        return fields


def _request_fields(data) -> dict:
    """Validate one JSON verify item into ``ServePool.submit`` kwargs.

    Shared by ``/verify`` (the whole body) and ``/batch`` (per item);
    the test-only ``chaos`` hook is deliberately not part of this
    surface — batch items never carry faults.
    """
    if not isinstance(data, dict) \
            or not isinstance(data.get("source"), str):
        raise ServeError('request must be {"source": "<C text>", ...}')
    macros = data.get("macros")
    if macros is not None and (
            not isinstance(macros, dict)
            or not all(isinstance(k, str) and isinstance(v, str)
                       for k, v in macros.items())):
        raise ServeError("macros must map names to string values")
    return {"source": data["source"],
            "filename": str(data.get("filename", "<request>")),
            "macros": macros,
            "options": options_from_json(data.get("options")),
            "probe": bool(data.get("probe", False))}


def _self_check(status: int, body: dict) -> tuple[int, dict]:
    """Validate a 200 body before the bytes leave the process: a
    response that fails its own schema is a 500, not a client surprise."""
    if status == 200:
        try:
            validate_response(body)
        except ValueError as error:
            return 500, error_response(ServeError(str(error)))
    return status, body


def _observe_request(started: float, status: int, body: dict) -> None:
    """Latency telemetry for one answered request.

    ``serve.request_seconds`` keeps the whole population;
    ``serve.warm_seconds`` / ``serve.cold_seconds`` split the verified
    answers by whether every pipeline stage replayed from the store, so
    the ``/metrics`` quantiles stop mixing two regimes that differ by
    orders of magnitude.  Error responses have no stages and stay out
    of the split.
    """
    elapsed = time.perf_counter() - started
    obs.observe("serve.request_seconds", elapsed)
    if status == 200:
        stages = body.get("stages") or {}
        warm = bool(stages) and all(outcome == "hit"
                                    for outcome in stages.values())
        obs.observe("serve.warm_seconds" if warm
                    else "serve.cold_seconds", elapsed)


class BoundsServer(ThreadingHTTPServer):
    """The daemon: an HTTP front end over a :class:`ServePool`.

    Construction order matters for diagnostics: the pool starts first
    (its failure is a ``ServeError``), then the socket binds (an
    ``OSError`` there is rewrapped to name the address) — either way the
    CLI exits 2 with one line on stderr.
    """

    daemon_threads = True

    def __init__(self, config: ServeConfig) -> None:
        obs.enable()
        self.config = config
        self.started_at = time.time()
        self.pool = ServePool(jobs=config.jobs,
                              queue_depth=config.queue_depth,
                              timeout_s=config.timeout_s,
                              store_root=config.store_root,
                              store_max_bytes=config.store_max_bytes)
        try:
            super().__init__((config.host, config.port), _Handler)
        except OSError as error:
            self.pool.close()
            raise ServeError(
                f"cannot bind {config.host}:{config.port}: "
                f"{error.strerror or error}") from error
        obs.set_gauge("serve.started_at", self.started_at)

    @property
    def bound_port(self) -> int:
        """The actual port (useful with ``--port 0``)."""
        return self.server_address[1]

    def health(self) -> dict:
        return {"status": "ok",
                "uptime_s": round(time.time() - self.started_at, 3),
                "inflight": self.pool.inflight,
                "queue_depth": self.config.queue_depth,
                "workers": self.config.jobs}

    def start_background(self) -> threading.Thread:
        """Serve from a daemon thread (tests and embedders)."""
        thread = threading.Thread(target=self.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        return thread

    def stop(self, drain_timeout_s: float = 30.0) -> bool:
        """Stop accepting, drain in-flight requests, release the pool.

        Returns True when every accepted request was answered before
        the deadline — the "never drop an accepted request" half of the
        backpressure contract.
        """
        self.shutdown()
        drained = self.pool.drain(drain_timeout_s)
        self.pool.close()
        self.server_close()
        return drained


def run_server(config: ServeConfig) -> int:
    """The CLI entry: serve until a signal, then drain and exit 0."""
    server = BoundsServer(config)
    print(f"# serving certified bounds on "
          f"http://{config.host}:{server.bound_port} "
          f"(jobs={config.jobs}, queue={config.queue_depth}, "
          f"store={config.store_root or 'memory'})", file=sys.stderr,
          flush=True)

    def _signaled(signum, _frame) -> None:
        print(f"# {signal.Signals(signum).name}: draining "
              f"{server.pool.inflight} in-flight request(s)",
              file=sys.stderr, flush=True)
        # shutdown() must run off the serve_forever thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        previous = {sig: signal.signal(sig, _signaled)
                    for sig in (signal.SIGTERM, signal.SIGINT)}
    except ValueError:  # not the main thread (embedded use)
        previous = {}
    try:
        server.serve_forever(poll_interval=0.2)
        drained = server.pool.drain(max(config.timeout_s, 1.0))
        server.pool.close()
        server.server_close()
        print("# serve: shut down cleanly"
              + ("" if drained else " (drain timed out)"), file=sys.stderr)
        return 0
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
