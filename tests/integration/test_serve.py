"""End-to-end tests of the certified-bounds daemon (``repro serve``).

The acceptance contract, executable:

* served bounds are byte-identical to in-process
  ``verify_stack_bounds`` over the catalog sample (the differential-
  oracle pattern of ``test_sem_decode.py``, lifted to HTTP);
* a repeat round is served from the content-addressed store at every
  stage — verified through the ``/metrics`` hit/miss counters, not by
  trusting the response;
* a near-repeat round (same sources, different backend flags) is a
  partial hit: only the backend stage recompiles;
* a saturated queue answers 503 with ``Retry-After`` and never drops a
  request it accepted;
* ``SIGTERM`` drains in-flight requests and exits 0 (subprocess test).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.driver import CompilerOptions, verify_stack_bounds
from repro.programs.loader import load_source
from repro.serve import STAGES, BoundsServer, ServeConfig

#: The catalog sample: auto-analyzable, fast, structurally varied.
SAMPLE = ("mibench/bitcount.c", "mibench/crc32.c",
          "mibench/dijkstra.c", "mibench/fft.c")

CLIENT_THREADS = 8


def _post(port: int, payload: dict, timeout: float = 120.0):
    """POST /verify; returns ``(status, body_dict, headers)``."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/verify",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), \
                dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def _get(port: int, path: str) -> dict:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                timeout=30) as response:
        return json.loads(response.read())


def _concurrent(port: int, payloads: list[dict]) -> list:
    """Fire all payloads concurrently; results in submission order."""
    results: list = [None] * len(payloads)

    def client(index: int) -> None:
        results[index] = _post(port, payloads[index])

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(len(payloads))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(180)
    assert all(result is not None for result in results), \
        "a client thread never got an answer"
    return results


def _store_counters(port: int) -> dict[str, float]:
    counters = _get(port, "/metrics")["counters"]
    return {name: value for name, value in counters.items()
            if name.startswith("store.")}


def _pipeline_stats(port: int) -> dict[str, float]:
    """Counters plus histogram counts — the single-flight evidence."""
    snapshot = _get(port, "/metrics")
    stats = dict(snapshot["counters"])
    for name, data in snapshot["histograms"].items():
        stats[f"{name}.count"] = data["count"]
    return stats


def _post_batch(port: int, items: list[dict],
                timeout: float = 180.0) -> list[dict]:
    """POST /batch; returns the parsed NDJSON lines."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/batch",
        data=json.dumps({"items": items}).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        assert response.status == 200
        text = response.read().decode()
    return [json.loads(line) for line in text.splitlines()]


def _delta(before: dict, after: dict) -> dict[str, float]:
    return {name: after.get(name, 0) - before.get(name, 0)
            for name in set(before) | set(after)}


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One pooled daemon on an ephemeral port, module-wide."""
    store = tmp_path_factory.mktemp("serve-store")
    config = ServeConfig(port=0, jobs=2, queue_depth=16, timeout_s=120.0,
                         store_root=str(store))
    daemon = BoundsServer(config)
    daemon.start_background()
    yield daemon
    assert daemon.stop(drain_timeout_s=30.0)
    obs.disable()
    obs.reset()


class TestDifferentialOracle:
    """Served bounds vs. the in-process pipeline, byte for byte."""

    def test_concurrent_clients_match_in_process(self, server):
        # 8 concurrent clients over the 4-program sample (each program
        # twice) — the differential oracle must hold for every answer.
        payloads = [{"source": load_source(path), "filename": path}
                    for path in SAMPLE * (CLIENT_THREADS // len(SAMPLE))]
        results = _concurrent(server.bound_port, payloads)
        for path, (status, body, _headers) in zip(
                SAMPLE * (CLIENT_THREADS // len(SAMPLE)), results):
            assert status == 200, body
            assert body["verdict"] == "verified"
            expected = verify_stack_bounds(load_source(path), filename=path)
            assert json.dumps(body["bounds"]["functions"], sort_keys=True) \
                == json.dumps(expected.all_bytes(), sort_keys=True), path
            assert body["bounds"]["stack_requirement"] \
                == expected.stack_requirement(), path

    def test_options_change_the_served_metric(self, server):
        source = load_source("mibench/crc32.c")
        _status, default_body, _ = _post(server.bound_port,
                                         {"source": source})
        status, spill_body, _ = _post(
            server.bound_port,
            {"source": source, "options": {"spill_everything": True}})
        assert status == 200
        expected = verify_stack_bounds(
            source, options=CompilerOptions(spill_everything=True))
        assert spill_body["bounds"]["functions"] == expected.all_bytes()
        # The ablation genuinely changed the compiled metric.
        assert spill_body["bounds"]["stack_requirement"] \
            != default_body["bounds"]["stack_requirement"]

    def test_rejected_program_is_a_422_diagnostic(self, server):
        status, body, _ = _post(server.bound_port, {
            "source": "int f(int n) { return f(n); } "
                      "int main(void) { return 0; }"})
        assert status == 422
        assert body["verdict"] == "error"
        assert "recursion" in body["error"]

    def test_malformed_request_is_a_400(self, server):
        status, body, _ = _post(server.bound_port, {
            "source": "int main(void){return 0;}",
            "options": {"no_such_pass": True}})
        assert status == 400
        assert "no_such_pass" in body["error"]


class TestParametricPrograms:
    """Recursive and function-pointer programs through the daemon."""

    def test_recursive_program_serves_parametric_bounds(self, server):
        path = "recursive/bsearch.c"
        status, body, _ = _post(server.bound_port,
                                {"source": load_source(path),
                                 "filename": path})
        assert status == 200, body
        assert body["verdict"] == "verified"
        # The recursive function has no single byte figure — it is
        # reported symbolically in the certificate — while main (which
        # calls it at a concrete depth) still sizes the stack block.
        assert "bsearch" in body["bounds"]["parametric"]
        assert "bsearch" not in body["bounds"]["functions"]
        spec = body["certificate"]["functions"]["bsearch"]["spec"]
        assert spec["params"], "served certificate lost the spec params"
        expected = verify_stack_bounds(load_source(path), filename=path)
        assert body["bounds"]["stack_requirement"] \
            == expected.stack_requirement()

    def test_function_pointer_program_serves_finite_bounds(self, server):
        path = "funcptr/dispatch.c"
        status, body, _ = _post(server.bound_port,
                                {"source": load_source(path),
                                 "filename": path})
        assert status == 200, body
        assert body["verdict"] == "verified"
        assert not body["bounds"].get("parametric")
        expected = verify_stack_bounds(load_source(path), filename=path)
        assert body["bounds"]["functions"] == expected.all_bytes()
        assert body["bounds"]["stack_requirement"] \
            == expected.stack_requirement()


class TestStoreHitsEveryStage:
    """Cache behavior proved through /metrics counters, per stage."""

    def test_repeat_round_hits_every_stage(self, server):
        port = server.bound_port
        payloads = [{"source": load_source(path), "filename": path}
                    for path in SAMPLE]
        _concurrent(port, payloads)                # warm every key
        before = _store_counters(port)
        # Two measured rounds, each of distinct requests: concurrent
        # *identical* requests would collapse onto one single-flight
        # execution and touch the store once for the whole burst.
        results = _concurrent(port, payloads) + _concurrent(port, payloads)
        assert all(status == 200 for status, _b, _h in results)
        for _status, body, _headers in results:
            assert all(body["stages"][stage] == "hit" for stage in STAGES)
        delta = _delta(before, _store_counters(port))
        for stage in STAGES:
            assert delta.get(f"store.{stage}.hits", 0) == len(payloads) * 2
            assert delta.get(f"store.{stage}.misses", 0) == 0
        assert delta.get("store.poisoned", 0) == 0

    def test_near_repeat_misses_only_the_backend(self, server):
        # Same (warm) sources under a fresh backend ablation: the
        # option-independent stages replay, only the backend recompiles.
        port = server.bound_port
        payloads = [{"source": load_source(path), "filename": path,
                     "options": {"cse": True}} for path in SAMPLE]
        before = _store_counters(port)
        results = _concurrent(port, payloads)
        assert all(status == 200 for status, _b, _h in results)
        for _status, body, _headers in results:
            assert body["stages"]["backend"] == "miss"
            assert body["stages"]["frontend"] == "hit"
            assert body["stages"]["analyze"] == "hit"
            assert body["stages"]["check"] == "hit"
        delta = _delta(before, _store_counters(port))
        assert delta.get("store.backend.misses", 0) == len(payloads)
        for stage in ("frontend", "analyze", "check"):
            assert delta.get(f"store.{stage}.misses", 0) == 0


class TestBackpressure:
    """A saturated queue sheds load without dropping accepted work."""

    @pytest.fixture()
    def tiny_server(self):
        config = ServeConfig(port=0, jobs=0, queue_depth=1, timeout_s=30.0,
                             store_root=None, allow_chaos=True)
        daemon = BoundsServer(config)
        daemon.start_background()
        yield daemon
        assert daemon.stop(drain_timeout_s=10.0)

    def test_503_with_retry_after_and_no_dropped_requests(self, tiny_server):
        port = tiny_server.bound_port
        source = "int main(void) { return 0; }"
        payloads = [{"source": source, "chaos": "sleep:0.5"}
                    for _ in range(CLIENT_THREADS)]
        results = _concurrent(port, payloads)
        accepted = [(s, b) for s, b, _h in results if s == 200]
        shed = [(s, b, h) for s, b, h in results if s == 503]
        other = [(s, b) for s, b, _h in results if s not in (200, 503)]
        assert not other, other
        # With one in-flight slot and 0.5 s holds, concurrency must shed.
        assert accepted and shed
        # Every accepted request got a full verified answer.
        for _status, body in accepted:
            assert body["verdict"] == "verified"
            assert body["bounds"]["functions"]["main"] >= 4
        # Every shed request was told when to come back.
        for _status, body, headers in shed:
            assert headers.get("Retry-After") == "1"
            assert body["verdict"] == "error"
            assert "slots" in body["error"]
        # The daemon recovers once the burst passes.
        status, body, _ = _post(port, {"source": source})
        assert status == 200 and body["verdict"] == "verified"

    def test_chaos_is_ignored_without_opt_in(self, server):
        # The production configuration must not expose the fault hooks.
        started = time.perf_counter()
        status, body, _ = _post(server.bound_port, {
            "source": "int main(void) { return 0; }", "chaos": "sleep:5.0"})
        assert status == 200 and body["verdict"] == "verified"
        assert time.perf_counter() - started < 5.0


class TestHealthz:
    def test_health_document(self, server):
        health = _get(server.bound_port, "/healthz")
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["inflight"] == 0
        assert health["uptime_s"] >= 0

    def test_unknown_endpoint_404(self, server):
        try:
            urllib.request.urlopen(
                f"http://127.0.0.1:{server.bound_port}/nope", timeout=30)
            assert False, "expected a 404"
        except urllib.error.HTTPError as error:
            assert error.code == 404


class TestSingleFlight:
    """Concurrent identical requests collapse onto one computation."""

    def test_identical_burst_runs_the_pipeline_once(self, server):
        port = server.bound_port
        burst = 6
        # A macros tag nobody else uses guarantees a cold (slow) key, so
        # the followers genuinely arrive while the leader is in flight.
        payload = {"source": load_source("mibench/crc32.c"),
                   "filename": "mibench/crc32.c",
                   "macros": {"X_SINGLE_FLIGHT_BURST": "1"}}
        before = _pipeline_stats(port)
        results = _concurrent(port, [dict(payload) for _ in range(burst)])
        assert all(status == 200 for status, _b, _h in results)
        delta = _delta(before, _pipeline_stats(port))
        # Exactly one pipeline execution for the whole burst...
        assert delta.get("serve.singleflight.leaders", 0) == 1
        assert delta.get("serve.singleflight.followers", 0) == burst - 1
        assert delta.get("serve.pipeline_seconds.count", 0) == 1
        # ...every follower says so, and every answer is the same bound.
        collapsed = [body for _s, body, _h in results
                     if body.get("collapsed") is True]
        assert len(collapsed) == burst - 1
        bounds = {body["bounds"]["stack_requirement"]
                  for _s, body, _h in results}
        assert len(bounds) == 1

    def test_distinct_requests_do_not_collapse(self, server):
        port = server.bound_port
        payloads = [{"source": load_source(path), "filename": path,
                     "macros": {"X_NO_COLLAPSE": str(index)}}
                    for index, path in enumerate(SAMPLE[:2])]
        before = _pipeline_stats(port)
        results = _concurrent(port, payloads)
        assert all(status == 200 for status, _b, _h in results)
        delta = _delta(before, _pipeline_stats(port))
        assert delta.get("serve.singleflight.leaders", 0) == 2
        assert delta.get("serve.singleflight.followers", 0) == 0
        assert not any(body.get("collapsed") for _s, body, _h in results)


class TestBatch:
    """POST /batch: in-batch dedup, pool fan-out, streamed results."""

    def test_batch_dedups_and_streams_every_item(self, server):
        port = server.bound_port
        source = load_source("mibench/bitcount.c")
        items = [{"source": source, "filename": "one.c"},
                 {"source": "int main(void) { return 5; }"},
                 {"source": source, "filename": "dup-of-one.c"}]
        before = _pipeline_stats(port)
        lines = _post_batch(port, items)
        header, results, footer = lines[0], lines[1:-1], lines[-1]
        assert header["schema"] == "repro.serve.batch/1"
        assert header["items"] == 3 and header["unique"] == 2
        assert footer == {"done": True}
        by_index = {line["index"]: line for line in results}
        assert set(by_index) == {0, 1, 2}
        for line in results:
            assert line["status"] == 200
            assert line["body"]["verdict"] == "verified"
        # The duplicate rode its representative's computation.
        assert by_index[2]["duplicate_of"] == 0
        assert "duplicate_of" not in by_index[0]
        assert by_index[2]["body"]["bounds"] \
            == by_index[0]["body"]["bounds"]
        # The served bounds match the in-process oracle.
        expected = verify_stack_bounds(source, filename="one.c")
        assert by_index[0]["body"]["bounds"]["functions"] \
            == expected.all_bytes()
        delta = _delta(before, _pipeline_stats(port))
        assert delta.get("serve.batch.requests", 0) == 1
        assert delta.get("serve.batch.items", 0) == 3
        assert delta.get("serve.batch.deduped", 0) == 1

    def test_malformed_batch_is_a_400(self, server):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.bound_port}/batch",
            data=json.dumps({"items": [{"source": 7}]}).encode(),
            headers={"Content-Type": "application/json"})
        try:
            urllib.request.urlopen(request, timeout=30)
            assert False, "expected a 400"
        except urllib.error.HTTPError as error:
            assert error.code == 400
            assert "batch item 0" in json.loads(error.read())["error"]


class TestRestartPersistence:
    """The store — codegen artifacts included — survives a restart."""

    #: Small, auto-analyzable, runs in microseconds at its bound.
    SOURCE = ("int leaf(int x) { int a[6]; a[x % 6] = x; return a[0]; }\n"
              "int main(void) { return leaf(4); }\n")

    def _spawn(self, store_dir: str) -> subprocess.Popen:
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--jobs", "0", "--store-dir", store_dir],
            stderr=subprocess.PIPE, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)))))

    def _serve_once(self, store_dir: str) -> tuple[dict, dict]:
        """Boot, serve one probe request, SIGTERM; returns (body, metrics)."""
        process = self._spawn(store_dir)
        try:
            line = process.stderr.readline()
            assert "serving certified bounds" in line
            port = int(line.split("http://127.0.0.1:")[1].split()[0])
            status, body, _ = _post(
                port, {"source": self.SOURCE, "probe": True}, timeout=120)
            assert status == 200, body
            metrics = _get(port, "/metrics")
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
        return body, metrics

    def test_second_daemon_is_warm_with_zero_codegen_compiles(
            self, tmp_path):
        store_dir = str(tmp_path / "store")

        cold_body, cold_metrics = self._serve_once(store_dir)
        assert cold_body["stages"] == {stage: "miss" for stage in STAGES}
        assert cold_body["probe"]["codegen"] == "generated"
        assert cold_metrics["histograms"].get(
            "codegen.compile_seconds", {}).get("count", 0) == 1

        warm_body, warm_metrics = self._serve_once(store_dir)
        # Every stage replays from the store...
        assert warm_body["stages"] == {stage: "hit" for stage in STAGES}
        # ...the probe compiled the *persisted* source...
        assert warm_body["probe"]["codegen"] == "store"
        assert warm_body["bounds"] == cold_body["bounds"]
        # ...and this daemon regenerated exactly nothing.
        counters = warm_metrics["counters"]
        histograms = warm_metrics["histograms"]
        assert histograms.get("codegen.compile_seconds",
                              {}).get("count", 0) == 0
        assert counters.get("codegen.asm.installs", 0) == 1
        assert counters.get("store.codegen.hits", 0) == 1
        assert counters.get("store.misses", 0) == 0


class TestSignalDrain:
    """SIGTERM stops accepting, drains in-flight work, exits 0."""

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--jobs", "0", "--no-store"],
            stderr=subprocess.PIPE, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)))))
        try:
            line = process.stderr.readline()
            assert "serving certified bounds" in line
            port = int(line.split("http://127.0.0.1:")[1].split()[0])
            status, body, _ = _post(
                port, {"source": "int main(void) { return 2; }"},
                timeout=60)
            assert status == 200 and body["verdict"] == "verified"
            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=30)
            stderr = process.stderr.read()
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
        assert code == 0, stderr
        assert "draining" in stderr
        assert "shut down cleanly" in stderr

    def test_bound_port_is_an_exit_2_diagnostic(self):
        from repro.__main__ import main

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            code = main(["serve", "--port", str(port), "--jobs", "0",
                         "--no-store"])
            assert code == 2
        finally:
            blocker.close()
            obs.disable()
            obs.reset()
