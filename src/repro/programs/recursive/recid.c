/* Table 2: recid — the identity computed by recursion on its argument.
 * Verified bound: (a + 1) * M(recid) bytes of stack (linear depth). */

#ifndef N
#define N 10
#endif

unsigned int recid(unsigned int a) {
    if (a == 0) return 0;
    return 1 + recid(a - 1);
}

int main() {
    unsigned int r = recid(N);
    print_int((int)r);
    return r == N;
}
