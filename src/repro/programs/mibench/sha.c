/* MiBench security/sha (adapted).  The real SHA-1 compression function
 * over a pseudo-random message, with the original's file I/O replaced by
 * an in-memory buffer.  Additional coverage beyond Table 1 — the paper's
 * artifact evaluation also ran the tools on extra programs. */

#define MSG_BYTES 256

typedef unsigned int u32;
typedef unsigned char u8;

u32 sha_state[5];
u32 sha_count_lo = 0;
u32 sha_count_hi = 0;
u8 message[MSG_BYTES];
u32 W[80];
u32 seed = 0x5AFE;

u32 rnd() {
    seed = seed * 1664525 + 1013904223;
    return seed;
}

u32 rol(u32 x, u32 n) {
    return (x << n) | (x >> (32 - n));
}

void sha_init() {
    sha_state[0] = 0x67452301;
    sha_state[1] = 0xEFCDAB89;
    sha_state[2] = 0x98BADCFE;
    sha_state[3] = 0x10325476;
    sha_state[4] = 0xC3D2E1F0;
    sha_count_lo = 0;
    sha_count_hi = 0;
}

/* One 512-bit block: the 80-round SHA-1 compression. */
void sha_transform(u8 *block) {
    u32 a, b, c, d, e, temp, f, k;
    int i;

    for (i = 0; i < 16; i++) {
        W[i] = ((u32)block[4 * i] << 24)
            | ((u32)block[4 * i + 1] << 16)
            | ((u32)block[4 * i + 2] << 8)
            | (u32)block[4 * i + 3];
    }
    for (i = 16; i < 80; i++) {
        W[i] = rol(W[i - 3] ^ W[i - 8] ^ W[i - 14] ^ W[i - 16], 1);
    }
    a = sha_state[0];
    b = sha_state[1];
    c = sha_state[2];
    d = sha_state[3];
    e = sha_state[4];
    for (i = 0; i < 80; i++) {
        if (i < 20) {
            f = (b & c) | (~b & d);
            k = 0x5A827999;
        } else if (i < 40) {
            f = b ^ c ^ d;
            k = 0x6ED9EBA1;
        } else if (i < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8F1BBCDC;
        } else {
            f = b ^ c ^ d;
            k = 0xCA62C1D6;
        }
        temp = rol(a, 5) + f + e + k + W[i];
        e = d;
        d = c;
        c = b;
        b = rol(b, 30);
        a = temp;
    }
    sha_state[0] = sha_state[0] + a;
    sha_state[1] = sha_state[1] + b;
    sha_state[2] = sha_state[2] + c;
    sha_state[3] = sha_state[3] + d;
    sha_state[4] = sha_state[4] + e;
}

/* Hash a whole buffer whose length is a multiple of 64 plus final
 * padding block (simplified: the message is padded into a scratch
 * block). */
void sha_update(u8 *data, u32 len) {
    u32 i;
    sha_count_lo = sha_count_lo + (len << 3);
    for (i = 0; i + 63 < len; i = i + 64) {
        sha_transform(&data[i]);
    }
}

void sha_final(u8 *data, u32 len) {
    u8 last[64];
    u32 rest = len % 64;
    u32 bits = len * 8;
    u32 i;
    for (i = 0; i < 64; i++) last[i] = 0;
    for (i = 0; i < rest; i++) last[i] = data[len - rest + i];
    last[rest] = 0x80;
    /* rest < 56 always holds for our message sizes */
    last[60] = (u8)((bits >> 24) & 0xFF);
    last[61] = (u8)((bits >> 16) & 0xFF);
    last[62] = (u8)((bits >> 8) & 0xFF);
    last[63] = (u8)(bits & 0xFF);
    sha_transform(last);
}

int main() {
    int i;
    u32 check = 0;

    for (i = 0; i < MSG_BYTES; i++) message[i] = (u8)(rnd() & 0xFF);
    sha_init();
    sha_update(message, MSG_BYTES);
    sha_final(message, MSG_BYTES);
    for (i = 0; i < 5; i++) check = check ^ sha_state[i];
    print_int((int)check);
    return check != 0;
}
