"""The content-addressed result store behind ``repro serve``.

The paper's pipeline is a pure function of the source text and the
compiler options, so every stage boundary is cacheable: two requests
with the same ``sha256(source)`` share a frontend result, two requests
that also agree on ``CompilerOptions.key()`` share a backend result.
:class:`ResultStore` generalizes the campaign's corpus cache
(``testing/campaign.py``) from a boolean "this seed verified" marker to
an artifact store holding the actual stage outputs, keyed by content:

* **keys are exact** — a key embeds the stage name, the source digest
  and (for option-dependent stages) the options digest, and every stored
  entry records the key it was written under.  Serving a cached result
  is sound for the same reason the paper's story is: the certificate
  checker remains the trust root, and a cache can only replay what some
  earlier request verified *under the same key*.
* **entries are integrity-checked** — each entry carries a sha256 of its
  encoded payload; a corrupted, truncated or cross-key-substituted entry
  is detected on ``get``, dropped, counted (``store.poisoned``) and
  recomputed by the caller.  A poisoned entry is never returned.
* **eviction is size-capped and pin-aware** — the store evicts
  least-recently-used entries once ``max_bytes`` is exceeded, but never
  an entry pinned by an in-flight request.

Two backings share one wire format (a JSON wrapper around a JSON or
base64-pickle payload): a directory (shared by the worker pool across
processes; writes are atomic ``os.replace``) or process memory (tests,
``--no-store``).  This is corruption *detection*, not a security
boundary: the store directory is the same local trust domain as the
campaign's corpus cache.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import threading
from typing import Any, Iterator, Optional

from repro import obs
from repro.errors import ReproError

#: Store entry schema identifier (bump on incompatible changes).
STORE_SCHEMA = "repro.serve.store/1"

#: Default on-disk budget: generous for a daemon, bounded for a laptop.
DEFAULT_MAX_BYTES = 256 << 20


class ServeError(ReproError):
    """A serving-layer failure (bind, pool start, bad request payload)."""


def source_digest(source: str, macros: Optional[dict] = None) -> str:
    """Content hash of one translation unit's *semantic* inputs.

    The filename deliberately does not participate: it only flavors
    diagnostics, and two requests differing in nothing but the name must
    share every stage result.
    """
    canon = json.dumps(
        {"source": source,
         "macros": sorted(macros.items()) if macros else []},
        sort_keys=True)
    return hashlib.sha256(canon.encode()).hexdigest()


def options_digest(options) -> str:
    """Content hash of a ``CompilerOptions.key()`` (the audited identity)."""
    return hashlib.sha256(repr(options.key()).encode()).hexdigest()


def stage_key(stage: str, src_digest: str,
              opt_digest: Optional[str] = None) -> str:
    """The store key of one stage boundary.

    Option-independent stages (frontend, analyze, check) are keyed by the
    source digest alone — that is exactly what makes a near-repeat
    request (same source, different backend flags) a partial cache hit.
    """
    if opt_digest is None:
        return f"{stage}:{src_digest}"
    return f"{stage}:{src_digest}:{opt_digest}"


def _stage_of(key: str) -> str:
    return key.split(":", 1)[0]


class ResultStore:
    """Content-addressed artifact store with integrity-checked entries.

    ``root=None`` keeps everything in process memory (same wire format,
    so the integrity and eviction machinery is identical); a directory
    path makes the store shared across the worker pool.
    """

    def __init__(self, root: Optional[str] = None,
                 max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self.root = root
        self.max_bytes = max_bytes
        self._lock = threading.RLock()
        self._memory: dict[str, str] = {}
        self._clock = 0                    # memory-mode LRU ticks
        self._stamps: dict[str, int] = {}
        self._pins: dict[str, int] = {}
        if root is not None:
            os.makedirs(root, exist_ok=True)

    # -- encoding ----------------------------------------------------------

    @staticmethod
    def _encode(payload: Any, codec: str) -> tuple[Any, str]:
        """``(wire_payload, sha256)`` for one payload under one codec."""
        if codec == "json":
            canon = json.dumps(payload, sort_keys=True).encode()
            return payload, hashlib.sha256(canon).hexdigest()
        if codec == "pickle":
            raw = pickle.dumps(payload, protocol=4)
            return (base64.b64encode(raw).decode("ascii"),
                    hashlib.sha256(raw).hexdigest())
        raise ValueError(f"unknown store codec {codec!r}")

    @staticmethod
    def _decode(entry: dict, key: str, codec: str) -> Any:
        """Verify and decode one entry; raises ``ValueError`` if poisoned."""
        if entry.get("schema") != STORE_SCHEMA:
            raise ValueError(f"schema {entry.get('schema')!r}")
        if entry.get("key") != key:
            raise ValueError(
                f"entry was written for key {entry.get('key')!r}")
        if entry.get("codec") != codec:
            raise ValueError(f"codec {entry.get('codec')!r} != {codec!r}")
        payload = entry.get("payload")
        if codec == "json":
            canon = json.dumps(payload, sort_keys=True).encode()
            digest = hashlib.sha256(canon).hexdigest()
        else:
            raw = base64.b64decode(payload.encode("ascii"))
            digest = hashlib.sha256(raw).hexdigest()
        if digest != entry.get("sha256"):
            raise ValueError("payload hash mismatch")
        if codec == "json":
            return payload
        return pickle.loads(raw)

    # -- raw entry access (also the fault-injection seam) ------------------

    def _path(self, key: str) -> str:
        assert self.root is not None
        return os.path.join(self.root,
                            hashlib.sha256(key.encode()).hexdigest()
                            + ".json")

    def raw_read(self, key: str) -> Optional[str]:
        """The stored wire text of one entry (fault-injection seam)."""
        with self._lock:
            if self.root is None:
                return self._memory.get(key)
            try:
                with open(self._path(key)) as handle:
                    return handle.read()
            except OSError:
                return None

    def raw_write(self, key: str, text: str) -> None:
        """Overwrite one entry's wire text verbatim (fault-injection seam)."""
        with self._lock:
            if self.root is None:
                self._memory[key] = text
                self._touch(key)
                return
            tmp = self._path(key) + f".tmp{os.getpid()}"
            with open(tmp, "w") as handle:
                handle.write(text)
            os.replace(tmp, self._path(key))

    def discard(self, key: str) -> None:
        """Drop one entry (the poison-drop seam for callers that layer
        their own payload-level validation, e.g. the codegen artifact's
        ``CODEGEN_VERSION`` check)."""
        self._discard(key)

    def _discard(self, key: str) -> None:
        with self._lock:
            if self.root is None:
                self._memory.pop(key, None)
                self._stamps.pop(key, None)
                return
            try:
                os.unlink(self._path(key))
            except OSError:
                pass

    def _touch(self, key: str) -> None:
        if self.root is None:
            self._clock += 1
            self._stamps[key] = self._clock
        else:
            try:
                os.utime(self._path(key))
            except OSError:
                pass

    # -- the store API -----------------------------------------------------

    def get(self, key: str, codec: str = "json") -> Any:
        """The payload stored under ``key``, or ``None``.

        Returns ``None`` both for a plain miss and for a poisoned entry
        (corrupted, truncated, or substituted from another key); the
        poisoned entry is dropped so the caller's recompute can replace
        it.  Hits refresh the entry's LRU stamp.
        """
        stage = _stage_of(key)
        text = self.raw_read(key)
        if text is None:
            obs.add(f"store.{stage}.misses")
            obs.add("store.misses")
            return None
        try:
            payload = self._decode(json.loads(text), key, codec)
        except Exception:
            self._discard(key)
            obs.add("store.poisoned")
            obs.add(f"store.{stage}.misses")
            obs.add("store.misses")
            return None
        with self._lock:
            self._touch(key)
        obs.add(f"store.{stage}.hits")
        obs.add("store.hits")
        return payload

    def put(self, key: str, payload: Any, codec: str = "json") -> Any:
        """Store ``payload`` under ``key``; returns the payload.

        Writes are atomic (temp file + ``os.replace``), so concurrent
        workers racing on the same key both leave a valid entry.
        """
        wire, digest = self._encode(payload, codec)
        text = json.dumps({"schema": STORE_SCHEMA, "key": key,
                           "codec": codec, "sha256": digest,
                           "payload": wire})
        self.raw_write(key, text)
        obs.add(f"store.{_stage_of(key)}.puts")
        self._evict_if_needed()
        return payload

    # -- pinning and eviction ----------------------------------------------

    def pin(self, *keys: str) -> None:
        """Mark keys as in-flight: eviction will skip them."""
        with self._lock:
            for key in keys:
                self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, *keys: str) -> None:
        with self._lock:
            for key in keys:
                count = self._pins.get(key, 0) - 1
                if count > 0:
                    self._pins[key] = count
                else:
                    self._pins.pop(key, None)

    class _Pinned:
        def __init__(self, store: "ResultStore", keys: tuple) -> None:
            self.store, self.keys = store, keys

        def __enter__(self):
            self.store.pin(*self.keys)
            return self.store

        def __exit__(self, *exc) -> None:
            self.store.unpin(*self.keys)

    def pinned(self, *keys: str) -> "ResultStore._Pinned":
        """Context manager pinning ``keys`` for the duration of a request."""
        return ResultStore._Pinned(self, keys)

    def _entries(self) -> Iterator[tuple[str, int, float]]:
        """``(handle, size, lru_stamp)`` per entry; handle is key (memory)
        or path (disk)."""
        if self.root is None:
            for key, text in self._memory.items():
                yield key, len(text), self._stamps.get(key, 0)
            return
        try:
            names = os.listdir(self.root)
        except OSError:
            return
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.root, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            yield path, stat.st_size, stat.st_mtime

    def size_bytes(self) -> int:
        """Total stored bytes (the quantity the cap bounds)."""
        with self._lock:
            return sum(size for _h, size, _s in self._entries())

    def _pinned_handles(self) -> set:
        if self.root is None:
            return set(self._pins)
        return {self._path(key) for key in self._pins}

    def _evict_if_needed(self) -> None:
        with self._lock:
            entries = sorted(self._entries(), key=lambda e: e[2])
            total = sum(size for _h, size, _s in entries)
            if total <= self.max_bytes:
                obs.set_gauge("store.bytes", total)
                return
            pinned = self._pinned_handles()
            for handle, size, _stamp in entries:
                if total <= self.max_bytes:
                    break
                if handle in pinned:
                    continue
                if self.root is None:
                    self._memory.pop(handle, None)
                    self._stamps.pop(handle, None)
                else:
                    try:
                        os.unlink(handle)
                    except OSError:
                        continue
                total -= size
                obs.add("store.evictions")
            # The LRU cap is observable before it thrashes: /metrics
            # reports occupancy next to the eviction counter.
            obs.set_gauge("store.bytes", total)

    def __contains__(self, key: str) -> bool:
        return self.raw_read(key) is not None
