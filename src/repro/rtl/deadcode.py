"""Dead-code elimination over RTL.

Pure instructions (``Iop``, ``Iload``) whose destination is dead are
turned into ``Inop``.  Loads are only pure when they cannot trap — in our
memory model a load *can* go wrong (bad pointer), so removing a dead load
could turn a wrong program into a converging one.  That direction is
allowed by CompCert-style refinement (the source "goes wrong" escape
hatch), and CompCert's own CSE/deadcode make the same choice; the
differential tests therefore compare against the *source* behavior, never
the other way around.

Unreachable nodes are pruned afterwards, which keeps the graphs small for
the register allocator.
"""

from __future__ import annotations

from repro.rtl import ast as rtl
from repro.rtl.liveness import has_side_effect, liveness


def deadcode(function: rtl.RTLFunction) -> int:
    """Rewrite in place; returns number of instructions removed."""
    removed = 0
    changed = True
    while changed:
        changed = False
        live = liveness(function)
        for node, instr in list(function.graph.items()):
            if isinstance(instr, (rtl.Inop,)) or has_side_effect(instr):
                continue
            defs = instr.defs()
            if defs and not any(d in live.get(node, frozenset()) for d in defs):
                function.graph[node] = rtl.Inop(instr.successors()[0])
                removed += 1
                changed = True
    _prune_unreachable(function)
    return removed


def _prune_unreachable(function: rtl.RTLFunction) -> int:
    reachable: set[int] = set()
    worklist = [function.entry]
    while worklist:
        node = worklist.pop()
        if node in reachable:
            continue
        reachable.add(node)
        worklist.extend(function.graph[node].successors())
    dead = [node for node in function.graph if node not in reachable]
    for node in dead:
        del function.graph[node]
    return len(dead)


def deadcode_program(program: rtl.RTLProgram) -> int:
    return sum(deadcode(f) for f in program.functions.values())
