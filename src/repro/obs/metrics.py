"""The metrics registry: counters, gauges, fixed-bucket histograms.

Three instrument kinds, chosen so cross-process aggregation is a pure
fold over plain dicts:

* **counters** — monotone sums (interpreter steps, cache hits, verdicts);
  merged by addition.
* **gauges** — last-known levels (worker heartbeat timestamps, bound
  sizes); merged by ``max``, which is exact for the monotone quantities
  we record and a documented approximation otherwise.
* **histograms** — fixed-bucket distributions (certificate check
  latency, per-seed wall time); merged bucketwise, which is exact
  because the bucket boundaries are part of the snapshot.

A *snapshot* is a plain JSON-able dict (see :data:`METRICS_SCHEMA`);
campaign workers snapshot their registry per seed and the parent merges
the deltas back with :func:`merge_snapshots` — metrics aggregate across
the multiprocessing pool without shared memory.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

#: Metrics-snapshot schema identifier (bump on incompatible changes).
METRICS_SCHEMA = "repro.obs.metrics/1"

#: Default histogram boundaries for latencies, in seconds.  The overflow
#: bucket (``> buckets[-1]``) is implicit: ``counts`` has one more entry
#: than ``buckets``.
DEFAULT_LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0)


class Histogram:
    """A fixed-bucket histogram (cumulative-free, bucketwise mergeable)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S
                 ) -> None:
        self.buckets = tuple(float(b) for b in buckets)
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError("histogram buckets must be strictly increasing")
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = 0
        for boundary in self.buckets:
            if value <= boundary:
                break
            index += 1
        self.counts[index] += 1
        self.sum += value
        self.count += 1

    def as_dict(self) -> dict:
        return {"buckets": list(self.buckets), "counts": list(self.counts),
                "sum": round(self.sum, 9), "count": self.count}


class MetricsRegistry:
    """Name-keyed counters, gauges and histograms for one process."""

    def __init__(self) -> None:
        self.pid = os.getpid()
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    def _fork_guard(self) -> None:
        # A registry inherited through fork() must not double-report the
        # parent's totals from inside a worker.
        pid = os.getpid()
        if pid != self.pid:
            self.pid = pid
            self.counters = {}
            self.gauges = {}
            self.histograms = {}

    def add(self, name: str, value: float = 1) -> None:
        self._fork_guard()
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self._fork_guard()
        self.gauges[name] = value

    def observe(self, name: str, value: float,
                buckets: Optional[Sequence[float]] = None) -> None:
        self._fork_guard()
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = Histogram(buckets or DEFAULT_LATENCY_BUCKETS_S)
            self.histograms[name] = histogram
        histogram.observe(value)

    def snapshot(self) -> dict:
        """The registry as a plain mergeable dict."""
        return {"counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {name: h.as_dict()
                               for name, h in self.histograms.items()}}

    def drain(self) -> dict:
        """Snapshot, then reset — the per-seed delta campaign workers ship."""
        snap = self.snapshot()
        self.clear()
        return snap

    def clear(self) -> None:
        self._fork_guard()
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def merge(self, snap: dict) -> None:
        """Fold a snapshot (e.g. a worker delta) into this registry."""
        self._fork_guard()
        for name, value in snap.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            current = self.gauges.get(name)
            self.gauges[name] = value if current is None \
                else max(current, value)
        for name, data in snap.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = Histogram(data["buckets"])
                self.histograms[name] = histogram
            if list(histogram.buckets) != list(data["buckets"]):
                raise ValueError(
                    f"histogram {name!r}: bucket boundaries differ, "
                    "cannot merge")
            for index, count in enumerate(data["counts"]):
                histogram.counts[index] += count
            histogram.sum += data["sum"]
            histogram.count += data["count"]


def empty_snapshot() -> dict:
    return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_snapshots(into: dict, snap: dict) -> dict:
    """Fold ``snap`` into the plain-dict snapshot ``into`` (returned).

    The same semantics as :meth:`MetricsRegistry.merge` — counters add,
    gauges take the max, histograms merge bucketwise — but on snapshots,
    so a campaign parent can aggregate worker deltas without touching
    the live registry.
    """
    counters = into.setdefault("counters", {})
    for name, value in snap.get("counters", {}).items():
        counters[name] = counters.get(name, 0) + value
    gauges = into.setdefault("gauges", {})
    for name, value in snap.get("gauges", {}).items():
        current = gauges.get(name)
        gauges[name] = value if current is None else max(current, value)
    histograms = into.setdefault("histograms", {})
    for name, data in snap.get("histograms", {}).items():
        merged = histograms.get(name)
        if merged is None:
            histograms[name] = {"buckets": list(data["buckets"]),
                                "counts": list(data["counts"]),
                                "sum": data["sum"], "count": data["count"]}
            continue
        if merged["buckets"] != list(data["buckets"]):
            raise ValueError(f"histogram {name!r}: bucket boundaries differ, "
                             "cannot merge")
        merged["counts"] = [a + b for a, b in zip(merged["counts"],
                                                  data["counts"])]
        merged["sum"] += data["sum"]
        merged["count"] += data["count"]
    return into


def histogram_quantile(data: dict, quantile: float) -> float:
    """Estimate one quantile from a fixed-bucket histogram dict.

    Returns the upper boundary of the bucket containing the quantile —
    a conservative (over-)estimate, which is the right direction for
    latency SLOs.  Observations in the overflow bucket are reported as
    the last finite boundary (a documented floor, not a measurement).
    """
    count = data["count"]
    if count <= 0:
        raise ValueError("cannot take a quantile of an empty histogram")
    rank = quantile * count
    seen = 0
    for boundary, bucket in zip(data["buckets"], data["counts"]):
        seen += bucket
        if seen >= rank:
            return float(boundary)
    return float(data["buckets"][-1])


#: Quantiles attached per histogram under ``derived`` (SLO staples).
DERIVED_QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def derive_rates(snap: dict) -> dict:
    """Compute the derived ratios the snapshot's raw sums imply.

    * ``interp.<lang>.steps_per_s`` from the per-language step and
      second counters;
    * ``<name>.hit_rate`` for every ``<name>.hits``/``<name>.misses``
      counter pair (frontend cache, decode caches, corpus cache, the
      serving result store, the ``bexpr.nf`` normal-form memo);
    * ``<name>.p50``/``.p95``/``.p99`` for every histogram (bucket-
      boundary estimates — see :func:`histogram_quantile`), so latency
      SLO gates can read ``/metrics`` without re-deriving quantiles.

    Returned as a flat name→number dict; exporters attach it under the
    snapshot's ``"derived"`` key so consumers need no arithmetic.
    """
    counters = dict(snap.get("counters", {}))
    counters.update(snap.get("gauges", {}))
    derived: dict[str, float] = {}
    for name, steps in counters.items():
        if name.endswith(".steps"):
            seconds = counters.get(name[:-len(".steps")] + ".seconds")
            if seconds:
                derived[name + "_per_s"] = round(steps / seconds, 3)
        elif name.endswith(".hits"):
            base = name[:-len(".hits")]
            misses = counters.get(base + ".misses")
            if misses is not None and (steps + misses) > 0:
                derived[base + ".hit_rate"] = round(
                    steps / (steps + misses), 6)
    for name, data in snap.get("histograms", {}).items():
        if data.get("count"):
            for label, quantile in DERIVED_QUANTILES:
                derived[f"{name}.{label}"] = histogram_quantile(data,
                                                                quantile)
    return derived
