"""Cminor → RTL: control-flow graph construction.

The builder works backwards, CompCert-style: to lower a statement one
first knows the node to continue at, then materializes the statement's
instructions in front of it.  Loops reserve their header node up front to
tie the cycle.

Conditions are normalized so that :class:`~repro.rtl.ast.Icond` always
tests an integer-class register: float conditions are compiled to a
``cmpf_ne 0.0`` first, pointer conditions are already integer-class.
"""

from __future__ import annotations

from typing import Optional

from repro.clight import ast as cl
from repro.cminor import CminorProgram, FRAME_VAR
from repro.errors import LoweringError
from repro.rtl import ast as rtl


def rtl_of_cminor(cminor: CminorProgram) -> rtl.RTLProgram:
    functions = {}
    for function in cminor.functions.values():
        functions[function.name] = _FnBuilder(function).build()
    return rtl.RTLProgram(cminor.globals, functions,
                          set(cminor.externals),
                          cminor.program.main)


class _FnBuilder:
    def __init__(self, function: cl.Function) -> None:
        self.function = function
        self.graph: dict[int, rtl.Instr] = {}
        self.next_node = 1
        self.next_reg = 1
        self.float_regs: set[int] = set()
        self.temp_regs: dict[str, int] = {}
        if function.stackvars:
            if len(function.stackvars) != 1 or \
                    function.stackvars[0].name != FRAME_VAR:
                raise LoweringError(
                    f"{function.name}: not in Cminor form (stackvars "
                    f"{[v.name for v in function.stackvars]})")
            self.stacksize = function.stackvars[0].size
        else:
            self.stacksize = 0
        for temp in function.temps:
            self.temp_regs[temp] = self._fresh(temp in function.float_temps)

    def _fresh(self, is_float: bool = False) -> int:
        reg = self.next_reg
        self.next_reg += 1
        if is_float:
            self.float_regs.add(reg)
        return reg

    def _add(self, instr: rtl.Instr) -> int:
        node = self.next_node
        self.next_node += 1
        self.graph[node] = instr
        return node

    def _reserve(self) -> int:
        node = self.next_node
        self.next_node += 1
        return node

    def build(self) -> rtl.RTLFunction:
        function = self.function
        ret_node = self._add(rtl.Ireturn(None))
        entry = self.lower_stmt(function.body, ret_node, None, None)
        params = [self.temp_regs[p] for p in function.params]
        return rtl.RTLFunction(
            function.name, params, self.float_regs, self.stacksize,
            self.graph, entry, self.next_reg, function.returns_float,
            function.param_is_float)

    # -- statements ------------------------------------------------------------

    def lower_stmt(self, stmt: cl.Stmt, follow: int,
                   break_to: Optional[int], continue_to: Optional[int]) -> int:
        if isinstance(stmt, cl.SSkip):
            return follow
        if isinstance(stmt, cl.SSeq):
            second = self.lower_stmt(stmt.second, follow, break_to, continue_to)
            return self.lower_stmt(stmt.first, second, break_to, continue_to)
        if isinstance(stmt, cl.SSet):
            dest = self.temp_regs[stmt.temp]
            return self.lower_expr(stmt.expr, dest, follow)
        if isinstance(stmt, cl.SStore):
            value_reg = self._operand_reg(stmt.value)
            addr_reg = self._operand_reg(stmt.addr)
            store = self._add(rtl.Istore(stmt.chunk, addr_reg, value_reg,
                                         follow))
            entry = self._operand_entry(stmt.value, value_reg, store)
            return self._operand_entry(stmt.addr, addr_reg, entry)
        if isinstance(stmt, cl.SCall):
            arg_regs = [self._operand_reg(a) for a in stmt.args]
            dest = self.temp_regs[stmt.dest] if stmt.dest is not None else None
            call = self._add(rtl.Icall(dest, stmt.callee, arg_regs, follow))
            entry = call
            for arg, reg in reversed(list(zip(stmt.args, arg_regs))):
                entry = self._operand_entry(arg, reg, entry)
            return entry
        if isinstance(stmt, cl.SIf):
            then = self.lower_stmt(stmt.then, follow, break_to, continue_to)
            otherwise = self.lower_stmt(stmt.otherwise, follow, break_to,
                                        continue_to)
            return self.lower_cond(stmt.cond, then, otherwise)
        if isinstance(stmt, cl.SLoop):
            header = self._reserve()
            post_entry = self.lower_stmt(stmt.post, header, follow, None)
            body_entry = self.lower_stmt(stmt.body, post_entry, follow,
                                         post_entry)
            self.graph[header] = rtl.Inop(body_entry)
            return header
        if isinstance(stmt, cl.SBlock):
            return self.lower_stmt(stmt.body, follow, follow, continue_to)
        if isinstance(stmt, cl.SBreak):
            if break_to is None:
                raise LoweringError("break outside loop/block")
            return break_to
        if isinstance(stmt, cl.SContinue):
            if continue_to is None:
                raise LoweringError("continue outside loop")
            return continue_to
        if isinstance(stmt, cl.SReturn):
            if stmt.value is None:
                return self._add(rtl.Ireturn(None))
            reg = self._fresh(self._expr_is_float(stmt.value))
            ret = self._add(rtl.Ireturn(reg))
            return self.lower_expr(stmt.value, reg, ret)
        raise LoweringError(f"unknown statement {type(stmt).__name__}")

    # -- expressions ---------------------------------------------------------

    def lower_expr(self, expr: cl.Expr, dest: int, follow: int) -> int:
        """Nodes computing ``expr`` into ``dest``, then jumping to ``follow``."""
        if isinstance(expr, cl.EConstInt):
            return self._add(rtl.Iop(("const", expr.value), [], dest, follow))
        if isinstance(expr, cl.EConstFloat):
            return self._add(rtl.Iop(("constf", expr.value), [], dest, follow))
        if isinstance(expr, cl.ETemp):
            src = self.temp_regs[expr.name]
            return self._add(rtl.Iop(("move",), [src], dest, follow))
        if isinstance(expr, cl.EAddrGlobal):
            return self._add(rtl.Iop(("addrglobal", expr.name), [], dest,
                                     follow))
        if isinstance(expr, cl.EAddrStack):
            if expr.name != FRAME_VAR:
                raise LoweringError(f"non-Cminor stack variable {expr.name!r}")
            return self._add(rtl.Iop(("addrstack", 0), [], dest, follow))
        if isinstance(expr, cl.ELoad):
            addr = self._operand_reg(expr.addr)
            load = self._add(rtl.Iload(expr.chunk, addr, dest, follow))
            return self._operand_entry(expr.addr, addr, load)
        if isinstance(expr, cl.EUnop):
            arg = self._operand_reg(expr.arg)
            node = self._add(rtl.Iop(("unop", expr.op), [arg], dest, follow))
            return self._operand_entry(expr.arg, arg, node)
        if isinstance(expr, cl.EBinop):
            left = self._operand_reg(expr.left)
            right = self._operand_reg(expr.right)
            node = self._add(rtl.Iop(("binop", expr.op), [left, right], dest,
                                     follow))
            right_entry = self._operand_entry(expr.right, right, node)
            return self._operand_entry(expr.left, left, right_entry)
        raise LoweringError(f"unknown expression {type(expr).__name__}")

    # Temporaries already live in a register: use it directly instead of
    # inserting a fresh copy.  This halves the instruction count and —
    # more importantly — makes syntactically equal subexpressions produce
    # identical (op, args) keys, which is what lets CSE fire.
    def _operand_reg(self, expr: cl.Expr) -> int:
        if isinstance(expr, cl.ETemp):
            return self.temp_regs[expr.name]
        return self._fresh(self._expr_is_float(expr))

    def _operand_entry(self, expr: cl.Expr, reg: int, follow: int) -> int:
        if isinstance(expr, cl.ETemp):
            return follow
        return self.lower_expr(expr, reg, follow)

    def lower_cond(self, expr: cl.Expr, ifso: int, ifnot: int) -> int:
        if self._expr_is_float(expr):
            float_reg = self._fresh(True)
            zero = self._fresh(True)
            test = self._fresh(False)
            branch = self._add(rtl.Icond(test, ifso, ifnot))
            compare = self._add(rtl.Iop(("binop", "cmpf_ne"),
                                        [float_reg, zero], test, branch))
            zero_node = self._add(rtl.Iop(("constf", 0.0), [], zero, compare))
            return self.lower_expr(expr, float_reg, zero_node)
        reg = self._operand_reg(expr)
        branch = self._add(rtl.Icond(reg, ifso, ifnot))
        return self._operand_entry(expr, reg, branch)

    # -- typing of expressions (float vs int class) ----------------------------

    def _expr_is_float(self, expr: cl.Expr) -> bool:
        if isinstance(expr, cl.EConstFloat):
            return True
        if isinstance(expr, cl.ETemp):
            return expr.name in self.function.float_temps
        if isinstance(expr, cl.ELoad):
            return expr.chunk.is_float
        if isinstance(expr, cl.EUnop):
            return expr.op in ("negf", "floatofint", "floatofuint")
        if isinstance(expr, cl.EBinop):
            return expr.op in ("addf", "subf", "mulf", "divf")
        return False
