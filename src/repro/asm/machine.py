"""The ASMsz machine: flat memory, finite preallocated stack.

Memory layout (one address space, as on hardware)::

    0 .. 0x1000           unmapped (NULL page; any access goes wrong)
    0x1000 ..             globals, in declaration order
    ...                   malloc arena (bump allocator backing the builtin)
    ...                   the stack block of ``stack_bytes`` bytes
    stack_top             initial ESP

Startup emulates ``call main``: it pushes the halt sentinel as ``main``'s
return address — those 4 bytes are the ``+4`` of the paper's Theorem 1
(footnote 3: "we have to account for the return address of the 'caller'
of main").  The ESP watermark the monitor reads is measured from *after*
that push, exactly like a ``ptrace`` monitor that attaches at the entry of
``main``; this is what makes every verified bound come out exactly 4
bytes above the measurement (paper §6).

Stack overflow is a genuine behavior: any ESP decrement (frame
allocation or call) that would drop below the stack base raises
:class:`~repro.errors.StackOverflowError_` and the run goes wrong.
"""

from __future__ import annotations

from typing import Optional

from repro import ints, obs
from repro.asm import ast as asm
from repro.c.types import align_up
from repro.errors import (DynamicError, MemoryError_, StackOverflowError_,
                          UndefinedBehaviorError)
from repro.events.trace import (Behavior, Converges, Diverges, Event,
                                GoesWrong)
from repro.memory.chunks import Chunk
from repro.memory.values import VFloat, VInt, Value
from repro.runtime import call_external

GLOBAL_BASE = 0x1000
HALT_ADDRESS = 0xFFFF0000
CODE_BASE = 0x40000000
DEFAULT_STACK_BYTES = 1 << 20
DEFAULT_ARENA_BYTES = 1 << 20
DEFAULT_FUEL = 50_000_000

#: Engine selected when ``AsmMachine(..., decoded=None)``: the pre-decoded
#: threaded-code interpreter (:mod:`repro.asm.decode`).  Benchmarks flip
#: this module-wide to measure the legacy step loop without re-plumbing
#: every call site.
DEFAULT_DECODED = True

#: The tier used when decoding is enabled at all (``DEFAULT_DECODED`` is
#: the kill switch back to the legacy loop): ``"codegen"`` compiles each
#: program to specialized Python (:mod:`repro.asm.codegen`); ``"decoded"``
#: is the threaded-code interpreter kept as a differential oracle.
DEFAULT_ENGINE = "codegen"

_INT_BINOPS = {
    "add": ints.add, "sub": ints.sub, "mul": ints.mul,
    "divs": ints.div_s, "divu": ints.div_u,
    "mods": ints.mod_s, "modu": ints.mod_u,
    "and": ints.and_, "or": ints.or_, "xor": ints.xor,
    "shl": ints.shl, "shrs": ints.shr_s, "shru": ints.shr_u,
    "cmp_eq": ints.eq, "cmp_ne": ints.ne,
    "cmp_lts": ints.lt_s, "cmp_les": ints.le_s,
    "cmp_gts": ints.gt_s, "cmp_ges": ints.ge_s,
    "cmp_ltu": ints.lt_u, "cmp_leu": ints.le_u,
    "cmp_gtu": ints.gt_u, "cmp_geu": ints.ge_u,
}

_FLOAT_CMP = {
    "cmpf_eq": lambda a, b: a == b,
    "cmpf_ne": lambda a, b: a != b,
    "cmpf_lt": lambda a, b: a < b,
    "cmpf_le": lambda a, b: a <= b,
    "cmpf_gt": lambda a, b: a > b,
    "cmpf_ge": lambda a, b: a >= b,
}


class AsmMachine:
    def __init__(self, program: asm.AsmProgram,
                 stack_bytes: int = DEFAULT_STACK_BYTES,
                 arena_bytes: int = DEFAULT_ARENA_BYTES,
                 output: Optional[list] = None,
                 decoded: Optional[bool] = None,
                 engine: Optional[str] = None) -> None:
        from repro import engines
        self.program = program
        self.output = output
        engine = engines.resolve(DEFAULT_DECODED, DEFAULT_ENGINE,
                                 decoded, engine)
        self.engine = engine
        self.decoded = engine != "legacy"
        decoded = self.decoded

        # Global layout.
        self.global_addr: dict[str, int] = {}
        address = GLOBAL_BASE
        for var in program.globals:
            address = align_up(address, max(var.alignment, 1))
            self.global_addr[var.name] = address
            address += var.size
        self.arena_base = align_up(address, 16)
        self.arena_ptr = self.arena_base
        self.arena_end = self.arena_base + arena_bytes
        self.stack_base = align_up(self.arena_end, 16)
        self.stack_top = self.stack_base + stack_bytes
        self.memory = bytearray(self.stack_top)
        for var in program.globals:
            base = self.global_addr[var.name]
            self.memory[base:base + var.size] = var.image

        # Code layout.
        self.function_ids: dict[str, int] = {}
        self.functions_by_id: list[asm.AsmFunction] = []
        for index, (name, function) in enumerate(program.functions.items()):
            self.function_ids[name] = index
            self.functions_by_id.append(function)

        # Register file.  The decoded engine uses index-based lists (with
        # a dict-like name view so ``machine.iregs["eax"]`` keeps working);
        # the legacy engine keeps the original string-keyed dicts.
        if decoded:
            from repro.asm.decode import (FREG_INDEX, IREG_INDEX,
                                          RegisterFile, bind_machine)
            self.iregs = RegisterFile(IREG_INDEX, 0)
            self.fregs = RegisterFile(FREG_INDEX, 0.0)
        else:
            self.iregs = {name: 0 for name in asm.INT_REG_NAMES}
            self.fregs = {name: 0.0 for name in asm.FLOAT_REG_NAMES}
        self.esp = self.stack_top
        self.min_esp = self.esp
        self.esp_baseline = self.esp  # set properly by start()

        self.current: Optional[asm.AsmFunction] = None
        self.pc = 0
        self.done = False
        self.return_code: Optional[int] = None
        self.steps = 0

        # Decoded-engine state: bound per-instruction closures plus the
        # (ops, pc) hand-off cells used at call/return boundaries.  The
        # codegen engine binds lazily — only if it has to deopt into the
        # decoded engine (fuel tails, wild return addresses).
        self._ops: Optional[list] = None
        self._pc = 0
        self._trace: list = []
        self._bound = None
        self._cg_steps = 0
        if engine == "decoded":
            bind_machine(self)

    # -- startup --------------------------------------------------------------

    def start(self) -> None:
        """Emulate the runtime's ``call main``."""
        main = self.program.functions.get(self.program.main)
        if main is None:
            raise DynamicError("no main function")
        self._push_return_address(HALT_ADDRESS)
        self.esp_baseline = self.esp
        self.min_esp = self.esp
        self.current = main
        self.pc = 0

    @property
    def measured_stack_usage(self) -> int:
        """The ptrace-monitor reading: ESP watermark below main's entry."""
        return self.esp_baseline - self.min_esp

    @property
    def measured_heap_usage(self) -> int:
        """Arena bytes consumed by malloc (the heap-resource analogue)."""
        return self.arena_ptr - self.arena_base

    # -- memory ----------------------------------------------------------------

    def _check_access(self, address: int, size: int) -> None:
        if address < GLOBAL_BASE or address + size > len(self.memory):
            raise MemoryError_(
                f"memory access at {address:#x} (size {size}) out of range")

    def load(self, chunk: Chunk, address: int) -> int | float:
        self._check_access(address, chunk.size)
        if address % chunk.alignment != 0:
            raise MemoryError_(f"misaligned load at {address:#x}")
        raw = bytes(self.memory[address:address + chunk.size])
        if chunk.is_float:
            return chunk.decode_float(raw)
        return chunk.decode_int(raw)

    def store(self, chunk: Chunk, address: int, value: int | float) -> None:
        self._check_access(address, chunk.size)
        if address % chunk.alignment != 0:
            raise MemoryError_(f"misaligned store at {address:#x}")
        if chunk.is_float:
            raw = chunk.encode_float(float(value))
        else:
            raw = chunk.encode_int(int(value))
        self.memory[address:address + chunk.size] = raw

    def _set_esp(self, new_esp: int) -> None:
        if new_esp < self.stack_base:
            raise StackOverflowError_(
                "stack overflow: ESP would drop "
                f"{self.stack_base - new_esp} bytes below the stack block",
                needed=self.stack_top - new_esp,
                available=self.stack_top - self.stack_base)
        self.esp = new_esp
        if new_esp < self.min_esp:
            self.min_esp = new_esp

    def _push_return_address(self, address: int) -> None:
        self._set_esp(self.esp - 4)
        self.store(Chunk.INT32, self.esp, address)

    # -- addressing ---------------------------------------------------------------

    def _resolve(self, addr: asm.Addr) -> int:
        if isinstance(addr, asm.AStack):
            return self.esp + addr.offset
        if isinstance(addr, asm.ABase):
            return ints.wrap(self.iregs[addr.reg] + addr.offset)
        if isinstance(addr, asm.AGlobal):
            try:
                return self.global_addr[addr.symbol] + addr.offset
            except KeyError:
                raise UndefinedBehaviorError(
                    f"unknown symbol {addr.symbol!r}") from None
        raise DynamicError(f"unknown addressing mode {addr!r}")

    # -- execution ------------------------------------------------------------------

    def step(self) -> Optional[Event]:
        assert self.current is not None
        self.steps += 1
        if self.pc >= len(self.current.body):
            raise DynamicError(
                f"{self.current.name}: fell off the end of the code")
        instr = self.current.body[self.pc]
        self.pc += 1
        return self._execute(instr)

    def _execute(self, instr: asm.PInstr) -> Optional[Event]:
        iregs = self.iregs
        fregs = self.fregs

        if isinstance(instr, asm.Plabel):
            return None
        if isinstance(instr, asm.Pmovimm):
            iregs[instr.dest] = ints.wrap(instr.value)
            return None
        if isinstance(instr, asm.Pmovfimm):
            fregs[instr.dest] = instr.value
            return None
        if isinstance(instr, asm.Pmov):
            iregs[instr.dest] = iregs[instr.src]
            return None
        if isinstance(instr, asm.Pmovf):
            fregs[instr.dest] = fregs[instr.src]
            return None
        if isinstance(instr, asm.Plea):
            iregs[instr.dest] = ints.wrap(self._resolve(instr.addr))
            return None
        if isinstance(instr, asm.Punop):
            iregs[instr.reg] = self._unop(instr.op, iregs[instr.reg])
            return None
        if isinstance(instr, asm.Pfneg):
            fregs[instr.reg] = -fregs[instr.reg]
            return None
        if isinstance(instr, asm.Pcvt):
            self._convert(instr)
            return None
        if isinstance(instr, asm.Pbinop):
            handler = _INT_BINOPS.get(instr.op)
            if handler is None:
                raise DynamicError(f"unknown integer op {instr.op!r}")
            iregs[instr.dest] = handler(iregs[instr.dest], iregs[instr.src])
            return None
        if isinstance(instr, asm.Pbinopf):
            self._float_binop(instr)
            return None
        if isinstance(instr, asm.Pcmpf):
            handler = _FLOAT_CMP.get(instr.op)
            if handler is None:
                raise DynamicError(f"unknown float compare {instr.op!r}")
            iregs[instr.dest] = 1 if handler(fregs[instr.src1],
                                             fregs[instr.src2]) else 0
            return None
        if isinstance(instr, asm.Pload):
            value = self.load(instr.chunk, self._resolve(instr.addr))
            if instr.chunk.is_float:
                fregs[instr.dest] = float(value)
            else:
                iregs[instr.dest] = int(value)
            return None
        if isinstance(instr, asm.Pstore):
            value = fregs[instr.src] if instr.chunk.is_float \
                else iregs[instr.src]
            self.store(instr.chunk, self._resolve(instr.addr), value)
            return None
        if isinstance(instr, asm.Pespadd):
            self._set_esp(self.esp + instr.delta)
            return None
        if isinstance(instr, asm.Pjmp):
            self.pc = self.current.labels[instr.label]
            return None
        if isinstance(instr, asm.Pjcc):
            if iregs[instr.reg] != 0:
                self.pc = self.current.labels[instr.label]
            return None
        if isinstance(instr, asm.Pcall):
            return self._call(instr.symbol)
        if isinstance(instr, asm.Pret):
            return self._return()
        if isinstance(instr, asm.Pbuiltin):
            return self._builtin(instr)
        raise DynamicError(f"unknown instruction {instr!r}")

    def _unop(self, op: str, value: int) -> int:
        if op == "neg":
            return ints.neg(value)
        if op == "notint":
            return ints.not_(value)
        if op == "notbool":
            return 0 if value != 0 else 1
        if op == "cast8signed":
            return ints.sign_extend8(value)
        if op == "cast8unsigned":
            return ints.wrap8(value)
        if op == "cast16signed":
            return ints.sign_extend16(value)
        if op == "cast16unsigned":
            return ints.wrap16(value)
        raise DynamicError(f"unknown unary op {op!r}")

    def _convert(self, instr: asm.Pcvt) -> None:
        if instr.op == "intoffloat":
            self.iregs[instr.dest] = ints.of_float_signed(
                self.fregs[instr.src])
            return
        if instr.op == "uintoffloat":
            value = self.fregs[instr.src]
            if value != value:
                raise UndefinedBehaviorError("float-to-uint of NaN")
            truncated = int(value)
            if truncated < 0 or truncated > ints.MAX_UNSIGNED:
                raise UndefinedBehaviorError(
                    f"float-to-uint out of range: {value!r}")
            self.iregs[instr.dest] = truncated
            return
        if instr.op == "floatofint":
            self.fregs[instr.dest] = ints.to_float_signed(
                self.iregs[instr.src])
            return
        if instr.op == "floatofuint":
            self.fregs[instr.dest] = ints.to_float_unsigned(
                self.iregs[instr.src])
            return
        raise DynamicError(f"unknown conversion {instr.op!r}")

    def _float_binop(self, instr: asm.Pbinopf) -> None:
        a = self.fregs[instr.dest]
        b = self.fregs[instr.src]
        if instr.op == "addf":
            result = a + b
        elif instr.op == "subf":
            result = a - b
        elif instr.op == "mulf":
            result = a * b
        elif instr.op == "divf":
            if b == 0.0:
                if a == 0.0 or a != a:
                    result = float("nan")
                else:
                    result = float("inf") if (a > 0) == (b >= 0) \
                        else float("-inf")
            else:
                result = a / b
        else:
            raise DynamicError(f"unknown float op {instr.op!r}")
        self.fregs[instr.dest] = result

    def _call(self, symbol: str) -> Optional[Event]:
        callee = self.program.functions.get(symbol)
        if callee is None:
            raise DynamicError(f"call to unknown symbol {symbol!r} "
                               "(externals use builtins)")
        assert self.current is not None
        return_address = (CODE_BASE
                          + self.function_ids[self.current.name] * 0x100000
                          + self.pc)
        self._push_return_address(return_address)
        self.current = callee
        self.pc = 0
        return None

    def _return(self) -> Optional[Event]:
        address = int(self.load(Chunk.INT32, self.esp))
        self._set_esp(self.esp + 4)
        if address == HALT_ADDRESS:
            self.done = True
            self.return_code = ints.to_signed(self.iregs["eax"])
            return None
        if address < CODE_BASE:
            raise DynamicError(f"return to non-code address {address:#x}")
        fid, index = divmod(address - CODE_BASE, 0x100000)
        if fid >= len(self.functions_by_id):
            raise DynamicError(f"return to unknown function id {fid}")
        self.current = self.functions_by_id[fid]
        self.pc = index
        return None

    def _builtin(self, instr: asm.Pbuiltin) -> Optional[Event]:
        args: list[Value] = []
        for reg, is_float in zip(instr.args, instr.arg_is_float):
            if is_float:
                args.append(VFloat(self.fregs[reg]))
            else:
                args.append(VInt(self.iregs[reg]))
        result, event = call_external(instr.name, args, alloc=self._malloc,
                                      output=self.output)
        if instr.dest is not None:
            if instr.dest_is_float:
                if not isinstance(result, VFloat):
                    raise DynamicError(
                        f"builtin {instr.name} did not return a float")
                self.fregs[instr.dest] = result.value
            else:
                if not isinstance(result, VInt):
                    raise DynamicError(
                        f"builtin {instr.name} did not return an integer")
                self.iregs[instr.dest] = result.value
        return event

    def _malloc(self, size: int) -> Value:
        aligned = align_up(max(size, 1), 8)
        if self.arena_ptr + aligned > self.arena_end:
            return VInt(0)  # out of arena: malloc returns NULL
        address = self.arena_ptr
        self.arena_ptr += aligned
        return VInt(address)


def run_program(program: asm.AsmProgram,
                stack_bytes: int = DEFAULT_STACK_BYTES,
                fuel: int = DEFAULT_FUEL,
                output: Optional[list] = None,
                decoded: Optional[bool] = None,
                engine: Optional[str] = None
                ) -> tuple[Behavior, AsmMachine]:
    """Run on ASMsz; returns the behavior and the machine (for the monitor).

    ``engine`` selects the tier (``"legacy"``/``"decoded"``/``"codegen"``;
    None defers to ``decoded`` and then the module defaults); ``decoded``
    is the older boolean selector, kept for existing call sites.
    """
    machine = AsmMachine(program, stack_bytes=stack_bytes, output=output,
                         decoded=decoded, engine=engine)
    if obs.enabled:
        # One span per run, wrapped around the whole loop: the hot path
        # itself carries zero added per-step work, enabled or not.
        with obs.span("exec.asm", engine=machine.engine) as sp:
            behavior = _execute(machine, fuel)
        sp.set(kind=type(behavior).__name__, steps=machine.steps,
               watermark=machine.measured_stack_usage)
        obs.add("interp.asm.steps", machine.steps)
        obs.add("interp.asm.seconds", sp.dur)
        obs.add("interp.asm.runs")
        if machine.engine == "codegen":
            obs.add("interp.codegen.steps", machine.steps)
            obs.add("interp.codegen.seconds", sp.dur)
            obs.add("interp.codegen.runs")
        return behavior, machine
    return _execute(machine, fuel), machine


def _execute(machine: AsmMachine, fuel: int) -> Behavior:
    """Run ``machine`` to a behavior on its selected engine."""
    if machine.engine == "codegen":
        from repro.asm.codegen import run_codegen

        return run_codegen(machine, fuel=fuel)
    if machine.decoded:
        from repro.asm.decode import run_decoded

        return run_decoded(machine, fuel=fuel)
    trace: list[Event] = []
    try:
        machine.start()
        for _ in range(fuel):
            if machine.done:
                break
            event = machine.step()
            if event is not None:
                trace.append(event)
        else:
            return Diverges(trace)
    except DynamicError as exc:
        return GoesWrong(trace, reason=str(exc))
    if not machine.done:
        return Diverges(trace)
    assert machine.return_code is not None
    return Converges(trace, machine.return_code)
