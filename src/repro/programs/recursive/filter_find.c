/* Table 2: filter_find — keep the elements of one array that occur in a
 * second (sorted) array of size BL, using the recursive binary search.
 * Stack shape: linear recursion over the input, with one logarithmic
 * bsearch chain live at the bottom; the verified bound composes the two:
 * (hi - lo) * M(filter_find) + M(bsearch) * (2 + log2(BL)). */

#ifndef N
#define N 60
#endif
#ifndef BL
#define BL 256
#endif

typedef unsigned int u32;
u32 haystack[BL];
u32 needles[N];
u32 found[N];
u32 seed = 97;

u32 rnd() {
    seed = seed * 1664525 + 1013904223;
    return seed;
}

u32 bsearch(u32 x, u32 lo, u32 hi) {
    u32 m = (lo + hi) / 2;
    if (hi - lo <= 1) return lo;
    if (haystack[m] > x) hi = m; else lo = m;
    return bsearch(x, lo, hi);
}

u32 filter_find(u32 sz, u32 lo, u32 hi) {
    u32 count, idx;
    if (lo >= hi) return 0;
    count = filter_find(sz, lo + 1, hi);
    idx = bsearch(needles[lo], 0, BL);
    if (haystack[idx] == needles[lo]) {
        found[count] = needles[lo];
        count = count + 1;
    }
    return count;
}

int main() {
    u32 i, prev = 0, kept;
    for (i = 0; i < BL; i++) {
        haystack[i] = prev + 1 + rnd() % 7;
        prev = haystack[i];
    }
    for (i = 0; i < N; i++) needles[i] = rnd() % prev;
    kept = filter_find(N, 0, N);
    print_int((int)kept);
    return kept <= N;
}
