"""Integration tests for the differential-testing campaign engine.

Includes the campaign's *self-test*: a compiler-option fixture that
deliberately miscomputes the cost metric (dropping the 4 return-address
bytes from ``M(f)``) must be caught by the oracle hierarchy within a
small seed budget — if the campaign cannot find a planted bug of the
exact shape it exists to catch, it is not testing anything.
"""

import json
import os

import pytest

from repro.testing import (CampaignConfig, check_seed, run_campaign,
                           run_smoke_campaign, shrink_failure)
from repro.testing.oracles import ABLATIONS

#: Seed budget within which the planted metric bug must be flagged.
SELF_TEST_BUDGET = 5


class TestOracles:
    def test_clean_seeds_pass_every_oracle(self):
        for seed in range(3):
            verdict = check_seed(seed)
            assert verdict.ok, (verdict.oracle, verdict.detail)
            assert verdict.configs_checked == len(ABLATIONS)
            assert verdict.events > 0

    def test_deep_mode_interprets_intermediate_levels(self):
        verdict = check_seed(0, deep=True)
        assert verdict.ok, (verdict.oracle, verdict.detail)
        assert "deep" in verdict.timings

    def test_recursive_seeds_skip_the_analyzer(self):
        verdict = check_seed(1, gen_kwargs={"recursion": True})
        assert verdict.ok, (verdict.oracle, verdict.detail)

    def test_planted_metric_bug_is_flagged(self):
        """The self-test fixture: M(f) = SF(f) (return address dropped)
        must violate bound-soundness within SELF_TEST_BUDGET seeds."""
        flagged = [check_seed(seed, plant="drop-ra")
                   for seed in range(SELF_TEST_BUDGET)]
        failures = [v for v in flagged if not v.ok]
        assert failures, ("campaign self-test: the planted drop-ra bug "
                          f"survived {SELF_TEST_BUDGET} seeds")
        assert all(v.oracle == "bound-soundness" for v in failures), \
            [(v.seed, v.oracle) for v in failures]


class TestShrinking:
    def test_shrunk_repro_preserves_the_verdict(self):
        """Shrinker contract: the minimized parameters still violate the
        same oracle as the original failure."""
        verdict = check_seed(0, plant="drop-ra")
        assert not verdict.ok
        result = shrink_failure(verdict, plant="drop-ra")
        assert not result.verdict.ok
        assert result.verdict.oracle == verdict.oracle
        assert result.reduced
        # drop-ra fires on any program with a call, so the minimum is the
        # parameter floor.
        assert result.gen_kwargs["max_functions"] == 1
        assert result.source.strip()

    def test_shrink_rejects_passing_verdicts(self):
        with pytest.raises(ValueError):
            shrink_failure(check_seed(0))


class TestCampaign:
    def test_smoke_campaign_is_clean(self):
        """The CI smoke entry: a small pool-based campaign with zero
        oracle violations."""
        report = run_smoke_campaign(seeds=4, jobs=2)
        assert len(report.verdicts) == 4
        assert not report.failures, report.summary()
        assert report.throughput > 0

    def test_corpus_cache_skips_verified_seeds(self, tmp_path):
        config = CampaignConfig(seeds=2, jobs=1,
                                cache_dir=str(tmp_path / "corpus"))
        cold = run_campaign(config)
        assert cold.cache_hits == 0 and not cold.failures
        warm = run_campaign(config)
        assert warm.cache_hits == 2 and not warm.failures
        # A different oracle configuration must miss the cache.
        other = CampaignConfig(seeds=2, jobs=1, metric="uniform",
                               cache_dir=str(tmp_path / "corpus"))
        assert run_campaign(other).cache_hits == 0

    def test_failures_never_enter_the_cache(self, tmp_path):
        config = CampaignConfig(seeds=1, jobs=1, plant="drop-ra",
                                shrink=False, probes=False,
                                cache_dir=str(tmp_path / "corpus"))
        first = run_campaign(config)
        assert first.failures
        again = run_campaign(config)
        assert again.failures and again.cache_hits == 0

    def test_report_and_repros_written(self, tmp_path):
        report_path = tmp_path / "report.jsonl"
        config = CampaignConfig(seeds=2, jobs=1, plant="drop-ra",
                                probes=False, cache_dir=None,
                                report_path=str(report_path),
                                repro_dir=str(tmp_path / "repros"))
        report = run_campaign(config)
        assert len(report.failures) == 2
        lines = [json.loads(line)
                 for line in report_path.read_text().splitlines()]
        assert lines[-1]["summary"]["failures"] == 2
        per_seed = [record for record in lines if "seed" in record]
        assert len(per_seed) == 2
        for record in per_seed:
            assert record["oracle"] == "bound-soundness"
            assert os.path.exists(record["repro"])
        for seed, path in report.repro_files.items():
            with open(path) as handle:
                text = handle.read()
            assert f"seed {seed}" in text and "int main" in text

    def test_time_budget_stops_early(self):
        config = CampaignConfig(seeds=500, jobs=1, cache_dir=None,
                                time_budget=0.0)
        report = run_campaign(config)
        assert len(report.verdicts) < 500
