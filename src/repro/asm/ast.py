"""ASMsz abstract syntax: a 32-bit x86-like instruction set.

Integer ALU instructions are two-address (``rd = rd op rs``), matching
x86; float compares are the one three-address exception (modeling the
``ucomisd``+``setcc`` fusion).  Frame allocation and release are plain
``Pespadd`` pointer arithmetic on ESP — by design there are no
frame pseudo-instructions left at this level.

Addressing modes: ``AGlobal(symbol, ofs)``, ``ABase(reg, ofs)`` and
``AStack(ofs)`` (= ``ESP + ofs``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.clight.ast import GlobalVar
from repro.memory.chunks import Chunk

INT_REG_NAMES = ("eax", "ebx", "ecx", "edx", "esi", "edi")
FLOAT_REG_NAMES = ("xmm0", "xmm1", "xmm2", "xmm3", "xmm4", "xmm5",
                   "xmm6", "xmm7")


class Addr:
    __slots__ = ()


class AGlobal(Addr):
    __slots__ = ("symbol", "offset")

    def __init__(self, symbol: str, offset: int = 0) -> None:
        self.symbol = symbol
        self.offset = offset

    def __repr__(self) -> str:
        return f"[{self.symbol}+{self.offset}]"


class ABase(Addr):
    __slots__ = ("reg", "offset")

    def __init__(self, reg: str, offset: int = 0) -> None:
        self.reg = reg
        self.offset = offset

    def __repr__(self) -> str:
        return f"[{self.reg}+{self.offset}]"


class AStack(Addr):
    __slots__ = ("offset",)

    def __init__(self, offset: int) -> None:
        self.offset = offset

    def __repr__(self) -> str:
        return f"[esp+{self.offset}]"


class PInstr:
    __slots__ = ()


class Pmovimm(PInstr):
    __slots__ = ("dest", "value")

    def __init__(self, dest: str, value: int) -> None:
        self.dest = dest
        self.value = value

    def __repr__(self) -> str:
        return f"mov {self.dest}, {self.value}"


class Pmovfimm(PInstr):
    __slots__ = ("dest", "value")

    def __init__(self, dest: str, value: float) -> None:
        self.dest = dest
        self.value = value

    def __repr__(self) -> str:
        return f"movsd {self.dest}, {self.value!r}"


class Pmov(PInstr):
    __slots__ = ("dest", "src")

    def __init__(self, dest: str, src: str) -> None:
        self.dest = dest
        self.src = src

    def __repr__(self) -> str:
        return f"mov {self.dest}, {self.src}"


class Pmovf(PInstr):
    __slots__ = ("dest", "src")

    def __init__(self, dest: str, src: str) -> None:
        self.dest = dest
        self.src = src

    def __repr__(self) -> str:
        return f"movsd {self.dest}, {self.src}"


class Plea(PInstr):
    __slots__ = ("dest", "addr")

    def __init__(self, dest: str, addr: Addr) -> None:
        self.dest = dest
        self.addr = addr

    def __repr__(self) -> str:
        return f"lea {self.dest}, {self.addr!r}"


class Punop(PInstr):
    """In-place integer unary op (neg, notint, notbool, cast8s, ...)."""

    __slots__ = ("op", "reg")

    def __init__(self, op: str, reg: str) -> None:
        self.op = op
        self.reg = reg

    def __repr__(self) -> str:
        return f"{self.op} {self.reg}"


class Pfneg(PInstr):
    __slots__ = ("reg",)

    def __init__(self, reg: str) -> None:
        self.reg = reg

    def __repr__(self) -> str:
        return f"negsd {self.reg}"


class Pcvt(PInstr):
    """Cross-class conversion: intoffloat/uintoffloat (f->i) and
    floatofint/floatofuint (i->f)."""

    __slots__ = ("op", "dest", "src")

    def __init__(self, op: str, dest: str, src: str) -> None:
        self.op = op
        self.dest = dest
        self.src = src

    def __repr__(self) -> str:
        return f"{self.op} {self.dest}, {self.src}"


class Pbinop(PInstr):
    """Two-address integer ALU op (includes fused compare+setcc)."""

    __slots__ = ("op", "dest", "src")

    def __init__(self, op: str, dest: str, src: str) -> None:
        self.op = op
        self.dest = dest
        self.src = src

    def __repr__(self) -> str:
        return f"{self.op} {self.dest}, {self.src}"


class Pbinopf(PInstr):
    """Two-address float ALU op (addf/subf/mulf/divf)."""

    __slots__ = ("op", "dest", "src")

    def __init__(self, op: str, dest: str, src: str) -> None:
        self.op = op
        self.dest = dest
        self.src = src

    def __repr__(self) -> str:
        return f"{self.op} {self.dest}, {self.src}"


class Pcmpf(PInstr):
    """Float compare into an integer register (ucomisd + setcc)."""

    __slots__ = ("op", "dest", "src1", "src2")

    def __init__(self, op: str, dest: str, src1: str, src2: str) -> None:
        self.op = op
        self.dest = dest
        self.src1 = src1
        self.src2 = src2

    def __repr__(self) -> str:
        return f"{self.op} {self.dest}, {self.src1}, {self.src2}"


class Pload(PInstr):
    __slots__ = ("chunk", "dest", "addr")

    def __init__(self, chunk: Chunk, dest: str, addr: Addr) -> None:
        self.chunk = chunk
        self.dest = dest
        self.addr = addr

    def __repr__(self) -> str:
        return f"load.{self.chunk.value} {self.dest}, {self.addr!r}"


class Pstore(PInstr):
    __slots__ = ("chunk", "src", "addr")

    def __init__(self, chunk: Chunk, src: str, addr: Addr) -> None:
        self.chunk = chunk
        self.src = src
        self.addr = addr

    def __repr__(self) -> str:
        return f"store.{self.chunk.value} {self.addr!r}, {self.src}"


class Pespadd(PInstr):
    """``ESP += delta`` — the only way frames come and go in ASMsz."""

    __slots__ = ("delta",)

    def __init__(self, delta: int) -> None:
        self.delta = delta

    def __repr__(self) -> str:
        if self.delta >= 0:
            return f"add esp, {self.delta}"
        return f"sub esp, {-self.delta}"


class Plabel(PInstr):
    __slots__ = ("label",)

    def __init__(self, label: int) -> None:
        self.label = label

    def __repr__(self) -> str:
        return f".L{self.label}:"


class Pjmp(PInstr):
    __slots__ = ("label",)

    def __init__(self, label: int) -> None:
        self.label = label

    def __repr__(self) -> str:
        return f"jmp .L{self.label}"


class Pjcc(PInstr):
    """Branch if the integer register is non-zero (test+jnz)."""

    __slots__ = ("reg", "label")

    def __init__(self, reg: str, label: int) -> None:
        self.reg = reg
        self.label = label

    def __repr__(self) -> str:
        return f"jnz {self.reg}, .L{self.label}"


class Pcall(PInstr):
    __slots__ = ("symbol",)

    def __init__(self, symbol: str) -> None:
        self.symbol = symbol

    def __repr__(self) -> str:
        return f"call {self.symbol}"


class Pret(PInstr):
    __slots__ = ()

    def __repr__(self) -> str:
        return "ret"


class Pbuiltin(PInstr):
    """Invoke an external primitive with register arguments (no stack)."""

    __slots__ = ("name", "args", "arg_is_float", "dest", "dest_is_float")

    def __init__(self, name: str, args: Sequence[str],
                 arg_is_float: Sequence[bool], dest: Optional[str],
                 dest_is_float: bool) -> None:
        self.name = name
        self.args = tuple(args)
        self.arg_is_float = tuple(arg_is_float)
        self.dest = dest
        self.dest_is_float = dest_is_float

    def __repr__(self) -> str:
        dest = f"{self.dest} = " if self.dest else ""
        return f"{dest}builtin {self.name}({', '.join(self.args)})"


class AsmFunction:
    def __init__(self, name: str, body: list[PInstr], frame_size: int) -> None:
        self.name = name
        self.body = body
        self.frame_size = frame_size
        self.labels: dict[int, int] = {
            instr.label: index for index, instr in enumerate(body)
            if isinstance(instr, Plabel)}

    def pretty(self) -> str:
        lines = [f"{self.name}:  # SF = {self.frame_size}"]
        for instr in self.body:
            pad = "" if isinstance(instr, Plabel) else "    "
            lines.append(f"{pad}{instr!r}")
        return "\n".join(lines)


class AsmProgram:
    def __init__(self, globals_: Sequence[GlobalVar],
                 functions: dict[str, AsmFunction],
                 externals: set[str], main: str = "main") -> None:
        self.globals = list(globals_)
        self.functions = dict(functions)
        self.externals = set(externals)
        self.main = main

    def pretty(self) -> str:
        parts = [f".comm {g.name}, {g.size}" for g in self.globals]
        parts.extend(fn.pretty() for fn in self.functions.values())
        return "\n\n".join(parts)
