"""Integration test: the paper's §2 illustrative example (Fig. 1).

Reproduces the derivations sketched in §2: the automatic bound
``{M(init) + M(random)} init() {M(init) + M(random)}``, the logarithmic
manual bound for ``search``, and the combined bound for ``main``.
"""

import pytest

from repro.driver import compile_c
from repro.clight.semantics import run_program as run_clight
from repro.events.trace import (CallEvent, Converges, ReturnEvent,
                                weight_of_trace)
from repro.logic.bexpr import (BLog2, BMul, badd, bconst, bmax, bmetric,
                               bparam, evaluate)
from repro.logic.recursion import CallObligation, RecursiveSpec, SpecTable, \
    check_spec
from repro.measure import measure_compilation
from repro.programs.loader import load_source

ALEN = 512


@pytest.fixture(scope="module")
def compilation():
    source = load_source("paper_example.c")
    return compile_c(source, macros={"ALEN": str(ALEN), "SEED": "17"})


@pytest.fixture(scope="module")
def behavior(compilation):
    return run_clight(compilation.clight)


class TestTraceShape:
    def test_trace_structure_matches_paper(self, behavior):
        """call(main) call(init) [call(random) ret(random)]* ret(init) ..."""
        trace = behavior.trace
        assert trace[0] == CallEvent("main")
        assert trace[1] == CallEvent("init")
        assert trace[2] == CallEvent("random")
        assert trace[-1] == ReturnEvent("main")
        search_calls = sum(1 for e in trace if e == CallEvent("search"))
        assert 1 <= search_calls <= 2 + 9  # 2 + log2(512)

    def test_converges(self, behavior):
        assert isinstance(behavior, Converges)


class TestAutomaticPart:
    def test_init_bound_is_m_init_plus_m_random(self, compilation):
        from repro.analyzer import auto_bound
        from repro.logic.assertions import FunContext, FunSpec
        from repro.logic.bexpr import ZERO, bound_equal

        gamma = FunContext()
        gamma.add(FunSpec.constant("random", ZERO))
        init = compilation.clight.function("init")
        bound, derivation = auto_bound(init.body, gamma,
                                       set(compilation.clight.externals))
        total = badd(bmetric("init"), bound)
        expected = badd(bmetric("init"), bmetric("random"))
        assert bound_equal(total, expected).holds


class TestManualPart:
    def search_spec(self):
        bound = BMul(badd(bconst(1), BLog2(bparam("n"))), bmetric("search"))
        def obligations(p):
            n = p["n"]
            if n <= 1:
                return []
            return [CallObligation("search", {"n": n - n // 2})]
        return RecursiveSpec("search", ["n"], bound, obligations,
                             domain={"n": range(0, 2 * ALEN)})

    def test_search_spec_inductive(self):
        spec = self.search_spec()
        table = SpecTable()
        table.add_recursive(spec)
        check_spec(spec, table)

    def test_combined_main_bound_sound(self, compilation, behavior):
        """W(trace) <= M(main) + max(M(init)+M(random), L(ALEN))."""
        metric = compilation.metric
        spec = self.search_spec()
        search_total = badd(bmetric("search"), spec.bound)
        main_bound = badd(
            bmetric("main"),
            bmax(badd(bmetric("init"), bmetric("random")),
                 badd(search_total, bconst(0))))
        allowed = evaluate(main_bound, metric.as_dict(), {"n": ALEN})
        observed = weight_of_trace(metric, behavior.trace)
        assert observed <= allowed

    def test_end_to_end_measurement(self, compilation):
        metric = compilation.metric
        spec = self.search_spec()
        search_total = badd(bmetric("search"), spec.bound)
        main_bound = badd(
            bmetric("main"),
            bmax(badd(bmetric("init"), bmetric("random")), search_total))
        allowed = evaluate(main_bound, metric.as_dict(), {"n": ALEN})
        run = measure_compilation(compilation)
        assert run.converged
        assert run.measured_bytes <= allowed - 4

    def test_paper_style_concrete_bounds(self, compilation):
        """The §2 punchline: concrete byte bounds from the metric."""
        metric = compilation.metric
        init_bytes = metric.cost("init") + metric.cost("random")
        assert init_bytes > 0
        # main: M(main) + max(M(init)+M(random), M(search)*(2+log2 ALEN))
        search_bytes = metric.cost("search") * (2 + 9)
        main_bytes = metric.cost("main") + max(init_bytes, search_bytes)
        assert main_bytes > init_bytes
