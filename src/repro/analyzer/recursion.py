"""Automatic ranking-function inference for self-recursive functions.

The paper handles recursion only through hand-written Table 2 derivations;
this module closes the gap for the *structural* fragment those programs
actually use: a self-recursive function with an integer measure — a
formal, or a difference of two formals (``hi - lo``) — that every
recursive call site decreases (by a constant, or by halving), guarded by a
branch on the measure that provides the base case.

The inference is deliberately untrusted.  It only *proposes* a parametric
spec ``P_f`` together with ordinary ``Q:CALL`` instantiations (the
``spec_args`` of the paper's auxiliary-state mechanism, e.g.
``Z -> Z - 1``); the proposal is then validated by building a normal
``auto_bound`` derivation for the body under the hypothesized Γ entry and
running :func:`repro.logic.checker.check_function_spec` over a declared
verification domain.  A wrong candidate (too small a bound, a measure
that does not decrease) fails the sampled induction and is discarded, so
the trust root stays with the certificate checker — the same position the
manual Table 2 specs occupy.

Two residual trust gaps are documented (and covered differentially by the
ASMsz watermark tests): the ``spec_args`` at a call site are auxiliary
state, not verified against the code (exactly as for manual specs), and
sites whose argument the symbolic walk cannot express (``qsort``'s
partition point) fall back to the assumption "measure decreases by one".

The same symbolic walk powers the *plan* computation for callers of
parametric functions: ``main`` calling ``bsearch(x, 0, N)`` needs the
spec instantiation ``n := N - 0``, which is read off the callee's
parameter recipe and the symbolic values of the arguments.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, Mapping, Optional, Sequence

from repro import obs
from repro.clight import ast as cl
from repro.errors import AnalysisError, DerivationError
from repro.logic import derivation as dv
from repro.logic.assertions import FunContext, FunSpec, Post
from repro.logic.bexpr import (BConst, BExpr, BFrameDiff, BHalf, BLog2,
                               BMul, BParamDiff, BScale, ZERO, badd, bmax,
                               bmetric, bparam, fold_with_params,
                               param_names)
from repro.logic.checker import CheckerContext, check_function_spec

# Verification domains: the induction step of an inferred spec is checked
# exhaustively over these measure values (the executable surrogate for the
# paper's Coq side-condition proofs, same role as table2's domains).
LINEAR_DOMAIN = range(0, 601)
LOG_DOMAIN = range(2, 1026)
# Auxiliary parameters that merely pass through the recursion (constants
# threaded into a non-recursive callee) are sampled, not swept.
EXTRA_DOMAIN = (0, 1, 5, 63, 256, 1024)

_MAX_ENVS = 24


# ---------------------------------------------------------------------------
# Symbolic values: a tiny abstract domain over the function's formals
# ---------------------------------------------------------------------------


class Sym:
    """An abstract value: affine over the formals, a floor/ceil half of an
    affine form, a product of two affine forms, an interval ``[0, limit]``
    (the result of masking with a constant), or ⊤."""

    __slots__ = ("kind", "coeffs", "const", "ceil", "limit", "left", "right")

    def __init__(self, kind: str, coeffs=None, const: int = 0,
                 ceil: bool = False, limit: int = 0,
                 left: "Sym | None" = None, right: "Sym | None" = None) -> None:
        self.kind = kind
        self.coeffs = {n: c for n, c in (coeffs or {}).items() if c != 0}
        self.const = const
        self.ceil = ceil
        self.limit = limit
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        if self.kind == "aff":
            parts = [f"{c}*{n}" for n, c in sorted(self.coeffs.items())]
            parts.append(str(self.const))
            return " + ".join(parts)
        if self.kind == "half":
            op = "ceil_half" if self.ceil else "half"
            return f"{op}({Sym('aff', self.coeffs, self.const)!r})"
        if self.kind == "bounded":
            return f"[0..{self.limit}]"
        if self.kind == "mul":
            return f"({self.left!r}) * ({self.right!r})"
        return "⊤"


SYM_TOP = Sym("top")


def _aff(coeffs=None, const: int = 0) -> Sym:
    return Sym("aff", coeffs, const)


def _formal(name: str) -> Sym:
    return Sym("aff", {name: 1})


def sym_eq(a: Sym, b: Sym) -> bool:
    if a.kind != b.kind:
        return False
    if a.kind in ("aff", "half"):
        return (a.coeffs == b.coeffs and a.const == b.const
                and a.ceil == b.ceil)
    if a.kind == "bounded":
        return a.limit == b.limit
    if a.kind == "mul":
        return sym_eq(a.left, b.left) and sym_eq(a.right, b.right)
    return True  # top


def sym_add(a: Sym, b: Sym) -> Sym:
    if a.kind == "aff" and b.kind == "aff":
        coeffs = dict(a.coeffs)
        for name, c in b.coeffs.items():
            coeffs[name] = coeffs.get(name, 0) + c
        return _aff(coeffs, a.const + b.const)
    # floor(A/2) + B = floor((A + 2B)/2), and likewise for ceil.
    if a.kind == "half" and b.kind == "aff":
        doubled = {n: 2 * c for n, c in b.coeffs.items()}
        coeffs = dict(a.coeffs)
        for name, c in doubled.items():
            coeffs[name] = coeffs.get(name, 0) + c
        return Sym("half", coeffs, a.const + 2 * b.const, ceil=a.ceil)
    if b.kind == "half" and a.kind == "aff":
        return sym_add(b, a)
    return SYM_TOP


def _sym_neg(a: Sym) -> Sym:
    if a.kind == "aff":
        return _aff({n: -c for n, c in a.coeffs.items()}, -a.const)
    return SYM_TOP


def sym_sub(a: Sym, b: Sym) -> Sym:
    # A - floor(B/2) = ceil((2A - B)/2): the floor/ceil flips.
    if b.kind == "half" and a.kind == "aff":
        coeffs = {n: 2 * c for n, c in a.coeffs.items()}
        for name, c in b.coeffs.items():
            coeffs[name] = coeffs.get(name, 0) - c
        return Sym("half", coeffs, 2 * a.const - b.const, ceil=not b.ceil)
    if b.kind == "aff":
        return sym_add(a, _sym_neg(b))
    return SYM_TOP


def sym_mul(a: Sym, b: Sym) -> Sym:
    for x, y in ((a, b), (b, a)):
        if x.kind == "aff" and not x.coeffs:
            if y.kind == "aff" and x.const >= 0:
                return _aff({n: x.const * c for n, c in y.coeffs.items()},
                            x.const * y.const)
            return SYM_TOP
    if a.kind == "aff" and b.kind == "aff":
        return Sym("mul", left=a, right=b)
    return SYM_TOP


def eval_expr(expr: cl.Expr, env: Mapping[str, Sym]) -> Sym:
    if isinstance(expr, cl.EConstInt):
        return _aff(const=expr.value)
    if isinstance(expr, cl.ETemp):
        return env.get(expr.name, SYM_TOP)
    if isinstance(expr, cl.EBinop):
        left = eval_expr(expr.left, env)
        right = eval_expr(expr.right, env)
        if expr.op == "add":
            return sym_add(left, right)
        if expr.op == "sub":
            return sym_sub(left, right)
        if expr.op == "mul":
            return sym_mul(left, right)
        if expr.op in ("divu", "divs"):
            if isinstance(expr.right, cl.EConstInt) and expr.right.value == 2 \
                    and left.kind == "aff":
                return Sym("half", left.coeffs, left.const, ceil=False)
            return SYM_TOP
        if expr.op == "and":
            # ``e & m`` lies in [0, m]: a sound worst case for monotone
            # parametric bounds (progen masks recursion arguments this way).
            for side in (expr.right, expr.left):
                if isinstance(side, cl.EConstInt) and side.value >= 0:
                    return Sym("bounded", limit=side.value)
            return SYM_TOP
        if expr.op.startswith("cmp"):
            return Sym("bounded", limit=1)
        return SYM_TOP
    return SYM_TOP


# ---------------------------------------------------------------------------
# The path-sensitive symbolic walk
# ---------------------------------------------------------------------------


class SiteRecord:
    """One call statement with its argument values per reaching path."""

    __slots__ = ("stmt", "callee", "disjuncts")

    def __init__(self, stmt: cl.SCall) -> None:
        self.stmt = stmt
        self.callee = stmt.callee
        self.disjuncts: list[tuple[Sym, ...]] = []

    def add(self, args: tuple[Sym, ...]) -> None:
        for seen in self.disjuncts:
            if len(seen) == len(args) and all(
                    sym_eq(a, b) for a, b in zip(seen, args)):
                return
        self.disjuncts.append(args)


class SymbolicWalk:
    """Disjunctive symbolic execution of one function body."""

    def __init__(self, function: cl.Function) -> None:
        self.function = function
        self.sites: dict[int, SiteRecord] = {}
        env = {}
        for index, name in enumerate(function.params):
            if not function.param_is_float[index]:
                env[name] = _formal(name)
        self._walk(function.body, [env])

    def site_list(self) -> list[SiteRecord]:
        return list(self.sites.values())

    def _walk(self, stmt: cl.Stmt, envs: list[dict]) -> list[dict]:
        if not envs:
            return envs
        if isinstance(stmt, cl.SSkip):
            return envs
        if isinstance(stmt, cl.SSet):
            for env in envs:
                env[stmt.temp] = eval_expr(stmt.expr, env)
            return envs
        if isinstance(stmt, cl.SStore):
            return envs
        if isinstance(stmt, cl.SCall):
            record = self.sites.get(id(stmt))
            if record is None:
                record = self.sites[id(stmt)] = SiteRecord(stmt)
            for env in envs:
                record.add(tuple(eval_expr(a, env) for a in stmt.args))
                if stmt.dest is not None:
                    env[stmt.dest] = SYM_TOP
            return envs
        if isinstance(stmt, cl.SSeq):
            return self._walk(stmt.second, self._walk(stmt.first, envs))
        if isinstance(stmt, cl.SIf):
            then_envs = self._walk(stmt.then, [dict(e) for e in envs])
            else_envs = self._walk(stmt.otherwise, [dict(e) for e in envs])
            return self._cap(then_envs + else_envs)
        if isinstance(stmt, cl.SLoop):
            havoc = _assigned_temps(stmt)
            entry = []
            for env in envs:
                clean = dict(env)
                for name in havoc:
                    clean[name] = SYM_TOP
                entry.append(clean)
            entry = self._cap(entry)
            # One abstract iteration with the havocked environment records
            # every call site inside the loop soundly; the fall-through
            # environment is the havocked one (the loop may run 0+ times).
            after_body = self._walk(stmt.body, [dict(e) for e in entry])
            self._walk(stmt.post, after_body)
            return entry
        if isinstance(stmt, cl.SBlock):
            return self._walk(stmt.body, envs)
        if isinstance(stmt, (cl.SBreak, cl.SContinue, cl.SReturn)):
            return []
        return envs

    @staticmethod
    def _cap(envs: list[dict]) -> list[dict]:
        if len(envs) <= _MAX_ENVS:
            return envs
        merged = dict(envs[0])
        for env in envs[1:]:
            for name in set(merged) | set(env):
                a, b = merged.get(name, SYM_TOP), env.get(name, SYM_TOP)
                merged[name] = a if sym_eq(a, b) else SYM_TOP
        return [merged]


def _assigned_temps(stmt: cl.Stmt) -> set[str]:
    out: set[str] = set()
    if isinstance(stmt, cl.SSet):
        out.add(stmt.temp)
    elif isinstance(stmt, cl.SCall):
        if stmt.dest is not None:
            out.add(stmt.dest)
    elif isinstance(stmt, cl.SSeq):
        out |= _assigned_temps(stmt.first) | _assigned_temps(stmt.second)
    elif isinstance(stmt, cl.SIf):
        out |= _assigned_temps(stmt.then) | _assigned_temps(stmt.otherwise)
    elif isinstance(stmt, cl.SLoop):
        out |= _assigned_temps(stmt.body) | _assigned_temps(stmt.post)
    elif isinstance(stmt, cl.SBlock):
        out |= _assigned_temps(stmt.body)
    return out


# ---------------------------------------------------------------------------
# Translating symbolic values to bound expressions
# ---------------------------------------------------------------------------


def qualify(fname: str, formal: str) -> str:
    """The spec-parameter name of a caller formal.

    Qualification avoids collisions between the parameter namespaces of
    different functions' specs (every spec param is global to Γ).
    """
    return f"{fname}${formal}"


def _aff_to_bexpr(coeffs: Mapping[str, int], const: int,
                  fname: str) -> BExpr:
    positive: list[BExpr] = []
    negative: list[BExpr] = []
    for name, coeff in sorted(coeffs.items()):
        atom = bparam(qualify(fname, name))
        term = atom if abs(coeff) == 1 else BScale(abs(coeff), atom)
        (positive if coeff > 0 else negative).append(term)
    if const > 0:
        positive.append(BConst(const))
    elif const < 0:
        negative.append(BConst(-const))
    pos = badd(*positive) if positive else ZERO
    if not negative:
        return pos
    return BParamDiff(pos, badd(*negative))


def sym_to_bexpr(value: Sym, fname: str) -> Optional[BExpr]:
    """A bound expression over ``fname``'s qualified formals, or None."""
    if value.kind == "aff":
        return _aff_to_bexpr(value.coeffs, value.const, fname)
    if value.kind == "half":
        return BHalf(_aff_to_bexpr(value.coeffs, value.const, fname),
                     value.ceil)
    if value.kind == "bounded":
        return BConst(value.limit)
    if value.kind == "mul":
        left = sym_to_bexpr(value.left, fname)
        right = sym_to_bexpr(value.right, fname)
        if left is None or right is None:
            return None
        return BMul(left, right)
    return None


def _worst_case(exprs: Sequence[BExpr]) -> BExpr:
    """Join the per-path instantiations: parametric bounds are monotone in
    their parameters, so the pointwise max of the candidates is sound."""
    unique: list[BExpr] = []
    for expr in exprs:
        if not any(expr is seen for seen in unique):
            unique.append(expr)
    if len(unique) == 1:
        return unique[0]
    return bmax(*unique)


# ---------------------------------------------------------------------------
# Caller-side plans for parametric callees
# ---------------------------------------------------------------------------

Recipe = Mapping[str, tuple]  # spec param -> ("formal", i) | ("diff", j, i)


def _apply_recipe(entry: tuple, args: Sequence[Sym]) -> Sym:
    if entry[0] == "formal":
        index = entry[1]
        return args[index] if index < len(args) else SYM_TOP
    if entry[0] == "diff":
        _tag, j, i = entry
        if j < len(args) and i < len(args):
            return sym_sub(args[j], args[i])
        return SYM_TOP
    return SYM_TOP


def build_call_plans(function: cl.Function, gamma: FunContext,
                     recipes: Mapping[str, Recipe],
                     walk: Optional[SymbolicWalk] = None,
                     skip_callees: Iterable[str] = ()
                     ) -> dict[int, dict[str, BExpr]]:
    """Spec instantiations for every call to a parametric callee.

    Returns a mapping ``id(SCall) -> spec_args`` for :func:`auto_bound`.
    Raises :class:`AnalysisError` when an argument feeding a spec
    parameter cannot be expressed over the caller's formals.
    """
    skip = set(skip_callees)
    plans: dict[int, dict[str, BExpr]] = {}
    walk = walk or SymbolicWalk(function)
    for site in walk.site_list():
        callee = site.callee
        if callee in skip or callee not in gamma:
            continue
        spec = gamma[callee]
        if not spec.params:
            continue
        recipe = recipes.get(callee)
        if recipe is None:
            raise AnalysisError(
                f"{function.name}: call to parametric {callee!r} but no "
                "argument recipe is registered for it")
        spec_args: dict[str, BExpr] = {}
        for param in spec.params:
            entry = recipe.get(param)
            if entry is None:
                raise AnalysisError(
                    f"{function.name}: no recipe for spec parameter "
                    f"{param!r} of {callee!r}")
            candidates: list[BExpr] = []
            for args in site.disjuncts:
                expr = sym_to_bexpr(_apply_recipe(entry, args),
                                    function.name)
                if expr is None:
                    raise AnalysisError(
                        f"{function.name}: argument of {callee!r} feeding "
                        f"spec parameter {param!r} is not expressible over "
                        f"{function.name}'s formals — the value analysis "
                        "cannot plan this call")
                candidates.append(expr)
            if not candidates:
                raise AnalysisError(
                    f"{function.name}: call to {callee!r} is unreachable "
                    "in the symbolic walk; cannot plan its spec arguments")
            spec_args[param] = _worst_case(candidates)
        plans[id(site.stmt)] = spec_args
    return plans


# ---------------------------------------------------------------------------
# Measure inference
# ---------------------------------------------------------------------------


class Measure:
    """A candidate ranking function: a formal or a difference of two."""

    __slots__ = ("kind", "j", "i")

    def __init__(self, kind: str, j: int, i: int = 0) -> None:
        self.kind = kind  # "formal" (index j) or "diff" (formal_j - formal_i)
        self.j = j
        self.i = i

    def recipe_entry(self) -> tuple:
        if self.kind == "formal":
            return ("formal", self.j)
        return ("diff", self.j, self.i)

    def describe(self, formals: Sequence[str]) -> str:
        if self.kind == "formal":
            return formals[self.j]
        return f"{formals[self.j]} - {formals[self.i]}"

    def initial(self, formals: Sequence[str]) -> Sym:
        if self.kind == "formal":
            return _formal(formals[self.j])
        return _aff({formals[self.j]: 1, formals[self.i]: -1})

    def at_site(self, args: Sequence[Sym]) -> Sym:
        return _apply_recipe(self.recipe_entry(), args)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Measure) and \
            (self.kind, self.j, self.i) == (other.kind, other.j, other.i)

    def __hash__(self) -> int:
        return hash((self.kind, self.j, self.i))


def _conditions(stmt: cl.Stmt):
    if isinstance(stmt, cl.SIf):
        yield stmt.cond
        yield from _conditions(stmt.then)
        yield from _conditions(stmt.otherwise)
    elif isinstance(stmt, cl.SSeq):
        yield from _conditions(stmt.first)
        yield from _conditions(stmt.second)
    elif isinstance(stmt, cl.SLoop):
        yield from _conditions(stmt.body)
        yield from _conditions(stmt.post)
    elif isinstance(stmt, cl.SBlock):
        yield from _conditions(stmt.body)


def _guard_measures(function: cl.Function,
                    int_formals: Sequence[int]) -> list[Measure]:
    """Measures suggested by branch guards (the base-case conditions).

    A guard comparing ``hi - lo`` against a constant nominates the
    difference measure before any blind enumeration — this is what keeps
    ``qsort`` (whose recursive arguments are loop-computed and hence ⊤)
    on the right measure.
    """
    formals = function.params
    index_of = {formals[i]: i for i in int_formals}
    env = {formals[i]: _formal(formals[i]) for i in int_formals}
    out: list[Measure] = []
    for cond in _conditions(function.body):
        if not (isinstance(cond, cl.EBinop) and cond.op.startswith("cmp")):
            continue
        left = eval_expr(cond.left, env)
        right = eval_expr(cond.right, env)
        for diff in (sym_sub(left, right), sym_sub(right, left)):
            if diff.kind != "aff":
                continue
            coeffs = diff.coeffs
            names = sorted(coeffs)
            if len(names) == 1 and coeffs[names[0]] == 1:
                candidate = Measure("formal", index_of[names[0]])
            elif len(names) == 2 and sorted(coeffs.values()) == [-1, 1]:
                plus = next(n for n in names if coeffs[n] == 1)
                minus = next(n for n in names if coeffs[n] == -1)
                candidate = Measure("diff", index_of[plus], index_of[minus])
            else:
                continue
            if candidate not in out:
                out.append(candidate)
    return out


def _classify(new: Sym, initial: Sym):
    """How one recursive call transforms the measure.

    Returns ``("dec", c)``, ``("half", ceil)``, ``"top"`` (not
    expressible: the validated fallback "decreases by one" applies), or
    ``None`` for a definite non-decrease, which rejects the measure.
    """
    if new.kind == "aff":
        if new.coeffs == initial.coeffs:
            delta = new.const - initial.const
            return ("dec", -delta) if delta <= -1 else None
        return "top"
    if new.kind == "half":
        if new.coeffs == initial.coeffs and new.const == initial.const:
            return ("half", new.ceil)
        return "top"
    return "top"


def _transform_expr(transform, pn: str) -> BExpr:
    if transform == "top":
        return BParamDiff(bparam(pn), BConst(1))
    if transform[0] == "dec":
        return BParamDiff(bparam(pn), BConst(transform[1]))
    return BHalf(bparam(pn), transform[1])


class InferredSpec:
    """The result of a successful inference for one recursive function."""

    __slots__ = ("spec", "derivation", "body_bound", "param_domains",
                 "recipe", "shape", "measure")

    def __init__(self, spec: FunSpec, derivation: dv.Derivation,
                 body_bound: BExpr, param_domains: dict, recipe: dict,
                 shape: str, measure: str) -> None:
        self.spec = spec
        self.derivation = derivation
        self.body_bound = body_bound
        self.param_domains = param_domains
        self.recipe = recipe
        self.shape = shape
        self.measure = measure


def infer_recursive_spec(function: cl.Function, gamma: FunContext,
                         externals: set[str],
                         recipes: Mapping[str, Recipe],
                         extra_param_domains: Optional[Mapping] = None
                         ) -> InferredSpec:
    """Infer and *validate* a parametric stack bound for ``function``.

    The returned derivation concludes ``{P} body {(P, ⊤, P, ⊤)}`` and has
    been accepted by :func:`check_function_spec` over the returned
    verification domains; the caller only has to install the spec in Γ.
    Raises :class:`AnalysisError` if no candidate survives validation.
    """
    from repro.analyzer.auto import auto_bound

    fname = function.name
    with obs.span("analyzer.recursion.infer", function=fname) as span:
        walk = SymbolicWalk(function)
        sites = walk.site_list()
        self_sites = [s for s in sites if s.callee == fname]
        obs.add("analyzer.recursion.sites", len(self_sites))
        int_formals = [i for i in range(len(function.params))
                       if not function.param_is_float[i]]
        if not self_sites or not int_formals:
            raise AnalysisError(
                f"{fname}: recursive but has no self-call with integer "
                "formals to rank on", sccs=[[fname]])

        candidates = _guard_measures(function, int_formals)
        for i in int_formals:
            measure = Measure("formal", i)
            if measure not in candidates:
                candidates.append(measure)
        for j, i in permutations(int_formals, 2):
            measure = Measure("diff", j, i)
            if measure not in candidates:
                candidates.append(measure)

        # Non-recursive ceiling K: bound the body with self-calls priced
        # at zero (treated as external).  Parametric *cross* calls are
        # planned normally, so e.g. filter_find's K carries bsearch's
        # whole chain.
        cross_plans = build_call_plans(function, gamma, recipes, walk=walk,
                                       skip_callees={fname})
        ceiling, _deriv = auto_bound(function.body, gamma,
                                     externals | {fname}, plans=cross_plans)
        extras = sorted(param_names(ceiling))
        if not extras:
            ceiling = fold_with_params(ceiling, {})
        bad = [p for p in extras if not p.startswith(f"{fname}$")]
        if bad:
            raise AnalysisError(
                f"{fname}: non-recursive ceiling depends on foreign "
                f"parameters {bad}", sccs=[[fname]])

        pn = qualify(fname, "#n")
        errors: list[str] = []
        tried = 0
        for measure in candidates:
            initial = measure.initial(function.params)
            site_exprs: list[BExpr] = []
            transforms = []
            rejected = False
            for site in self_sites:
                site_transforms = []
                for args in site.disjuncts:
                    outcome = _classify(measure.at_site(args), initial)
                    if outcome is None:
                        rejected = True
                        break
                    site_transforms.append(outcome)
                if rejected or not site_transforms:
                    rejected = True
                    break
                transforms.append(site_transforms)
                site_exprs.append(_worst_case(
                    [_transform_expr(t, pn) for t in site_transforms]))
            if rejected:
                continue
            flat = [t for per_site in transforms for t in per_site]
            halving = all(t != "top" and t[0] == "half" for t in flat)
            fallbacks = sum(1 for t in flat if t == "top")
            shapes = ("log", "linear") if halving else ("linear",)
            for shape in shapes:
                tried += 1
                result = _validate_candidate(
                    function, gamma, externals, recipes, walk, self_sites,
                    site_exprs, pn, shape, ceiling, extras,
                    extra_param_domains)
                if isinstance(result, str):
                    errors.append(result)
                    continue
                spec, deriv, domains = result
                recipe = {pn: measure.recipe_entry()}
                for extra in extras:
                    formal = extra.split("$", 1)[1]
                    recipe[extra] = ("formal",
                                     function.params.index(formal))
                obs.add("analyzer.recursion.inferred")
                obs.add("analyzer.recursion.candidates_tried", tried)
                if fallbacks:
                    obs.add("analyzer.recursion.fallback_sites", fallbacks)
                span.set(shape=shape, candidates=tried,
                         measure=measure.describe(function.params))
                return InferredSpec(
                    spec, deriv, spec.pre, domains, recipe, shape,
                    measure.describe(function.params))
        obs.add("analyzer.recursion.failed")
    detail = f" (last failure: {errors[-1]})" if errors else ""
    raise AnalysisError(
        f"recursion in {fname!r} is outside the supported fragment: no "
        f"ranking-function candidate survived validation "
        f"({tried} attempts){detail}", sccs=[[fname]])


def _validate_candidate(function: cl.Function, gamma: FunContext,
                        externals: set[str], recipes: Mapping[str, Recipe],
                        walk: SymbolicWalk, self_sites: list[SiteRecord],
                        site_exprs: list[BExpr], pn: str, shape: str,
                        ceiling: BExpr, extras: list[str],
                        extra_param_domains):
    """Build the derivation for one candidate and run the checker.

    Returns ``(spec, derivation, domains)`` or an error string.
    """
    from repro.analyzer.auto import auto_bound

    fname = function.name
    if shape == "log":
        depth: BExpr = badd(BConst(1), BLog2(bparam(pn)))
        domain: Iterable[int] = LOG_DOMAIN
    else:
        depth = bparam(pn)
        domain = LINEAR_DOMAIN
    bound = badd(BMul(depth, bmetric(fname)), ceiling)
    spec = FunSpec(fname, [pn] + extras, bound, bound,
                   description=f"inferred ranking function ({shape} depth)")

    # Self-call plans: the measure transformation instantiates the depth
    # parameter; auxiliary parameters must pass through unchanged.
    plans = build_call_plans(function, gamma, recipes, walk=walk,
                             skip_callees={fname})
    for site, expr in zip(self_sites, site_exprs):
        spec_args: dict[str, BExpr] = {pn: expr}
        for extra in extras:
            formal = extra.split("$", 1)[1]
            index = function.params.index(formal)
            passthrough = bparam(extra)
            for args in site.disjuncts:
                arg_expr = sym_to_bexpr(args[index], fname) \
                    if index < len(args) else None
                if arg_expr is not passthrough:
                    return (f"{fname}: recursive call modifies auxiliary "
                            f"argument {formal!r}")
            spec_args[extra] = passthrough
        plans[id(site.stmt)] = spec_args

    hypothetical = gamma.extended(spec)
    try:
        body_bound, derivation = auto_bound(function.body, hypothetical,
                                            externals, plans=plans)
    except AnalysisError as error:
        return f"{fname}: {error}"

    if body_bound is not bound:
        frame = BFrameDiff(bound, body_bound)
        lifted_pre = badd(body_bound, frame)
        lifted = dv.Triple(
            lifted_pre, function.body,
            derivation.conclusion.post.map(lambda q: badd(q, frame)))
        derivation = dv.DFrame(lifted, frame, derivation)

    domains = dict(extra_param_domains or {})
    domains[pn] = list(domain)
    for extra in extras:
        domains.setdefault(extra, list(EXTRA_DOMAIN))
    ctx = CheckerContext(hypothetical, externals=externals,
                         param_domains=domains)
    try:
        check_function_spec(function, derivation, ctx)
    except (DerivationError, ValueError) as error:
        return f"{fname}: candidate rejected by the checker: {error}"
    return spec, derivation, domains
