"""The serving worker pool: persistent processes, bounded in-flight work.

``ServePool`` shards verify requests across a ``multiprocessing.Pool``
that reuses the campaign pool's machinery: the same warmup initializer
(:func:`repro.testing.campaign.pool_warmup` pays import/compile cold
start once per worker) and the same telemetry protocol (workers drain a
per-request metrics *delta* — heartbeat gauges included — that rides
back on the result and is merged into the parent registry, so
``/metrics`` reports pool-wide aggregates without shared memory).

Capacity is a semaphore over *in-flight* requests (running + queued).
``submit`` never blocks on a full queue: it raises
:class:`PoolSaturated` immediately, which the HTTP layer turns into
``503 Retry-After`` — load sheds at the door instead of growing an
unbounded backlog.  Every accepted request gets a terminal answer: a
result, a diagnosed 422, or — if the worker exceeds the per-request
timeout or dies mid-request — a 5xx error response.  A lost worker's
task is never silently retried (the pipeline is deterministic; the
client owns the retry decision).

``jobs=0`` runs requests in-process (serialized by a lock): no fork, no
IPC — the mode unit tests and tiny deployments use.
"""

from __future__ import annotations

import multiprocessing.pool
import os
import threading
import time
from multiprocessing import Pool
from typing import Optional

from repro import obs
from repro.errors import ReproError
from repro.serve.pipeline import ServeRequest, error_response, run_pipeline
from repro.serve.store import (DEFAULT_MAX_BYTES, ResultStore, ServeError,
                               options_digest, source_digest)
from repro.testing.campaign import pool_warmup


class PoolSaturated(ServeError):
    """The in-flight queue is full; the caller should shed load (503)."""


class _Flight:
    """One in-flight single-flight computation and its terminal answer."""

    __slots__ = ("done", "status", "body", "saturated")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.status: Optional[int] = None
        self.body: Optional[dict] = None
        self.saturated = False


#: Worker-side store handles, one per (root, cap) this process has seen.
_worker_stores: dict[tuple, ResultStore] = {}


def _worker_store(root: Optional[str], max_bytes: int) -> ResultStore:
    key = (root, max_bytes)
    store = _worker_stores.get(key)
    if store is None:
        store = _worker_stores[key] = ResultStore(root, max_bytes)
    return store


def _apply_chaos(chaos: Optional[str]) -> None:
    """Test-only fault hooks (never reachable from the HTTP API unless
    the server was constructed with ``allow_chaos=True``)."""
    if not chaos:
        return
    if chaos == "die":
        os._exit(1)
    if chaos.startswith("sleep:"):
        time.sleep(float(chaos.split(":", 1)[1]))


def _execute(payload: dict, store: ResultStore) -> tuple[int, dict]:
    """Run one request against a store; returns ``(http_status, body)``."""
    _apply_chaos(payload.get("chaos"))
    request = ServeRequest(source=payload["source"],
                           filename=payload["filename"],
                           macros=payload["macros"],
                           options=_options_from_key(payload["options"]),
                           probe=bool(payload.get("probe", False)))
    try:
        return 200, run_pipeline(request, store)
    except ReproError as error:
        obs.add("serve.pipeline.rejected")
        return 422, error_response(error)


def _options_from_key(items: list) -> "CompilerOptions":
    from repro.driver import CompilerOptions

    return CompilerOptions(**dict(items))


def _serve_worker(payload: dict) -> tuple[int, dict, Optional[dict]]:
    """Pool worker: one request, instrumented, delta shipped back.

    Mirrors the campaign's ``_check_one``: enable obs, discard state
    inherited through ``fork()``, run the request, stamp the worker
    heartbeat gauge, and return the per-request metrics delta for the
    parent to merge.
    """
    obs.enable()
    obs.drain_metrics()
    obs.drain_spans()
    store = _worker_store(payload["store_root"], payload["store_max_bytes"])
    with obs.span("serve.request", filename=payload["filename"]) as span:
        status, body = _execute(payload, store)
        span.set(status=status)
    pid = os.getpid()
    obs.set_gauge(f"serve.worker.{pid}.heartbeat", time.time())
    obs.add(f"serve.worker.{pid}.requests")
    return status, body, obs.drain_metrics()


class ServePool:
    """A bounded pool of verify workers with merged telemetry."""

    def __init__(self, jobs: int = 2, queue_depth: int = 16,
                 timeout_s: float = 60.0,
                 store_root: Optional[str] = None,
                 store_max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if queue_depth < 1:
            raise ServeError("queue depth must be at least 1")
        self.jobs = jobs
        self.queue_depth = queue_depth
        self.timeout_s = timeout_s
        self.store_root = store_root
        self.store_max_bytes = store_max_bytes
        self._slots = threading.BoundedSemaphore(queue_depth)
        self._inflight = 0
        self._state_lock = threading.Lock()
        self._merge_lock = threading.Lock()
        self._inline_lock = threading.Lock()
        self._flights: dict[tuple, _Flight] = {}
        self._flights_lock = threading.Lock()
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._store: Optional[ResultStore] = None
        if jobs > 0:
            try:
                self._pool = Pool(processes=jobs, initializer=pool_warmup)
            except Exception as error:
                raise ServeError(
                    f"worker pool failed to start: {error}") from error
        else:
            self._store = ResultStore(store_root, store_max_bytes)

    @property
    def inflight(self) -> int:
        """Requests currently accepted and not yet answered."""
        with self._state_lock:
            return self._inflight

    def submit(self, source: str, filename: str = "<request>",
               macros: Optional[dict[str, str]] = None,
               options=None, chaos: Optional[str] = None,
               probe: bool = False, block: bool = False) -> tuple[int, dict]:
        """Run one request; returns ``(http_status, response_body)``.

        **Single-flight:** concurrent submits with an identical
        ``(source, macros, options, probe)`` identity collapse onto one
        in-flight computation — the first caller (the *leader*) runs the
        pipeline, every later caller (a *follower*) waits on the
        leader's answer and receives a copy with a ``collapsed: true``
        marker, consuming no pool slot and no worker
        (``serve.singleflight.{leaders,followers}`` count both roles).
        Requests carrying a ``chaos`` hook bypass collapsing — fault
        injection must reach the worker it targets.

        Raises :class:`PoolSaturated` when every in-flight slot is taken
        — immediately with ``block=False`` (the ``/verify`` door: load
        sheds as 503), after waiting up to the request budget with
        ``block=True`` (the ``/batch`` fan-out: items queue politely
        instead of shedding their own batch).  Once a request holds a
        slot it always gets a terminal answer — timeouts and dead
        workers come back as 5xx error documents, never as a dropped
        request.
        """
        from repro.driver import CompilerOptions

        options = options or CompilerOptions()
        if chaos is not None:
            return self._dispatch(source, filename, macros, options,
                                  chaos, probe, block)
        key = (source_digest(source, macros), options_digest(options),
               bool(probe))
        with self._flights_lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = self._flights[key] = _Flight()
                leader = True
            else:
                leader = False
        if not leader:
            return self._follow(flight)
        obs.add("serve.singleflight.leaders")
        try:
            status, body = self._dispatch(source, filename, macros,
                                          options, chaos, probe, block)
            flight.status, flight.body = status, body
            return status, body
        except PoolSaturated:
            flight.saturated = True
            raise
        finally:
            with self._flights_lock:
                self._flights.pop(key, None)
            flight.done.set()

    def _follow(self, flight: _Flight) -> tuple[int, dict]:
        """Wait out a leader's computation and copy its answer."""
        obs.add("serve.singleflight.followers")
        if not flight.done.wait(self.timeout_s + 30.0):
            obs.add("serve.timeouts")
            return 504, error_response(ServeError(
                "collapsed request: the leading computation exceeded "
                f"the {self.timeout_s:.0f}s budget"))
        if flight.saturated:
            obs.add("serve.rejected")
            raise PoolSaturated(
                f"all {self.queue_depth} in-flight slots are taken")
        if flight.status is None:
            return 500, error_response(ServeError(
                "collapsed request: the leading computation failed"))
        body = dict(flight.body or {})
        body["collapsed"] = True
        return flight.status, body

    def _dispatch(self, source: str, filename: str,
                  macros: Optional[dict[str, str]], options,
                  chaos: Optional[str], probe: bool,
                  block: bool) -> tuple[int, dict]:
        """Slot accounting + worker dispatch for one uncollapsed request."""
        if not self._slots.acquire(blocking=block,
                                   timeout=self.timeout_s if block
                                   else None):
            obs.add("serve.rejected")
            raise PoolSaturated(
                f"all {self.queue_depth} in-flight slots are taken")
        with self._state_lock:
            self._inflight += 1
        try:
            payload = {"source": source, "filename": filename,
                       "macros": macros, "options": list(options.key()),
                       "chaos": chaos, "probe": probe,
                       "store_root": self.store_root,
                       "store_max_bytes": self.store_max_bytes}
            if self._pool is None:
                # In-process mode: the pipeline writes straight into the
                # live registry; serialize actual execution.
                with self._inline_lock:
                    store = self._store
                    assert store is not None
                    return _execute(payload, store)
            result = self._pool.apply_async(_serve_worker, (payload,))
            try:
                status, body, delta = result.get(self.timeout_s)
            except multiprocessing.TimeoutError:
                obs.add("serve.timeouts")
                return 504, error_response(ServeError(
                    f"request exceeded the {self.timeout_s:.0f}s budget "
                    "or its worker died mid-request"))
            except Exception as error:  # worker lost without a result
                obs.add("serve.worker_failures")
                return 500, error_response(ServeError(
                    f"worker failed: {type(error).__name__}: {error}"))
            if delta is not None:
                with self._merge_lock:
                    obs.merge(delta)
            return status, body
        finally:
            with self._state_lock:
                self._inflight -= 1
            self._slots.release()

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Wait for in-flight requests to finish; True if all did."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.inflight == 0:
                return True
            time.sleep(0.02)
        return self.inflight == 0

    def close(self) -> None:
        """Shut the worker processes down (in-flight answers first:
        call :meth:`drain` before closing for a graceful exit)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
