"""Differential suite: inferred recursive bounds vs the Table 2 specs.

The manual Table 2 specs predate the ranking-function inference and now
serve as its independent oracle: for every recursive benchmark the
automatically inferred parametric bound must agree *pointwise* with the
hand-written spec (instantiated at the program's fixed block constants).
On top of the symbolic agreement, Theorem 1 is probed on the machine at
every backend ablation — a stack block of exactly the verified bound
converges, and an underprovisioned block (4 bytes below the measured
requirement) overflows, so the bound is tight to the paper's 4 bytes
and the overflow detector is demonstrably live.
"""

import pytest

from repro.analyzer import StackAnalyzer
from repro.driver import compile_c
from repro.logic.bexpr import evaluate, param_names
from repro.measure.monitor import probe_bound_tightness
from repro.programs.catalog import RECURSIVE
from repro.programs.loader import load_source
from repro.programs.table2 import TABLE2_PROGRAMS, build_spec_table
from repro.testing.oracles import ABLATIONS

FUEL = 60_000_000

#: Measure values the pointwise comparison samples (base cases, small
#: depths, a power of two boundary, and the canonical Table 2 point).
SAMPLES = (0, 1, 2, 3, 5, 17, 63, 64, 100)

#: Manual-spec parameters that are fixed constants of the packaged
#: program rather than measures (filter_find's bsearch block length).
MANUAL_CONSTANTS = {"bl": 256}


@pytest.fixture(scope="module")
def compilations():
    return {path: compile_c(load_source(path), filename=path)
            for path in RECURSIVE}


@pytest.fixture(scope="module")
def analyses(compilations):
    return {path: StackAnalyzer(compilations[path].clight).analyze()
            for path in RECURSIVE}


@pytest.fixture(scope="module")
def manual_specs():
    """Table 2 specs grouped by the program exercising them."""
    table = build_spec_table()
    by_path: dict = {}
    for name, spec in table.recursive.items():
        path = TABLE2_PROGRAMS.get(name, TABLE2_PROGRAMS["fact_sq"])
        by_path.setdefault(path, []).append((name, spec))
    return by_path


@pytest.mark.parametrize("path", RECURSIVE)
def test_inferred_bound_matches_table2(path, compilations, analyses,
                                       manual_specs):
    """The inferred bound equals the manual spec at every sample point."""
    metric = compilations[path].metric.as_dict()
    analysis = analyses[path]
    compared = 0
    for name, spec in manual_specs.get(path, ()):
        if name not in analysis.functions:
            continue
        auto = analysis.bound_expr(name)
        auto_params = sorted(param_names(auto))
        assert auto_params, f"{path}: {name} inferred a ground bound"
        for value in SAMPLES:
            manual_at = {p: MANUAL_CONSTANTS.get(p, value)
                         for p in spec.params}
            auto_at = {p: value for p in auto_params}
            want = evaluate(spec.total_bound(), metric, manual_at)
            got = evaluate(auto, metric, auto_at)
            assert got == want, (
                f"{path}: {name} inferred {got} but Table 2 says {want} "
                f"at {manual_at} (auto {auto!r}, manual "
                f"{spec.total_bound()!r})")
        compared += 1
    assert compared, f"{path}: no Table 2 spec to compare against"


@pytest.mark.parametrize("ablation", sorted(ABLATIONS))
@pytest.mark.parametrize("path", RECURSIVE)
def test_tightness_at_every_ablation(path, ablation, analyses):
    """Theorem 1 on ASMsz for each backend configuration: the verified
    bound converges, 4 bytes under the measured requirement overflows."""
    compilation = compile_c(load_source(path), filename=path,
                            options=ABLATIONS[ablation])
    analysis = analyses[path]
    bound = analysis.bound_bytes("main", compilation.metric)
    probe = probe_bound_tightness(compilation, bound, fuel=FUEL)
    assert probe.sound, (
        f"{path}@{ablation}: bound {bound} unsound "
        f"(converged={probe.at_bound.converged}, "
        f"measured={probe.at_bound.measured_bytes})")
    assert probe.overflow_detected, (
        f"{path}@{ablation}: underprovisioned run did not overflow")
