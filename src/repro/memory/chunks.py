"""Memory chunks: the units in which values are read and written.

A chunk fixes the size, alignment and reinterpretation performed by a load
or store, exactly as CompCert's ``memory_chunk``.  Encoding/decoding between
values and raw bytes lives here so the block memory and the flat ASMsz
memory share one serialization.
"""

from __future__ import annotations

import enum
import struct

from repro import ints
from repro.memory.values import VFloat, VInt, Value


class Chunk(enum.Enum):
    """The access granularities of the target (IA32-like)."""

    INT8_SIGNED = "int8s"
    INT8_UNSIGNED = "int8u"
    INT16_SIGNED = "int16s"
    INT16_UNSIGNED = "int16u"
    INT32 = "int32"
    FLOAT64 = "float64"

    # ``size``, ``alignment`` and ``is_float`` are plain per-member
    # attributes (assigned right after the class body): every load and
    # store reads them, and a property + enum-keyed dict lookup showed up
    # prominently in interpreter profiles.
    size: int
    alignment: int
    is_float: bool

    def normalize(self, value: Value) -> Value:
        """Reinterpret ``value`` as it would round-trip through this chunk.

        Storing an int through an 8-bit chunk and reloading it truncates or
        sign-extends; the interpreters use this to model narrow assignments
        without going through memory.
        """
        if isinstance(value, VInt):
            v = value.value
            if self is Chunk.INT8_SIGNED:
                return VInt(ints.sign_extend8(v))
            if self is Chunk.INT8_UNSIGNED:
                return VInt(ints.wrap8(v))
            if self is Chunk.INT16_SIGNED:
                return VInt(ints.sign_extend16(v))
            if self is Chunk.INT16_UNSIGNED:
                return VInt(ints.wrap16(v))
            if self is Chunk.INT32:
                return value
        if isinstance(value, VFloat) and self is Chunk.FLOAT64:
            return value
        return value

    def encode_int(self, value: int) -> bytes:
        """Little-endian byte encoding of an integer value for this chunk."""
        if self is Chunk.FLOAT64:
            raise ValueError("encode_int on a float chunk")
        size = self.size
        mask = (1 << (8 * size)) - 1
        return int(value & mask).to_bytes(size, "little")

    def decode_int(self, raw: bytes) -> int:
        """Decode little-endian bytes into the unsigned 32-bit representation."""
        value = int.from_bytes(raw, "little")
        if self is Chunk.INT32:
            return ints.wrap(value)
        if self is Chunk.INT8_SIGNED:
            return ints.sign_extend8(value)
        if self is Chunk.INT8_UNSIGNED:
            return ints.wrap8(value)
        if self is Chunk.INT16_SIGNED:
            return ints.sign_extend16(value)
        if self is Chunk.INT16_UNSIGNED:
            return ints.wrap16(value)
        raise ValueError("decode_int on a float chunk")

    def encode_float(self, value: float) -> bytes:
        if self is not Chunk.FLOAT64:
            raise ValueError("encode_float on an int chunk")
        return struct.pack("<d", value)

    def decode_float(self, raw: bytes) -> float:
        if self is not Chunk.FLOAT64:
            raise ValueError("decode_float on an int chunk")
        return struct.unpack("<d", raw)[0]


_SIZES = {
    Chunk.INT8_SIGNED: 1,
    Chunk.INT8_UNSIGNED: 1,
    Chunk.INT16_SIGNED: 2,
    Chunk.INT16_UNSIGNED: 2,
    Chunk.INT32: 4,
    Chunk.FLOAT64: 8,
}

for _chunk in Chunk:
    _chunk.size = _SIZES[_chunk]
    # CompCert's IA32 backend only requires natural alignment up to 4.
    _chunk.alignment = min(_chunk.size, 4)
    _chunk.is_float = _chunk is Chunk.FLOAT64
del _chunk
