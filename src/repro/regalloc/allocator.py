"""Greedy graph-coloring allocation with call-crossing spills.

Pipeline per function:

1. liveness over the (optimized) RTL graph;
2. every register live across an ``Icall`` is forced into a stack slot
   (all physical registers are caller-saved, and the callee's behavior
   must not be able to disturb the caller's live values);
3. interference graph within each register class; greedy coloring in
   decreasing-degree order; registers that cannot be colored get slots.

``spill_everything=True`` bypasses coloring entirely — the ablation
benchmark uses it to show how register pressure inflates frames and hence
the verified bounds.
"""

from __future__ import annotations

from repro.regalloc.locations import (FLOAT_REGS, INT_REGS, LFReg, LReg,
                                      LSlot, Loc)
from repro.rtl import ast as rtl
from repro.rtl.liveness import live_before, liveness


class Allocation:
    """The result: a total map from virtual registers to locations."""

    def __init__(self, mapping: dict[int, Loc], int_slots: int,
                 float_slots: int) -> None:
        self.mapping = mapping
        self.int_slots = int_slots
        self.float_slots = float_slots

    def loc(self, reg: int) -> Loc:
        return self.mapping[reg]

    @property
    def spilled_count(self) -> int:
        return self.int_slots + self.float_slots

    def __repr__(self) -> str:
        return (f"Allocation({len(self.mapping)} vregs, "
                f"{self.int_slots} int slots, {self.float_slots} float slots)")


def allocate_function(function: rtl.RTLFunction,
                      spill_everything: bool = False) -> Allocation:
    all_regs = _collect_regs(function)
    if spill_everything:
        return _spill_all(function, all_regs)

    live_out = liveness(function, conservative=True)
    interference: dict[int, set[int]] = {reg: set() for reg in all_regs}
    must_spill: set[int] = set()

    for node, instr in function.graph.items():
        out = live_out.get(node, frozenset())
        defs = instr.defs()
        # defs interfere with everything live after the instruction
        # (except themselves, and except the source of a plain move).
        move_src = instr.args[0] if isinstance(instr, rtl.Iop) \
            and instr.op[0] == "move" else None
        for d in defs:
            for other in out:
                if other != d and other != move_src:
                    _edge(interference, d, other)
        if isinstance(instr, rtl.Icall):
            crossing = set(out) - set(defs)
            must_spill.update(crossing)

    # Parameters are defined by the prologue's loads, not by any graph
    # instruction, so they must be made to interfere explicitly: with
    # each other (the loads happen in sequence) and with everything live
    # at the function entry.
    entry_live_in = live_before(function.graph[function.entry],
                                live_out.get(function.entry, frozenset()),
                                conservative=True)
    for param in function.params:
        for other in function.params:
            if other != param:
                _edge(interference, param, other)
        for other in entry_live_in:
            if other != param:
                _edge(interference, param, other)

    mapping: dict[int, Loc] = {}
    int_slots = 0
    float_slots = 0

    def new_slot(is_float: bool) -> LSlot:
        nonlocal int_slots, float_slots
        if is_float:
            slot = LSlot(float_slots, True)
            float_slots += 1
        else:
            slot = LSlot(int_slots, False)
            int_slots += 1
        return slot

    for reg in must_spill:
        mapping[reg] = new_slot(reg in function.float_regs)

    # Greedy coloring, most-constrained first.
    remaining = [r for r in all_regs if r not in mapping]
    remaining.sort(key=lambda r: (-len(interference.get(r, ())), r))
    for reg in remaining:
        is_float = reg in function.float_regs
        palette = FLOAT_REGS if is_float else INT_REGS
        taken: set[str] = set()
        for neighbor in interference.get(reg, ()):
            loc = mapping.get(neighbor)
            if isinstance(loc, (LReg, LFReg)) and \
                    loc.is_float_class == is_float:
                taken.add(loc.name)
        chosen = next((name for name in palette if name not in taken), None)
        if chosen is None:
            mapping[reg] = new_slot(is_float)
        else:
            mapping[reg] = LFReg(chosen) if is_float else LReg(chosen)

    return Allocation(mapping, int_slots, float_slots)


def _spill_all(function: rtl.RTLFunction, all_regs: set[int]) -> Allocation:
    mapping: dict[int, Loc] = {}
    int_slots = 0
    float_slots = 0
    for reg in sorted(all_regs):
        if reg in function.float_regs:
            mapping[reg] = LSlot(float_slots, True)
            float_slots += 1
        else:
            mapping[reg] = LSlot(int_slots, False)
            int_slots += 1
    return Allocation(mapping, int_slots, float_slots)


def _collect_regs(function: rtl.RTLFunction) -> set[int]:
    regs: set[int] = set(function.params)
    for _node, instr in function.graph.items():
        regs.update(instr.uses())
        regs.update(instr.defs())
    return regs


def _edge(graph: dict[int, set[int]], a: int, b: int) -> None:
    graph.setdefault(a, set()).add(b)
    graph.setdefault(b, set()).add(a)
