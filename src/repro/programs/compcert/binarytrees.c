/* CompCert test suite: binarytrees (adapted from the shootout benchmark).
 * Builds complete binary trees with malloc'd nodes and checksums them —
 * both recursions are depth-bounded, so this is a Table 2-style target
 * with a manual stack spec *and* the heap-accounting demonstration:
 * every node allocation is visible as a malloc event in the trace. */

#ifndef DEPTH
#define DEPTH 7
#endif
#define NULL 0

struct node {
    struct node *left;
    struct node *right;
    int item;
};

/* Build a complete tree of the given depth. */
struct node *bottom_up_tree(int item, int depth) {
    struct node *n = (struct node *) malloc(sizeof(struct node));
    if (n == NULL) {
        abort();
    }
    if (depth > 0) {
        n->left = bottom_up_tree(2 * item - 1, depth - 1);
        n->right = bottom_up_tree(2 * item, depth - 1);
    } else {
        n->left = NULL;
        n->right = NULL;
    }
    n->item = item;
    return n;
}

/* Checksum the tree (the shootout's item_check). */
int item_check(struct node *n) {
    if (n->left == NULL) {
        return n->item;
    }
    return n->item + item_check(n->left) - item_check(n->right);
}

int main() {
    struct node *tree;
    int check;

    tree = bottom_up_tree(1, DEPTH);
    check = item_check(tree);
    print_int(check);
    /* The item - left - right sum telescopes: check(i, d) = i - 1 for
     * every depth d >= 1 (and = i at depth 0). */
    if (DEPTH == 0) {
        return check == 1;
    }
    return check == 0;
}
