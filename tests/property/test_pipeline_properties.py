"""The flagship property test: randomized end-to-end verification.

For seeded random safe programs (repro.testing.progen), every statement
of the paper's metatheory is checked on real executions:

* the Clight run converges (programs are safe by construction);
* each compilation level is a quantitative refinement of the previous
  one under the compiler's metric (and the memory-event traces agree
  exactly down to Mach);
* the automatic analyzer's derivations re-check exactly, and its bound
  dominates the observed Mach trace weight (Theorem 2);
* the ASMsz measurement stays at least 4 bytes below the verified bound
  and the program runs without overflow on a bound-sized stack
  (Theorem 1).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analyzer import StackAnalyzer
from repro.clight.semantics import run_program as run_clight
from repro.driver import CompilerOptions, compile_c
from repro.events.refinement import check_quantitative_refinement
from repro.events.trace import Converges, is_well_bracketed, weight_of_trace
from repro.mach.semantics import run_program as run_mach
from repro.rtl.semantics import run_program as run_rtl
from repro.testing import generate_program

SETTINGS = settings(max_examples=15, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


@SETTINGS
@given(st.integers(0, 10_000))
def test_pipeline_differential(seed):
    source = generate_program(seed)
    compilation = compile_c(source, filename=f"gen{seed}.c")
    b_clight = run_clight(compilation.clight, fuel=3_000_000)
    assert isinstance(b_clight, Converges), \
        f"seed {seed}: {b_clight!r}"
    assert is_well_bracketed(b_clight.trace)
    b_rtl = run_rtl(compilation.rtl, fuel=6_000_000)
    b_mach = run_mach(compilation.mach, fuel=30_000_000)
    b_asm, machine = compilation.run(fuel=100_000_000)
    check_quantitative_refinement(b_rtl, b_clight, compilation.metric)
    check_quantitative_refinement(b_mach, b_rtl, compilation.metric)
    check_quantitative_refinement(b_asm, b_mach)
    assert b_clight.trace == b_mach.trace

    analysis = StackAnalyzer(compilation.clight).analyze()
    assert analysis.check().fully_exact
    bound = analysis.bound_bytes("main", compilation.metric)
    assert weight_of_trace(compilation.metric, b_mach.trace) <= bound
    assert machine.measured_stack_usage <= bound - 4


@SETTINGS
@given(st.integers(0, 10_000))
def test_theorem1_randomized(seed):
    """Running on a stack of exactly the verified bound never overflows."""
    source = generate_program(seed, max_functions=3, max_depth=2)
    compilation = compile_c(source)
    analysis = StackAnalyzer(compilation.clight).analyze()
    sz = analysis.bound_bytes("main", compilation.metric)
    behavior, machine = compilation.run(stack_bytes=sz + 4, fuel=100_000_000)
    assert isinstance(behavior, Converges), behavior
    assert machine.measured_stack_usage <= sz


@SETTINGS
@given(st.integers(0, 10_000))
def test_optimizations_preserve_bounds_soundness(seed):
    """With every optimization toggled off the bound is still sound (it
    may differ — frames change — but each configuration's own metric must
    dominate its own execution)."""
    source = generate_program(seed, max_functions=2, max_depth=2)
    for options in (CompilerOptions(constprop=False, deadcode=False),
                    CompilerOptions(spill_everything=True)):
        compilation = compile_c(source, options=options)
        analysis = StackAnalyzer(compilation.clight).analyze()
        bound = analysis.bound_bytes("main", compilation.metric)
        behavior, machine = compilation.run(fuel=100_000_000)
        assert isinstance(behavior, Converges)
        assert machine.measured_stack_usage <= bound - 4


@SETTINGS
@given(st.integers(0, 10_000))
def test_recursive_programs_differential(seed):
    """Recursion-enabled fuzzing: depth-bounded self-recursive functions
    (some tail-recursive) through both the default pipeline and the
    tail-call + CSE configuration.  The ranking-function inference must
    bound every one of them with a checker-validated parametric spec,
    and the (ground) main bound must dominate the observed watermark."""
    source = generate_program(seed, recursion=True)
    for options in (CompilerOptions(),
                    CompilerOptions(tailcall=True, cse=True)):
        compilation = compile_c(source, options=options)
        b_clight = run_clight(compilation.clight, fuel=5_000_000)
        assert isinstance(b_clight, Converges), b_clight
        b_asm, machine = compilation.run(fuel=150_000_000)
        check_quantitative_refinement(b_asm, b_clight)
        if "rec" in source:
            analysis = StackAnalyzer(compilation.clight).analyze()
            assert analysis.recursive, "expected inferred recursive specs"
            analysis.check()
            bound = analysis.bound_bytes("main", compilation.metric)
            assert machine.measured_stack_usage <= bound - 4


@SETTINGS
@given(st.integers(0, 10_000), st.integers(0, 10_000))
def test_determinism(seed, _unused):
    """Compilation and execution are deterministic functions of source."""
    source = generate_program(seed, max_functions=2, max_depth=2)
    first = compile_c(source)
    second = compile_c(source)
    assert first.frame_sizes == second.frame_sizes
    b1, _m1 = first.run(fuel=100_000_000)
    b2, _m2 = second.run(fuel=100_000_000)
    assert b1 == b2
