"""Integration: binarytrees — stack and heap, verified together.

A Table 2-style manual spec for both recursions plus the heap
accounting, on one program: the stack side goes through the recurrence
checker and runtime validation like the Table 2 functions; the heap side
checks the trace-weight-equals-arena statement across depths.
"""

import pytest

from repro.clight.semantics import run_program as run_clight
from repro.driver import compile_c
from repro.events.heap import heap_usage
from repro.events.trace import weight_of_trace
from repro.logic.bexpr import BMul, badd, bconst, bmetric, bparam, evaluate
from repro.logic.recursion import (CallObligation, RecursiveSpec, SpecTable,
                                   check_spec)
from repro.programs.loader import load_source


def tree_spec(name):
    """Both recursions descend one depth level per call, twice (max)."""
    bound = BMul(bparam("d"), bmetric(name))
    def obligations(params):
        if params["d"] <= 0:
            return []
        return [CallObligation(name, {"d": params["d"] - 1})]
    return RecursiveSpec(name, ["d"], bound, obligations,
                         domain={"d": range(0, 40)})


@pytest.fixture(scope="module")
def compilation():
    return compile_c(load_source("compcert/binarytrees.c"),
                     filename="binarytrees.c", macros={"DEPTH": "8"})


class TestStackSpecs:
    def test_build_spec_inductive(self):
        spec = tree_spec("bottom_up_tree")
        table = SpecTable()
        table.add_recursive(spec)
        report = check_spec(spec, table)
        assert report.obligation_checks == 39

    def test_check_spec_inductive(self):
        spec = tree_spec("item_check")
        table = SpecTable()
        table.add_recursive(spec)
        check_spec(spec, table)

    def test_runtime_weight_below_combined_bound(self, compilation):
        metric = compilation.metric
        behavior = run_clight(compilation.clight, fuel=100_000_000)
        observed = weight_of_trace(metric, behavior.trace)
        build = tree_spec("bottom_up_tree")
        check = tree_spec("item_check")
        combined = badd(
            bmetric("main"),
            # main calls each recursion once, sequentially: the bound is
            # the max of the two chains, here written as a sum (sound).
            badd(bmetric("bottom_up_tree"), build.bound),
            badd(bmetric("item_check"), check.bound))
        allowed = evaluate(combined, metric.as_dict(), {"d": 8})
        assert observed <= allowed

    def test_stack_linear_in_depth(self):
        source = load_source("compcert/binarytrees.c")
        usages = []
        for depth in (4, 8, 12):
            comp = compile_c(source, macros={"DEPTH": str(depth)})
            _behavior, machine = comp.run(fuel=200_000_000)
            usages.append(machine.measured_stack_usage)
        step1 = usages[1] - usages[0]
        step2 = usages[2] - usages[1]
        assert step1 == step2  # exactly linear: one frame per level


class TestHeapAccounting:
    @pytest.mark.parametrize("depth", [0, 1, 5, 9])
    def test_trace_weight_equals_arena(self, depth):
        source = load_source("compcert/binarytrees.c")
        comp = compile_c(source, macros={"DEPTH": str(depth)})
        behavior = run_clight(comp.clight, fuel=100_000_000)
        _asm_behavior, machine = comp.run(fuel=200_000_000)
        assert heap_usage(behavior.trace) == machine.measured_heap_usage
        # one 12-byte node (aligned to 16) per tree node
        assert machine.measured_heap_usage == 16 * (2 ** (depth + 1) - 1)

    def test_self_check_passes(self, compilation):
        behavior, _machine = compilation.run(fuel=200_000_000)
        assert behavior.return_code == 1
