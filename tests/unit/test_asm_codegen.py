"""Differential suite: the codegen tier vs. the decoded/legacy oracles.

The generated-Python engine (`repro.asm.codegen`) must be observationally
identical to the decoded closure interpreter (which `test_asm_decode.py`
already holds to the legacy loop): same traces, same outputs, same ESP
watermark, same step counts, and the same `GoesWrong` reason at the same
point when the stack is undersized.  Superinstruction fusion and
constant folding make this the tier with the most room for silent
divergence, so the sweep covers the full catalog, undersized stacks,
generated seeds at every ablation, and the fuel edge the trampoline's
unrolled accounting has to get exactly right.
"""

from __future__ import annotations

import pytest

from repro import engines
from repro.asm import codegen
from repro.asm.machine import AsmMachine, run_program
from repro.driver import compile_c
from repro.programs.catalog import ALL_RUNNABLE
from repro.programs.loader import load_source
from repro.testing.oracles import ABLATIONS
from repro.testing.progen import generate_program

# Generous enough for every catalog program at the default stack.
FUEL = 150_000_000


def _behavior_fingerprint(behavior, machine, output):
    return (
        type(behavior).__name__,
        tuple(behavior.trace),
        getattr(behavior, "return_code", None),
        getattr(behavior, "reason", None),
        tuple(output),
        machine.measured_stack_usage,
        machine.steps,
    )


def _run_engine(asm, engine, stack_bytes=1 << 20, fuel=FUEL):
    output: list = []
    behavior, machine = run_program(asm, stack_bytes=stack_bytes,
                                    output=output, fuel=fuel, engine=engine)
    return _behavior_fingerprint(behavior, machine, output)


@pytest.mark.parametrize("path", ALL_RUNNABLE)
def test_catalog_program_agrees(path):
    compilation = compile_c(load_source(path), filename=path)
    decoded = _run_engine(compilation.asm, "decoded")
    generated = _run_engine(compilation.asm, "codegen")
    assert decoded == generated
    assert decoded[0] == "Converges"


@pytest.mark.parametrize("path", ["paper_example.c", "mibench/dijkstra.c",
                                  "recursive/fib.c", "certikos/proc.c"])
def test_all_three_tiers_agree(path):
    """The full triple, including legacy, on a catalog cross-section."""
    compilation = compile_c(load_source(path), filename=path)
    legacy = _run_engine(compilation.asm, "legacy")
    decoded = _run_engine(compilation.asm, "decoded")
    generated = _run_engine(compilation.asm, "codegen")
    assert legacy == decoded == generated


@pytest.mark.parametrize("path", ["paper_example.c", "mibench/dijkstra.c",
                                  "recursive/fib.c", "certikos/proc.c"])
def test_stack_overflow_behavior_agrees(path):
    """Overflow at the same point with the same reason — fused push+call
    and espadd+call superinstructions must not shift the failure."""
    compilation = compile_c(load_source(path), filename=path)
    _behavior, machine = run_program(compilation.asm, fuel=FUEL,
                                     engine="codegen")
    needed = machine.measured_stack_usage
    for stack_bytes in {needed - 4, needed // 2, 8}:
        if stack_bytes < 4:
            continue
        decoded = _run_engine(compilation.asm, "decoded",
                              stack_bytes=stack_bytes)
        generated = _run_engine(compilation.asm, "codegen",
                                stack_bytes=stack_bytes)
        assert decoded == generated
        assert decoded[0] == "GoesWrong"
        if stack_bytes == needed - 4:
            assert "stack overflow" in decoded[3]


@pytest.mark.parametrize("seed", range(0, 40, 5))
def test_generated_seed_agrees(seed):
    source = generate_program(seed)
    for name, options in ABLATIONS.items():
        compilation = compile_c(source, filename=f"seed{seed}.c",
                                options=options)
        decoded = _run_engine(compilation.asm, "decoded")
        generated = _run_engine(compilation.asm, "codegen")
        assert decoded == generated, f"disagreement under ablation {name!r}"


@pytest.mark.parametrize("fuel", [0, 1, 7, 16, 17, 10_000])
def test_fuel_edges_agree(fuel):
    """The unrolled trampoline charges exactly one step per op — every
    batch boundary and the deopt tail must match the decoded count."""
    compilation = compile_c(load_source("compcert/mandelbrot.c"),
                            filename="compcert/mandelbrot.c")
    decoded = _run_engine(compilation.asm, "decoded", fuel=fuel)
    generated = _run_engine(compilation.asm, "codegen", fuel=fuel)
    assert decoded == generated
    if fuel:
        assert decoded[0] == "Diverges"
        assert decoded[6] == fuel


def test_compiled_program_is_cached():
    """compile() runs once per program; reruns reuse the code object."""
    compilation = compile_c(load_source("paper_example.c"),
                            filename="paper_example.c")
    first = codegen.codegen_program(compilation.asm)
    again = codegen.codegen_program(compilation.asm)
    assert first is again
    # A fresh (equal) program object is a different cache key.
    other = compile_c(load_source("paper_example.c"),
                      filename="paper_example.c")
    assert codegen.codegen_program(other.asm) is not first


def test_codegen_source_is_python():
    """The dumped source (the CI repro artifact) must be compilable."""
    compilation = compile_c(load_source("paper_example.c"),
                            filename="paper_example.c")
    source = codegen.codegen_source(compilation.asm)
    compile(source, "<check>", "exec")
    assert "def B" in source


def test_engine_resolution():
    """engine= wins over decoded=; defaults follow the two module knobs."""
    assert engines.resolve(True, "codegen", None, None) == "codegen"
    assert engines.resolve(True, "codegen", None, "legacy") == "legacy"
    assert engines.resolve(True, "codegen", False, None) == "legacy"
    assert engines.resolve(True, "codegen", True, None) == "decoded"
    assert engines.resolve(True, "codegen", False, "codegen") == "codegen"
    # DEFAULT_DECODED = False is the established kill switch: it forces
    # the legacy loop unless a call site explicitly opts back in.
    assert engines.resolve(False, "codegen", None, None) == "legacy"
    with pytest.raises(ValueError):
        engines.resolve(True, "codegen", None, "jit")


def test_engine_attribute_on_machine():
    compilation = compile_c(load_source("paper_example.c"),
                            filename="paper_example.c")
    assert AsmMachine(compilation.asm).engine == "codegen"
    assert AsmMachine(compilation.asm, decoded=False).engine == "legacy"
    assert AsmMachine(compilation.asm, engine="decoded").engine == "decoded"


def test_install_source_skips_generation():
    """The persistent-artifact path: stored source, same observables.

    Generation is deterministic — two independent compilations of the
    same C source generate identical Python — so installing one
    compilation's source onto the other's program is exactly what a
    restarted daemon does when it replays the store, and every
    observable must match a from-scratch generation.
    """
    source_c = load_source("paper_example.c")
    first = compile_c(source_c, filename="paper_example.c")
    second = compile_c(source_c, filename="paper_example.c")
    assert first.asm is not second.asm
    generated = codegen.codegen_source(first.asm)
    assert codegen.cached_program(second.asm) is None
    installed = codegen.install_source(second.asm, generated)
    assert codegen.cached_program(second.asm) is installed
    # codegen_program now reuses the installed object: no regeneration.
    assert codegen.codegen_program(second.asm) is installed
    assert installed.source == codegen.codegen_source(second.asm)
    fresh = run_program(first.asm, fuel=100_000, engine="codegen")
    replayed = run_program(second.asm, fuel=100_000, engine="codegen")
    assert type(fresh[0]) is type(replayed[0])
    assert fresh[0].return_code == replayed[0].return_code
    assert fresh[1].steps == replayed[1].steps
    assert fresh[1].measured_stack_usage == replayed[1].measured_stack_usage


def test_install_source_rejects_unloadable_text():
    """Poisoned artifacts never reach the cache.

    Loadability is the *last* line of defense — the serving layer's
    payload hash catches subtler corruption (a truncated source can
    still be syntactically valid Python) before it gets here.
    """
    fresh = compile_c(load_source("paper_example.c"),
                      filename="paper_example.c")
    with pytest.raises(ValueError):
        codegen.install_source(fresh.asm, "def B0(:\n")  # syntax error
    with pytest.raises(ValueError):
        codegen.install_source(fresh.asm, "x = 1\n")     # no bind()
    with pytest.raises(ValueError):
        codegen.install_source(fresh.asm, "bind = 7\n")  # not callable
    assert codegen.cached_program(fresh.asm) is None
