"""Unit tests for the block memory model."""

import pytest

from repro.errors import MemoryError_
from repro.memory import Chunk, Memory, VFloat, VInt, VPtr, VUndef


@pytest.fixture
def memory():
    return Memory()


class TestAllocation:
    def test_alloc_returns_distinct_blocks(self, memory):
        a = memory.alloc(16)
        b = memory.alloc(16)
        assert a.block != b.block

    def test_alloc_offset_zero(self, memory):
        assert memory.alloc(8).offset == 0

    def test_negative_size_rejected(self, memory):
        with pytest.raises(MemoryError_):
            memory.alloc(-1)

    def test_free_then_access_goes_wrong(self, memory):
        ptr = memory.alloc(8)
        memory.store(Chunk.INT32, ptr, VInt(1))
        memory.free(ptr)
        with pytest.raises(MemoryError_):
            memory.load(Chunk.INT32, ptr)
        with pytest.raises(MemoryError_):
            memory.store(Chunk.INT32, ptr, VInt(2))

    def test_free_interior_pointer_rejected(self, memory):
        ptr = memory.alloc(8)
        with pytest.raises(MemoryError_):
            memory.free(ptr.add(4))

    def test_double_free_goes_wrong(self, memory):
        ptr = memory.alloc(8)
        memory.free(ptr)
        with pytest.raises(MemoryError_):
            memory.free(ptr)

    def test_peak_live_bytes_tracks_watermark(self, memory):
        a = memory.alloc(100)
        memory.free(a)
        memory.alloc(50)
        assert memory.peak_live_bytes == 100
        assert memory.live_bytes == 50


class TestScalarAccess:
    def test_int32_roundtrip(self, memory):
        ptr = memory.alloc(4)
        memory.store(Chunk.INT32, ptr, VInt(-123456))
        assert memory.load(Chunk.INT32, ptr) == VInt(-123456)

    def test_float64_roundtrip(self, memory):
        ptr = memory.alloc(8)
        memory.store(Chunk.FLOAT64, ptr, VFloat(3.25))
        assert memory.load(Chunk.FLOAT64, ptr) == VFloat(3.25)

    def test_int8_signed_truncates_and_extends(self, memory):
        ptr = memory.alloc(1)
        memory.store(Chunk.INT8_SIGNED, ptr, VInt(0x1FF))
        assert memory.load(Chunk.INT8_SIGNED, ptr) == VInt(-1)
        assert memory.load(Chunk.INT8_UNSIGNED, ptr) == VInt(0xFF)

    def test_int16_roundtrip(self, memory):
        ptr = memory.alloc(2)
        memory.store(Chunk.INT16_UNSIGNED, ptr, VInt(0x12345))
        assert memory.load(Chunk.INT16_UNSIGNED, ptr) == VInt(0x2345)
        assert memory.load(Chunk.INT16_SIGNED, ptr) == VInt(0x2345)

    def test_uninitialized_reads_undef(self, memory):
        ptr = memory.alloc(4)
        assert memory.load(Chunk.INT32, ptr) == VUndef()

    def test_out_of_bounds_rejected(self, memory):
        ptr = memory.alloc(4)
        with pytest.raises(MemoryError_):
            memory.load(Chunk.INT32, ptr.add(1))  # also misaligned
        with pytest.raises(MemoryError_):
            memory.load(Chunk.INT32, ptr.add(4))

    def test_misaligned_access_rejected(self, memory):
        ptr = memory.alloc(16)
        with pytest.raises(MemoryError_):
            memory.load(Chunk.INT32, ptr.add(2))
        with pytest.raises(MemoryError_):
            memory.store(Chunk.FLOAT64, ptr.add(2), VFloat(1.0))

    def test_float64_alignment_is_4(self, memory):
        # CompCert's IA32 ABI: float64 chunks align to 4, not 8.
        ptr = memory.alloc(16)
        memory.store(Chunk.FLOAT64, ptr.add(4), VFloat(1.5))
        assert memory.load(Chunk.FLOAT64, ptr.add(4)) == VFloat(1.5)

    def test_wrong_class_store_rejected(self, memory):
        ptr = memory.alloc(8)
        with pytest.raises(MemoryError_):
            memory.store(Chunk.FLOAT64, ptr, VInt(1))
        with pytest.raises(MemoryError_):
            memory.store(Chunk.INT32, ptr, VFloat(1.0))


class TestPointerValues:
    def test_pointer_roundtrip_through_memory(self, memory):
        target = memory.alloc(4)
        cell = memory.alloc(4)
        memory.store(Chunk.INT32, cell, target.add(0))
        assert memory.load(Chunk.INT32, cell) == VPtr(target.block, 0)

    def test_partial_pointer_overwrite_reads_undef(self, memory):
        target = memory.alloc(4)
        cell = memory.alloc(4)
        memory.store(Chunk.INT32, cell, target)
        memory.store(Chunk.INT8_UNSIGNED, cell, VInt(7))
        assert memory.load(Chunk.INT32, cell) == VUndef()

    def test_pointer_through_narrow_chunk_rejected(self, memory):
        cell = memory.alloc(4)
        with pytest.raises(MemoryError_):
            memory.store(Chunk.INT16_UNSIGNED, cell, VPtr(1, 0))

    def test_overlapping_int_store_clobbers(self, memory):
        ptr = memory.alloc(8)
        memory.store(Chunk.INT32, ptr, VInt(0x11223344))
        memory.store(Chunk.INT8_UNSIGNED, ptr.add(1), VInt(0xAA))
        assert memory.load(Chunk.INT32, ptr) == VInt(0x1122AA44)


class TestRawBytes:
    def test_store_load_bytes(self, memory):
        ptr = memory.alloc(4)
        memory.store_bytes(ptr, b"\x01\x02\x03\x04")
        assert memory.load_bytes(ptr, 4) == b"\x01\x02\x03\x04"
        assert memory.load(Chunk.INT32, ptr) == VInt(0x04030201)

    def test_load_bytes_of_undef_rejected(self, memory):
        ptr = memory.alloc(4)
        with pytest.raises(MemoryError_):
            memory.load_bytes(ptr, 4)

    def test_store_bytes_out_of_range(self, memory):
        ptr = memory.alloc(2)
        with pytest.raises(MemoryError_):
            memory.store_bytes(ptr, b"\x00\x01\x02")
