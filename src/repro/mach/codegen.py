"""Per-program specialized driver for the Mach codegen tier.

Same scheme as :mod:`repro.rtl.codegen` (see there for the rationale):
constant-folded entry (frame size and tag inlined; Mach's entry has no
arity guard — parameters arrive in registers), unrolled dispatch,
traceback-based step recovery.  Mach programs are rebuilt per lowering,
so drivers are memoized by their folded-constant tuple, not per program
object.
"""

from __future__ import annotations

import time
from typing import Optional

from repro import engines, obs
from repro.errors import DynamicError
from repro.events.stream import Consumer, StreamOutcome
from repro.mach import ast as mach
from repro.mach import decode

_FILENAME = "<codegen:mach>"

_NAMESPACE: dict = {}


class _Spec:
    __slots__ = ("run", "slots", "source")

    def __init__(self, run, slots, source) -> None:
        self.run = run
        self.slots = slots
        self.source = source


_spec_cache: dict[tuple, _Spec] = {}
_SPEC_CACHE_CAP = 1024


def _entry_lines(rec) -> list[str]:
    """Constant-folded equivalent of the decoded entry sequence."""
    lines = []
    if rec.frame_size > 0:
        lines.append(f"m.frame = m.memory.alloc({rec.frame_size}, "
                     f"tag={rec.frame_tag!r})")
    lines.append("m.frec = rec")
    lines.append("m.sink(rec.call_event)")
    lines.append("code = rec.entry")
    return lines


def specialize(rec) -> _Spec:
    """Generate (or fetch) the specialized driver for this entry shape."""
    key = (rec.frame_size, rec.frame_tag)
    spec = _spec_cache.get(key)
    if spec is not None:
        if obs.enabled:
            obs.add("codegen.mach.cache.hits")
        return spec
    if obs.enabled:
        obs.add("codegen.mach.cache.misses")
    t0 = time.perf_counter()
    run, slots, source = engines.build_driver(
        _FILENAME, _entry_lines(rec), _NAMESPACE)
    spec = _Spec(run, slots, source)
    if obs.enabled:
        obs.observe("codegen.compile_seconds", time.perf_counter() - t0)
    if len(_spec_cache) >= _SPEC_CACHE_CAP:
        _spec_cache.clear()
    _spec_cache[key] = spec
    return spec


def codegen_source(program: mach.MachProgram) -> str:
    """The generated driver source (CI artifact on differential failure)."""
    rec = decode.decode_program(program).functions[program.main]
    return specialize(rec).source


def run_streamed(program: mach.MachProgram, sink: Consumer,
                 fuel: int, output: Optional[list] = None) -> StreamOutcome:
    """Run the codegen driver, pushing events to ``sink``.

    The classification tail mirrors
    :func:`repro.mach.decode.run_streamed` — no arity check, no
    ``FuelExhaustedError`` special case, fuel edge reports divergence,
    step counts exclude the raising op.
    """
    main = program.functions.get(program.main)
    if main is None:
        return StreamOutcome(StreamOutcome.GOES_WRONG,
                             reason="no main function")
    dprog = decode.decode_program(program)
    counting = decode._Counting(sink)
    m = decode.DecodedMachMachine(program, dprog, counting, output=output)
    rec = dprog.functions[program.main]
    spec = specialize(rec)
    try:
        try:
            spec.run(m, rec, fuel)
            return StreamOutcome(StreamOutcome.DIVERGES,
                                 events=counting.count, steps=fuel)
        except TypeError as exc:
            i, code = engines.recover_steps(exc, _FILENAME, spec.slots)
            if i is None or code is not None:
                raise  # a genuine TypeError inside an op
    except DynamicError as exc:
        i, _ = engines.recover_steps(exc, _FILENAME, spec.slots)
        return StreamOutcome(StreamOutcome.GOES_WRONG, reason=str(exc),
                             events=counting.count, steps=i or 0)
    if not m.done:
        return StreamOutcome(StreamOutcome.DIVERGES,
                             events=counting.count, steps=i)
    return StreamOutcome(StreamOutcome.CONVERGES, return_code=m.return_code,
                         events=counting.count, steps=i)
