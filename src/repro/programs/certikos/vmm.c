/* CertiKOS virtual-memory management module (simplified analog of the
 * development version's vmm.c analyzed in Table 1).  A physical page
 * allocator over a page-info table and a two-level page table with
 * insert / read / reserve operations.  Functions match Table 1: palloc,
 * pfree, mem_init, pmap_init, pt_free, pt_init, pt_init_kern, pt_insert,
 * pt_read, pt_resv, plus main. */

#define NPAGES 512
#define NPMAP 4
#define NPDE 32
#define NPTE 32
#define PAGESIZE 4096
#define PTE_P 1
#define PTE_W 2
#define PG_RESERVED 0
#define PG_NORMAL 1

typedef unsigned int u32;

/* Page-info table: state and allocation flag per physical page. */
int page_state[NPAGES];
int page_used[NPAGES];
int nps = 0;            /* number of physical pages */
int palloc_hint = 0;

/* Page-table storage: NPMAP address spaces, NPDE directory entries each,
 * every directory entry naming a table of NPTE entries. */
u32 pdir[NPMAP][NPDE];
u32 ptbl[NPMAP][NPDE][NPTE];

/* Physical page allocator: first-fit scan from the rotating hint. */
int palloc() {
    int i, idx;
    for (i = 0; i < nps; i++) {
        idx = (palloc_hint + i) % nps;
        if (page_state[idx] == PG_NORMAL && page_used[idx] == 0) {
            page_used[idx] = 1;
            palloc_hint = (idx + 1) % nps;
            return idx;
        }
    }
    return -1;
}

void pfree(int idx) {
    if (idx >= 0 && idx < nps) {
        page_used[idx] = 0;
    }
}

/* Initialize the page-info table; the first pages are reserved for the
 * kernel image, everything else is normal memory. */
void mem_init(int mbi_addr) {
    int i;
    nps = NPAGES;
    for (i = 0; i < nps; i++) {
        if (i < 8) {
            page_state[i] = PG_RESERVED;
        } else {
            page_state[i] = PG_NORMAL;
        }
        page_used[i] = 0;
    }
    palloc_hint = mbi_addr % nps;
}

/* Clear one address space's directory and tables. */
void pt_init(int pmap) {
    int i, j;
    for (i = 0; i < NPDE; i++) {
        pdir[pmap][i] = 0;
        for (j = 0; j < NPTE; j++) {
            ptbl[pmap][i][j] = 0;
        }
    }
}

/* Release every frame mapped by an address space. */
void pt_free(int pmap) {
    int i, j;
    u32 pte;
    for (i = 0; i < NPDE; i++) {
        if (pdir[pmap][i] & PTE_P) {
            for (j = 0; j < NPTE; j++) {
                pte = ptbl[pmap][i][j];
                if (pte & PTE_P) {
                    pfree((int)(pte / PAGESIZE));
                    ptbl[pmap][i][j] = 0;
                }
            }
            pdir[pmap][i] = 0;
        }
    }
}

/* Map virtual address va to physical address pa with permissions perm. */
int pt_insert(int pmap, u32 va, u32 pa, int perm) {
    u32 pde = va / (PAGESIZE * NPTE);
    u32 pte = (va / PAGESIZE) % NPTE;
    if (pde >= NPDE) return -1;
    if ((pdir[pmap][pde] & PTE_P) == 0) {
        pdir[pmap][pde] = PTE_P | PTE_W;
    }
    ptbl[pmap][pde][pte] = (pa / PAGESIZE) * PAGESIZE | (u32)perm;
    return 0;
}

/* Translate virtual address va; 0 when unmapped. */
u32 pt_read(int pmap, u32 va) {
    u32 pde = va / (PAGESIZE * NPTE);
    u32 pte = (va / PAGESIZE) % NPTE;
    u32 entry;
    if (pde >= NPDE) return 0;
    if ((pdir[pmap][pde] & PTE_P) == 0) return 0;
    entry = ptbl[pmap][pde][pte];
    if ((entry & PTE_P) == 0) return 0;
    return (entry / PAGESIZE) * PAGESIZE + va % PAGESIZE;
}

/* Reserve: allocate a fresh frame and map it at va. */
int pt_resv(int pmap, u32 va, int perm) {
    int page = palloc();
    if (page < 0) return -1;
    return pt_insert(pmap, va, (u32)page * PAGESIZE, perm);
}

/* Identity-map the kernel's low memory in address space 0. */
void pt_init_kern(int mbi_addr) {
    u32 va;
    pt_init(0);
    for (va = 0; va < 8 * PAGESIZE; va = va + PAGESIZE) {
        pt_insert(0, va, va, PTE_P | PTE_W);
    }
}

/* Bring up the whole memory subsystem. */
void pmap_init(int mbi_addr) {
    int i;
    mem_init(mbi_addr);
    for (i = 0; i < NPMAP; i++) {
        pt_init(i);
    }
    pt_init_kern(mbi_addr);
}

int main() {
    u32 va, pa;
    int i, ok = 1;

    pmap_init(1234);
    /* Kernel mappings must be identities. */
    for (va = 0; va < 8 * PAGESIZE; va = va + PAGESIZE) {
        if (pt_read(0, va + 16) != va + 16) ok = 0;
    }
    /* Reserve pages in user space 1 and read them back. */
    for (i = 0; i < 20; i++) {
        va = (u32)(100 + i) * PAGESIZE;
        if (pt_resv(1, va, PTE_P | PTE_W) != 0) ok = 0;
        pa = pt_read(1, va);
        if (pa == 0) ok = 0;  /* frames below 8 are reserved, so pa != 0 */
    }
    /* Tear down space 1 and confirm the frames are reusable. */
    pt_free(1);
    if (palloc() < 0) ok = 0;
    print_int(ok);
    return ok;
}
