/* MiBench net/dijkstra (adapted).  Single-source shortest paths over a
 * randomly generated adjacency matrix; the work queue keeps the
 * original's malloc'd linked-list nodes (malloc is the zero-stack-cost
 * arena builtin).  Functions match Table 1: enqueue, dequeue, dijkstra,
 * plus qcount and main. */

#define NUM_NODES 16
#define NONE 9999
#define NULL 0

typedef unsigned int u32;

struct QITEM {
    int iNode;
    int iDist;
    int iPrev;
    struct QITEM *qNext;
};

struct QITEM *qHead = NULL;
int AdjMatrix[NUM_NODES][NUM_NODES];
int g_qCount = 0;
int rgnNodes_dist[NUM_NODES];
int rgnNodes_prev[NUM_NODES];
u32 seed = 2026;

u32 rnd() {
    seed = seed * 1664525 + 1013904223;
    return seed;
}

void enqueue(int iNode, int iDist, int iPrev) {
    struct QITEM *qNew = (struct QITEM *) malloc(sizeof(struct QITEM));
    struct QITEM *qLast = qHead;
    if (qNew == NULL) {
        abort();
    }
    qNew->iNode = iNode;
    qNew->iDist = iDist;
    qNew->iPrev = iPrev;
    qNew->qNext = NULL;
    if (qLast == NULL) {
        qHead = qNew;
    } else {
        while (qLast->qNext != NULL) qLast = qLast->qNext;
        qLast->qNext = qNew;
    }
    g_qCount = g_qCount + 1;
}

void dequeue(int *piNode, int *piDist, int *piPrev) {
    struct QITEM *qKill = qHead;
    if (qHead != NULL) {
        *piNode = qHead->iNode;
        *piDist = qHead->iDist;
        *piPrev = qHead->iPrev;
        qHead = qHead->qNext;
        g_qCount = g_qCount - 1;
        qKill->qNext = NULL;  /* the arena has no free() */
    }
}

int qcount() {
    return g_qCount;
}

int dijkstra(int chStart, int chEnd) {
    int iPrev = NONE, iNode = NONE;
    int i, iCost, iDist;

    if (chStart == chEnd) {
        return 0;
    }
    for (i = 0; i < NUM_NODES; i++) {
        rgnNodes_dist[i] = NONE;
        rgnNodes_prev[i] = NONE;
    }
    rgnNodes_dist[chStart] = 0;
    enqueue(chStart, 0, NONE);
    while (qcount() > 0) {
        dequeue(&iNode, &iDist, &iPrev);
        for (i = 0; i < NUM_NODES; i++) {
            iCost = AdjMatrix[iNode][i];
            if (iCost != NONE) {
                if (rgnNodes_dist[i] == NONE ||
                    rgnNodes_dist[i] > iCost + iDist) {
                    rgnNodes_dist[i] = iCost + iDist;
                    rgnNodes_prev[i] = iNode;
                    enqueue(i, iDist + iCost, iNode);
                }
            }
        }
    }
    return rgnNodes_dist[chEnd];
}

int main() {
    int i, j, total = 0;
    for (i = 0; i < NUM_NODES; i++) {
        for (j = 0; j < NUM_NODES; j++) {
            if (i == j) {
                AdjMatrix[i][j] = NONE;
            } else {
                AdjMatrix[i][j] = (int)(rnd() % 50) + 1;
            }
        }
    }
    for (i = 0; i < NUM_NODES; i++) {
        j = (int)(rnd() % NUM_NODES);
        total = total + dijkstra(i, j);
    }
    print_int(total);
    return total >= 0;
}
