"""Quickstart: verify a stack bound for a C program, end to end.

The workflow of the paper in five lines: compile with Quantitative
CompCert, let the certified analyzer derive per-function bounds, read the
compiler-produced cost metric into them, and run the program on the
finite-stack ASMsz machine with exactly the verified budget.

    python examples/quickstart.py
"""

from repro import verify_stack_bounds

SOURCE = r"""
int squares_sum(int n) {
    int total = 0;
    for (int i = 1; i <= n; i++) {
        total += i * i;
    }
    return total;
}

int checked_sum(int n) {
    int value = squares_sum(n);
    if (value < 0) {
        abort();
    }
    return value;
}

int main() {
    print_int(checked_sum(10));
    return 0;
}
"""


def main():
    bounds = verify_stack_bounds(SOURCE)

    print("Verified stack bounds (bytes needed to call each function):")
    for function, byte_bound in sorted(bounds.all_bytes().items()):
        symbolic = bounds.symbolic(function)
        print(f"  {function:14s} {byte_bound:4d} bytes   = {symbolic!r}")

    # The frame sizes the compiler laid out (the SF map of Theorem 1)
    # and the induced cost metric M(f) = SF(f) + 4.
    print("\nCompiled stack frames:")
    for function, sf in sorted(bounds.compilation.frame_sizes.items()):
        print(f"  SF({function}) = {sf:3d}   M({function}) = "
              f"{bounds.metric.cost(function)}")

    # Theorem 1 in action: the program runs on a stack of exactly the
    # verified size (sz + 4 bytes for main's pushed return address).
    sz = bounds.stack_requirement()
    output = []
    behavior, machine = bounds.compilation.run(stack_bytes=sz + 4,
                                               output=output)
    print(f"\nRan with a {sz}-byte stack: {type(behavior).__name__}, "
          f"output={output}")
    print(f"Monitor measured {machine.measured_stack_usage} bytes used "
          f"— exactly bound - 4 = {sz - 4}.")
    assert machine.measured_stack_usage == sz - 4


if __name__ == "__main__":
    main()
