"""Common-subexpression elimination over RTL (available expressions).

A forward *must* dataflow with two kinds of facts:

* expression availability — ``(op, canonical args) -> holding register``
  for pure operations, ``("load", chunk, canonical addr)`` for memory
  reads;
* copy equivalence — ``("copy", reg) -> canonical register``, maintained
  across register moves so that re-materialized addresses and values
  unify (poor man's value numbering).

Joins intersect; redefining a register kills the entries it holds, the
entries reading it, and its copy links; stores and calls kill all load
entries (calls may write memory, stores may alias).  An instruction
whose canonical key is available is rewritten into a register move,
which the register allocator usually coalesces away.

Like CompCert's CSE this pass is purely value-preserving, so trace
equality across levels is untouched; its effect on the *bounds* is via
shrunken live ranges and spill counts (see the ablation bench).
"""

from __future__ import annotations

from repro.rtl import ast as rtl
from repro.rtl.dataflow import solve_forward

Fact = dict

# operations never worth caching (cheaper to rematerialize than to hold)
_CHEAP = {"const", "constf", "move"}


def _canon(fact: Fact, reg: int) -> int:
    return fact.get(("copy", reg), reg)


def _key_of(instr: rtl.Instr, fact: Fact):
    if isinstance(instr, rtl.Iop) and instr.op[0] not in _CHEAP:
        return (instr.op, tuple(_canon(fact, a) for a in instr.args))
    if isinstance(instr, rtl.Iload):
        return ("load", instr.chunk, _canon(fact, instr.addr))
    return None


def _kill_reg(fact: Fact, reg: int) -> Fact:
    out = {}
    for key, value in fact.items():
        if key[0] == "copy":
            if key[1] == reg or value == reg:
                continue
        elif value == reg:
            continue
        elif key[0] == "load":
            if key[2] == reg:
                continue
        elif reg in key[1]:
            continue
        out[key] = value
    return out


def _kill_loads(fact: Fact) -> Fact:
    return {key: value for key, value in fact.items() if key[0] != "load"}


def _transfer(_node: int, instr: rtl.Instr, fact: Fact) -> Fact:
    if isinstance(instr, rtl.Iop):
        key = _key_of(instr, fact)  # canonicalize before the kill
        if instr.op[0] == "move":
            source = _canon(fact, instr.args[0])
            out = _kill_reg(fact, instr.dest)
            if source != instr.dest:
                out[("copy", instr.dest)] = source
            return out
        holder = fact.get(key) if key is not None else None
        out = _kill_reg(fact, instr.dest)
        if holder is not None and holder != instr.dest:
            # The rewrite will turn this into a move from the holder, so
            # the destination becomes a copy of it.
            out[("copy", instr.dest)] = holder
        elif key is not None and instr.dest not in instr.args:
            out[key] = instr.dest
        return out
    if isinstance(instr, rtl.Iload):
        key = _key_of(instr, fact)
        holder = fact.get(key) if key is not None else None
        out = _kill_reg(fact, instr.dest)
        if holder is not None and holder != instr.dest:
            out[("copy", instr.dest)] = holder
        elif key is not None and instr.dest != instr.addr:
            out[key] = instr.dest
        return out
    if isinstance(instr, rtl.Istore):
        return _kill_loads(fact)
    if isinstance(instr, rtl.Icall):
        out = _kill_loads(fact)
        if instr.dest is not None:
            out = _kill_reg(out, instr.dest)
        return out
    return fact


def _join(a: Fact, b: Fact) -> Fact:
    return {key: value for key, value in a.items() if b.get(key) == value}


def cse_function(function: rtl.RTLFunction) -> int:
    """Rewrite in place; returns the number of instructions simplified."""
    facts = solve_forward(function, {}, _join, _transfer,
                          lambda a, b: a == b)
    changed = 0
    for node, instr in list(function.graph.items()):
        fact = facts.get(node)
        if fact is None or not isinstance(instr, (rtl.Iop, rtl.Iload)):
            continue
        key = _key_of(instr, fact)
        if key is None:
            continue
        holder = fact.get(key)
        if holder is None:
            continue
        if holder == instr.dest:
            function.graph[node] = rtl.Inop(instr.successors()[0])
        else:
            function.graph[node] = rtl.Iop(("move",), [holder], instr.dest,
                                           instr.successors()[0])
        changed += 1
    return changed


def cse_program(program: rtl.RTLProgram) -> int:
    return sum(cse_function(f) for f in program.functions.values())
