"""The eight manually verified specs of the paper's Table 2.

Each :class:`~repro.logic.recursion.RecursiveSpec` carries the parametric
bound of the hand-written derivation and the recurrence structure of the
function's worst-case path (the argument transformation at each call site
— the paper's auxiliary-state instantiation).  ``build_spec_table`` wires
them together (``fact_sq`` uses ``fact``'s spec, ``filter_find`` uses
``bsearch``'s), exactly mirroring how the paper composes proofs.

Bounds are parameterized by the size argument ``n``; for the array
functions ``n`` stands for ``hi - lo``.  All bounds *exclude* the
function's own frame — Table 2 reports ``total_bound() = M(f) + P_f``.
"""

from __future__ import annotations

from repro.logic.bexpr import (BConst, BExpr, BLog2, BMul, BParam, badd,
                               bmax, bmetric, bparam)
from repro.logic.recursion import CallObligation, RecursiveSpec, SpecTable

# Default verification domains: exhaustive over sizes up to 600 (Figure 7
# sweeps array lengths up to 4000 for bsearch, whose domain goes higher
# since log2 makes it cheap).
_LINEAR_DOMAIN = {"n": range(0, 600)}
_LOG_DOMAIN = {"n": range(0, 5000)}


def _n() -> BExpr:
    return bparam("n")


def _scaled_depth(function: str, extra: int = 0) -> BExpr:
    """``(n + extra) * M(function)``."""
    depth = _n() if extra == 0 else badd(_n(), BConst(extra))
    return BMul(depth, bmetric(function))


def recid_spec() -> RecursiveSpec:
    return RecursiveSpec(
        "recid", ["n"], _scaled_depth("recid"),
        obligations=lambda p: (
            [CallObligation("recid", {"n": p["n"] - 1})] if p["n"] > 0 else []),
        domain=_LINEAR_DOMAIN,
        description="n * M(recid): linear recursion on the argument")


def bsearch_spec() -> RecursiveSpec:
    bound = BMul(badd(BConst(1), BLog2(_n())), bmetric("bsearch"))
    def obligations(p):
        n = p["n"]
        if n <= 1:
            return []
        return [CallObligation("bsearch", {"n": n // 2}),
                CallObligation("bsearch", {"n": n - n // 2})]
    return RecursiveSpec(
        "bsearch", ["n"], bound, obligations, domain=_LOG_DOMAIN,
        description="(1 + log2(hi-lo)) * M(bsearch): logarithmic depth")


def fib_spec() -> RecursiveSpec:
    bound = BMul(bmax(badd(_n(), BConst(0)), BConst(0)), bmetric("fib"))
    # P(n) = n * M (clamped at 0): slightly loose (depth is n-1) but in
    # the paper's 24n shape; the recursion never nests its two calls.
    def obligations(p):
        n = p["n"]
        if n < 2:
            return []
        return [CallObligation("fib", {"n": n - 1}),
                CallObligation("fib", {"n": n - 2})]
    return RecursiveSpec("fib", ["n"], bound, obligations,
                         domain=_LINEAR_DOMAIN,
                         description="n * M(fib): the two calls never coexist")


def qsort_spec() -> RecursiveSpec:
    bound = _scaled_depth("qsort")
    def obligations(p):
        n = p["n"]
        if n <= 1:
            return []
        # Worst case: one side gets all n-1 remaining elements.
        return [CallObligation("qsort", {"n": n - 1})]
    return RecursiveSpec("qsort", ["n"], bound, obligations,
                         domain=_LINEAR_DOMAIN,
                         description="(hi-lo) * M(qsort): worst-case depth")


def sum_spec() -> RecursiveSpec:
    bound = _scaled_depth("sum")
    def obligations(p):
        if p["n"] <= 0:
            return []
        return [CallObligation("sum", {"n": p["n"] - 1})]
    return RecursiveSpec("sum", ["n"], bound, obligations,
                         domain=_LINEAR_DOMAIN,
                         description="(hi-lo) * M(sum): linear recursion")


def filter_pos_spec() -> RecursiveSpec:
    bound = _scaled_depth("filter_pos")
    def obligations(p):
        if p["n"] <= 0:
            return []
        return [CallObligation("filter_pos", {"n": p["n"] - 1})]
    return RecursiveSpec("filter_pos", ["n"], bound, obligations,
                         domain=_LINEAR_DOMAIN,
                         description="(hi-lo) * M(filter_pos)")


def fact_spec() -> RecursiveSpec:
    bound = _scaled_depth("fact")
    def obligations(p):
        if p["n"] <= 1:
            return []
        return [CallObligation("fact", {"n": p["n"] - 1})]
    return RecursiveSpec("fact", ["n"], bound, obligations,
                         domain={"n": range(0, 1200)},
                         description="n * M(fact): linear recursion")


def fact_sq_spec() -> RecursiveSpec:
    # fact_sq(n) performs the single call fact(n * n); modularity of the
    # logic: reuse fact's verified spec at the squared argument.
    bound = BMul(BMul(_n(), _n()), badd(bmetric("fact"), BConst(0)))
    bound = badd(bound, bmetric("fact"))  # the call's own frame M(fact)
    def obligations(p):
        return [CallObligation("fact", {"n": p["n"] * p["n"]})]
    return RecursiveSpec("fact_sq", ["n"], bound, obligations,
                         domain={"n": range(0, 34)},
                         description="M(fact) * (1 + n^2): one call fact(n^2)")


def filter_find_spec() -> RecursiveSpec:
    # Linear recursion over the input with one bsearch chain live at the
    # bottom; BL is the size of the searched array (second parameter).
    bsearch_total = badd(
        bmetric("bsearch"),
        BMul(badd(BConst(1), BLog2(bparam("bl"))), bmetric("bsearch")))
    bound = badd(_scaled_depth("filter_find"), bsearch_total)
    def obligations(p):
        out = [CallObligation("bsearch", {"n": p["bl"]})]
        if p["n"] > 0:
            out.append(CallObligation(
                "filter_find", {"n": p["n"] - 1, "bl": p["bl"]}))
        return out
    return RecursiveSpec(
        "filter_find", ["n", "bl"], bound, obligations,
        domain={"n": range(0, 120), "bl": [1, 2, 16, 256, 1024]},
        description="(hi-lo)*M(filter_find) + M(bsearch)*(2+log2(BL))")


def build_spec_table() -> SpecTable:
    """All Table 2 specs, wired together."""
    table = SpecTable()
    for spec in (recid_spec(), bsearch_spec(), fib_spec(), qsort_spec(),
                 sum_spec(), filter_pos_spec(), fact_spec(), fact_sq_spec(),
                 filter_find_spec()):
        table.add_recursive(spec)
    return table


# Which packaged program exercises each Table 2 function, and how the C
# program's arguments map onto the spec parameters.
TABLE2_PROGRAMS: dict[str, str] = {
    "recid": "recursive/recid.c",
    "bsearch": "recursive/bsearch.c",
    "fib": "recursive/fib.c",
    "qsort": "recursive/qsort.c",
    "sum": "recursive/sum.c",
    "filter_pos": "recursive/filter_pos.c",
    "fact_sq": "recursive/fact_sq.c",
    "filter_find": "recursive/filter_find.c",
}
